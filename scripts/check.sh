#!/usr/bin/env bash
# Pre-PR gate: run this before pushing. Offline-friendly — everything it
# needs (including the vendored shims/ crates) lives in the workspace, so
# no network access is required.
#
#   scripts/check.sh          # fmt + clippy + full workspace test suite
#   scripts/check.sh --quick  # skip clippy (fmt + tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

# Every BENCH_*.json carries a "host" wall-clock block (host_seconds and
# friends) that varies run to run; expectation diffs compare everything
# *except* it. Brace-depth aware so nested blocks (micro's "detail")
# strip cleanly too.
strip_host() {
    awk '
        /^  "host": \{$/ { depth = 1; next }
        depth > 0 {
            if (/\{$/) depth++
            else if (/^[[:space:]]*\},?$/) depth--
            next
        }
        { print }
    ' "$1"
}

echo "==> cargo fmt --check"
cargo fmt --all --check

if [ "$quick" -eq 0 ]; then
    echo "==> cargo clippy (warnings are errors)"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> cargo build --benches"
cargo build --benches -q --workspace

echo "==> pipeline_overlap smoke (serial baseline must match committed expectations)"
smoke_dir="$(pwd)/target/bench-json-smoke"
rm -rf "$smoke_dir"
BENCH_JSON_DIR="$smoke_dir" cargo bench -q -p bench --bench pipeline_overlap -- --smoke \
    --trace "$smoke_dir/trace_smoke.json"
diff -u crates/bench/expected/BENCH_pipeline_overlap_serial.json \
    <(strip_host "$smoke_dir/BENCH_pipeline_overlap_serial.json")

echo "==> exported trace must satisfy the Chrome trace-event schema"
cargo run -q --release --example validate_trace -- "$smoke_dir/trace_smoke.json"

echo "==> writeback_daemon smoke (defaults-off must match committed expectations)"
BENCH_JSON_DIR="$smoke_dir" cargo bench -q -p bench --bench writeback_daemon -- --smoke
diff -u crates/bench/expected/BENCH_writeback_daemon_serial.json \
    <(strip_host "$smoke_dir/BENCH_writeback_daemon_serial.json")

echo "==> write-back daemon counters must appear in the obs footer"
for c in fuse.bg_flushes fuse.bg_writeback_bytes fuse.throttled_writes \
         fuse.clean_evictions fuse.scan_protected_hits; do
    grep -q "\"$c\"" "$smoke_dir/BENCH_writeback_daemon.json" \
        || { echo "FAIL: counter $c missing from the obs footer"; exit 1; }
done
grep -q '"daemon: background flusher and clean-first eviction were exercised": true' \
    "$smoke_dir/BENCH_writeback_daemon.json" \
    || { echo "FAIL: daemon shape check did not pass"; exit 1; }

echo "==> scrub smoke (knobs-off baseline must match committed expectations)"
BENCH_JSON_DIR="$smoke_dir" cargo bench -q -p bench --bench scrub -- --smoke
diff -u crates/bench/expected/BENCH_scrub_serial.json \
    <(strip_host "$smoke_dir/BENCH_scrub_serial.json")

echo "==> injected bit rot must be detected, repaired and never served"
for c in rotted_crc_mismatches rotted_scrub_repairs scrub_repairs; do
    if ! grep -Eq "\"$c\": [1-9]" "$smoke_dir/BENCH_scrub.json"; then
        echo "FAIL: counter $c is zero or missing from BENCH_scrub.json"
        exit 1
    fi
done
for shape in \
    "zero wrong reads: rotted k=2 STREAM completes and verifies" \
    "scrub daemon repairs every rotted copy from replicas" \
    "k=1 rot surfaces as ChunkCorrupt naming the bad copy"; do
    grep -q "\"$shape\": true" "$smoke_dir/BENCH_scrub.json" \
        || { echo "FAIL: integrity shape check did not pass: $shape"; exit 1; }
done

echo "==> integrity counters must appear in the obs footer"
for c in store.crc_mismatches store.scrub_passes store.scrub_repairs; do
    grep -q "\"$c\"" "$smoke_dir/BENCH_scrub.json" \
        || { echo "FAIL: counter $c missing from the obs footer"; exit 1; }
done

echo "==> fan_in smoke (shards=1 must be bit-identical to the serial manager)"
BENCH_JSON_DIR="$smoke_dir" cargo bench -q -p bench --bench fan_in -- --smoke
diff -u crates/bench/expected/BENCH_fan_in_serial.json \
    <(strip_host "$smoke_dir/BENCH_fan_in_serial.json")
grep -q '"shards=1 bit-identical to the serial manager": true' \
    "$smoke_dir/BENCH_fan_in_serial.json" \
    || { echo "FAIL: sharded manager diverged from the serial baseline"; exit 1; }
if ! grep -Eq '"store.loc_cache_hits": [1-9]' "$smoke_dir/BENCH_fan_in_serial.json"; then
    echo "FAIL: leased hot path never hit the location cache"
    exit 1
fi

echo "==> every emitted bench JSON must carry a host wall-clock footer"
for f in "$smoke_dir"/BENCH_*.json; do
    grep -q '"host": {' "$f" \
        || { echo "FAIL: $(basename "$f") is missing its host footer"; exit 1; }
done

echo "==> micro host-speed floor (simulated bytes per host second)"
# Committed floor: 140 MB of simulated traffic per host second — 2x the
# pre-bitalloc baseline (70.9 MB/hs, EXPERIMENTS.md) and ~8x below the
# rate measured after the allocator/CRC-splice work, so the gate catches
# an O(n)-per-event regression without tripping on machine variance.
micro_floor=140000000
BENCH_JSON_DIR="$smoke_dir" cargo bench -q -p bench --bench micro -- --host-speed
micro_rate="$(awk -F': ' '/"bytes_per_host_second"/ { gsub(/,/, "", $2); print $2; exit }' \
    "$smoke_dir/BENCH_micro.json")"
if [ -z "$micro_rate" ] || [ "$micro_rate" -lt "$micro_floor" ]; then
    echo "FAIL: micro host speed ${micro_rate:-?} B/hs is below the ${micro_floor} floor"
    exit 1
fi
echo "    micro: ${micro_rate} simulated bytes/host-second (floor ${micro_floor})"

echo "All checks passed."

//! Offline stand-in for the slice of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng`'s
//! `gen`/`gen_range`/`gen_bool`/`fill_bytes`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream ChaCha12, but every consumer in this repository treats the
//! stream as an opaque deterministic sequence keyed by an explicit seed
//! (see `simcore::rng`), so only self-consistency matters: the same seed
//! always reproduces the same sequence, on every platform.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable with [`Rng::gen_range`] over a half-open `Range`.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                // Widen through u128 so i64/u64 spans cannot overflow; the
                // modulo bias over a 64-bit draw is irrelevant for the
                // simulation's workload generators.
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + (range.end - range.start) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + (range.end - range.start) * f32::sample_standard(rng)
    }
}

/// The user-facing convenience trait, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ keyed through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(1);
        let _: u64 = r.gen_range(0..u64::MAX);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

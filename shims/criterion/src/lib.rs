//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros with
//! plain `std::time::Instant` timing. No statistical analysis beyond
//! median-of-samples, no HTML reports, no gnuplot — just a stable
//! `name  median ns/iter` line per benchmark so `cargo bench` runs
//! without registry access.

use std::time::{Duration, Instant};

/// Hint used by `iter_batched` in upstream criterion to size batches;
/// here every variant behaves the same (setup runs once per sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver configured via the builder methods upstream exposes.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::WarmUp {
                deadline: Instant::now() + self.warm_up_time,
            },
            samples: Vec::with_capacity(self.sample_size),
        };
        routine(&mut b);

        let per_sample = self.measurement_time / self.sample_size as u32;
        b.mode = Mode::Measure { per_sample };
        b.samples.clear();
        routine(&mut b);

        let mut samples = b.samples;
        assert!(!samples.is_empty(), "bencher closure never called iter()");
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{name:<40} median {median:>12} ns/iter (best {best} ns, {} samples)",
            samples.len()
        );
        self
    }
}

enum Mode {
    WarmUp { deadline: Instant },
    Measure { per_sample: Duration },
}

/// Passed to the benchmark closure; records per-iteration timings.
pub struct Bencher {
    mode: Mode,
    samples: Vec<u64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::SmallInput);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::WarmUp { deadline } => {
                while Instant::now() < deadline {
                    let input = setup();
                    std::hint::black_box(routine(input));
                }
            }
            Mode::Measure { per_sample } => {
                // One sample = enough back-to-back iterations to fill
                // per_sample, timed around the routine only.
                let sample_deadline = Instant::now() + per_sample;
                let mut elapsed = Duration::ZERO;
                let mut iters: u64 = 0;
                loop {
                    let input = setup();
                    let start = Instant::now();
                    std::hint::black_box(routine(input));
                    elapsed += start.elapsed();
                    iters += 1;
                    if Instant::now() >= sample_deadline {
                        break;
                    }
                }
                self.samples
                    .push((elapsed.as_nanos() / iters as u128) as u64);
            }
        }
    }
}

/// Re-export so call sites can use `criterion::black_box` if they prefer.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(6));
        let mut x = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        assert!(x > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_batch() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}

//! Offline stand-in for the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace builds in environments with no crates.io access, so the
//! small slice of `parking_lot` the simulation kernel uses (panic-free
//! `lock()`, `Condvar::wait(&mut guard)`) is provided here over the
//! standard-library primitives. Poisoning is deliberately ignored: a
//! panicking simulation process already aborts the test, and the paper
//! reproduction's locks protect plain data, not invariants that survive
//! unwinding.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can move the std
/// guard out and back without consuming the caller's binding.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable with `parking_lot`'s by-reference wait API.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's lock, wait, and re-acquire.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_one();
        h.join().unwrap();
    }
}

//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Provides deterministic random case generation for the `proptest!`
//! macro, `prop_oneof!`, range/tuple/`Just`/`any`/`collection::vec`
//! strategies, `prop_map`, and the `prop_assert*`/`prop_assume!` macros.
//! Two deliberate simplifications versus upstream:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   pretty-printed; cases are derived deterministically from the test
//!   name, so a failure reproduces exactly on rerun.
//! * **No persistence.** `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// The RNG threaded through strategy generation.
pub type TestRng = StdRng;

/// Derive the deterministic RNG for a named test.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
}

/// Runner configuration (`cases` is the only knob the repo uses; the
/// rest exist so `..ProptestConfig::default()` spreads keep compiling).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
    /// Maximum rejected cases before the test errors out.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Default configuration with `cases` successful cases required.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Output of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// One weighted arm of a `prop_oneof!` union.
pub type OneOfArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted union of strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    pub arms: Vec<OneOfArm<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof with zero total weight");
        let mut pick = rng.gen_range(0u32..total);
        for (w, gen) in &self.arms {
            if pick < *w {
                return gen(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use crate::{Just, Map, OneOf, Strategy};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Run one test's cases; used by the `proptest!` expansion.
pub fn run_cases<F>(name: &str, config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = rng_for(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case failed after {passed} passes: {msg}\ninputs:\n{inputs}")
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), __config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                // Capture the inputs' debug form before the body can
                // consume them (failure reporting has no shrinker).
                let __inputs = format!(concat!($(stringify!($arg), " = {:#?}\n"),+), $(&$arg),+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        $crate::OneOf {
            arms: vec![$((
                $weight as u32,
                {
                    let __s = $strat;
                    ::std::boxed::Box::new(move |r: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&__s, r)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+],
        }
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic() {
        let strat = prop_oneof![
            3 => (0u64..100).prop_map(|v| v * 2),
            1 => Just(7u64),
        ];
        let a: Vec<u64> = {
            let mut rng = crate::rng_for("x");
            (0..32)
                .map(|_| crate::Strategy::generate(&strat, &mut rng))
                .collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::rng_for("x");
            (0..32)
                .map(|_| crate::Strategy::generate(&strat, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| v == 7 || (v % 2 == 0 && v < 200)));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10, "len {}", v.len());
        }

        #[test]
        fn tuples_and_assume(ab in (0u32..50, 0u32..50), c in 0u32..10) {
            let (a, b) = ab;
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(c < 10);
            prop_assert_eq!(c, c, "identity");
        }
    }
}

//! Compute-cost calibration.
//!
//! The simulation carries real (scaled-down) data but must charge virtual
//! time for the *full-size* computation the paper ran. Two knobs:
//!
//! * `flops_per_core_per_sec` — sustained per-core throughput for the
//!   workload class. The paper's kernels are plain tiled C code, not
//!   vendor BLAS; on HAL's 2.4 GHz cores that sustains well under one
//!   flop per cycle. The default of 0.6 GFLOP/s (≈ 1 flop per 4 cycles)
//!   is calibrated so the evaluation's headline ratio — L-SSD(8:16:16)
//!   beating DRAM(2:16:0) by ~54 % on the 2 GB matrix multiply —
//!   reproduces; see EXPERIMENTS.md.
//! * `compute_multiplier` — the scale-correction factor. When a workload
//!   shrinks its data by `s` in *bytes* but its operation count shrinks
//!   faster (matrix multiply: bytes ~ n², flops ~ n³), multiplying the
//!   charged compute time by `n_full / n_scaled` restores the paper's
//!   compute-to-I/O ratio. Workloads set this from their own scaling.

use simcore::{Bandwidth, VTime};

/// Time-charging calibration for simulated computation.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Sustained useful flops per core per second.
    pub flops_per_core_per_sec: f64,
    /// Multiplier on charged compute time (scale correction; 1.0 = none).
    pub compute_multiplier: f64,
    /// Node-internal copy bandwidth for intra-node message delivery.
    pub memcpy_bw: Bandwidth,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            flops_per_core_per_sec: 0.6e9,
            compute_multiplier: 1.0,
            memcpy_bw: Bandwidth::gb_per_sec(6.0),
        }
    }
}

impl Calibration {
    pub fn with_multiplier(mut self, m: f64) -> Self {
        assert!(m > 0.0 && m.is_finite());
        self.compute_multiplier = m;
        self
    }

    /// Virtual time for `flops` floating-point operations on one core.
    pub fn compute_time(&self, flops: f64) -> VTime {
        VTime::from_secs_f64(flops * self.compute_multiplier / self.flops_per_core_per_sec)
    }

    /// Virtual time for an intra-node copy of `bytes`.
    pub fn memcpy_time(&self, bytes: u64) -> VTime {
        self.memcpy_bw.time_for(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_scales_linearly() {
        let c = Calibration::default();
        assert_eq!(c.compute_time(0.6e9), VTime::from_secs(1));
        assert_eq!(c.compute_time(0.3e9), VTime::from_millis(500));
    }

    #[test]
    fn multiplier_applies() {
        let c = Calibration::default().with_multiplier(8.0);
        assert_eq!(c.compute_time(0.6e9), VTime::from_secs(8));
    }

    #[test]
    fn memcpy_time() {
        let c = Calibration::default();
        assert_eq!(c.memcpy_time(6_000_000_000), VTime::from_secs(1));
    }
}

//! Assembling a simulated cluster: nodes with DRAM budgets, the
//! interconnect, the PFS, and the aggregate NVM store with benefactors
//! placed on chosen nodes.

use crate::spec::ClusterSpec;
use chunkstore::{AggregateStore, Benefactor, StoreConfig};
use devices::{Dram, Pfs, Ssd};
use fusemm::{FuseConfig, Mount};
use netsim::Network;
use obs::TraceRecorder;
use simcore::StatsRegistry;

/// A built cluster, ready to run jobs.
pub struct Cluster {
    pub spec: ClusterSpec,
    pub stats: StatsRegistry,
    /// Cluster-wide trace recorder: disabled unless the cluster was built
    /// via [`Cluster::with_obs`], in which case every layer (mounts, store,
    /// network, SSDs) records virtual-time spans into it.
    pub trace: TraceRecorder,
    pub net: Network,
    pub pfs: Pfs,
    pub store: AggregateStore,
    /// Nodes that run a benefactor process.
    pub benefactor_nodes: Vec<usize>,
    drams: Vec<Dram>,
    mounts: Vec<Mount>,
}

impl Cluster {
    /// Build a cluster per `spec`, contributing the node-local SSD of each
    /// node in `benefactor_nodes` to the aggregate store.
    pub fn new(spec: ClusterSpec, benefactor_nodes: &[usize]) -> Self {
        Self::with_fuse(spec, benefactor_nodes, FuseConfig::default())
    }

    /// Same, with a custom FUSE-layer configuration (cache sweeps etc.).
    pub fn with_fuse(spec: ClusterSpec, benefactor_nodes: &[usize], fuse: FuseConfig) -> Self {
        Self::with_configs(spec, benefactor_nodes, fuse, StoreConfig::default())
    }

    /// Fully custom build (chunk-size ablations etc.).
    pub fn with_configs(
        spec: ClusterSpec,
        benefactor_nodes: &[usize],
        fuse: FuseConfig,
        store_cfg: StoreConfig,
    ) -> Self {
        Self::build(spec, benefactor_nodes, fuse, store_cfg, false)
    }

    /// Fully custom build with span tracing enabled: every layer records
    /// virtual-time spans into [`Cluster::trace`], and `run_job` binds each
    /// rank to its own trace lane. Virtual-time results are bit-identical
    /// to an untraced build — instrumentation only observes the computed
    /// times, it never participates in them.
    pub fn with_obs(
        spec: ClusterSpec,
        benefactor_nodes: &[usize],
        fuse: FuseConfig,
        store_cfg: StoreConfig,
    ) -> Self {
        Self::build(spec, benefactor_nodes, fuse, store_cfg, true)
    }

    fn build(
        spec: ClusterSpec,
        benefactor_nodes: &[usize],
        fuse: FuseConfig,
        mut store_cfg: StoreConfig,
        traced: bool,
    ) -> Self {
        let stats = StatsRegistry::new();
        // The recorder must exist before any layer is constructed: clones
        // (the store's network handle, each mount's store handle) share
        // whatever recorder their original carried at clone time.
        let trace = if traced {
            TraceRecorder::enabled(&stats)
        } else {
            TraceRecorder::disabled()
        };
        let net = Network::new(spec.nodes, spec.net, &stats).with_tracer(trace.clone());
        let pfs = Pfs::new(spec.pfs, &stats);
        // The manager runs where the first benefactor lives (a "fat node"),
        // or node 0 when the store is unused.
        store_cfg.manager_node = benefactor_nodes.first().copied().unwrap_or(0);
        let store = AggregateStore::new(store_cfg, net.clone(), &stats).with_tracer(trace.clone());
        for &node in benefactor_nodes {
            assert!(node < spec.nodes, "benefactor node out of range");
            let ssd = Ssd::new(&format!("n{node}.ssd"), spec.ssd_profile, &stats)
                .with_tracer(trace.clone());
            store.add_benefactor(Benefactor::new(
                node,
                ssd,
                spec.ssd_capacity_per_node,
                store_cfg.chunk_size,
            ));
        }
        // Sharded placement manager (DESIGN.md §12): shard ranks live on
        // benefactor ("fat") nodes, round-robin, shard 0 co-located with
        // the serial manager's node so shards=1 reproduces its transfers
        // exactly. The ring seed is fixed — ownership must replay
        // bit-identically.
        if store_cfg.manager_shards > 0 {
            assert!(
                !benefactor_nodes.is_empty(),
                "manager shards need benefactor nodes to run on"
            );
            let shard_nodes: Vec<usize> = (0..store_cfg.manager_shards)
                .map(|k| benefactor_nodes[k % benefactor_nodes.len()])
                .collect();
            store.install_shards(&shard_nodes, chunkstore::DEFAULT_RING_SEED);
        }
        let drams = (0..spec.nodes)
            .map(|n| {
                Dram::new(
                    &format!("n{n}.dram"),
                    spec.dram_profile,
                    spec.dram_per_node,
                    &stats,
                )
            })
            .collect();
        let mounts = (0..spec.nodes)
            .map(|n| Mount::new(store.clone(), n, fuse, &stats).with_tracer(trace.clone()))
            .collect();
        Cluster {
            spec,
            stats,
            trace,
            net,
            pfs,
            store,
            benefactor_nodes: benefactor_nodes.to_vec(),
            drams,
            mounts,
        }
    }

    pub fn dram(&self, node: usize) -> &Dram {
        &self.drams[node]
    }

    pub fn mount(&self, node: usize) -> &Mount {
        &self.mounts[node]
    }

    /// Install a [`faults::FaultPlan`] on the aggregate store: benefactor
    /// crashes/recoveries, link faults and SSD slowdowns fire as the jobs'
    /// virtual clocks pass the scheduled times.
    pub fn attach_faults(&self, plan: faults::FaultPlan) {
        self.store.attach_faults(plan);
    }

    /// Map a benefactor index (`BenefactorId.0`, the order of
    /// `benefactor_nodes`) back to its cluster node.
    pub fn benefactor_node(&self, benefactor: usize) -> usize {
        self.benefactor_nodes[benefactor]
    }

    /// Sum of SSD wear across the store's benefactors.
    pub fn total_ssd_bytes_written(&self) -> u64 {
        self.store
            .wear_reports()
            .iter()
            .map(|(_, w)| w.bytes_written)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    #[test]
    fn hal_cluster_builds() {
        let c = Cluster::new(ClusterSpec::hal().scaled(64), &(0..16).collect::<Vec<_>>());
        assert_eq!(c.spec.nodes, 16);
        assert_eq!(c.benefactor_nodes.len(), 16);
        assert_eq!(c.store.manager().benefactor_count(), 16);
        let (total, free) = c.store.manager().space();
        assert_eq!(total, free);
        assert_eq!(total, 16 * c.spec.ssd_capacity_per_node);
    }

    #[test]
    fn storeless_cluster_for_dram_only_configs() {
        let c = Cluster::new(ClusterSpec::hal().scaled(64), &[]);
        assert_eq!(c.store.manager().benefactor_count(), 0);
        assert_eq!(c.dram(0).capacity(), c.spec.dram_per_node);
    }

    #[test]
    fn manager_shards_knob_installs_ranks_on_benefactor_nodes() {
        let cfg = StoreConfig {
            manager_shards: 4,
            ..StoreConfig::default()
        };
        let c = Cluster::with_configs(
            ClusterSpec::hal().scaled(64),
            &[0, 1],
            FuseConfig::default(),
            cfg,
        );
        assert_eq!(c.store.shards_installed(), 4);
        // Round-robin over the benefactor nodes; shard 0 shares the
        // serial manager's node.
        assert_eq!(c.net.endpoint_node("shardmgr/0"), Some(0));
        assert_eq!(c.net.endpoint_node("shardmgr/1"), Some(1));
        assert_eq!(c.net.endpoint_node("shardmgr/2"), Some(0));
        assert_eq!(c.net.endpoint_node("shardmgr/3"), Some(1));
        // Defaults-off: a plain build installs nothing.
        let plain = Cluster::new(ClusterSpec::hal().scaled(64), &[0, 1]);
        assert_eq!(plain.store.shards_installed(), 0);
    }

    #[test]
    fn remote_benefactor_placement() {
        // 8 compute + 8 storage nodes: the R-SSD(8:8:8) layout.
        let c = Cluster::new(ClusterSpec::hal().scaled(64), &(8..16).collect::<Vec<_>>());
        assert_eq!(c.benefactor_nodes, (8..16).collect::<Vec<_>>());
        assert_eq!(c.store.config().manager_node, 8);
    }
}

//! Cluster specifications — the paper's **Table II** (the HAL cluster)
//! plus the scaling machinery that lets the reproduction run laptop-sized
//! problems while preserving every capacity *ratio* of the evaluation.

use devices::{DeviceProfile, PfsConfig, DDR3_1600, INTEL_X25E};
use netsim::NetConfig;
use simcore::time::bytes::gib;
use simcore::Bandwidth;

/// Hardware description of a cluster.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    pub name: &'static str,
    /// Total nodes (compute and/or storage).
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Core clock in Hz (Table II: 2.4 GHz).
    pub core_hz: f64,
    /// Installed DRAM per node.
    pub dram_per_node: u64,
    pub dram_profile: DeviceProfile,
    /// Node-local SSD model (every HAL node has an Intel X25-E).
    pub ssd_profile: DeviceProfile,
    /// SSD capacity contributed by each benefactor.
    pub ssd_capacity_per_node: u64,
    pub net: NetConfig,
    pub pfs: PfsConfig,
    /// Divisor applied by [`ClusterSpec::scaled`]; 1 = full size.
    pub scale_divisor: u64,
}

impl ClusterSpec {
    /// The HAL cluster, exactly as Table II describes it:
    /// 16 nodes × 8 cores at 2.4 GHz, 8 GB DRAM/node, Intel X25-E 32 GB
    /// SATA SSD, bonded dual Gigabit Ethernet.
    pub fn hal() -> Self {
        ClusterSpec {
            name: "HAL",
            nodes: 16,
            cores_per_node: 8,
            core_hz: 2.4e9,
            dram_per_node: gib(8),
            dram_profile: DDR3_1600,
            ssd_profile: INTEL_X25E,
            ssd_capacity_per_node: gib(32),
            net: NetConfig::default(),
            pfs: PfsConfig::default(),
            scale_divisor: 1,
        }
    }

    /// Scale every *capacity* down by `divisor`, keeping all bandwidths
    /// and latencies unchanged. A problem scaled by the same divisor sees
    /// exactly the paper's capacity pressure (e.g. a 2 GB matrix vs 8 GB
    /// nodes becomes a 32 MiB matrix vs 128 MiB nodes at divisor 64),
    /// while functional data stays small enough to run on a laptop.
    ///
    /// Compute/IO ratios are restored via
    /// [`crate::calib::Calibration::compute_multiplier`], which each
    /// experiment sets from its own size scaling (see DESIGN.md).
    pub fn scaled(mut self, divisor: u64) -> Self {
        assert!(divisor >= 1, "divisor must be at least 1");
        self.dram_per_node /= divisor;
        self.ssd_capacity_per_node /= divisor;
        self.scale_divisor *= divisor;
        self
    }

    /// Total core count (128 for HAL).
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Total installed DRAM (128 GB for HAL at scale 1).
    pub fn total_dram(&self) -> u64 {
        self.nodes as u64 * self.dram_per_node
    }

    /// A human-readable Table II reproduction.
    pub fn table2(&self) -> String {
        format!(
            "Testbed: {} cluster\n\
             Compute nodes (#)    {}\n\
             Cores per node (#)   {}\n\
             Processor (GHz)      {:.1}\n\
             Memory per node      {}\n\
             SATA SSD model       {}, {}\n\
             Network              Bonded Dual Gigabit Ethernet\n\
             (capacity scale      1/{})",
            self.name,
            self.nodes,
            self.cores_per_node,
            self.core_hz / 1e9,
            simcore::bytes::human(self.dram_per_node),
            self.ssd_profile.name,
            simcore::bytes::human(self.ssd_capacity_per_node),
            self.scale_divisor,
        )
    }

    /// Aggregate DRAM bandwidth of one node.
    pub fn dram_bw(&self) -> Bandwidth {
        self.dram_profile.read_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hal_matches_table2() {
        let hal = ClusterSpec::hal();
        assert_eq!(hal.nodes, 16);
        assert_eq!(hal.cores_per_node, 8);
        assert_eq!(hal.total_cores(), 128);
        assert_eq!(hal.dram_per_node, gib(8));
        assert_eq!(hal.total_dram(), gib(128));
        assert_eq!(hal.ssd_profile.name, "Intel X25-E");
        assert_eq!(hal.core_hz, 2.4e9);
    }

    #[test]
    fn scaling_divides_capacities_only() {
        let hal = ClusterSpec::hal().scaled(64);
        assert_eq!(hal.dram_per_node, gib(8) / 64);
        assert_eq!(hal.ssd_capacity_per_node, gib(32) / 64);
        assert_eq!(hal.scale_divisor, 64);
        // Bandwidths untouched.
        assert_eq!(hal.ssd_profile.read_bw.as_bytes_per_sec(), 250e6);
        // Scaling composes.
        let hal2 = hal.scaled(2);
        assert_eq!(hal2.scale_divisor, 128);
    }

    #[test]
    fn table2_renders() {
        let s = ClusterSpec::hal().table2();
        assert!(s.contains("16"));
        assert!(s.contains("Intel X25-E"));
        assert!(s.contains("2.4"));
    }
}

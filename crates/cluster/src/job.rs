//! Job launch: the `(x:y:z)` configurations of the paper's evaluation.
//!
//! A configuration string like `L-SSD(8:16:16)` means 8 processes per
//! node, 16 compute nodes, 16 SSD benefactors, with benefactors local
//! (`L`) or remote (`R`) to the compute nodes. [`JobConfig`] captures the
//! process placement; benefactor placement is fixed when the [`Cluster`]
//! is built (see [`JobConfig::benefactor_nodes`] helpers).

use crate::calib::Calibration;
use crate::cluster::Cluster;
use crate::comm::Comm;
use devices::DramExhausted;
use nvmalloc::{AllocOptions, NvmClient};
use parking_lot::Mutex;
use simcore::{Engine, EngineReport, ProcCtx, VTime};

/// Where a configuration's benefactors sit relative to its compute nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsdPlacement {
    /// No NVM store: the DRAM-only baseline.
    None,
    /// Benefactors on the compute nodes themselves (`L-SSD`).
    Local,
    /// Benefactors on a disjoint set of nodes (`R-SSD`).
    Remote,
}

/// An `(x:y:z)` job configuration.
///
/// ```
/// use cluster::JobConfig;
/// let cfg = JobConfig::remote(8, 8, 4);
/// assert_eq!(cfg.label(), "R-SSD(8:8:4)");
/// assert_eq!(cfg.ranks(), 64);
/// assert_eq!(cfg.benefactor_nodes(), vec![8, 9, 10, 11]);
/// ```
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// x: processes per compute node.
    pub procs_per_node: usize,
    /// y: number of compute nodes (nodes `0..y`).
    pub compute_nodes: usize,
    /// z: number of SSD benefactors.
    pub benefactors: usize,
    pub placement: SsdPlacement,
    /// Replica degree for every allocation the job makes (1 = unreplicated,
    /// the paper's baseline; 2 survives a single benefactor failure).
    pub replicas: usize,
    /// Placement-manager shard ranks (DESIGN.md §12). `0` — the default —
    /// is the serial single-manager store; the cluster must be built with
    /// a matching `StoreConfig::manager_shards`.
    pub manager_shards: usize,
}

impl JobConfig {
    pub fn dram_only(x: usize, y: usize) -> Self {
        JobConfig {
            procs_per_node: x,
            compute_nodes: y,
            benefactors: 0,
            placement: SsdPlacement::None,
            replicas: 1,
            manager_shards: 0,
        }
    }

    /// `L-SSD(x:y:z)`: benefactors on compute nodes `0..z` (z ≤ y).
    pub fn local(x: usize, y: usize, z: usize) -> Self {
        assert!(z <= y, "local benefactors must sit on compute nodes");
        JobConfig {
            procs_per_node: x,
            compute_nodes: y,
            benefactors: z,
            placement: SsdPlacement::Local,
            replicas: 1,
            manager_shards: 0,
        }
    }

    /// `R-SSD(x:y:z)`: benefactors on nodes `y..y+z`, disjoint from the
    /// compute nodes.
    pub fn remote(x: usize, y: usize, z: usize) -> Self {
        JobConfig {
            procs_per_node: x,
            compute_nodes: y,
            benefactors: z,
            placement: SsdPlacement::Remote,
            replicas: 1,
            manager_shards: 0,
        }
    }

    /// Run every allocation with `k` replicas per chunk.
    pub fn with_replicas(mut self, k: usize) -> Self {
        assert!(k >= 1, "at least one copy");
        self.replicas = k;
        self
    }

    /// Run the placement manager sharded `n` ways (DESIGN.md §12). The
    /// cluster this job runs on must be built with the same
    /// `StoreConfig::manager_shards` so the shard ranks exist.
    pub fn with_manager_shards(mut self, n: usize) -> Self {
        self.manager_shards = n;
        self
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> usize {
        self.procs_per_node * self.compute_nodes
    }

    /// Node hosting a rank (block placement, as `mpirun -bynode` off).
    pub fn node_of_rank(&self, rank: usize) -> usize {
        rank / self.procs_per_node
    }

    /// The nodes that must run benefactors for this configuration.
    pub fn benefactor_nodes(&self) -> Vec<usize> {
        match self.placement {
            SsdPlacement::None => Vec::new(),
            SsdPlacement::Local => (0..self.benefactors).collect(),
            SsdPlacement::Remote => {
                (self.compute_nodes..self.compute_nodes + self.benefactors).collect()
            }
        }
    }

    /// Total nodes the cluster needs for this configuration.
    pub fn nodes_needed(&self) -> usize {
        match self.placement {
            SsdPlacement::Remote => self.compute_nodes + self.benefactors,
            _ => self.compute_nodes,
        }
    }

    /// The paper's label, e.g. `L-SSD(8:16:16)` or `DRAM(2:16:0)`.
    /// Replicated configurations get an `xK` suffix (`L-SSD(8:16:16)x2`);
    /// the paper's unreplicated labels print unchanged.
    pub fn label(&self) -> String {
        let base = match self.placement {
            SsdPlacement::None => {
                format!("DRAM({}:{}:0)", self.procs_per_node, self.compute_nodes)
            }
            SsdPlacement::Local => format!(
                "L-SSD({}:{}:{})",
                self.procs_per_node, self.compute_nodes, self.benefactors
            ),
            SsdPlacement::Remote => format!(
                "R-SSD({}:{}:{})",
                self.procs_per_node, self.compute_nodes, self.benefactors
            ),
        };
        let base = if self.replicas > 1 {
            format!("{base}x{}", self.replicas)
        } else {
            base
        };
        if self.manager_shards > 0 {
            format!("{base}/s{}", self.manager_shards)
        } else {
            base
        }
    }
}

/// Everything a rank's body can touch.
pub struct JobEnv {
    pub rank: usize,
    pub size: usize,
    pub node: usize,
    pub comm: Comm,
    pub client: NvmClient,
    pub calib: Calibration,
    dram: devices::Dram,
    pfs: devices::Pfs,
    net: netsim::Network,
}

impl JobEnv {
    /// Charge `flops` of computation on this rank's core.
    pub fn compute(&self, ctx: &mut ProcCtx, flops: f64) {
        ctx.advance(self.calib.compute_time(flops));
    }

    /// Move `bytes` over this node's shared DRAM bus (contends with the
    /// node's other ranks — the STREAM effect).
    pub fn dram_io(&self, ctx: &mut ProcCtx, bytes: u64) {
        ctx.yield_until_min();
        let g = self.dram.access_at(ctx.now(), bytes);
        ctx.advance_to(g.end);
    }

    /// Read `bytes` from the PFS (input files). Charges the PFS server
    /// and this node's receive NIC.
    pub fn pfs_read(&self, ctx: &mut ProcCtx, bytes: u64) {
        ctx.yield_until_min();
        let g = self.pfs.read_at(ctx.now(), bytes);
        let rx = self.net.rx_at(g.start, self.node, bytes);
        ctx.advance_to(g.end.max(rx.end));
    }

    /// Write `bytes` to the PFS (output files). Charges the transmit NIC
    /// and the PFS server.
    pub fn pfs_write(&self, ctx: &mut ProcCtx, bytes: u64) {
        ctx.yield_until_min();
        let tx = self.net.tx_at(ctx.now(), self.node, bytes);
        let g = self.pfs.write_at(ctx.now(), bytes);
        ctx.advance_to(g.end.max(tx.end));
    }

    /// Reserve DRAM for an application allocation; fails when the node is
    /// out of physical memory (the paper's 2-processes-per-node limit for
    /// the DRAM-only matrix multiply comes from exactly this failure).
    pub fn reserve_dram(&self, bytes: u64) -> Result<(), DramExhausted> {
        self.dram.reserve(bytes)
    }

    pub fn release_dram(&self, bytes: u64) {
        self.dram.release(bytes)
    }

    pub fn dram_free(&self) -> u64 {
        self.dram.free()
    }
}

/// Result of a job run.
#[derive(Debug)]
pub struct JobResult<R> {
    pub outputs: Vec<R>,
    pub report: EngineReport,
}

impl<R> JobResult<R> {
    pub fn makespan(&self) -> VTime {
        self.report.makespan
    }
}

/// Run `body` as an SPMD job on the cluster.
///
/// Panics if the cluster was not built with the benefactor placement the
/// configuration requires (see [`JobConfig::benefactor_nodes`]).
pub fn run_job<R, F>(
    cluster: &Cluster,
    cfg: &JobConfig,
    calib: Calibration,
    body: F,
) -> JobResult<R>
where
    R: Send,
    F: Fn(&mut ProcCtx, &JobEnv) -> R + Send + Sync,
{
    assert!(
        cfg.nodes_needed() <= cluster.spec.nodes,
        "configuration {} needs {} nodes, cluster has {}",
        cfg.label(),
        cfg.nodes_needed(),
        cluster.spec.nodes
    );
    assert_eq!(
        cfg.benefactor_nodes(),
        cluster.benefactor_nodes,
        "cluster benefactor placement does not match the job configuration"
    );
    assert!(
        cfg.procs_per_node <= cluster.spec.cores_per_node,
        "more processes per node than cores"
    );
    assert_eq!(
        cluster.store.shards_installed(),
        cfg.manager_shards,
        "cluster manager sharding does not match the job configuration"
    );

    let n = cfg.ranks();
    let node_of_rank: Vec<usize> = (0..n).map(|r| cfg.node_of_rank(r)).collect();
    let comm = Comm::new(cluster.net.clone(), node_of_rank.clone(), calib);
    let outputs: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    let body = &body;
    let outputs_ref = &outputs;
    let report = Engine::run_with_observer(
        (0..n)
            .map(|rank| {
                let node = node_of_rank[rank];
                let comm = comm.clone();
                let env = JobEnv {
                    rank,
                    size: n,
                    node,
                    comm,
                    client: NvmClient::new(
                        cluster.mount(node).clone(),
                        rank as u64,
                        AllocOptions {
                            stripe: chunkstore::StripeSpec::all().with_replicas(cfg.replicas),
                            ..AllocOptions::default()
                        },
                        &cluster.stats,
                    ),
                    calib,
                    dram: cluster.dram(node).clone(),
                    pfs: cluster.pfs.clone(),
                    net: cluster.net.clone(),
                };
                move |ctx: &mut ProcCtx| {
                    let out = body(ctx, &env);
                    outputs_ref.lock()[rank] = Some(out);
                }
            })
            .collect(),
        cluster.trace.observer(),
    );

    JobResult {
        outputs: outputs
            .into_inner()
            .into_iter()
            .map(|o| o.expect("rank produced no output"))
            .collect(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;
    use simcore::time::bytes::mib;

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(JobConfig::dram_only(2, 16).label(), "DRAM(2:16:0)");
        assert_eq!(JobConfig::local(8, 16, 16).label(), "L-SSD(8:16:16)");
        assert_eq!(JobConfig::remote(8, 8, 4).label(), "R-SSD(8:8:4)");
        assert_eq!(
            JobConfig::local(8, 16, 16).with_manager_shards(4).label(),
            "L-SSD(8:16:16)/s4"
        );
    }

    #[test]
    fn rank_placement_is_blocked() {
        let cfg = JobConfig::local(8, 16, 16);
        assert_eq!(cfg.ranks(), 128);
        assert_eq!(cfg.node_of_rank(0), 0);
        assert_eq!(cfg.node_of_rank(7), 0);
        assert_eq!(cfg.node_of_rank(8), 1);
        assert_eq!(cfg.node_of_rank(127), 15);
    }

    #[test]
    fn benefactor_layouts() {
        assert!(JobConfig::dram_only(8, 16).benefactor_nodes().is_empty());
        assert_eq!(
            JobConfig::local(8, 8, 4).benefactor_nodes(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(JobConfig::remote(8, 8, 2).benefactor_nodes(), vec![8, 9]);
        assert_eq!(JobConfig::remote(8, 8, 8).nodes_needed(), 16);
    }

    #[test]
    fn simple_job_runs_all_ranks() {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &cfg.benefactor_nodes());
        let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
            env.compute(ctx, 2.4e9); // 1 virtual second
            env.comm.barrier(ctx, env.rank);
            (env.rank, env.node, ctx.now())
        });
        assert_eq!(result.outputs.len(), 4);
        for (rank, node, t) in &result.outputs {
            assert_eq!(*node, rank / 2);
            assert!(*t >= VTime::from_secs(1));
        }
        assert!(result.makespan() >= VTime::from_secs(1));
    }

    #[test]
    fn job_can_use_nvmalloc() {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &cfg.benefactor_nodes());
        let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
            // Rank 0 creates a shared variable, everyone reads it.
            let v = if env.rank == 0 {
                let v = env.client.ssdmalloc_shared::<u64>(ctx, "t", 1024).unwrap();
                v.set(ctx, 0, 77).unwrap();
                v.flush(ctx).unwrap();
                v
            } else {
                env.client.ssdmalloc_shared::<u64>(ctx, "t", 1024).unwrap()
            };
            env.comm.barrier(ctx, env.rank);
            v.get(ctx, 0).unwrap()
        });
        assert!(result.outputs.iter().all(|&v| v == 77));
    }

    #[test]
    fn dram_reservation_limits_processes() {
        let cfg = JobConfig::dram_only(8, 1);
        let cluster = Cluster::new(ClusterSpec::hal().scaled(64), &[]);
        // 8 ranks × 2 GiB/64 each cannot fit in 8 GiB/64 of node DRAM:
        // at most 4 reservations succeed (the paper could fit only 2 MM
        // processes because each needed ~3 matrices).
        let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
            env.comm.barrier(ctx, env.rank); // deterministic order…
            let got = env.reserve_dram(mib(32)).is_ok();
            env.comm.barrier(ctx, env.rank);
            got
        });
        let ok = result.outputs.iter().filter(|&&b| b).count();
        assert_eq!(ok, 4);
    }

    #[test]
    fn replicated_job_survives_benefactor_crash() {
        // The acceptance scenario: a job on a replicated store keeps
        // producing the exact same results when a benefactor dies mid-run,
        // and the store records the failovers. The same virtual-time fault
        // plan also reproduces identical numbers across invocations.
        let run = |faulted: bool| {
            let cfg = JobConfig::local(2, 2, 2).with_replicas(2);
            // One-chunk cache so alternating reads always reach the store.
            let fuse = fusemm::FuseConfig {
                cache_bytes: 256 * 1024,
                read_ahead_chunks: 0,
                ..fusemm::FuseConfig::default()
            };
            let cluster = Cluster::with_fuse(
                ClusterSpec::hal().scaled(256),
                &cfg.benefactor_nodes(),
                fuse,
            );
            if faulted {
                cluster.attach_faults(
                    faults::FaultPlanBuilder::new(11)
                        .crash(VTime::from_millis(500), 0)
                        .build(),
                );
            }
            let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
                let v = env.client.ssdmalloc_shared::<u64>(ctx, "v", 4096).unwrap();
                let w = env.client.ssdmalloc_shared::<u64>(ctx, "w", 4096).unwrap();
                if env.rank == 0 {
                    for i in 0..64 {
                        v.set(ctx, i, 3 * i as u64).unwrap();
                        w.set(ctx, i, 7 * i as u64).unwrap();
                    }
                    v.flush(ctx).unwrap();
                    w.flush(ctx).unwrap();
                }
                env.comm.barrier(ctx, env.rank);
                // Phase 1: read everything before the scheduled crash.
                let mut sum = 0u64;
                for i in 0..64 {
                    sum += v.get(ctx, i).unwrap() + w.get(ctx, i).unwrap();
                }
                // Advance well past the crash time (~1 virtual second).
                env.compute(ctx, 2.4e9);
                // Phase 2: the same reads now run against the degraded
                // store and must return the same bytes via failover.
                for i in 0..64 {
                    sum += v.get(ctx, i).unwrap() + w.get(ctx, i).unwrap();
                }
                sum
            });
            let failovers = cluster.stats.get("store.failovers");
            let crashes = cluster.stats.get("store.benefactor_crashes");
            (
                result.outputs.clone(),
                result.makespan(),
                failovers,
                crashes,
            )
        };

        let (clean, _, f0, c0) = run(false);
        let (faulted, span1, f1, c1) = run(true);
        assert_eq!(clean, faulted, "failover must not change any result");
        assert_eq!((f0, c0), (0, 0));
        assert_eq!(c1, 1);
        assert!(f1 > 0, "degraded phase must have failed over");
        // Seed-stable: an identical faulted run reproduces identical
        // virtual-time numbers.
        let (outputs2, span2, f2, _) = run(true);
        assert_eq!(outputs2, faulted);
        assert_eq!(span1, span2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn writeback_daemon_job_plumbs_through_and_stays_deterministic() {
        // The write-back knobs (DESIGN.md §10) flow from `Cluster::with_fuse`
        // into every node's mount: a job whose writer outruns the flusher
        // sees background flushes and throttle stalls on the cluster-wide
        // counters, and two invocations reproduce identical virtual-time
        // numbers.
        let run = || {
            let cfg = JobConfig::remote(2, 2, 2);
            let fuse = fusemm::FuseConfig {
                cache_bytes: 4 * 256 * 1024, // four chunks
                read_ahead_chunks: 0,
                ..fusemm::FuseConfig::default()
            }
            .with_writeback(0.25, 0.5)
            .with_seg_cache();
            let cluster = Cluster::with_fuse(
                ClusterSpec::hal().scaled(256),
                &cfg.benefactor_nodes(),
                fuse,
            );
            const CHUNK_ELEMS: usize = 32 * 1024; // 256 KiB of u64
            let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
                let v = env
                    .client
                    .ssdmalloc_shared::<u64>(ctx, "v", 8 * CHUNK_ELEMS)
                    .unwrap();
                if env.rank == 0 {
                    // Dirty 8 chunks through the 4-chunk cache faster than
                    // the flusher drains them.
                    let data: Vec<u64> = (0..CHUNK_ELEMS as u64).collect();
                    for c in 0..8 {
                        v.write_slice(ctx, c * CHUNK_ELEMS, &data).unwrap();
                    }
                    v.flush(ctx).unwrap();
                }
                env.comm.barrier(ctx, env.rank);
                let mut sum = 0u64;
                for i in (0..8 * CHUNK_ELEMS).step_by(4096) {
                    sum += v.get(ctx, i).unwrap();
                }
                sum
            });
            (
                result.outputs.clone(),
                result.makespan(),
                cluster.stats.get("fuse.bg_flushes"),
                cluster.stats.get("fuse.throttled_writes"),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "daemon-enabled job reproduces exactly");
        let (outputs, _, bg, throttled) = a;
        assert!(bg >= 1, "background flusher ran during the job");
        assert!(throttled >= 1, "writer outran the flusher and stalled");
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "every rank read the same bytes"
        );
    }

    #[test]
    fn sharded_job_plumbs_through_and_stays_deterministic() {
        // The sharding knobs flow from `JobConfig::with_manager_shards`
        // through `StoreConfig` into the cluster build: a shared-variable
        // job on a 2-shard store produces the same bytes as the serial
        // manager, exercises leases, and two invocations reproduce
        // identical virtual-time numbers.
        let run = |shards: usize| {
            let cfg = JobConfig::local(2, 2, 2).with_manager_shards(shards);
            let store_cfg = chunkstore::StoreConfig {
                manager_shards: shards,
                ..chunkstore::StoreConfig::default()
            };
            let cluster = Cluster::with_configs(
                ClusterSpec::hal().scaled(256),
                &cfg.benefactor_nodes(),
                fusemm::FuseConfig::default(),
                store_cfg,
            );
            let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
                let v = env.client.ssdmalloc_shared::<u64>(ctx, "v", 4096).unwrap();
                if env.rank == 0 {
                    for i in 0..64 {
                        v.set(ctx, i, 5 * i as u64).unwrap();
                    }
                    v.flush(ctx).unwrap();
                }
                env.comm.barrier(ctx, env.rank);
                let mut sum = 0u64;
                for i in 0..64 {
                    sum += v.get(ctx, i).unwrap();
                }
                sum
            });
            (
                result.outputs.clone(),
                result.makespan(),
                cluster.stats.get("store.lease_grants"),
            )
        };
        let (serial, _, g0) = run(0);
        assert_eq!(g0, 0, "no shard set, no leases");
        let a = run(2);
        let b = run(2);
        assert_eq!(a, b, "sharded job reproduces exactly");
        let (sharded, _, grants) = a;
        assert_eq!(serial, sharded, "sharding must not change any result");
        assert!(grants > 0, "shard RPCs granted delegation leases");
    }

    #[test]
    #[should_panic(expected = "benefactor placement")]
    fn mismatched_cluster_rejected() {
        let cfg = JobConfig::remote(2, 2, 2);
        let cluster = Cluster::new(ClusterSpec::hal().scaled(256), &[0, 1]);
        run_job(&cluster, &cfg, Calibration::default(), |_, _| ());
    }
}

//! MPI-like collectives over the simulated interconnect.
//!
//! The paper's kernels use exactly the textbook MPI pattern: the master
//! reads input, `MPI_Scatter`s matrix A, `MPI_Bcast`s matrix B, everyone
//! computes, and the master `MPI_Gather`s C. These collectives are built
//! on [`simcore::Rendezvous`]: all ranks arrive, the last arrival resolves
//! the exchange by charging per-message network costs (which queue on the
//! senders' TX and receivers' RX NICs, reproducing the linear broadcast
//! growth visible in the paper's Fig. 3), and every rank leaves at its own
//! message-arrival time.

use crate::calib::Calibration;
use netsim::Network;
use nvmalloc::Pod;
use simcore::{ProcCtx, Rendezvous, Resolution, VTime};
use std::sync::Arc;

/// Message payloads must expose their wire size for time charging.
pub trait Payload: Send + 'static {
    fn nbytes(&self) -> u64;
}

impl<T: Pod> Payload for Vec<T> {
    fn nbytes(&self) -> u64 {
        (self.len() * std::mem::size_of::<T>()) as u64
    }
}

impl Payload for () {
    fn nbytes(&self) -> u64 {
        0
    }
}

impl Payload for u64 {
    fn nbytes(&self) -> u64 {
        8
    }
}

impl Payload for String {
    fn nbytes(&self) -> u64 {
        self.len() as u64
    }
}

/// Broadcasting an `Arc` charges the inner payload's wire size while
/// sharing one host-side copy — the simulation moves real bytes once.
impl<P: Payload + Send + Sync> Payload for std::sync::Arc<P> {
    fn nbytes(&self) -> u64 {
        (**self).nbytes()
    }
}

/// A communicator over a fixed set of ranks.
#[derive(Clone)]
pub struct Comm {
    rv: Rendezvous,
    net: Network,
    node_of_rank: Arc<Vec<usize>>,
    calib: Calibration,
}

impl Comm {
    pub fn new(net: Network, node_of_rank: Vec<usize>, calib: Calibration) -> Self {
        assert!(!node_of_rank.is_empty());
        Comm {
            rv: Rendezvous::new(node_of_rank.len()),
            net,
            node_of_rank: Arc::new(node_of_rank),
            calib,
        }
    }

    pub fn size(&self) -> usize {
        self.node_of_rank.len()
    }

    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of_rank[rank]
    }

    /// Synchronize all ranks; everyone leaves at the max arrival time plus
    /// a logarithmic synchronization overhead.
    pub fn barrier(&self, ctx: &mut ProcCtx, rank: usize) {
        let n = self.size();
        let latency = self.net.config().latency;
        let overhead =
            latency * (usize::BITS - (n - 1).leading_zeros().min(usize::BITS - 1)) as u64;
        self.rv
            .barrier(ctx, rank, if n > 1 { overhead } else { VTime::ZERO });
    }

    /// Broadcast `data` (Some at `root`, None elsewhere) to every rank.
    ///
    /// Shared-memory-aware delivery, like the era's OpenMPI `sm` BTL: the
    /// root sends one message per *remote node* (queued on its TX NIC —
    /// linear growth with node count), and every additional rank on a node
    /// receives by memcpy from the first arrival on that node.
    pub fn bcast<T: Payload + Clone>(
        &self,
        ctx: &mut ProcCtx,
        rank: usize,
        root: usize,
        data: Option<T>,
    ) -> T {
        assert_eq!(data.is_some(), rank == root, "exactly the root passes data");
        let n = self.size();
        let net = self.net.clone();
        let nodes = Arc::clone(&self.node_of_rank);
        let calib = self.calib;
        self.rv.sync(ctx, rank, data, move |clocks, mut payloads| {
            let data = payloads[root].take().expect("root payload");
            let bytes = data.nbytes();
            let t_start = clocks[root];
            let root_node = nodes[root];
            let mut release = vec![VTime::ZERO; n];
            let mut root_done = t_start;
            // One wire transfer per distinct remote node.
            let mut node_arrival: std::collections::BTreeMap<usize, VTime> =
                std::collections::BTreeMap::new();
            node_arrival.insert(root_node, t_start);
            for i in 0..n {
                let node = nodes[i];
                node_arrival.entry(node).or_insert_with(|| {
                    let d = net.transfer_at(t_start, root_node, node, bytes);
                    root_done = root_done.max(d.sent);
                    d.arrived
                });
            }
            // Per-rank delivery: first rank on a node gets the wire copy,
            // later ranks on the same node pay sequential memcpys.
            let mut copies_on_node: std::collections::BTreeMap<usize, u64> =
                std::collections::BTreeMap::new();
            for i in 0..n {
                if i == root {
                    continue;
                }
                let node = nodes[i];
                let wire = node_arrival[&node];
                let prior = copies_on_node.entry(node).or_insert(0);
                let arrival = if node == root_node || *prior > 0 {
                    *prior += 1;
                    wire + calib.memcpy_time(bytes) * *prior
                } else {
                    *prior += 1;
                    wire
                };
                release[i] = arrival.max(clocks[i]);
            }
            release[root] = root_done.max(t_start);
            Resolution {
                results: vec![data; n],
                release,
            }
        })
    }

    /// Scatter: root provides one part per rank; rank `i` receives part `i`.
    pub fn scatter<T: Payload>(
        &self,
        ctx: &mut ProcCtx,
        rank: usize,
        root: usize,
        parts: Option<Vec<T>>,
    ) -> T {
        assert_eq!(parts.is_some(), rank == root);
        let n = self.size();
        if let Some(ref p) = parts {
            assert_eq!(p.len(), n, "scatter needs one part per rank");
        }
        let net = self.net.clone();
        let nodes = Arc::clone(&self.node_of_rank);
        let calib = self.calib;
        self.rv.sync(ctx, rank, parts, move |clocks, mut payloads| {
            let parts = payloads[root].take().expect("root payload");
            let t_start = clocks[root];
            let root_node = nodes[root];
            let mut release = vec![VTime::ZERO; n];
            let mut root_done = t_start;
            let mut results: Vec<Option<T>> = Vec::with_capacity(n);
            for (i, part) in parts.into_iter().enumerate() {
                let bytes = part.nbytes();
                if i == root {
                    release[i] = t_start; // provisional; fixed below
                } else if nodes[i] == root_node {
                    release[i] = (t_start + calib.memcpy_time(bytes)).max(clocks[i]);
                } else {
                    let d = net.transfer_at(t_start, root_node, nodes[i], bytes);
                    root_done = root_done.max(d.sent);
                    release[i] = d.arrived.max(clocks[i]);
                }
                results.push(Some(part));
            }
            release[root] = root_done;
            Resolution {
                results: results.into_iter().map(|p| p.expect("part")).collect(),
                release,
            }
        })
    }

    /// Gather: every rank sends its part to `root`, which receives the
    /// full vector (None elsewhere).
    pub fn gather<T: Payload>(
        &self,
        ctx: &mut ProcCtx,
        rank: usize,
        root: usize,
        part: T,
    ) -> Option<Vec<T>> {
        let n = self.size();
        let net = self.net.clone();
        let nodes = Arc::clone(&self.node_of_rank);
        let calib = self.calib;
        let out: Option<Vec<T>> = self.rv.sync(ctx, rank, part, move |clocks, payloads| {
            let root_node = nodes[root];
            let mut release = vec![VTime::ZERO; n];
            let mut root_ready = clocks[root];
            for (i, p) in payloads.iter().enumerate() {
                let bytes = p.nbytes();
                if i == root {
                    release[i] = clocks[i];
                } else if nodes[i] == root_node {
                    let arr = clocks[i] + calib.memcpy_time(bytes);
                    release[i] = clocks[i];
                    root_ready = root_ready.max(arr);
                } else {
                    let d = net.transfer_at(clocks[i], nodes[i], root_node, bytes);
                    release[i] = d.sent.max(clocks[i]);
                    root_ready = root_ready.max(d.arrived);
                }
            }
            release[root] = root_ready;
            let mut results: Vec<Option<Vec<T>>> = (0..n).map(|_| None).collect();
            results[root] = Some(payloads);
            Resolution { results, release }
        });
        out
    }

    /// Personalized all-to-all: rank `i` provides `parts[j]` for each `j`
    /// and receives `Vec` whose `j`-th entry came from rank `j`.
    pub fn all_to_all<T: Payload>(&self, ctx: &mut ProcCtx, rank: usize, parts: Vec<T>) -> Vec<T> {
        let n = self.size();
        assert_eq!(parts.len(), n, "all_to_all needs one part per peer");
        let net = self.net.clone();
        let nodes = Arc::clone(&self.node_of_rank);
        let calib = self.calib;
        self.rv.sync(ctx, rank, parts, move |clocks, payloads| {
            // payloads[i][j] = part from i to j. Charge every pair.
            let mut arrival = vec![VTime::ZERO; n];
            let mut sender_done: Vec<VTime> = clocks.to_vec();
            // Deterministic order: by sender, then receiver.
            let sizes: Vec<Vec<u64>> = payloads
                .iter()
                .map(|row| row.iter().map(|p| p.nbytes()).collect())
                .collect();
            for (i, row) in sizes.iter().enumerate() {
                for (j, &bytes) in row.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if nodes[i] == nodes[j] {
                        arrival[j] = arrival[j].max(clocks[i] + calib.memcpy_time(bytes));
                    } else {
                        let d = net.transfer_at(clocks[i], nodes[i], nodes[j], bytes);
                        sender_done[i] = sender_done[i].max(d.sent);
                        arrival[j] = arrival[j].max(d.arrived);
                    }
                }
            }
            // Transpose the payload matrix.
            let mut incoming: Vec<Vec<Option<T>>> =
                (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
            for (i, row) in payloads.into_iter().enumerate() {
                for (j, part) in row.into_iter().enumerate() {
                    incoming[j][i] = Some(part);
                }
            }
            let release: Vec<VTime> = (0..n)
                .map(|j| sender_done[j].max(arrival[j]).max(clocks[j]))
                .collect();
            Resolution {
                results: incoming
                    .into_iter()
                    .map(|row| row.into_iter().map(|p| p.expect("part")).collect())
                    .collect(),
                release,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::NetConfig;
    use simcore::{Engine, StatsRegistry};

    fn run_ranks(nodes: Vec<usize>, body: impl Fn(&mut ProcCtx, usize, Comm) + Send + Sync) {
        let stats = StatsRegistry::new();
        let n_nodes = nodes.iter().max().unwrap() + 1;
        let net = Network::new(n_nodes, NetConfig::default(), &stats);
        let comm = Comm::new(net, nodes.clone(), Calibration::default());
        let body = &body;
        Engine::run(
            (0..nodes.len())
                .map(|r| {
                    let comm = comm.clone();
                    move |ctx: &mut ProcCtx| body(ctx, r, comm)
                })
                .collect(),
        );
    }

    #[test]
    fn bcast_delivers_to_all() {
        run_ranks(vec![0, 0, 1, 1], |ctx, rank, comm| {
            let data = if rank == 1 {
                Some(vec![1u64, 2, 3])
            } else {
                None
            };
            let got = comm.bcast(ctx, rank, 1, data);
            assert_eq!(got, vec![1, 2, 3]);
        });
    }

    #[test]
    fn bcast_remote_costs_more_than_local() {
        // Rank 0 (root, node 0), rank 1 on node 0, rank 2 on node 1.
        let stats = StatsRegistry::new();
        let net = Network::new(2, NetConfig::default(), &stats);
        let comm = Comm::new(net, vec![0, 0, 1], Calibration::default());
        let data = vec![0u8; 25_000_000]; // 25 MB: 0.1 s on the wire
        let comm2 = comm.clone();
        let comm3 = comm.clone();
        let d2 = data.clone();
        let report = Engine::run(vec![
            Box::new(move |ctx: &mut ProcCtx| {
                comm.bcast(ctx, 0, 0, Some(d2));
            }) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(move |ctx: &mut ProcCtx| {
                comm2.bcast::<Vec<u8>>(ctx, 1, 0, None);
            }),
            Box::new(move |ctx: &mut ProcCtx| {
                comm3.bcast::<Vec<u8>>(ctx, 2, 0, None);
            }),
        ]);
        let local = report.finish_times[1];
        let remote = report.finish_times[2];
        assert!(remote > local, "remote {remote} vs local {local}");
        assert!(remote >= VTime::from_millis(100), "wire time: {remote}");
    }

    #[test]
    fn scatter_distributes_parts() {
        run_ranks(vec![0, 1, 2], |ctx, rank, comm| {
            let parts = (rank == 0).then(|| vec![vec![0u32], vec![10u32], vec![20u32]]);
            let mine = comm.scatter(ctx, rank, 0, parts);
            assert_eq!(mine, vec![(rank as u32) * 10]);
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        run_ranks(vec![0, 1, 0, 1], |ctx, rank, comm| {
            let got = comm.gather(ctx, rank, 2, vec![rank as u64]);
            if rank == 2 {
                let flat: Vec<u64> = got.unwrap().into_iter().flatten().collect();
                assert_eq!(flat, vec![0, 1, 2, 3]);
            } else {
                assert!(got.is_none());
            }
        });
    }

    #[test]
    fn all_to_all_transposes() {
        run_ranks(vec![0, 1, 2], |ctx, rank, comm| {
            let parts: Vec<Vec<u64>> = (0..3).map(|j| vec![(rank * 10 + j) as u64]).collect();
            let got = comm.all_to_all(ctx, rank, parts);
            let flat: Vec<u64> = got.into_iter().flatten().collect();
            assert_eq!(flat, vec![rank as u64, 10 + rank as u64, 20 + rank as u64]);
        });
    }

    #[test]
    fn barrier_aligns() {
        run_ranks(vec![0, 1], |ctx, rank, comm| {
            if rank == 0 {
                ctx.advance(VTime::from_secs(1));
            }
            comm.barrier(ctx, rank);
            assert!(ctx.now() >= VTime::from_secs(1));
        });
    }

    #[test]
    fn more_remote_receivers_lengthen_bcast() {
        // Linear broadcast: root TX serializes — 4 remote receivers take
        // about twice as long as 2.
        let time_for = |receivers: usize| {
            let stats = StatsRegistry::new();
            let net = Network::new(receivers + 1, NetConfig::default(), &stats);
            let nodes: Vec<usize> = std::iter::once(0).chain(1..=receivers).collect();
            let comm = Comm::new(net, nodes, Calibration::default());
            let data = vec![0u8; 25_000_000];
            let report = Engine::run(
                (0..=receivers)
                    .map(|r| {
                        let comm = comm.clone();
                        let data = (r == 0).then(|| data.clone());
                        move |ctx: &mut ProcCtx| {
                            comm.bcast(ctx, r, 0, data);
                        }
                    })
                    .collect(),
            );
            report.makespan
        };
        let t2 = time_for(2);
        let t4 = time_for(4);
        let ratio = t4.as_secs_f64() / t2.as_secs_f64();
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }
}

//! # cluster — the simulated extreme-scale machine
//!
//! Builds the testbed the paper evaluates on (the 128-core HAL cluster,
//! Table II) out of the device, network and store substrates, and runs
//! SPMD jobs on it:
//!
//! * [`spec`] — cluster hardware descriptions + the HAL preset and the
//!   capacity-scaling rule;
//! * [`calib`] — compute-time calibration (flops/core, scale correction);
//! * [`cluster`] — node DRAM budgets, mounts, benefactor placement;
//! * [`comm`] — MPI-like collectives (barrier/bcast/scatter/gather/
//!   all-to-all) charged on the interconnect;
//! * [`job`] — the `(x:y:z)` job configurations and the job runner.

pub mod calib;
pub mod cluster;
pub mod comm;
pub mod job;
pub mod spec;

pub use calib::Calibration;
pub use cluster::Cluster;
pub use comm::{Comm, Payload};
pub use job::{run_job, JobConfig, JobEnv, JobResult, SsdPlacement};
pub use spec::ClusterSpec;

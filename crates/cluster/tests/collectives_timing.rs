//! Collective-timing and job-runner behaviour tests.

use cluster::{run_job, Calibration, Cluster, ClusterSpec, Comm, JobConfig, Payload};
use netsim::{NetConfig, Network};
use simcore::{Engine, ProcCtx, StatsRegistry, VTime};

fn run_ranks(nodes: Vec<usize>, body: impl Fn(&mut ProcCtx, usize, Comm) + Send + Sync) {
    let stats = StatsRegistry::new();
    let n_nodes = nodes.iter().max().unwrap() + 1;
    let net = Network::new(n_nodes, NetConfig::default(), &stats);
    let comm = Comm::new(net, nodes.clone(), Calibration::default());
    let body = &body;
    Engine::run(
        (0..nodes.len())
            .map(|r| {
                let comm = comm.clone();
                move |ctx: &mut ProcCtx| body(ctx, r, comm)
            })
            .collect(),
    );
}

#[test]
fn payload_sizes() {
    assert_eq!(vec![0u64; 4].nbytes(), 32);
    assert_eq!(vec![0u8; 7].nbytes(), 7);
    assert_eq!(().nbytes(), 0);
    assert_eq!(7u64.nbytes(), 8);
    assert_eq!("abc".to_string().nbytes(), 3);
    assert_eq!(std::sync::Arc::new(vec![0f64; 3]).nbytes(), 24);
}

#[test]
fn scatter_with_uneven_parts_charges_by_size() {
    run_ranks(vec![0, 1, 2], |ctx, rank, comm| {
        let parts = (rank == 0).then(|| {
            vec![
                vec![0u8; 10],
                vec![1u8; 25_000_000],  // 0.1 s on the wire
                vec![2u8; 250_000_000], // 1 s on the wire
            ]
        });
        let t0 = ctx.now();
        let mine = comm.scatter(ctx, rank, 0, parts);
        let elapsed = ctx.now() - t0;
        match rank {
            0 => assert_eq!(mine[0], 0),
            1 => {
                assert_eq!(mine.len(), 25_000_000);
                assert!(elapsed >= VTime::from_millis(100));
                assert!(elapsed < VTime::from_millis(300));
            }
            2 => {
                assert_eq!(mine.len(), 250_000_000);
                assert!(elapsed >= VTime::from_secs(1));
            }
            _ => unreachable!(),
        }
    });
}

#[test]
fn gather_root_waits_for_slowest_sender() {
    run_ranks(vec![0, 1, 2], |ctx, rank, comm| {
        let part = vec![rank as u8; if rank == 2 { 250_000_000 } else { 8 }];
        let got = comm.gather(ctx, rank, 0, part);
        if rank == 0 {
            assert!(ctx.now() >= VTime::from_secs(1), "root at {}", ctx.now());
            assert_eq!(got.unwrap().len(), 3);
        }
    });
}

#[test]
fn all_to_all_charges_pairwise() {
    run_ranks(vec![0, 1], |ctx, rank, comm| {
        // Each rank sends 250 MB to the other: full duplex → ~1 s total.
        let parts = vec![vec![0u8; 8], vec![rank as u8; 250_000_000]];
        let parts = if rank == 0 {
            parts
        } else {
            vec![vec![rank as u8; 250_000_000], vec![0u8; 8]]
        };
        let t0 = ctx.now();
        let got = comm.all_to_all(ctx, rank, parts);
        let elapsed = ctx.now() - t0;
        assert_eq!(got[1 - rank].len(), 250_000_000);
        assert!(elapsed >= VTime::from_secs(1));
        assert!(elapsed < VTime::from_millis(1200), "full duplex: {elapsed}");
    });
}

#[test]
fn single_rank_collectives_are_trivial() {
    run_ranks(vec![0], |ctx, rank, comm| {
        comm.barrier(ctx, rank);
        let b = comm.bcast(ctx, rank, 0, Some(vec![1u8, 2]));
        assert_eq!(b, vec![1, 2]);
        let s = comm.scatter(ctx, rank, 0, Some(vec![vec![9u8]]));
        assert_eq!(s, vec![9]);
        let g = comm.gather(ctx, rank, 0, vec![3u8]).unwrap();
        assert_eq!(g, vec![vec![3]]);
        let a = comm.all_to_all(ctx, rank, vec![vec![5u8]]);
        assert_eq!(a, vec![vec![5]]);
    });
}

#[test]
fn bcast_intra_node_copies_are_cheaper_than_wire() {
    // 4 ranks on ONE node vs 4 ranks on 4 nodes.
    let time_for = |nodes: Vec<usize>| {
        let stats = StatsRegistry::new();
        let n_nodes = nodes.iter().max().unwrap() + 1;
        let net = Network::new(n_nodes, NetConfig::default(), &stats);
        let comm = Comm::new(net, nodes.clone(), Calibration::default());
        let report = Engine::run(
            (0..nodes.len())
                .map(|r| {
                    let comm = comm.clone();
                    move |ctx: &mut ProcCtx| {
                        let data = (r == 0).then(|| vec![0u8; 50_000_000]);
                        comm.bcast(ctx, r, 0, data);
                    }
                })
                .collect(),
        );
        report.makespan
    };
    let same_node = time_for(vec![0, 0, 0, 0]);
    let spread = time_for(vec![0, 1, 2, 3]);
    assert!(
        same_node < spread,
        "memcpy delivery {same_node} must beat the wire {spread}"
    );
}

#[test]
fn job_outputs_are_rank_ordered() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(512), &cfg.benefactor_nodes());
    let result = run_job(&cluster, &cfg, Calibration::default(), |_, env| env.rank);
    assert_eq!(result.outputs, vec![0, 1, 2, 3]);
}

#[test]
fn pfs_io_charges_server_and_nic() {
    let cfg = JobConfig::dram_only(1, 2);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(512), &[]);
    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        let t0 = ctx.now();
        if env.rank == 0 {
            env.pfs_read(ctx, 300_000_000); // 1 s at 300 MB/s
        } else {
            env.pfs_write(ctx, 300_000_000);
        }
        ctx.now() - t0
    });
    // The PFS server is shared: 2 × 300 MB at 300 MB/s ≈ 2 s for one rank.
    let max = result.outputs.iter().max().unwrap();
    assert!(*max >= VTime::from_secs(2), "shared server: {max}");
    assert_eq!(cluster.pfs.bytes_read(), 300_000_000);
    assert_eq!(cluster.pfs.bytes_written(), 300_000_000);
}

#[test]
fn compute_respects_multiplier() {
    let cfg = JobConfig::dram_only(1, 1);
    let cluster = Cluster::new(ClusterSpec::hal().scaled(512), &[]);
    let calib = Calibration::default().with_multiplier(4.0);
    let result = run_job(&cluster, &cfg, calib, |ctx, env| {
        env.compute(ctx, 0.6e9); // 1 s at base rate → 4 s with multiplier
        ctx.now()
    });
    assert_eq!(result.outputs[0], VTime::from_secs(4));
}

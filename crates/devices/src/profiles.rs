//! Device characteristic profiles — the paper's **Table I** verbatim.
//!
//! | Device             | Type | Interface | Read     | Write    | Latency | Cap.  | Cost    |
//! |--------------------|------|-----------|----------|----------|---------|-------|---------|
//! | Intel X25-E        | SLC  | SATA      | 250 MB/s | 170 MB/s | 75 µs   | 32 GB | $589    |
//! | Fusion-io ioDrive Duo | MLC | PCIe    | 1.5 GB/s | 1.0 GB/s | <30 µs  | 640 GB| $15,378 |
//! | OCZ RevoDrive      | MLC  | PCIe      | 540 MB/s | 480 MB/s | —       | 240 GB| $531    |
//! | Memory (DDR3-1600) | SDRAM| DIMM      | 12.8 GB/s| 12.8 GB/s| 10–14 ns| 16 GB | <$150   |
//!
//! The RevoDrive latency is not given in the paper; we document a 50 µs
//! assumption (between the X25-E's 75 µs and the ioDrive's 30 µs, matching
//! PCIe-attached MLC parts of the era).

use simcore::{Bandwidth, VTime};

/// Storage medium type (Table I column "Type").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MediaKind {
    SlcFlash,
    MlcFlash,
    Sdram,
}

impl MediaKind {
    /// Nominal program/erase cycle endurance per block; used by the wear
    /// model. SLC ~100k cycles, MLC ~10k, DRAM unlimited (modelled as a
    /// very large number so the arithmetic stays uniform).
    pub fn pe_cycle_limit(self) -> u64 {
        match self {
            MediaKind::SlcFlash => 100_000,
            MediaKind::MlcFlash => 10_000,
            MediaKind::Sdram => u64::MAX,
        }
    }

    pub fn is_flash(self) -> bool {
        matches!(self, MediaKind::SlcFlash | MediaKind::MlcFlash)
    }
}

/// Host attachment (Table I column "Interface").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interface {
    Sata,
    Pcie,
    Dimm,
}

/// A complete device characterization.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProfile {
    pub name: &'static str,
    pub kind: MediaKind,
    pub interface: Interface,
    pub read_bw: Bandwidth,
    pub write_bw: Bandwidth,
    /// Per-request access latency.
    pub latency: VTime,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Street price in USD (October 2011, per the paper) — used by the
    /// provisioning cost analysis around Fig. 3's R-SSD(8:8:1) result.
    pub cost_usd: f64,
    /// Smallest internally-transferred unit; sub-page accesses are rounded
    /// up (flash page 4 KiB, DRAM cache line 64 B).
    pub access_granularity: u64,
    /// Flash erase-block size (wear accounting); 0 for DRAM.
    pub erase_block: u64,
}

impl DeviceProfile {
    pub const fn is_flash(&self) -> bool {
        matches!(self.kind, MediaKind::SlcFlash | MediaKind::MlcFlash)
    }
}

/// Intel X25-E — the SSD installed in every HAL compute node (Table II).
pub const INTEL_X25E: DeviceProfile = DeviceProfile {
    name: "Intel X25-E",
    kind: MediaKind::SlcFlash,
    interface: Interface::Sata,
    read_bw: Bandwidth::const_mb(250.0),
    write_bw: Bandwidth::const_mb(170.0),
    latency: VTime::from_micros(75),
    capacity: gib_const(32),
    cost_usd: 589.0,
    access_granularity: 4096,
    erase_block: 256 * 1024,
};

/// Fusion-io ioDrive Duo — high-end PCIe flash referenced in Table I.
pub const FUSION_IODRIVE_DUO: DeviceProfile = DeviceProfile {
    name: "Fusion IO ioDrive Duo",
    kind: MediaKind::MlcFlash,
    interface: Interface::Pcie,
    read_bw: Bandwidth::const_gb(1.5),
    write_bw: Bandwidth::const_gb(1.0),
    latency: VTime::from_micros(30),
    capacity: gib_const(640),
    cost_usd: 15_378.0,
    access_granularity: 4096,
    erase_block: 256 * 1024,
};

/// OCZ RevoDrive — mid-range PCIe flash referenced in Table I.
/// Latency is not listed in the paper; 50 µs is our documented assumption.
pub const OCZ_REVODRIVE: DeviceProfile = DeviceProfile {
    name: "OCZ RevoDrive",
    kind: MediaKind::MlcFlash,
    interface: Interface::Pcie,
    read_bw: Bandwidth::const_mb(540.0),
    write_bw: Bandwidth::const_mb(480.0),
    latency: VTime::from_micros(50),
    capacity: gib_const(240),
    cost_usd: 531.0,
    access_granularity: 4096,
    erase_block: 256 * 1024,
};

/// DDR3-1600 DIMM — the DRAM reference row of Table I.
pub const DDR3_1600: DeviceProfile = DeviceProfile {
    name: "Memory (DDR3-1600)",
    kind: MediaKind::Sdram,
    interface: Interface::Dimm,
    read_bw: Bandwidth::const_gb(12.8),
    write_bw: Bandwidth::const_gb(12.8),
    latency: VTime::from_nanos(12),
    capacity: gib_const(16),
    cost_usd: 150.0,
    access_granularity: 64,
    erase_block: 0,
};

/// All Table I rows, in the paper's order.
pub const TABLE1: [&DeviceProfile; 4] =
    [&INTEL_X25E, &FUSION_IODRIVE_DUO, &OCZ_REVODRIVE, &DDR3_1600];

const fn gib_const(n: u64) -> u64 {
    n * 1024 * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::time::bytes::gib;

    #[test]
    fn table1_matches_paper_values() {
        assert_eq!(INTEL_X25E.read_bw.as_bytes_per_sec(), 250e6);
        assert_eq!(INTEL_X25E.write_bw.as_bytes_per_sec(), 170e6);
        assert_eq!(INTEL_X25E.latency, VTime::from_micros(75));
        assert_eq!(INTEL_X25E.capacity, gib(32));
        assert_eq!(FUSION_IODRIVE_DUO.read_bw.as_bytes_per_sec(), 1.5e9);
        assert_eq!(FUSION_IODRIVE_DUO.capacity, gib(640));
        assert_eq!(OCZ_REVODRIVE.write_bw.as_bytes_per_sec(), 480e6);
        assert_eq!(DDR3_1600.read_bw.as_bytes_per_sec(), 12.8e9);
    }

    #[test]
    fn paper_claim_dram_to_iodrive_ratio() {
        // §I: ioDrive throughput "at least 8.53 times lower than DRAM".
        let ratio =
            DDR3_1600.read_bw.as_bytes_per_sec() / FUSION_IODRIVE_DUO.read_bw.as_bytes_per_sec();
        assert!((ratio - 8.53).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn media_kinds() {
        assert!(INTEL_X25E.is_flash());
        assert!(!DDR3_1600.is_flash());
        assert_eq!(MediaKind::SlcFlash.pe_cycle_limit(), 100_000);
        assert_eq!(MediaKind::MlcFlash.pe_cycle_limit(), 10_000);
        assert!(MediaKind::SlcFlash.is_flash());
        assert!(!MediaKind::Sdram.is_flash());
    }

    #[test]
    fn table1_is_complete() {
        assert_eq!(TABLE1.len(), 4);
        let names: Vec<_> = TABLE1.iter().map(|p| p.name).collect();
        assert!(names.contains(&"Intel X25-E"));
        assert!(names.contains(&"Memory (DDR3-1600)"));
    }
}

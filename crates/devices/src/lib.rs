//! # devices — Table I device models
//!
//! Calibrated performance models for every storage/memory device the
//! paper's evaluation touches:
//!
//! * [`profiles`] — the paper's Table I as typed constants (Intel X25-E,
//!   Fusion-io ioDrive Duo, OCZ RevoDrive, DDR3-1600), with media kind,
//!   interface, bandwidths, latency, capacity, cost and wear parameters;
//! * [`ssd`] — FIFO-served SSD with 4 KiB access granularity and a
//!   program/erase wear model;
//! * [`dram`] — per-node shared memory bus plus a capacity budget used to
//!   reproduce the paper's `mlock()`-based memory-restriction methodology;
//! * [`pfs`] — the central parallel file system the aggregate NVM store is
//!   designed to offload.

pub mod dram;
pub mod pfs;
pub mod profiles;
pub mod ssd;

pub use dram::{Dram, DramExhausted};
pub use pfs::{Pfs, PfsConfig};
pub use profiles::{
    DeviceProfile, Interface, MediaKind, DDR3_1600, FUSION_IODRIVE_DUO, INTEL_X25E, OCZ_REVODRIVE,
    TABLE1,
};
pub use ssd::{Ssd, WearReport};

//! The per-node DRAM bus model.
//!
//! All cores of a node share one memory controller; STREAM-style kernels
//! are bandwidth-bound, so the bus is modelled as a FIFO resource at the
//! DIMM's aggregate bandwidth (12.8 GB/s for the DDR3-1600 of Table I).
//! Per-request latency is the DRAM access latency, charged once per
//! *request*, so callers should batch (the hardware pipelines individual
//! line fills; the simulation works at block granularity).
//!
//! The model also tracks a capacity budget so the cluster layer can
//! implement the paper's `mlock()` methodology: the evaluation pinned all
//! but 1.25 GB of each node's memory to force out-of-core behaviour.

use crate::profiles::DeviceProfile;
use simcore::{Counter, Grant, Resource, StatsRegistry, VTime};

/// One node's DRAM: a shared bus plus a capacity budget.
#[derive(Clone, Debug)]
pub struct Dram {
    profile: DeviceProfile,
    bus: Resource,
    capacity: u64,
    bytes_moved: Counter,
    allocated: Counter,
}

impl Dram {
    /// `capacity` is the node's installed DRAM (8 GiB on HAL), which may
    /// differ from the profile's per-DIMM capacity.
    pub fn new(name: &str, profile: DeviceProfile, capacity: u64, stats: &StatsRegistry) -> Self {
        Dram {
            profile,
            bus: Resource::new(name.to_string()),
            capacity,
            bytes_moved: stats.counter(&format!("{name}.bytes")),
            allocated: stats.counter(&format!("{name}.allocated")),
        }
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Move `bytes` over the bus (read or write: DDR3 is symmetric).
    pub fn access_at(&self, t: VTime, bytes: u64) -> Grant {
        let g = self.profile.access_granularity.max(1);
        let moved = bytes.div_ceil(g) * g;
        self.bytes_moved.add(moved);
        self.bus
            .transfer_at(t, moved, self.profile.read_bw, self.profile.latency)
    }

    /// Reserve capacity (an allocation or an `mlock`-style pin).
    /// Fails when the node does not have enough free DRAM — this is what
    /// forces the paper's DRAM-only configurations down to 2 processes per
    /// node for the 2 GB matrix-multiply problem.
    pub fn reserve(&self, bytes: u64) -> Result<(), DramExhausted> {
        // Counter is monotonic; emulate reserve/release with two counters.
        if self.allocated.get() + bytes > self.capacity {
            return Err(DramExhausted {
                requested: bytes,
                free: self.capacity - self.allocated.get().min(self.capacity),
            });
        }
        self.allocated.add(bytes);
        Ok(())
    }

    /// Release previously reserved capacity.
    pub fn release(&self, bytes: u64) {
        let cur = self.allocated.get();
        assert!(bytes <= cur, "releasing more DRAM than reserved");
        // Counters only go up; model release by resetting and re-adding.
        self.allocated.reset();
        self.allocated.add(cur - bytes);
    }

    pub fn allocated(&self) -> u64 {
        self.allocated.get()
    }

    pub fn free(&self) -> u64 {
        self.capacity - self.allocated.get().min(self.capacity)
    }

    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved.get()
    }

    pub fn bus(&self) -> &Resource {
        &self.bus
    }
}

/// Allocation failure: the node is out of physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramExhausted {
    pub requested: u64,
    pub free: u64,
}

impl std::fmt::Display for DramExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DRAM exhausted: requested {} with only {} free",
            simcore::bytes::human(self.requested),
            simcore::bytes::human(self.free)
        )
    }
}

impl std::error::Error for DramExhausted {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::DDR3_1600;
    use simcore::time::bytes::gib;
    use simcore::Bandwidth;

    fn node_dram() -> Dram {
        Dram::new("n0.dram", DDR3_1600, gib(8), &StatsRegistry::new())
    }

    #[test]
    fn bandwidth_matches_profile() {
        let d = node_dram();
        let g = d.access_at(VTime::ZERO, 12_800_000_000);
        let expect = VTime::from_nanos(12) + Bandwidth::gb_per_sec(12.8).time_for(12_800_000_000);
        assert_eq!(g.end, expect);
    }

    #[test]
    fn cache_line_granularity() {
        let d = node_dram();
        d.access_at(VTime::ZERO, 1);
        assert_eq!(d.bytes_moved(), 64);
    }

    #[test]
    fn reserve_and_release() {
        let d = node_dram();
        d.reserve(gib(6)).unwrap();
        assert_eq!(d.free(), gib(2));
        let err = d.reserve(gib(3)).unwrap_err();
        assert_eq!(err.requested, gib(3));
        assert_eq!(err.free, gib(2));
        d.release(gib(6));
        assert_eq!(d.free(), gib(8));
        d.reserve(gib(8)).unwrap();
        assert_eq!(d.free(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing more")]
    fn over_release_panics() {
        let d = node_dram();
        d.release(1);
    }

    #[test]
    fn contention_serializes() {
        let d = node_dram();
        let g1 = d.access_at(VTime::ZERO, gib(1));
        let g2 = d.access_at(VTime::ZERO, gib(1));
        assert_eq!(g2.start, g1.end);
    }
}

//! The HPC-center parallel file system (PFS) model.
//!
//! The paper's matrix-multiply kernel reads its input matrices from and
//! writes its result to the center-wide PFS ("Input and output files, one
//! for each matrix, are stored in a PFS", §IV-B-2), and the two-pass
//! DRAM-only sort exchanges interim runs through it (Table VI). The PFS is
//! deliberately *not* the contribution — the aggregate NVM store exists to
//! avoid it — so a single shared-bandwidth server with seek-class latency
//! is a faithful stand-in.
//!
//! Defaults are sized for a small institutional cluster of the paper's
//! era: 300 MB/s aggregate, 5 ms per-request latency.

use simcore::{Bandwidth, Counter, Grant, Resource, StatsRegistry, VTime};

/// PFS configuration.
#[derive(Clone, Copy, Debug)]
pub struct PfsConfig {
    pub read_bw: Bandwidth,
    pub write_bw: Bandwidth,
    pub latency: VTime,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            read_bw: Bandwidth::mb_per_sec(300.0),
            write_bw: Bandwidth::mb_per_sec(300.0),
            latency: VTime::from_millis(5),
        }
    }
}

/// The shared parallel file system.
#[derive(Clone, Debug)]
pub struct Pfs {
    cfg: PfsConfig,
    server: Resource,
    read_bytes: Counter,
    written_bytes: Counter,
}

impl Pfs {
    pub fn new(cfg: PfsConfig, stats: &StatsRegistry) -> Self {
        Pfs {
            cfg,
            server: Resource::new("pfs"),
            read_bytes: stats.counter("pfs.read_bytes"),
            written_bytes: stats.counter("pfs.written_bytes"),
        }
    }

    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }

    /// Read `bytes` from the PFS starting no earlier than `t`.
    pub fn read_at(&self, t: VTime, bytes: u64) -> Grant {
        self.read_bytes.add(bytes);
        self.server
            .transfer_at(t, bytes, self.cfg.read_bw, self.cfg.latency)
    }

    /// Write `bytes` to the PFS starting no earlier than `t`.
    pub fn write_at(&self, t: VTime, bytes: u64) -> Grant {
        self.written_bytes.add(bytes);
        self.server
            .transfer_at(t, bytes, self.cfg.write_bw, self.cfg.latency)
    }

    pub fn bytes_read(&self) -> u64 {
        self.read_bytes.get()
    }

    pub fn bytes_written(&self) -> u64 {
        self.written_bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates() {
        let pfs = Pfs::new(PfsConfig::default(), &StatsRegistry::new());
        let g = pfs.read_at(VTime::ZERO, 300_000_000);
        assert_eq!(g.end, VTime::from_secs(1) + VTime::from_millis(5));
    }

    #[test]
    fn shared_across_clients() {
        let pfs = Pfs::new(PfsConfig::default(), &StatsRegistry::new());
        let g1 = pfs.read_at(VTime::ZERO, 300_000_000);
        let g2 = pfs.write_at(VTime::ZERO, 300_000_000);
        // Same server: second request queues behind the first.
        assert_eq!(g2.start, g1.end);
    }

    #[test]
    fn volume_counters() {
        let stats = StatsRegistry::new();
        let pfs = Pfs::new(PfsConfig::default(), &stats);
        pfs.read_at(VTime::ZERO, 123);
        pfs.write_at(VTime::ZERO, 77);
        assert_eq!(stats.get("pfs.read_bytes"), 123);
        assert_eq!(stats.get("pfs.written_bytes"), 77);
        assert_eq!(pfs.bytes_read(), 123);
        assert_eq!(pfs.bytes_written(), 77);
    }
}

//! The SSD device model.
//!
//! An [`Ssd`] is a FIFO-served device: each request occupies the device for
//! its access latency plus the transfer time at the profile's read or write
//! bandwidth. Requests smaller than the access granularity (a 4 KiB flash
//! page) still transfer a whole page internally — this is exactly the
//! granularity mismatch the paper's §III-D ("Bridging the Granularity
//! Gap") exists to hide.
//!
//! Writes additionally feed a wear model: flash blocks endure a limited
//! number of program/erase cycles, and the paper lists *"optimize the
//! total write volume"* as a design goal (§III-A). With ideal wear
//! leveling, mean P/E count is `bytes_written / capacity`; the model
//! reports that and the projected lifetime fraction consumed.

use crate::profiles::DeviceProfile;
use obs::{Layer, TraceRecorder};
use simcore::{Bandwidth, Counter, Grant, Resource, StatsRegistry, VTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wear summary for one flash device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WearReport {
    pub bytes_written: u64,
    pub erase_ops: u64,
    /// Mean program/erase cycles per block under ideal wear leveling.
    pub mean_pe_cycles: f64,
    /// Fraction of the device's endurance consumed (0.0 = new).
    pub life_consumed: f64,
}

/// A single simulated SSD (or any Table I device used as block storage).
#[derive(Clone, Debug)]
pub struct Ssd {
    profile: DeviceProfile,
    resource: Resource,
    read_bytes: Counter,
    written_bytes: Counter,
    reads: Counter,
    writes: Counter,
    /// Fault-injection derating in thousandths: 1000 = nominal speed,
    /// 4000 = 4× slower. Stored fixed-point so the neutral value divides
    /// out exactly and an unfaulted device keeps bit-identical timing.
    slowdown_milli: Arc<AtomicU64>,
    trace: TraceRecorder,
}

/// Neutral value of the slowdown knob (no derating).
const SLOWDOWN_NEUTRAL: u64 = 1000;

impl Ssd {
    /// Create a device; counters are registered under `name.*` so
    /// experiments can snapshot per-device traffic.
    pub fn new(name: &str, profile: DeviceProfile, stats: &StatsRegistry) -> Self {
        Ssd {
            profile,
            resource: Resource::new(name.to_string()),
            read_bytes: stats.counter(&format!("{name}.read_bytes")),
            written_bytes: stats.counter(&format!("{name}.written_bytes")),
            reads: stats.counter(&format!("{name}.reads")),
            writes: stats.counter(&format!("{name}.writes")),
            slowdown_milli: Arc::new(AtomicU64::new(SLOWDOWN_NEUTRAL)),
            trace: TraceRecorder::disabled(),
        }
    }

    /// Attach a trace recorder (builder style; clones share it). Every
    /// device access becomes a `dev.read`/`dev.write` span covering queue
    /// wait plus service.
    pub fn with_tracer(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// Derate the device by `factor` (≥ 1.0): subsequent accesses take
    /// `factor` times longer. `1.0` restores nominal speed. Shared across
    /// clones, so fault injectors can throttle a live device in place.
    pub fn set_slowdown(&self, factor: f64) {
        assert!(factor >= 1.0 && factor.is_finite(), "slowdown must be >= 1");
        self.slowdown_milli.store(
            (factor * SLOWDOWN_NEUTRAL as f64).round() as u64,
            Ordering::Relaxed,
        );
    }

    /// Current slowdown factor (1.0 = nominal).
    pub fn slowdown(&self) -> f64 {
        self.slowdown_milli.load(Ordering::Relaxed) as f64 / SLOWDOWN_NEUTRAL as f64
    }

    /// Apply the current derating to a nominal transfer rate.
    fn derated(&self, bw: Bandwidth) -> Bandwidth {
        match self.slowdown_milli.load(Ordering::Relaxed) {
            SLOWDOWN_NEUTRAL => bw,
            m => bw.scaled(SLOWDOWN_NEUTRAL as f64 / m as f64),
        }
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn resource(&self) -> &Resource {
        &self.resource
    }

    /// Round a request size up to the device's internal access granularity.
    pub fn granular(&self, bytes: u64) -> u64 {
        let g = self.profile.access_granularity.max(1);
        bytes.div_ceil(g) * g
    }

    /// Serve a read of `bytes` requested at `t`.
    pub fn read_at(&self, t: VTime, bytes: u64) -> Grant {
        let moved = self.granular(bytes);
        self.read_bytes.add(moved);
        self.reads.inc();
        let sp = self.trace.span(Layer::Dev, "dev.read", t);
        sp.arg("bytes", moved);
        let g = self.resource.transfer_at(
            t,
            moved,
            self.derated(self.profile.read_bw),
            self.profile.latency,
        );
        sp.finish(g.end);
        g
    }

    /// Serve a write of `bytes` requested at `t`.
    pub fn write_at(&self, t: VTime, bytes: u64) -> Grant {
        let moved = self.granular(bytes);
        self.written_bytes.add(moved);
        self.writes.inc();
        let sp = self.trace.span(Layer::Dev, "dev.write", t);
        sp.arg("bytes", moved);
        let g = self.resource.transfer_at(
            t,
            moved,
            self.derated(self.profile.write_bw),
            self.profile.latency,
        );
        sp.finish(g.end);
        g
    }

    pub fn bytes_read(&self) -> u64 {
        self.read_bytes.get()
    }

    pub fn bytes_written(&self) -> u64 {
        self.written_bytes.get()
    }

    /// Wear accounting from total write volume.
    pub fn wear(&self) -> WearReport {
        let written = self.written_bytes.get();
        let erase_ops = if self.profile.erase_block == 0 {
            0
        } else {
            written.div_ceil(self.profile.erase_block)
        };
        let mean_pe = written as f64 / self.profile.capacity as f64;
        let limit = self.profile.kind.pe_cycle_limit();
        let life = if limit == u64::MAX {
            0.0
        } else {
            mean_pe / limit as f64
        };
        WearReport {
            bytes_written: written,
            erase_ops,
            mean_pe_cycles: mean_pe,
            life_consumed: life,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DDR3_1600, INTEL_X25E};
    use simcore::Bandwidth;

    fn x25e() -> Ssd {
        Ssd::new("ssd0", INTEL_X25E, &StatsRegistry::new())
    }

    #[test]
    fn read_charges_latency_plus_transfer() {
        let d = x25e();
        let g = d.read_at(VTime::ZERO, 256 * 1024);
        let expect = VTime::from_micros(75) + Bandwidth::mb_per_sec(250.0).time_for(256 * 1024);
        assert_eq!(g.end, expect);
    }

    #[test]
    fn write_uses_write_bandwidth() {
        let d = x25e();
        let g = d.write_at(VTime::ZERO, 1_700_000);
        // 1.7e6 B at 170 MB/s = 10 ms (plus latency, 4 KiB-rounded size).
        let rounded = d.granular(1_700_000);
        let expect = VTime::from_micros(75) + Bandwidth::mb_per_sec(170.0).time_for(rounded);
        assert_eq!(g.end, expect);
    }

    #[test]
    fn sub_page_access_moves_a_whole_page() {
        let d = x25e();
        d.read_at(VTime::ZERO, 1);
        assert_eq!(d.bytes_read(), 4096);
        d.write_at(VTime::ZERO, 4097);
        assert_eq!(d.bytes_written(), 8192);
    }

    #[test]
    fn requests_queue_fifo() {
        let d = x25e();
        let g1 = d.read_at(VTime::ZERO, 4096);
        let g2 = d.read_at(VTime::ZERO, 4096);
        assert_eq!(g2.start, g1.end);
    }

    #[test]
    fn wear_report_scales_with_writes() {
        let d = x25e();
        assert_eq!(d.wear().life_consumed, 0.0);
        // Write one full device capacity: mean P/E = 1.
        d.write_at(VTime::ZERO, INTEL_X25E.capacity);
        let w = d.wear();
        assert!((w.mean_pe_cycles - 1.0).abs() < 1e-9);
        assert!((w.life_consumed - 1.0 / 100_000.0).abs() < 1e-12);
        assert_eq!(w.erase_ops, INTEL_X25E.capacity / INTEL_X25E.erase_block);
    }

    #[test]
    fn slowdown_derates_transfers_and_restores_exactly() {
        let d = x25e();
        let nominal = d.read_at(VTime::ZERO, 256 * 1024);
        let nominal_span = nominal.end - nominal.start;
        d.set_slowdown(4.0);
        let slow = d.read_at(nominal.end, 256 * 1024);
        let slow_xfer = Bandwidth::mb_per_sec(250.0 / 4.0).time_for(256 * 1024);
        assert_eq!(slow.end - slow.start, VTime::from_micros(75) + slow_xfer);
        d.set_slowdown(1.0);
        let back = d.read_at(slow.end, 256 * 1024);
        assert_eq!(back.end - back.start, nominal_span, "neutral is exact");
        // The knob is shared across clones (live fault injection).
        let clone = d.clone();
        clone.set_slowdown(2.0);
        assert_eq!(d.slowdown(), 2.0);
    }

    #[test]
    fn dram_profile_has_no_wear() {
        let d = Ssd::new("dram", DDR3_1600, &StatsRegistry::new());
        d.write_at(VTime::ZERO, 1 << 30);
        let w = d.wear();
        assert_eq!(w.erase_ops, 0);
        assert_eq!(w.life_consumed, 0.0);
    }

    #[test]
    fn counters_visible_in_registry() {
        let stats = StatsRegistry::new();
        let d = Ssd::new("ssdX", INTEL_X25E, &stats);
        d.read_at(VTime::ZERO, 100);
        assert_eq!(stats.get("ssdX.read_bytes"), 4096);
        assert_eq!(stats.get("ssdX.reads"), 1);
    }
}

//! Device-model edge cases beyond the in-crate unit tests.

use devices::{
    Dram, Pfs, PfsConfig, Ssd, DDR3_1600, FUSION_IODRIVE_DUO, INTEL_X25E, OCZ_REVODRIVE,
};
use simcore::{StatsRegistry, VTime};

#[test]
fn faster_devices_serve_faster() {
    let stats = StatsRegistry::new();
    let sata = Ssd::new("sata", INTEL_X25E, &stats);
    let pcie = Ssd::new("pcie", FUSION_IODRIVE_DUO, &stats);
    let mid = Ssd::new("mid", OCZ_REVODRIVE, &stats);
    let bytes = 1 << 20;
    let t_sata = sata.read_at(VTime::ZERO, bytes).end;
    let t_mid = mid.read_at(VTime::ZERO, bytes).end;
    let t_pcie = pcie.read_at(VTime::ZERO, bytes).end;
    assert!(
        t_pcie < t_mid && t_mid < t_sata,
        "{t_pcie} {t_mid} {t_sata}"
    );
}

#[test]
fn zero_byte_access_still_pays_latency() {
    let stats = StatsRegistry::new();
    let d = Ssd::new("s", INTEL_X25E, &stats);
    let g = d.read_at(VTime::ZERO, 0);
    assert_eq!(g.end - g.start, INTEL_X25E.latency);
    assert_eq!(d.bytes_read(), 0, "a zero-length request moves nothing");
}

#[test]
fn wear_accumulates_across_mixed_traffic() {
    let stats = StatsRegistry::new();
    let d = Ssd::new("s", INTEL_X25E, &stats);
    d.read_at(VTime::ZERO, 1 << 20);
    d.write_at(VTime::ZERO, 1 << 20);
    d.write_at(VTime::ZERO, 1 << 20);
    let w = d.wear();
    assert_eq!(w.bytes_written, 2 << 20);
    assert_eq!(w.erase_ops, (2 << 20) / INTEL_X25E.erase_block);
    assert!(w.life_consumed > 0.0);
    assert_eq!(d.bytes_read(), 1 << 20);
}

#[test]
fn dram_capacity_is_independent_of_profile_capacity() {
    let stats = StatsRegistry::new();
    let d = Dram::new("d", DDR3_1600, 1 << 20, &stats);
    assert_eq!(d.capacity(), 1 << 20);
    d.reserve(1 << 20).unwrap();
    assert!(d.reserve(1).is_err());
    d.release(1 << 20);
    assert_eq!(d.free(), 1 << 20);
}

#[test]
fn pfs_latency_dominates_small_requests() {
    let stats = StatsRegistry::new();
    let pfs = Pfs::new(PfsConfig::default(), &stats);
    let g = pfs.read_at(VTime::ZERO, 1);
    // 5 ms seek-class latency swamps the 3 ns of transfer.
    assert!(g.end >= VTime::from_millis(5));
    assert!(g.end < VTime::from_millis(6));
}

#[test]
fn pfs_config_is_tunable() {
    let stats = StatsRegistry::new();
    let pfs = Pfs::new(
        PfsConfig {
            read_bw: simcore::Bandwidth::gb_per_sec(1.0),
            write_bw: simcore::Bandwidth::mb_per_sec(100.0),
            latency: VTime::ZERO,
        },
        &stats,
    );
    assert_eq!(
        pfs.read_at(VTime::ZERO, 1_000_000_000).end,
        VTime::from_secs(1)
    );
    // Writes queue behind the read on the same server at 100 MB/s.
    let g = pfs.write_at(VTime::ZERO, 100_000_000);
    assert_eq!(g.end, VTime::from_secs(2));
}

//! NVMalloc API edge cases and workflow scenarios.

use chunkstore::{AggregateStore, Benefactor, StoreConfig, StoreError};
use devices::{Ssd, INTEL_X25E};
use fusemm::{FuseConfig, Mount};
use netsim::{NetConfig, Network};
use nvmalloc::{AllocOptions, NvmClient, NvmVec};
use simcore::time::bytes::mib;
use simcore::{Engine, ProcCtx, StatsRegistry};

fn world() -> (AggregateStore, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(3, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..2 {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(128), 256 * 1024));
    }
    (store, stats)
}

fn client(store: &AggregateStore, stats: &StatsRegistry, id: u64) -> NvmClient {
    let mount = Mount::new(store.clone(), 2, FuseConfig::default(), stats);
    NvmClient::new(mount, id, AllocOptions::default(), stats)
}

fn run1(body: impl FnOnce(&mut ProcCtx) + Send) {
    Engine::run(vec![body]);
}

#[test]
fn open_var_finds_persistent_data() {
    let (store, stats) = world();
    let producer = client(&store, &stats, 0);
    let consumer = client(&store, &stats, 1);
    run1(move |ctx| {
        let v: NvmVec<u64> = producer.ssdmalloc_shared(ctx, "wf", 1000).unwrap();
        v.write_slice(ctx, 0, &(0..1000u64).collect::<Vec<_>>())
            .unwrap();
        v.flush(ctx).unwrap();
        drop(v); // producer's handle goes away; the data does not

        let opened: NvmVec<u64> = consumer.open_var(ctx, "wf").unwrap();
        assert_eq!(opened.len(), 1000);
        assert!(opened.is_shared());
        assert_eq!(opened.get(ctx, 999).unwrap(), 999);
        consumer.unlink_shared(ctx, "wf").unwrap();
        assert!(matches!(
            consumer.open_var::<u64>(ctx, "wf"),
            Err(StoreError::NoSuchFile)
        ));
    });
}

#[test]
fn open_var_missing_is_an_error() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        assert!(matches!(
            c.open_var::<u8>(ctx, "never-created"),
            Err(StoreError::NoSuchFile)
        ));
    });
}

#[test]
fn zero_length_variable() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        let v: NvmVec<u64> = c.ssdmalloc(ctx, 0).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.byte_len(), 0);
        v.write_slice(ctx, 0, &[]).unwrap();
        let mut out: [u64; 0] = [];
        v.read_slice(ctx, 0, &mut out).unwrap();
        v.flush(ctx).unwrap();
        c.ssdfree(ctx, v).unwrap();
    });
}

#[test]
#[should_panic(expected = "past end")]
fn out_of_bounds_read_panics() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        let v: NvmVec<u32> = c.ssdmalloc(ctx, 10).unwrap();
        let mut out = [0u32; 4];
        v.read_slice(ctx, 8, &mut out).unwrap();
    });
}

#[test]
fn checkpoint_with_no_variables_is_a_dram_dump() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        let dram = vec![42u8; 100_000];
        let ck = c.ssdcheckpoint(ctx, "app", &dram, &[]).unwrap();
        assert!(ck.vars.is_empty());
        assert_eq!(c.restore_dram(ctx, &ck).unwrap(), dram);
        c.delete_checkpoint(ctx, &ck).unwrap();
    });
}

#[test]
fn checkpoint_with_empty_dram_links_only() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, 300_000).unwrap();
        v.write_slice(ctx, 0, &vec![5u8; 300_000]).unwrap();
        let ck = c.ssdcheckpoint(ctx, "app", &[], &[&v]).unwrap();
        assert_eq!(ck.dram_len, 0);
        assert_eq!(ck.vars[0].offset, 0);
        assert!(c.restore_dram(ctx, &ck).unwrap().is_empty());
        let r: NvmVec<u8> = c.restore_var(ctx, &ck, 0).unwrap();
        assert_eq!(r.get(ctx, 299_999).unwrap(), 5);
    });
}

#[test]
fn checkpoint_names_are_unique_per_client_and_timestep() {
    let (store, stats) = world();
    let c = client(&store, &stats, 7);
    run1(move |ctx| {
        let a = c.ssdcheckpoint(ctx, "app", &[1], &[]).unwrap();
        let b = c.ssdcheckpoint(ctx, "app", &[2], &[]).unwrap();
        assert_ne!(a.name, b.name);
        assert_eq!(a.timestep, 0);
        assert_eq!(b.timestep, 1);
        // Both restore independently.
        assert_eq!(c.restore_dram(ctx, &a).unwrap(), vec![1]);
        assert_eq!(c.restore_dram(ctx, &b).unwrap(), vec![2]);
    });
}

#[test]
fn many_clients_allocate_distinct_files() {
    let (store, stats) = world();
    let clients: Vec<NvmClient> = (0..6).map(|i| client(&store, &stats, i)).collect();
    run1(move |ctx| {
        let vars: Vec<NvmVec<u8>> = clients
            .iter()
            .map(|c| c.ssdmalloc::<u8>(ctx, 1024).unwrap())
            .collect();
        let mut ids: Vec<_> = vars.iter().map(|v| v.file_id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 6, "every allocation gets its own file");
        for (c, v) in clients.iter().zip(vars) {
            c.ssdfree(ctx, v).unwrap();
        }
    });
}

#[test]
fn allocation_counters() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    let stats2 = stats.clone();
    run1(move |ctx| {
        let a: NvmVec<u8> = c.ssdmalloc(ctx, 100).unwrap();
        let b: NvmVec<u8> = c.ssdmalloc(ctx, 100).unwrap();
        c.ssdfree(ctx, a).unwrap();
        c.ssdfree(ctx, b).unwrap();
        let _ = c.ssdcheckpoint(ctx, "x", &[0], &[]).unwrap();
    });
    assert_eq!(stats2.get("nvm.mallocs"), 2);
    assert_eq!(stats2.get("nvm.frees"), 2);
    assert_eq!(stats2.get("nvm.checkpoints"), 1);
}

#[test]
fn pod_zeroed_matches_default_for_all_impls() {
    use nvmalloc::Pod;
    assert_eq!(u8::zeroed(), 0);
    assert_eq!(u16::zeroed(), 0);
    assert_eq!(u32::zeroed(), 0);
    assert_eq!(u64::zeroed(), 0);
    assert_eq!(u128::zeroed(), 0);
    assert_eq!(usize::zeroed(), 0);
    assert_eq!(i8::zeroed(), 0);
    assert_eq!(i64::zeroed(), 0);
    assert_eq!(f32::zeroed(), 0.0);
    assert_eq!(f64::zeroed(), 0.0);
}

#[test]
fn drain_checkpoint_to_pfs_foreground_and_background() {
    use devices::{Pfs, PfsConfig};
    let (store, stats) = world();
    let pfs = Pfs::new(PfsConfig::default(), &stats);
    let c = client(&store, &stats, 0);
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, 2 << 20).unwrap();
        v.write_slice(ctx, 0, &vec![3u8; 2 << 20]).unwrap();
        let ck = c.ssdcheckpoint(ctx, "app", &[9u8; 4096], &[&v]).unwrap();

        // Foreground drain: the caller waits until the PFS copy is safe.
        let t0 = ctx.now();
        let safe = c.drain_checkpoint_to_pfs(ctx, &ck, &pfs, false).unwrap();
        assert_eq!(ctx.now(), safe);
        assert!(safe > t0);
        let drained_once = pfs.bytes_written();
        assert!(drained_once >= 2 << 20, "whole restart file drained");

        // Background drain: the clock does not wait, devices are charged.
        let t1 = ctx.now();
        let safe2 = c.drain_checkpoint_to_pfs(ctx, &ck, &pfs, true).unwrap();
        assert_eq!(ctx.now(), t1, "background drain returns immediately");
        assert!(safe2 > t1, "completion lies in the future");
        assert_eq!(pfs.bytes_written(), 2 * drained_once);
    });
}

#[test]
fn variable_lifetime_expires_through_manager_sweep() {
    let (store, stats) = world();
    let c = client(&store, &stats, 0);
    let store2 = store.clone();
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, 300_000).unwrap();
        v.write_slice(ctx, 0, &vec![1u8; 300_000]).unwrap();
        v.flush(ctx).unwrap();
        store2
            .manager()
            .set_lifetime(v.file_id(), Some(simcore::VTime::from_secs(100)))
            .unwrap();
        // The manager's housekeeping reclaims it after expiry.
        assert_eq!(
            store2.manager().expire_files(simcore::VTime::from_secs(99)),
            0
        );
        assert_eq!(
            store2
                .manager()
                .expire_files(simcore::VTime::from_secs(100)),
            1
        );
        assert_eq!(store2.manager().physical_bytes(), 0);
        assert!(
            v.get(ctx, 0).is_err() || v.get(ctx, 0).is_ok(),
            "cache may still serve"
        );
    });
}

//! `NvmClient` — the per-process NVMalloc entry point.
//!
//! Provides the paper's service suite (§III):
//!
//! * [`NvmClient::ssdmalloc`] — allocate a typed variable from the
//!   aggregate store: creates an internally-named backing file,
//!   `posix_fallocate`s its size over a benefactor stripe, and returns the
//!   mapped [`NvmVec`];
//! * [`NvmClient::ssdmalloc_shared`] — the "special flag" variant that
//!   maps a *shared* file so all processes on a node (or across nodes)
//!   back a common read-mostly structure (matrix B in the evaluation)
//!   with one set of chunks;
//! * [`NvmClient::ssdfree`] — unmap and delete the backing file;
//! * [`NvmClient::ssdcheckpoint`] — snapshot DRAM state *and* NVM
//!   variables into one logical restart file, copying only the DRAM bytes
//!   and *linking* the variables' chunks (§III-E);
//! * restart helpers that rebuild state from a checkpoint.

use crate::pod::Pod;
use crate::vec::{NvmVariable, NvmVec};
use chunkstore::{FileId, PlacementPolicy, Result, StoreError, StripeSpec};
use fusemm::Mount;
use obs::Layer;
use simcore::{Counter, ProcCtx, StatsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};

/// Placement options for an allocation.
#[derive(Clone, Debug)]
pub struct AllocOptions {
    pub stripe: StripeSpec,
    pub placement: PlacementPolicy,
}

impl Default for AllocOptions {
    fn default() -> Self {
        AllocOptions {
            stripe: StripeSpec::all(),
            placement: PlacementPolicy::RoundRobin,
        }
    }
}

/// One variable's region inside a checkpoint file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarRecord {
    pub name: String,
    pub byte_len: u64,
    /// Byte offset of the variable's first (chunk-aligned) byte within the
    /// checkpoint file.
    pub offset: u64,
}

/// A completed checkpoint: enough metadata to restart from it.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    pub name: String,
    pub file: FileId,
    pub timestep: u64,
    pub dram_len: u64,
    pub vars: Vec<VarRecord>,
}

/// The per-process NVMalloc handle.
pub struct NvmClient {
    mount: Mount,
    client_id: u64,
    next_alloc: AtomicU64,
    next_ckpt: AtomicU64,
    opts: AllocOptions,
    app_read_bytes: Counter,
    app_write_bytes: Counter,
    mallocs: Counter,
    frees: Counter,
    checkpoints: Counter,
}

impl NvmClient {
    /// `client_id` must be unique across processes (use the MPI rank).
    pub fn new(mount: Mount, client_id: u64, opts: AllocOptions, stats: &StatsRegistry) -> Self {
        NvmClient {
            mount,
            client_id,
            next_alloc: AtomicU64::new(0),
            next_ckpt: AtomicU64::new(0),
            opts,
            app_read_bytes: stats.counter("nvm.app_read_bytes"),
            app_write_bytes: stats.counter("nvm.app_write_bytes"),
            mallocs: stats.counter("nvm.mallocs"),
            frees: stats.counter("nvm.frees"),
            checkpoints: stats.counter("nvm.checkpoints"),
        }
    }

    pub fn mount(&self) -> &Mount {
        &self.mount
    }

    fn auto_name(&self) -> String {
        let n = self.next_alloc.fetch_add(1, Ordering::Relaxed);
        format!("/nvmalloc/c{}/v{}", self.client_id, n)
    }

    /// Allocate `len` elements of `T` from the NVM store (default stripe).
    pub fn ssdmalloc<T: Pod>(&self, ctx: &mut ProcCtx, len: usize) -> Result<NvmVec<T>> {
        let opts = self.opts.clone();
        self.ssdmalloc_opts(ctx, len, &opts)
    }

    /// Allocate with explicit placement options.
    pub fn ssdmalloc_opts<T: Pod>(
        &self,
        ctx: &mut ProcCtx,
        len: usize,
        opts: &AllocOptions,
    ) -> Result<NvmVec<T>> {
        let name = self.auto_name();
        let bytes = len as u64 * std::mem::size_of::<T>() as u64;
        ctx.yield_until_min();
        let sp = self
            .mount
            .tracer()
            .span(Layer::Nvm, "nvm.malloc", ctx.now());
        sp.arg("bytes", bytes);
        let (t, file) =
            self.mount
                .create(ctx.now(), &name, bytes, opts.stripe.clone(), opts.placement)?;
        ctx.advance_to(t);
        sp.finish(t);
        self.mallocs.inc();
        Ok(NvmVec::new(
            self.mount.clone(),
            file,
            name,
            len,
            false,
            self.app_read_bytes.clone(),
            self.app_write_bytes.clone(),
        ))
    }

    /// Map a *shared* variable: the first caller creates the backing file
    /// under `/shared/<key>`, later callers map the same file. This is
    /// the option behind the paper's shared-mmap-file mode for matrix B.
    pub fn ssdmalloc_shared<T: Pod>(
        &self,
        ctx: &mut ProcCtx,
        key: &str,
        len: usize,
    ) -> Result<NvmVec<T>> {
        let opts = self.opts.clone();
        self.ssdmalloc_shared_opts(ctx, key, len, &opts)
    }

    pub fn ssdmalloc_shared_opts<T: Pod>(
        &self,
        ctx: &mut ProcCtx,
        key: &str,
        len: usize,
        opts: &AllocOptions,
    ) -> Result<NvmVec<T>> {
        let name = format!("/shared/{key}");
        let bytes = len as u64 * std::mem::size_of::<T>() as u64;
        ctx.yield_until_min();
        let file =
            match self
                .mount
                .create(ctx.now(), &name, bytes, opts.stripe.clone(), opts.placement)
            {
                Ok((t, file)) => {
                    ctx.advance_to(t);
                    self.mallocs.inc();
                    file
                }
                Err(StoreError::FileExists(_)) => {
                    let (t, found) = self.mount.open(ctx.now(), &name)?;
                    ctx.advance_to(t);
                    let file = found.ok_or(StoreError::NoSuchFile)?;
                    let existing = self.mount.file_size(file)?;
                    assert_eq!(
                        existing, bytes,
                        "shared variable {key} mapped with a different size"
                    );
                    file
                }
                Err(e) => return Err(e),
            };
        Ok(NvmVec::new(
            self.mount.clone(),
            file,
            name,
            len,
            true,
            self.app_read_bytes.clone(),
            self.app_write_bytes.clone(),
        ))
    }

    /// Unmap and release a variable. Shared mappings only drop the local
    /// handle — use [`NvmClient::unlink_shared`] (from one process) to
    /// delete the backing file.
    pub fn ssdfree<T: Pod>(&self, ctx: &mut ProcCtx, var: NvmVec<T>) -> Result<()> {
        self.frees.inc();
        if var.is_shared() {
            return Ok(()); // munmap only
        }
        ctx.yield_until_min();
        let t = self.mount.delete(ctx.now(), var.file_id())?;
        ctx.advance_to(t);
        Ok(())
    }

    /// Map an existing shared/persistent variable by key without creating
    /// it — the consumer side of the paper's §III-C workflow scenario
    /// ("data sharing between a workflow of jobs or a simulation and its
    /// in-situ analysis"): variables outlive the job that produced them
    /// because the store, not the process, owns the chunks.
    pub fn open_var<T: Pod>(&self, ctx: &mut ProcCtx, key: &str) -> Result<NvmVec<T>> {
        let name = format!("/shared/{key}");
        ctx.yield_until_min();
        let (t, found) = self.mount.open(ctx.now(), &name)?;
        ctx.advance_to(t);
        let file = found.ok_or(StoreError::NoSuchFile)?;
        let bytes = self.mount.file_size(file)?;
        let elem = std::mem::size_of::<T>() as u64;
        assert_eq!(bytes % elem, 0, "element size does not divide {key}'s size");
        Ok(NvmVec::new(
            self.mount.clone(),
            file,
            name,
            (bytes / elem) as usize,
            true,
            self.app_read_bytes.clone(),
            self.app_write_bytes.clone(),
        ))
    }

    /// Delete a shared variable's backing file (call from exactly one
    /// process after all mappers are done).
    pub fn unlink_shared(&self, ctx: &mut ProcCtx, key: &str) -> Result<()> {
        let name = format!("/shared/{key}");
        ctx.yield_until_min();
        let (t, found) = self.mount.open(ctx.now(), &name)?;
        ctx.advance_to(t);
        let file = found.ok_or(StoreError::NoSuchFile)?;
        ctx.yield_until_min();
        let t = self.mount.delete(ctx.now(), file)?;
        ctx.advance_to(t);
        Ok(())
    }

    /// Checkpoint `dram_state` plus every listed NVM variable into one
    /// logical restart file (§III-E).
    ///
    /// DRAM bytes are *copied* into fresh chunks; each variable is first
    /// flushed (so its chunks reflect the current contents) and then its
    /// chunks are *linked* into the checkpoint — no data movement, no
    /// extra NVM wear, and copy-on-write protects the frozen image from
    /// subsequent writes. Incremental checkpointing falls out for free:
    /// the next checkpoint links whatever chunks the variable then has,
    /// sharing all unmodified ones.
    pub fn ssdcheckpoint(
        &self,
        ctx: &mut ProcCtx,
        app: &str,
        dram_state: &[u8],
        vars: &[&dyn NvmVariable],
    ) -> Result<Checkpoint> {
        let timestep = self.next_ckpt.fetch_add(1, Ordering::Relaxed);
        let name = format!("/ckpt/{app}/c{}/t{timestep}", self.client_id);
        let chunk = self.mount.store().config().chunk_size;

        ctx.yield_until_min();
        let mut t = ctx.now();
        let sp = self.mount.tracer().span(Layer::Nvm, "nvm.checkpoint", t);
        sp.arg("dram_bytes", dram_state.len() as u64)
            .arg("vars", vars.len() as u64);

        // 1. Create the restart file sized for the DRAM image.
        let (t1, ckpt_file) = self
            .mount
            .store()
            .create_file(t, self.mount.node(), &name)?;
        t = t1;
        if !dram_state.is_empty() {
            t = self.mount.store().fallocate(
                t,
                self.mount.node(),
                ckpt_file,
                dram_state.len() as u64,
                self.opts.stripe.clone(),
                self.opts.placement,
            )?;
            // 2. Stream the DRAM image into it.
            t = self
                .mount
                .store()
                .write_span(t, self.mount.node(), ckpt_file, 0, dram_state)?;
        }

        // 3. Flush + link each variable.
        let mut offset = (dram_state.len() as u64).div_ceil(chunk) * chunk;
        let mut records = Vec::with_capacity(vars.len());
        for var in vars {
            t = var.flush_at(t)?;
            t = self
                .mount
                .store()
                .link_file(t, self.mount.node(), ckpt_file, var.file_id())?;
            records.push(VarRecord {
                name: var.var_name().to_string(),
                byte_len: var.byte_len(),
                offset,
            });
            offset += var.byte_len().div_ceil(chunk) * chunk;
        }

        ctx.advance_to(t);
        sp.finish(t);
        self.checkpoints.inc();
        Ok(Checkpoint {
            name,
            file: ckpt_file,
            timestep,
            dram_len: dram_state.len() as u64,
            vars: records,
        })
    }

    /// Restart path: read the DRAM image back out of a checkpoint.
    pub fn restore_dram(&self, ctx: &mut ProcCtx, ckpt: &Checkpoint) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; ckpt.dram_len as usize];
        if !buf.is_empty() {
            ctx.yield_until_min();
            let sp = self
                .mount
                .tracer()
                .span(Layer::Nvm, "nvm.restore", ctx.now());
            sp.arg("bytes", ckpt.dram_len);
            let t = self.mount.store().read_span(
                ctx.now(),
                self.mount.node(),
                ckpt.file,
                0,
                &mut buf,
            )?;
            ctx.advance_to(t);
            sp.finish(t);
        }
        Ok(buf)
    }

    /// Restart path: materialize checkpointed variable `index` as a fresh
    /// NVM variable.
    pub fn restore_var<T: Pod>(
        &self,
        ctx: &mut ProcCtx,
        ckpt: &Checkpoint,
        index: usize,
    ) -> Result<NvmVec<T>> {
        let rec = &ckpt.vars[index];
        let elem = std::mem::size_of::<T>() as u64;
        assert_eq!(rec.byte_len % elem, 0, "element size mismatch on restore");
        let len = (rec.byte_len / elem) as usize;
        let var: NvmVec<T> = self.ssdmalloc(ctx, len)?;

        // Stream the frozen bytes from the checkpoint into the new file.
        let mut buf = vec![0u8; rec.byte_len as usize];
        ctx.yield_until_min();
        let sp = self
            .mount
            .tracer()
            .span(Layer::Nvm, "nvm.restore", ctx.now());
        sp.arg("bytes", rec.byte_len);
        let t = self.mount.store().read_span(
            ctx.now(),
            self.mount.node(),
            ckpt.file,
            rec.offset,
            &mut buf,
        )?;
        let t = self
            .mount
            .store()
            .write_span(t, self.mount.node(), var.file_id(), 0, &buf)?;
        ctx.advance_to(t);
        sp.finish(t);
        Ok(var)
    }

    /// Delete a checkpoint file (releases its chunk references).
    pub fn delete_checkpoint(&self, ctx: &mut ProcCtx, ckpt: &Checkpoint) -> Result<()> {
        ctx.yield_until_min();
        let t = self
            .mount
            .store()
            .delete(ctx.now(), self.mount.node(), ckpt.file)?;
        ctx.advance_to(t);
        Ok(())
    }

    /// Drain a checkpoint from the NVM store to the parallel file system.
    ///
    /// The paper's staging model (§III-E, citing the authors' prior work):
    /// "checkpointing to such an intermediate device and draining to PFS
    /// in the background is an extremely viable alternative and can help
    /// alleviate the I/O bottleneck." The drain streams every chunk of
    /// the restart file from its benefactor to the PFS. Pass
    /// `background = true` to model an asynchronous drain: store-side and
    /// PFS resources are charged (they are busy) but the caller's clock
    /// does not wait; the returned time says when the PFS copy is safe.
    pub fn drain_checkpoint_to_pfs(
        &self,
        ctx: &mut ProcCtx,
        ckpt: &Checkpoint,
        pfs: &devices::Pfs,
        background: bool,
    ) -> Result<simcore::VTime> {
        let store = self.mount.store();
        let total = store.file_size(ckpt.file)?;
        ctx.yield_until_min();
        let mut t = ctx.now();
        let sp = self.mount.tracer().span(Layer::Nvm, "nvm.drain", t);
        sp.arg("bytes", total).arg("background", background as u64);
        // Stream chunk-sized pieces: benefactor read + network, then PFS.
        let chunk = store.config().chunk_size;
        let mut buf = vec![0u8; chunk as usize];
        let mut off = 0u64;
        let mut done = t;
        while off < total {
            let take = chunk.min(total - off);
            let t2 = store.read_span(
                t,
                self.mount.node(),
                ckpt.file,
                off,
                &mut buf[..take as usize],
            )?;
            let g = pfs.write_at(t2, take);
            done = g.end;
            t = t2; // pipeline: next read can start while the PFS drains
            off += take;
        }
        if !background {
            ctx.advance_to(done);
        }
        sp.finish(done);
        Ok(done)
    }
}

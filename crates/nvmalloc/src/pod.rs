//! Plain-old-data marker for element types of NVM-resident variables.
//!
//! `ssdmalloc` hands the application a *typed* buffer over raw NVM bytes
//! (the paper's `nvmvar[]`). Conversions only ever go `T → bytes` for
//! writes and `bytes → T` via a zero-initialized staging value for reads,
//! so every cast stays within the invariants the `Pod` contract states.

/// Types that are valid for any bit pattern, contain no padding holes we
/// rely on, and can be byte-copied.
///
/// # Safety
///
/// Implementors must be `Copy`, have no invalid bit patterns, no pointers
/// and no drop glue. All primitive number types qualify.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// The all-zero value (what unwritten NVM reads as).
    fn zeroed() -> Self {
        // SAFETY: the trait contract says all bit patterns are valid.
        unsafe { std::mem::zeroed() }
    }
}

macro_rules! impl_pod {
    ($($t:ty),*) => { $( unsafe impl Pod for $t {} )* };
}

impl_pod!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// View a slice of `T` as raw bytes.
pub fn bytes_of<T: Pod>(s: &[T]) -> &[u8] {
    // SAFETY: Pod types are valid for byte-level inspection; the length
    // arithmetic cannot overflow because the slice already exists.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

/// View a mutable slice of `T` as raw bytes.
pub fn bytes_of_mut<T: Pod>(s: &mut [T]) -> &mut [u8] {
    // SAFETY: any byte pattern written is a valid T per the Pod contract.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(s)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        assert_eq!(u64::zeroed(), 0);
        assert_eq!(f64::zeroed(), 0.0);
        assert_eq!(i32::zeroed(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let xs: [u32; 3] = [1, 0x0203_0405, u32::MAX];
        let bytes = bytes_of(&xs);
        assert_eq!(bytes.len(), 12);
        let mut ys = [0u32; 3];
        bytes_of_mut(&mut ys).copy_from_slice(bytes);
        assert_eq!(xs, ys);
    }

    #[test]
    fn f64_bytes_roundtrip() {
        let xs = [1.5f64, -0.0, f64::INFINITY];
        let mut ys = [0f64; 3];
        bytes_of_mut(&mut ys).copy_from_slice(bytes_of(&xs));
        assert_eq!(xs[0], ys[0]);
        assert_eq!(xs[2], ys[2]);
        assert!(ys[1] == 0.0 && ys[1].is_sign_negative());
    }

    #[test]
    fn empty_slices() {
        let xs: [u64; 0] = [];
        assert!(bytes_of(&xs).is_empty());
    }
}

//! `NvmVec<T>` — a typed, NVM-resident variable.
//!
//! The paper's `nvmvar = ssdmalloc(...)` hands back a memory-mapped
//! region; addresses inside it transparently become reads/writes against
//! the chunk store through the FUSE cache. This type is the safe-Rust
//! equivalent: element and slice accessors that route through the node's
//! [`fusemm::Mount`] while charging virtual time on the owning process's
//! clock.

use crate::pod::{bytes_of, bytes_of_mut, Pod};
use chunkstore::{FileId, Result};
use fusemm::Mount;
use obs::Layer;
use simcore::{Counter, ProcCtx, VTime};
use std::marker::PhantomData;

/// A typed variable allocated from the aggregate NVM store.
pub struct NvmVec<T: Pod> {
    mount: Mount,
    file: FileId,
    name: String,
    len: usize,
    shared: bool,
    app_read_bytes: Counter,
    app_write_bytes: Counter,
    _marker: PhantomData<T>,
}

impl<T: Pod> NvmVec<T> {
    pub(crate) fn new(
        mount: Mount,
        file: FileId,
        name: String,
        len: usize,
        shared: bool,
        app_read_bytes: Counter,
        app_write_bytes: Counter,
    ) -> Self {
        NvmVec {
            mount,
            file,
            name,
            len,
            shared,
            app_read_bytes,
            app_write_bytes,
            _marker: PhantomData,
        }
    }

    /// Number of `T` elements.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Backing file on the aggregate store (internal name, invisible to
    /// the application in the paper's design).
    pub fn file_id(&self) -> FileId {
        self.file
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is a shared mmap file (several processes map it).
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    fn elem_size() -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Byte length of the variable.
    pub fn byte_len(&self) -> u64 {
        self.len as u64 * Self::elem_size()
    }

    /// Read element `i` (the paper's `x = nvmvar[i]`).
    pub fn get(&self, ctx: &mut ProcCtx, i: usize) -> Result<T> {
        let mut tmp = [T::zeroed()];
        self.read_slice(ctx, i, &mut tmp)?;
        Ok(tmp[0])
    }

    /// Write element `i` (the paper's `nvmvar[i] = x`).
    pub fn set(&self, ctx: &mut ProcCtx, i: usize, value: T) -> Result<()> {
        self.write_slice(ctx, i, &[value])
    }

    /// Iterate chunk-aligned byte segments of `[byte_start, byte_start+len)`.
    /// Large slice accesses are split at chunk boundaries with an engine
    /// yield per segment, so concurrent processes' requests reach shared
    /// resources in virtual-time order (one huge atomic charge would
    /// reserve far-future device slots ahead of other ranks' earlier
    /// accesses).
    fn for_each_segment(
        &self,
        byte_start: u64,
        len: u64,
        mut f: impl FnMut(u64, usize, usize) -> Result<()>,
    ) -> Result<()> {
        let chunk = self.mount.store().config().chunk_size;
        let mut pos = 0u64;
        while pos < len {
            let abs = byte_start + pos;
            let take = (chunk - abs % chunk).min(len - pos);
            f(abs, pos as usize, take as usize)?;
            pos += take;
        }
        Ok(())
    }

    /// Read `out.len()` elements starting at `start`.
    pub fn read_slice(&self, ctx: &mut ProcCtx, start: usize, out: &mut [T]) -> Result<()> {
        if out.is_empty() {
            return Ok(());
        }
        assert!(start + out.len() <= self.len, "read past end of NvmVec");
        self.app_read_bytes
            .add(out.len() as u64 * Self::elem_size());
        let bytes = bytes_of_mut(out);
        let byte_start = start as u64 * Self::elem_size();
        let sp = self.mount.tracer().span(Layer::Nvm, "nvm.read", ctx.now());
        sp.arg("file", self.file.0).arg("bytes", bytes.len() as u64);
        if self.mount.config().pipelined_io {
            // Pipelined data path (DESIGN.md §8): issue the whole span as
            // one batched mount call — a single yield, one manager RPC for
            // the misses, per-benefactor chains overlapped below.
            ctx.yield_until_min();
            let t = self.mount.read(ctx.now(), self.file, byte_start, bytes)?;
            ctx.advance_to(t);
            sp.finish(t);
            return Ok(());
        }
        self.for_each_segment(byte_start, bytes.len() as u64, |abs, pos, take| {
            ctx.yield_until_min();
            let t = self
                .mount
                .read(ctx.now(), self.file, abs, &mut bytes[pos..pos + take])?;
            ctx.advance_to(t);
            Ok(())
        })?;
        sp.finish(ctx.now());
        Ok(())
    }

    /// Strided read: `count` runs of `run_elems` elements, run `i`
    /// starting at element `start + i*stride_elems`, concatenated into
    /// `out` (which must hold `count * run_elems` elements). This is the
    /// access shape of a column-major traversal over row-major storage.
    pub fn read_strided(
        &self,
        ctx: &mut ProcCtx,
        start: usize,
        run_elems: usize,
        stride_elems: usize,
        count: usize,
        out: &mut [T],
    ) -> Result<()> {
        assert_eq!(out.len(), run_elems * count, "output size mismatch");
        if out.is_empty() {
            return Ok(());
        }
        let es = Self::elem_size();
        self.app_read_bytes.add(out.len() as u64 * es);
        let sp = self
            .mount
            .tracer()
            .span(Layer::Nvm, "nvm.read_strided", ctx.now());
        sp.arg("file", self.file.0)
            .arg("runs", count as u64)
            .arg("bytes", out.len() as u64 * es);
        ctx.yield_until_min();
        let t = self.mount.read_strided(
            ctx.now(),
            self.file,
            start as u64 * es,
            run_elems as u64 * es,
            stride_elems as u64 * es,
            count as u64,
            bytes_of_mut(out),
        )?;
        ctx.advance_to(t);
        sp.finish(t);
        Ok(())
    }

    /// Write `data.len()` elements starting at `start`.
    pub fn write_slice(&self, ctx: &mut ProcCtx, start: usize, data: &[T]) -> Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        assert!(start + data.len() <= self.len, "write past end of NvmVec");
        self.app_write_bytes
            .add(data.len() as u64 * Self::elem_size());
        let bytes = bytes_of(data);
        let byte_start = start as u64 * Self::elem_size();
        let sp = self.mount.tracer().span(Layer::Nvm, "nvm.write", ctx.now());
        sp.arg("file", self.file.0).arg("bytes", bytes.len() as u64);
        if self.mount.config().pipelined_io {
            ctx.yield_until_min();
            let t = self.mount.write(ctx.now(), self.file, byte_start, bytes)?;
            ctx.advance_to(t);
            sp.finish(t);
            return Ok(());
        }
        self.for_each_segment(byte_start, bytes.len() as u64, |abs, pos, take| {
            ctx.yield_until_min();
            let t = self
                .mount
                .write(ctx.now(), self.file, abs, &bytes[pos..pos + take])?;
            ctx.advance_to(t);
            Ok(())
        })?;
        sp.finish(ctx.now());
        Ok(())
    }

    /// Push all dirty cached pages of this variable to the store (used by
    /// checkpointing and before hand-off to other nodes). Flushes one
    /// chunk per engine yield so concurrent flushers interleave correctly;
    /// in pipelined mode the whole file flushes as one batched write
    /// (overlapped per-benefactor chains) under a single yield.
    pub fn flush(&self, ctx: &mut ProcCtx) -> Result<()> {
        let sp = self.mount.tracer().span(Layer::Nvm, "nvm.flush", ctx.now());
        sp.arg("file", self.file.0);
        if self.mount.config().pipelined_io {
            ctx.yield_until_min();
            let t = self.mount.flush_file(ctx.now(), self.file)?;
            ctx.advance_to(t);
            sp.finish(t);
            return Ok(());
        }
        for idx in self.mount.dirty_chunks_of(self.file) {
            ctx.yield_until_min();
            let t = self.mount.flush_chunk(ctx.now(), self.file, idx)?;
            ctx.advance_to(t);
        }
        sp.finish(ctx.now());
        Ok(())
    }
}

/// Type-erased view used by `ssdcheckpoint` to flush + link any variable.
pub trait NvmVariable {
    fn file_id(&self) -> FileId;
    fn byte_len(&self) -> u64;
    fn var_name(&self) -> &str;
    /// Untimed-time variant of flush for the checkpoint path.
    fn flush_at(&self, t: VTime) -> Result<VTime>;
}

impl<T: Pod> NvmVariable for NvmVec<T> {
    fn file_id(&self) -> FileId {
        self.file
    }
    fn byte_len(&self) -> u64 {
        NvmVec::byte_len(self)
    }
    fn var_name(&self) -> &str {
        &self.name
    }
    fn flush_at(&self, t: VTime) -> Result<VTime> {
        self.mount.flush_file(t, self.file)
    }
}

//! Unit tests for the NVMalloc client, running under the simulation
//! engine (timed accesses need a process context).

use crate::client::{AllocOptions, NvmClient};
use crate::vec::NvmVec;
use chunkstore::{AggregateStore, Benefactor, StoreConfig, StripeSpec};
use devices::{Ssd, INTEL_X25E};
use fusemm::{FuseConfig, Mount};
use netsim::{NetConfig, Network};
use simcore::time::bytes::mib;
use simcore::{Engine, ProcCtx, StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

struct World {
    store: AggregateStore,
    stats: StatsRegistry,
}

fn world(benefactors: usize) -> World {
    let stats = StatsRegistry::new();
    let net = Network::new(benefactors + 1, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..benefactors {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(256), CHUNK));
    }
    World { store, stats }
}

fn client(w: &World, node: usize, id: u64) -> NvmClient {
    let mount = Mount::new(w.store.clone(), node, FuseConfig::default(), &w.stats);
    NvmClient::new(mount, id, AllocOptions::default(), &w.stats)
}

/// Run a single simulated process to completion.
fn run1(body: impl FnOnce(&mut ProcCtx) + Send) -> VTime {
    Engine::run(vec![body]).makespan
}

#[test]
fn ssdmalloc_roundtrip_elements() {
    let w = world(2);
    let c = client(&w, 2, 0);
    run1(move |ctx| {
        let v: NvmVec<f64> = c.ssdmalloc(ctx, 1000).unwrap();
        assert_eq!(v.len(), 1000);
        v.set(ctx, 0, 1.5).unwrap();
        v.set(ctx, 999, -2.25).unwrap();
        assert_eq!(v.get(ctx, 0).unwrap(), 1.5);
        assert_eq!(v.get(ctx, 999).unwrap(), -2.25);
        assert_eq!(v.get(ctx, 500).unwrap(), 0.0, "unwritten reads as zero");
        c.ssdfree(ctx, v).unwrap();
    });
}

#[test]
fn slice_io_roundtrip() {
    let w = world(2);
    let c = client(&w, 2, 0);
    run1(move |ctx| {
        let v: NvmVec<u32> = c.ssdmalloc(ctx, 100_000).unwrap();
        let data: Vec<u32> = (0..50_000u32).collect();
        v.write_slice(ctx, 25_000, &data).unwrap();
        let mut out = vec![0u32; 50_000];
        v.read_slice(ctx, 25_000, &mut out).unwrap();
        assert_eq!(out, data);
    });
}

#[test]
fn accesses_advance_virtual_time() {
    let w = world(1);
    let c = client(&w, 1, 0);
    let makespan = run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, (4 * CHUNK) as usize).unwrap();
        let data = vec![1u8; (4 * CHUNK) as usize];
        v.write_slice(ctx, 0, &data).unwrap();
        v.flush(ctx).unwrap();
    });
    // 1 MiB through a remote X25-E at 170 MB/s is ≥ 6 ms.
    assert!(makespan > VTime::from_millis(6), "makespan {makespan}");
}

#[test]
fn ssdfree_deletes_backing_file() {
    let w = world(1);
    let c = client(&w, 1, 0);
    let stats = w.stats.clone();
    run1(move |ctx| {
        let v: NvmVec<u64> = c.ssdmalloc(ctx, 1024).unwrap();
        v.set(ctx, 0, 7).unwrap();
        v.flush(ctx).unwrap();
        let physical = c.mount().store().manager().physical_bytes();
        assert!(physical > 0);
        c.ssdfree(ctx, v).unwrap();
        assert_eq!(c.mount().store().manager().physical_bytes(), 0);
    });
    let _ = stats;
}

#[test]
fn shared_mapping_is_one_file() {
    let w = world(2);
    let c1 = client(&w, 2, 1);
    let c2 = client(&w, 2, 2);
    run1(move |ctx| {
        let a: NvmVec<u64> = c1.ssdmalloc_shared(ctx, "matB", 4096).unwrap();
        let b: NvmVec<u64> = c2.ssdmalloc_shared(ctx, "matB", 4096).unwrap();
        assert_eq!(a.file_id(), b.file_id());
        assert!(a.is_shared());
        a.set(ctx, 17, 99).unwrap();
        a.flush(ctx).unwrap();
        assert_eq!(b.get(ctx, 17).unwrap(), 99);
        // Freeing a shared handle keeps the file.
        c1.ssdfree(ctx, a).unwrap();
        assert_eq!(b.get(ctx, 17).unwrap(), 99);
        c2.ssdfree(ctx, b).unwrap();
        c2.unlink_shared(ctx, "matB").unwrap();
        assert!(c2.unlink_shared(ctx, "matB").is_err(), "already gone");
    });
}

#[test]
#[should_panic(expected = "different size")]
fn shared_mapping_size_mismatch_panics() {
    let w = world(1);
    let c1 = client(&w, 1, 1);
    let c2 = client(&w, 1, 2);
    run1(move |ctx| {
        let _a: NvmVec<u64> = c1.ssdmalloc_shared(ctx, "x", 100).unwrap();
        let _b: NvmVec<u64> = c2.ssdmalloc_shared(ctx, "x", 200).unwrap();
    });
}

#[test]
fn checkpoint_and_restore() {
    let w = world(2);
    let c = client(&w, 2, 0);
    run1(move |ctx| {
        let v: NvmVec<u32> = c.ssdmalloc(ctx, 100_000).unwrap();
        let data: Vec<u32> = (0..100_000u32).map(|i| i * 3).collect();
        v.write_slice(ctx, 0, &data).unwrap();

        let dram_state: Vec<u8> = (0..10_000).map(|i| (i % 253) as u8).collect();
        let ckpt = c.ssdcheckpoint(ctx, "app", &dram_state, &[&v]).unwrap();
        assert_eq!(ckpt.dram_len, 10_000);
        assert_eq!(ckpt.vars.len(), 1);
        assert_eq!(ckpt.vars[0].byte_len, 400_000);

        // Mutate the variable after the checkpoint.
        v.write_slice(ctx, 0, &[u32::MAX; 64]).unwrap();
        v.flush(ctx).unwrap();

        // Restore: DRAM bytes and the frozen variable image.
        let dram = c.restore_dram(ctx, &ckpt).unwrap();
        assert_eq!(dram, dram_state);
        let restored: NvmVec<u32> = c.restore_var(ctx, &ckpt, 0).unwrap();
        let mut out = vec![0u32; 100_000];
        restored.read_slice(ctx, 0, &mut out).unwrap();
        assert_eq!(out, data, "checkpoint image is pre-mutation");
        // The live variable kept the mutation.
        assert_eq!(v.get(ctx, 0).unwrap(), u32::MAX);
    });
}

#[test]
fn checkpoint_links_rather_than_copies() {
    let w = world(2);
    let c = client(&w, 2, 0);
    let stats = w.stats.clone();
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, (8 * CHUNK) as usize).unwrap();
        let data = vec![0xABu8; (8 * CHUNK) as usize];
        v.write_slice(ctx, 0, &data).unwrap();
        v.flush(ctx).unwrap();

        let physical_before = c.mount().store().manager().physical_bytes();
        let from_clients_before = stats.get("store.bytes_from_clients");
        let _ckpt = c.ssdcheckpoint(ctx, "app", &[], &[&v]).unwrap();
        // Linking moved no variable data and allocated no new chunks.
        assert_eq!(
            c.mount().store().manager().physical_bytes(),
            physical_before
        );
        assert_eq!(stats.get("store.bytes_from_clients"), from_clients_before);
    });
}

#[test]
fn incremental_checkpoint_shares_unmodified_chunks() {
    let w = world(2);
    let c = client(&w, 2, 0);
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, (8 * CHUNK) as usize).unwrap();
        v.write_slice(ctx, 0, &vec![1u8; (8 * CHUNK) as usize])
            .unwrap();
        v.flush(ctx).unwrap();
        let base = c.mount().store().manager().physical_bytes();
        assert_eq!(base, 8 * CHUNK);

        let ck1 = c.ssdcheckpoint(ctx, "app", &[], &[&v]).unwrap();
        assert_eq!(c.mount().store().manager().physical_bytes(), base);

        // Dirty exactly one chunk between checkpoints.
        v.write_slice(ctx, 0, &[9u8; 64]).unwrap();
        v.flush(ctx).unwrap(); // COW: +1 chunk
        assert_eq!(c.mount().store().manager().physical_bytes(), base + CHUNK);

        let ck2 = c.ssdcheckpoint(ctx, "app", &[], &[&v]).unwrap();
        // Second checkpoint adds no further physical chunks.
        assert_eq!(c.mount().store().manager().physical_bytes(), base + CHUNK);

        // Both checkpoints readable and distinct.
        let r1: NvmVec<u8> = c.restore_var(ctx, &ck1, 0).unwrap();
        let r2: NvmVec<u8> = c.restore_var(ctx, &ck2, 0).unwrap();
        assert_eq!(r1.get(ctx, 0).unwrap(), 1);
        assert_eq!(r2.get(ctx, 0).unwrap(), 9);
        assert_eq!(r2.get(ctx, 64).unwrap(), 1);
    });
}

#[test]
fn checkpoint_multiple_vars_layout() {
    let w = world(2);
    let c = client(&w, 2, 0);
    run1(move |ctx| {
        let a: NvmVec<u64> = c.ssdmalloc(ctx, 1000).unwrap();
        let b: NvmVec<u64> = c.ssdmalloc(ctx, 2000).unwrap();
        a.write_slice(ctx, 0, &vec![11u64; 1000]).unwrap();
        b.write_slice(ctx, 0, &vec![22u64; 2000]).unwrap();

        let dram = vec![5u8; 1000];
        let ckpt = c.ssdcheckpoint(ctx, "app", &dram, &[&a, &b]).unwrap();
        assert_eq!(ckpt.vars.len(), 2);
        // Regions are chunk-aligned and ordered.
        assert_eq!(ckpt.vars[0].offset, CHUNK);
        assert_eq!(ckpt.vars[1].offset, CHUNK + CHUNK);

        let ra: NvmVec<u64> = c.restore_var(ctx, &ckpt, 0).unwrap();
        let rb: NvmVec<u64> = c.restore_var(ctx, &ckpt, 1).unwrap();
        assert_eq!(ra.get(ctx, 999).unwrap(), 11);
        assert_eq!(rb.get(ctx, 1999).unwrap(), 22);
        assert_eq!(c.restore_dram(ctx, &ckpt).unwrap(), dram);
    });
}

#[test]
fn delete_checkpoint_releases_chunks() {
    let w = world(1);
    let c = client(&w, 1, 0);
    run1(move |ctx| {
        let v: NvmVec<u8> = c.ssdmalloc(ctx, (2 * CHUNK) as usize).unwrap();
        v.write_slice(ctx, 0, &vec![1u8; (2 * CHUNK) as usize])
            .unwrap();
        v.flush(ctx).unwrap();
        let ckpt = c.ssdcheckpoint(ctx, "app", &[], &[&v]).unwrap();
        c.ssdfree(ctx, v).unwrap();
        // Chunks survive via the checkpoint's references.
        assert_eq!(c.mount().store().manager().physical_bytes(), 2 * CHUNK);
        c.delete_checkpoint(ctx, &ckpt).unwrap();
        assert_eq!(c.mount().store().manager().physical_bytes(), 0);
    });
}

#[test]
fn explicit_stripe_options() {
    let w = world(4);
    let c = client(&w, 4, 0);
    run1(move |ctx| {
        let opts = AllocOptions {
            stripe: StripeSpec::count(2),
            ..AllocOptions::default()
        };
        let v: NvmVec<u8> = c.ssdmalloc_opts(ctx, (4 * CHUNK) as usize, &opts).unwrap();
        let meta_stripe_len = {
            let mgr = c.mount().store().manager();
            mgr.file(v.file_id()).unwrap().stripe.len()
        };
        assert_eq!(meta_stripe_len, 2);
    });
}

#[test]
fn app_byte_counters_track_element_accesses() {
    let w = world(1);
    let c = client(&w, 1, 0);
    let stats = w.stats.clone();
    run1(move |ctx| {
        let v: NvmVec<f64> = c.ssdmalloc(ctx, 100).unwrap();
        v.set(ctx, 0, 1.0).unwrap();
        let _ = v.get(ctx, 0).unwrap();
        let _ = v.get(ctx, 1).unwrap();
    });
    assert_eq!(stats.get("nvm.app_write_bytes"), 8);
    assert_eq!(stats.get("nvm.app_read_bytes"), 16);
}

#[test]
fn two_processes_share_one_nvm_variable() {
    // Writer on rank 0, reader on rank 1 — both on the same node share the
    // mount's cache, exercising O_RDWR visibility under the engine.
    let w = world(2);
    let mount = Mount::new(w.store.clone(), 2, FuseConfig::default(), &w.stats);
    let c0 = NvmClient::new(mount.clone(), 0, AllocOptions::default(), &w.stats);
    let c1 = NvmClient::new(mount, 1, AllocOptions::default(), &w.stats);
    let barrier = simcore::Rendezvous::new(2);

    let b0 = barrier.clone();
    let b1 = barrier.clone();
    Engine::run(vec![
        Box::new(move |ctx: &mut ProcCtx| {
            let v: NvmVec<u64> = c0.ssdmalloc_shared(ctx, "v", 64).unwrap();
            v.set(ctx, 3, 42).unwrap();
            b0.barrier(ctx, 0, VTime::ZERO);
        }) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
        Box::new(move |ctx: &mut ProcCtx| {
            b1.barrier(ctx, 1, VTime::ZERO);
            let v: NvmVec<u64> = c1.ssdmalloc_shared(ctx, "v", 64).unwrap();
            assert_eq!(v.get(ctx, 3).unwrap(), 42);
        }),
    ]);
}

//! # nvmalloc — the paper's core library
//!
//! NVMalloc lets applications explicitly allocate and manipulate memory
//! regions on a distributed NVM store, through familiar interfaces:
//!
//! ```text
//! nvmvar[] = ssdmalloc()   →  NvmClient::ssdmalloc  → NvmVec<T>
//! nvmvar[i] = x            →  NvmVec::set / write_slice
//! x = nvmvar[i]            →  NvmVec::get / read_slice
//! ssdfree(nvmvar)          →  NvmClient::ssdfree
//! ssdcheckpoint()          →  NvmClient::ssdcheckpoint
//! ```
//!
//! Under the covers, each allocation creates an internally-named file on
//! the aggregate store, `posix_fallocate`s it across a benefactor stripe
//! and "memory-maps" it: every element access routes through the node's
//! FUSE-equivalent chunk cache, exactly as the paper's mmap-over-FUSE
//! stack does. Checkpoints copy DRAM state but *link* NVM-variable chunks
//! (copy-on-write), making incremental checkpointing automatic.

pub mod client;
pub mod pod;
pub mod vec;

#[cfg(test)]
mod tests;

pub use client::{AllocOptions, Checkpoint, NvmClient, VarRecord};
pub use pod::{bytes_of, bytes_of_mut, Pod};
pub use vec::{NvmVariable, NvmVec};

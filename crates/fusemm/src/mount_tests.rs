//! Unit tests for the mount data path.

use crate::mount::{FuseConfig, Mount};
use chunkstore::{
    AggregateStore, Benefactor, FileId, PlacementPolicy, StoreConfig, StoreError, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use simcore::time::bytes::mib;
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

/// 3-node world: manager+benefactor on node 0, benefactor on node 1,
/// client mount on node 2.
fn world(cfg: FuseConfig) -> (Mount, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(3, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in [0usize, 1] {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(256), CHUNK));
    }
    (Mount::new(store, 2, cfg, &stats), stats)
}

fn small_cache() -> FuseConfig {
    FuseConfig {
        cache_bytes: 2 * CHUNK, // two entries
        read_ahead_chunks: 0,
        ..FuseConfig::default()
    }
}

fn mk_file(m: &Mount, name: &str, size: u64) -> FileId {
    m.create(
        VTime::ZERO,
        name,
        size,
        StripeSpec::all(),
        PlacementPolicy::RoundRobin,
    )
    .unwrap()
    .1
}

#[test]
fn write_read_roundtrip_through_cache() {
    let (m, _) = world(small_cache());
    let f = mk_file(&m, "/v", 4 * CHUNK);
    let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
    let t = m.write(VTime::ZERO, f, 123_456, &data).unwrap();
    let mut out = vec![0u8; data.len()];
    m.read(t, f, 123_456, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn reads_of_unwritten_space_are_zero() {
    let (m, _) = world(small_cache());
    let f = mk_file(&m, "/v", 2 * CHUNK);
    let mut out = vec![0xFFu8; 100];
    m.read(VTime::ZERO, f, CHUNK - 50, &mut out).unwrap();
    assert!(out.iter().all(|&b| b == 0));
}

#[test]
fn cache_hit_avoids_store_traffic() {
    let (m, stats) = world(small_cache());
    let f = mk_file(&m, "/v", 2 * CHUNK);
    let mut buf = [0u8; 64];
    let t = m.read(VTime::ZERO, f, 0, &mut buf).unwrap();
    let fetches = stats.get("store.chunk_fetches");
    let t2 = m.read(t, f, 64, &mut buf).unwrap();
    assert_eq!(stats.get("store.chunk_fetches"), fetches, "hit: no fetch");
    assert_eq!(stats.get("fuse.hits"), 1);
    // A hit costs only the FUSE op overhead.
    assert_eq!(t2 - t, FuseConfig::default().op_overhead);
}

#[test]
fn eviction_writes_back_only_dirty_pages() {
    let (m, stats) = world(small_cache());
    let f = mk_file(&m, "/v", 8 * CHUNK);
    // Dirty one page of chunk 0.
    let page = vec![1u8; 4096];
    let mut t = m.write(VTime::ZERO, f, 0, &page).unwrap();
    // Touch chunks 1, 2 → evicts chunk 0 (capacity 2).
    let mut buf = [0u8; 8];
    t = m.read(t, f, CHUNK, &mut buf).unwrap();
    t = m.read(t, f, 2 * CHUNK, &mut buf).unwrap();
    let _ = t;
    assert_eq!(stats.get("fuse.writeback_bytes"), 4096);
    assert_eq!(stats.get("store.bytes_from_clients"), 4096);
    assert!(stats.get("fuse.evictions") >= 1);
}

#[test]
fn pipelined_eviction_counts_async_writebacks() {
    let cfg = FuseConfig {
        cache_bytes: 2 * CHUNK,
        read_ahead_chunks: 0,
        pipelined_io: true,
        ..FuseConfig::default()
    };
    let (m, stats) = world(cfg);
    let f = mk_file(&m, "/v", 8 * CHUNK);
    // Dirty one page of chunk 0, then stream chunks 1 and 2 through the
    // 2-entry cache: the second miss must evict dirty chunk 0 through the
    // asynchronous batched write-back (make_room_n), not a synchronous
    // flush.
    let page = vec![1u8; 4096];
    let t = m.write(VTime::ZERO, f, 0, &page).unwrap();
    assert_eq!(stats.get("fuse.async_writebacks"), 0);
    let mut buf = [0u8; 8];
    let t = m.read(t, f, CHUNK, &mut buf).unwrap();
    let t = m.read(t, f, 2 * CHUNK, &mut buf).unwrap();
    assert_eq!(stats.get("fuse.async_writebacks"), 1);
    assert_eq!(stats.get("fuse.writeback_bytes"), 4096);
    assert_eq!(stats.get("store.bytes_from_clients"), 4096);
    // The background write still landed: chunk 0 re-reads with the data.
    let mut back = vec![0u8; 4096];
    m.read(t, f, 0, &mut back).unwrap();
    assert_eq!(back, page);
}

#[test]
fn whole_chunk_writeback_without_optimization() {
    let cfg = FuseConfig {
        dirty_page_writeback: false,
        ..small_cache()
    };
    let (m, stats) = world(cfg);
    let f = mk_file(&m, "/v", 8 * CHUNK);
    let page = vec![1u8; 4096];
    let mut t = m.write(VTime::ZERO, f, 0, &page).unwrap();
    let mut buf = [0u8; 8];
    t = m.read(t, f, CHUNK, &mut buf).unwrap();
    t = m.read(t, f, 2 * CHUNK, &mut buf).unwrap();
    let _ = t;
    assert_eq!(stats.get("fuse.writeback_bytes"), CHUNK);
}

#[test]
fn evicted_dirty_data_survives() {
    let (m, _) = world(small_cache());
    let f = mk_file(&m, "/v", 8 * CHUNK);
    let data = vec![0x5Au8; 5000];
    let mut t = m.write(VTime::ZERO, f, 100, &data).unwrap();
    // Force eviction of chunk 0 by touching three other chunks.
    let mut buf = [0u8; 8];
    for i in 1..=3 {
        t = m.read(t, f, i * CHUNK, &mut buf).unwrap();
    }
    let mut out = vec![0u8; data.len()];
    m.read(t, f, 100, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn o_rdwr_visibility_across_mounts() {
    // Two mounts on different nodes; a write through one is immediately
    // readable through the other once flushed (shared backing store) —
    // and *within* one node, immediately even without a flush.
    let stats = StatsRegistry::new();
    let net = Network::new(3, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    let ssd = Ssd::new("b0.ssd", INTEL_X25E, &stats);
    store.add_benefactor(Benefactor::new(0, ssd, mib(256), CHUNK));
    let m1 = Mount::new(store.clone(), 1, FuseConfig::default(), &stats);
    let m2 = Mount::new(store.clone(), 2, FuseConfig::default(), &stats);

    let f = mk_file(&m1, "/shared", CHUNK);
    let data = vec![9u8; 1000];
    let mut t = m1.write(VTime::ZERO, f, 0, &data).unwrap();
    t = m1.flush_file(t, f).unwrap();

    let (t2, found) = m2.open(t, "/shared").unwrap();
    assert_eq!(found, Some(f));
    let mut out = vec![0u8; 1000];
    m2.read(t2, f, 0, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn flush_clears_dirty_but_keeps_cached() {
    let (m, stats) = world(small_cache());
    let f = mk_file(&m, "/v", 2 * CHUNK);
    let data = vec![3u8; 100];
    let t = m.write(VTime::ZERO, f, 0, &data).unwrap();
    let t = m.flush_file(t, f).unwrap();
    assert_eq!(stats.get("fuse.writeback_bytes"), 4096);
    // Second flush: nothing dirty.
    m.flush_all(t).unwrap();
    assert_eq!(stats.get("fuse.writeback_bytes"), 4096);
    // Still a cache hit afterwards.
    let hits = stats.get("fuse.hits");
    let mut out = vec![0u8; 100];
    m.read(t, f, 0, &mut out).unwrap();
    assert_eq!(stats.get("fuse.hits"), hits + 1);
    assert_eq!(out, data);
}

#[test]
fn sequential_read_triggers_readahead() {
    let cfg = FuseConfig {
        cache_bytes: 8 * CHUNK,
        read_ahead_chunks: 1,
        ..FuseConfig::default()
    };
    let (m, stats) = world(cfg);
    let f = mk_file(&m, "/v", 8 * CHUNK);
    // Materialize all chunks so prefetch has real data to pull.
    let big = vec![1u8; (8 * CHUNK) as usize];
    let t = m.write(VTime::ZERO, f, 0, &big).unwrap();
    let t = m.flush_file(t, f).unwrap();

    // Fresh mount (cold cache) on the same node type.
    let (m2, stats2) = (m.clone(), stats.clone());
    {
        // Invalidate by deleting… instead, just use a new mount instance.
    }
    let m3 = Mount::new(m2.store().clone(), 2, cfg, &stats2);
    let mut buf = vec![0u8; CHUNK as usize];
    let t1 = m3.read(t, f, 0, &mut buf).unwrap(); // miss, not sequential yet
    assert_eq!(stats2.get("fuse.readahead_fetches"), 0);
    let t2 = m3.read(t1, f, CHUNK, &mut buf).unwrap(); // sequential → prefetch
    assert!(stats2.get("fuse.readahead_fetches") >= 1);
    // Third chunk is already resident: hit.
    let misses = stats2.get("fuse.misses");
    m3.read(t2, f, 2 * CHUNK, &mut buf).unwrap();
    assert_eq!(
        stats2.get("fuse.misses"),
        misses,
        "prefetched chunk is a hit"
    );
}

#[test]
fn random_reads_do_not_prefetch() {
    let cfg = FuseConfig {
        cache_bytes: 8 * CHUNK,
        read_ahead_chunks: 2,
        ..FuseConfig::default()
    };
    let (m, stats) = world(cfg);
    let f = mk_file(&m, "/v", 8 * CHUNK);
    let mut buf = [0u8; 64];
    let mut t = m.read(VTime::ZERO, f, 5 * CHUNK, &mut buf).unwrap();
    t = m.read(t, f, 2 * CHUNK, &mut buf).unwrap();
    m.read(t, f, 7 * CHUNK, &mut buf).unwrap();
    assert_eq!(stats.get("fuse.readahead_fetches"), 0);
}

#[test]
fn out_of_bounds_rejected() {
    let (m, _) = world(small_cache());
    let f = mk_file(&m, "/v", CHUNK);
    let mut buf = [0u8; 2];
    let err = m.read(VTime::ZERO, f, CHUNK - 1, &mut buf).unwrap_err();
    assert!(matches!(err, StoreError::OutOfBounds { .. }));
    let err = m.write(VTime::ZERO, f, CHUNK, &[1]).unwrap_err();
    assert!(matches!(err, StoreError::OutOfBounds { .. }));
}

#[test]
fn delete_discards_cache_and_file() {
    let (m, _) = world(small_cache());
    let f = mk_file(&m, "/v", CHUNK);
    let t = m.write(VTime::ZERO, f, 0, &[1, 2, 3]).unwrap();
    let t = m.delete(t, f).unwrap();
    let mut buf = [0u8; 1];
    let err = m.read(t, f, 0, &mut buf).unwrap_err();
    assert_eq!(err, StoreError::NoSuchFile);
    // Name can be reused.
    mk_file(&m, "/v", CHUNK);
}

#[test]
fn request_bytes_counted_at_page_granularity() {
    let (m, stats) = world(small_cache());
    let f = mk_file(&m, "/v", CHUNK);
    // A single-byte write arrives at FUSE as one 4 KiB page.
    m.write(VTime::ZERO, f, 10, &[7]).unwrap();
    assert_eq!(stats.get("fuse.write_req_bytes"), 4096);
    let mut b = [0u8; 1];
    m.read(VTime::ZERO, f, 4095, &mut b).unwrap();
    assert_eq!(stats.get("fuse.read_req_bytes"), 4096);
    // A straddling 2-byte read touches two pages.
    let mut b2 = [0u8; 2];
    m.read(VTime::ZERO, f, 4095, &mut b2).unwrap();
    assert_eq!(stats.get("fuse.read_req_bytes"), 4096 + 8192);
}

#[test]
fn failover_is_transparent_to_the_mount() {
    // A replicated file keeps serving reads through the FUSE layer after
    // its primary benefactor dies — no error surfaces, only the
    // store-level failover counters move.
    let (m, stats) = world(small_cache());
    let f = m
        .create(
            VTime::ZERO,
            "/v",
            4 * CHUNK,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap()
        .1;
    let data: Vec<u8> = (0..(2 * CHUNK as usize)).map(|i| (i % 251) as u8).collect();
    let t = m.write(VTime::ZERO, f, 0, &data).unwrap();
    let t = m.flush_file(t, f).unwrap();

    m.store()
        .set_benefactor_alive(chunkstore::BenefactorId(0), false);
    // A cold mount forces every read through the (degraded) store.
    let m2 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; data.len()];
    m2.read(t, f, 0, &mut out).unwrap();
    assert_eq!(out, data);
    assert!(stats.get("store.failovers") > 0);
    assert!(stats.get("store.degraded_reads") > 0);
}

#[test]
fn local_benefactor_faster_than_remote() {
    // Mount on node 0 (co-located with benefactor 0) vs mount on node 2.
    let stats = StatsRegistry::new();
    let net = Network::new(3, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    let ssd = Ssd::new("b0.ssd", INTEL_X25E, &stats);
    store.add_benefactor(Benefactor::new(0, ssd, mib(256), CHUNK));

    let cfg = FuseConfig {
        read_ahead_chunks: 0,
        ..FuseConfig::default()
    };
    let local = Mount::new(store.clone(), 0, cfg, &stats);
    let remote = Mount::new(store.clone(), 2, cfg, &stats);

    let f = mk_file(&local, "/v", 4 * CHUNK);
    let big = vec![1u8; (4 * CHUNK) as usize];
    let t0 = local.write(VTime::ZERO, f, 0, &big).unwrap();
    let t0 = local.flush_file(t0, f).unwrap();

    let mut buf = vec![0u8; CHUNK as usize];
    let t_local = local.read(t0, f, 2 * CHUNK, &mut buf).unwrap() - t0;

    let t_remote = remote.read(t0, f, 3 * CHUNK, &mut buf).unwrap() - t0;
    assert!(
        t_remote > t_local,
        "remote {t_remote} should exceed local {t_local}"
    );
}

//! The mount point: `/mnt/aggregatenvm` as seen by one compute node.
//!
//! Implements the paper's §III-D data path:
//!
//! * **reads** resolve to chunk fetches; a miss pulls the whole 256 KiB
//!   chunk from its benefactor into the node's LRU cache, so subsequent
//!   byte accesses in the chunk are hits (this *is* the read-ahead effect
//!   Table III credits NVMalloc with); sequential streams additionally
//!   prefetch ahead asynchronously;
//! * **writes** fetch the target chunk on a miss (read-modify-write),
//!   update it in cache and mark 4 KiB pages dirty;
//! * **eviction** (LRU) ships only the dirty pages to the owning
//!   benefactor — the write optimization of Table VII — or the whole
//!   chunk when `dirty_page_writeback` is disabled for the ablation.
//!
//! Requests reaching this layer are counted at OS-page granularity, the
//! same units the paper's Table IV/VII report for "requests to FUSE":
//! mmap faults and page-cache write-backs arrive page-sized.

use crate::cache::{CacheEntry, ChunkCache, ChunkKey};
use chunkstore::{
    AggregateStore, BatchWrite, ChunkPayload, FileId, LocationCache, PlacementPolicy, Result,
    StoreError, StripeSpec,
};
use obs::{Layer, TraceRecorder};
use parking_lot::Mutex;
use simcore::{Counter, StatsRegistry, VTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Mount configuration (per compute node).
#[derive(Clone, Copy, Debug)]
pub struct FuseConfig {
    /// Client cache size in bytes; the paper's evaluation uses 64 MiB.
    pub cache_bytes: u64,
    /// Chunks to prefetch ahead of a detected sequential read stream.
    pub read_ahead_chunks: usize,
    /// Ship only dirty pages at eviction (true = the paper's optimization;
    /// false = whole-chunk write-back, the Table VII baseline).
    pub dirty_page_writeback: bool,
    /// User/kernel crossing cost charged per FUSE operation.
    pub op_overhead: VTime,
    /// Overlapped data path (DESIGN.md §8): multi-chunk spans fetch and
    /// flush through the store's batched APIs (one manager RPC per batch,
    /// per-benefactor chains overlapped, chunk-location cache), dirty
    /// eviction becomes asynchronous, and read-ahead depth ramps
    /// 1→`read_ahead_chunks` on a sustained stream. Off by default so the
    /// paper-fidelity benches keep the serial §III-D data path.
    pub pipelined_io: bool,
    /// Write-back daemon (DESIGN.md §10): when the dirty-chunk ratio of
    /// the cache exceeds this, a background flusher batch starts cleaning
    /// the oldest dirty chunks without charging the foreground clock.
    /// `1.0` (the default) disables the daemon — dirty chunks are only
    /// written back at eviction, today's demand path.
    pub dirty_background_ratio: f64,
    /// When the dirty-chunk ratio would exceed this, foreground writers
    /// stall behind the flusher until it drains (the Linux
    /// `balance_dirty_pages` analogue). `1.0` (the default) never
    /// throttles. Must be >= `dirty_background_ratio`.
    pub dirty_hard_ratio: f64,
    /// Segmented (probation/protected) scan-resistant cache with
    /// clean-first victim selection (DESIGN.md §10). Off by default: the
    /// plain LRU keeps the paper-fidelity expectations bit-identical.
    pub seg_cache: bool,
}

impl Default for FuseConfig {
    fn default() -> Self {
        FuseConfig {
            cache_bytes: 64 * 1024 * 1024,
            read_ahead_chunks: 1,
            dirty_page_writeback: true,
            op_overhead: VTime::from_micros(4),
            pipelined_io: false,
            dirty_background_ratio: 1.0,
            dirty_hard_ratio: 1.0,
            seg_cache: false,
        }
    }
}

impl FuseConfig {
    /// Enable the write-back daemon: background flushing past
    /// `background` dirty ratio, writer throttling past `hard`.
    pub fn with_writeback(mut self, background: f64, hard: f64) -> Self {
        self.dirty_background_ratio = background;
        self.dirty_hard_ratio = hard;
        self
    }

    /// Enable the segmented scan-resistant cache.
    pub fn with_seg_cache(mut self) -> Self {
        self.seg_cache = true;
        self
    }
}

/// How many concurrent sequential streams per file the read-ahead
/// detector tracks (one mmap'd file is commonly streamed by every process
/// on the node at different offsets).
const SEQ_CURSORS: usize = 16;

struct MountState {
    cache: ChunkCache,
    /// Per-file `(expected next offset, streak length)` of detected
    /// streams (read-ahead detector); newest cursor last. The streak
    /// counts consecutive continuations and drives the adaptive
    /// read-ahead ramp in pipelined mode.
    seq: HashMap<FileId, Vec<(u64, u32)>>,
    /// When the background flusher's in-flight batch completes; the
    /// daemon is idle (can take a new batch) at any `t >=` this.
    flusher_busy_until: VTime,
}

impl MountState {
    /// Record a read `[offset, end)`; returns the stream's streak length:
    /// 0 for a fresh cursor, `n ≥ 1` after `n` consecutive continuations.
    fn note_read(&mut self, file: FileId, offset: u64, end: u64) -> u32 {
        let cursors = self.seq.entry(file).or_default();
        if let Some(pos) = cursors.iter().position(|&(c, _)| c == offset) {
            let (_, streak) = cursors.remove(pos);
            let streak = streak.saturating_add(1);
            cursors.push((end, streak));
            streak
        } else {
            if cursors.len() >= SEQ_CURSORS {
                cursors.remove(0);
            }
            cursors.push((end, 0));
            0
        }
    }
}

/// One chunk-aligned piece of a byte span: where it sits in the chunk and
/// where it sits in the caller's buffer.
#[derive(Clone, Copy, Debug)]
struct Seg {
    idx: usize,
    within: usize,
    pos: usize,
    take: usize,
}

/// Split `[offset, offset+len)` into chunk-aligned segments, with caller
/// buffer positions starting at `pos_base`.
fn segments_of(offset: u64, len: u64, cs: u64, pos_base: usize, out: &mut Vec<Seg>) {
    let mut pos = 0u64;
    while pos < len {
        let abs = offset + pos;
        let idx = (abs / cs) as usize;
        let within = (abs % cs) as usize;
        let take = ((cs - abs % cs).min(len - pos)) as usize;
        out.push(Seg {
            idx,
            within,
            pos: pos_base + pos as usize,
            take,
        });
        pos += take as u64;
    }
}

/// Direction of a pipelined span: fill the caller's buffer from cache, or
/// apply the caller's data to cache (marking dirty pages).
enum SpanIo<'a> {
    Read(&'a mut [u8]),
    Write(&'a [u8]),
}

/// A node's view of the aggregate store. Shared by all processes on the
/// node — that sharing is what makes the paper's "shared mmap file"
/// optimization effective.
#[derive(Clone)]
pub struct Mount {
    store: AggregateStore,
    node: usize,
    cfg: FuseConfig,
    state: Arc<Mutex<MountState>>,
    /// Client-side chunk-location cache feeding the batched fetch path
    /// (only consulted when `pipelined_io` is on).
    loc_cache: LocationCache,
    trace: TraceRecorder,
    read_req_bytes: Counter,
    write_req_bytes: Counter,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writeback_bytes: Counter,
    readahead_fetches: Counter,
    async_writebacks: Counter,
    bg_flushes: Counter,
    bg_writeback_bytes: Counter,
    throttled_writes: Counter,
    clean_evictions: Counter,
    scan_protected_hits: Counter,
}

impl Mount {
    pub fn new(store: AggregateStore, node: usize, cfg: FuseConfig, stats: &StatsRegistry) -> Self {
        let chunk = store.config().chunk_size;
        let page = store.config().page_size;
        let capacity = (cfg.cache_bytes / chunk).max(1) as usize;
        assert!(
            cfg.dirty_background_ratio > 0.0 && cfg.dirty_background_ratio <= 1.0,
            "dirty_background_ratio out of (0, 1]"
        );
        assert!(
            cfg.dirty_hard_ratio >= cfg.dirty_background_ratio && cfg.dirty_hard_ratio <= 1.0,
            "dirty_hard_ratio must be within [dirty_background_ratio, 1]"
        );
        let pages = (chunk / page) as usize;
        let cache = if cfg.seg_cache {
            ChunkCache::new_segmented(capacity, pages)
        } else {
            ChunkCache::new(capacity, pages)
        };
        Mount {
            store,
            node,
            cfg,
            state: Arc::new(Mutex::new(MountState {
                cache,
                seq: HashMap::new(),
                flusher_busy_until: VTime::ZERO,
            })),
            loc_cache: LocationCache::new(stats),
            trace: TraceRecorder::disabled(),
            read_req_bytes: stats.counter("fuse.read_req_bytes"),
            write_req_bytes: stats.counter("fuse.write_req_bytes"),
            hits: stats.counter("fuse.hits"),
            misses: stats.counter("fuse.misses"),
            evictions: stats.counter("fuse.evictions"),
            writeback_bytes: stats.counter("fuse.writeback_bytes"),
            readahead_fetches: stats.counter("fuse.readahead_fetches"),
            async_writebacks: stats.counter("fuse.async_writebacks"),
            bg_flushes: stats.counter("fuse.bg_flushes"),
            bg_writeback_bytes: stats.counter("fuse.bg_writeback_bytes"),
            throttled_writes: stats.counter("fuse.throttled_writes"),
            clean_evictions: stats.counter("fuse.clean_evictions"),
            scan_protected_hits: stats.counter("fuse.scan_protected_hits"),
        }
    }

    /// Attach a trace recorder (builder style; clones share it). FUSE-layer
    /// operations become `fuse.*` spans with store/net/device children.
    pub fn with_tracer(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// The mount's trace recorder (disabled unless attached); `nvmalloc`
    /// borrows it so client-layer spans parent the FUSE spans.
    pub fn tracer(&self) -> &TraceRecorder {
        &self.trace
    }

    pub fn node(&self) -> usize {
        self.node
    }

    pub fn store(&self) -> &AggregateStore {
        &self.store
    }

    pub fn config(&self) -> &FuseConfig {
        &self.cfg
    }

    fn chunk_size(&self) -> u64 {
        self.store.config().chunk_size
    }

    fn page_size(&self) -> u64 {
        self.store.config().page_size
    }

    /// Bytes rounded to whole OS pages (how requests arrive at FUSE).
    fn page_rounded(&self, offset: u64, len: u64) -> u64 {
        let ps = self.page_size();
        let first = offset / ps;
        let last = (offset + len - 1) / ps;
        (last - first + 1) * ps
    }

    // ----- namespace operations ---------------------------------------------

    /// Create + fallocate a file (the backing object of an `ssdmalloc`).
    pub fn create(
        &self,
        t: VTime,
        name: &str,
        size: u64,
        stripe: StripeSpec,
        placement: PlacementPolicy,
    ) -> Result<(VTime, FileId)> {
        let (t, id) = self.store.create_file(t, self.node, name)?;
        let t = self
            .store
            .fallocate(t, self.node, id, size, stripe, placement)?;
        Ok((t, id))
    }

    /// Open an existing file by name (O_RDWR semantics: writes through any
    /// mount are immediately visible to reads through any other). The
    /// lookup is a namespace RPC — routed through the placement ring's
    /// root shard when the sharded manager is on — so it can fail with
    /// [`chunkstore::StoreError::ShardDown`] like any other metadata op.
    pub fn open(&self, t: VTime, name: &str) -> Result<(VTime, Option<FileId>)> {
        self.store.open(t, self.node, name)
    }

    /// Drop a file: discard cached chunks (no write-back — the file is
    /// going away) and delete it from the store.
    pub fn delete(&self, t: VTime, file: FileId) -> Result<VTime> {
        {
            let mut st = self.state.lock();
            for key in st.cache.keys_of_file(file) {
                st.cache.remove(&key);
            }
            st.seq.remove(&file);
        }
        self.store.delete(t, self.node, file)
    }

    pub fn file_size(&self, file: FileId) -> Result<u64> {
        self.store.file_size(file)
    }

    // ----- data path ---------------------------------------------------------

    /// Byte-granular read: `buf` is filled from `file[offset..]`.
    pub fn read(&self, mut t: VTime, file: FileId, offset: u64, buf: &mut [u8]) -> Result<VTime> {
        if buf.is_empty() {
            return Ok(t);
        }
        self.bounds_check(file, offset, buf.len() as u64)?;
        self.read_req_bytes
            .add(self.page_rounded(offset, buf.len() as u64));
        let sp = self.trace.span(Layer::Fuse, "fuse.read", t);
        sp.arg("file", file.0).arg("bytes", buf.len() as u64);
        t += self.cfg.op_overhead;

        // Foreground reads give the flusher a chance to clean concurrently
        // (the daemon is driven from mount operations, like fault polling).
        if self.writeback_daemon_on() {
            let mut st = self.state.lock();
            self.kick_bg_flush(&mut st, t);
        }

        let cs = self.chunk_size();
        if self.cfg.pipelined_io {
            let mut segs = Vec::new();
            segments_of(offset, buf.len() as u64, cs, 0, &mut segs);
            t = self.pipelined_span(t, file, &segs, SpanIo::Read(buf))?;
        } else {
            let mut pos = 0usize;
            while pos < buf.len() {
                let abs = offset + pos as u64;
                let idx = (abs / cs) as usize;
                let within = (abs % cs) as usize;
                let take = (cs as usize - within).min(buf.len() - pos);
                t = self.ensure_chunk(t, file, idx)?;
                {
                    let mut st = self.state.lock();
                    let entry = st.cache.peek_mut(&(file, idx)).expect("just ensured");
                    buf[pos..pos + take].copy_from_slice(&entry.data[within..within + take]);
                }
                pos += take;
            }
        }

        // Sequential stream detection → asynchronous read-ahead. In
        // pipelined mode the depth ramps with the streak (a one-off
        // continuation prefetches one chunk; a sustained stream earns the
        // full configured depth); the serial path keeps the fixed depth.
        let streak = {
            let mut st = self.state.lock();
            st.note_read(file, offset, offset + buf.len() as u64)
        };
        if streak > 0 && self.cfg.read_ahead_chunks > 0 {
            let depth = if self.cfg.pipelined_io {
                (streak as usize).min(self.cfg.read_ahead_chunks)
            } else {
                self.cfg.read_ahead_chunks
            };
            self.read_ahead(t, file, offset + buf.len() as u64, depth)?;
        }
        sp.finish(t);
        Ok(t)
    }

    /// Strided read: `count` runs of `run_len` bytes, the i-th starting at
    /// `offset + i*stride`, concatenated into `out`.
    ///
    /// This is how a column-major traversal of a row-major matrix reaches
    /// the mmap layer: many short runs at a large stride. One call charges
    /// the whole burst (each run costs page-rounded request traffic and a
    /// chunk fetch on a miss) without per-run scheduler overhead.
    #[allow(clippy::too_many_arguments)]
    pub fn read_strided(
        &self,
        mut t: VTime,
        file: FileId,
        offset: u64,
        run_len: u64,
        stride: u64,
        count: u64,
        out: &mut [u8],
    ) -> Result<VTime> {
        assert!(run_len > 0 && count > 0, "empty strided read");
        assert!(stride >= run_len, "overlapping strided runs");
        assert_eq!(out.len() as u64, run_len * count, "output size mismatch");
        let last_end = offset + (count - 1) * stride + run_len;
        self.bounds_check(file, offset, last_end - offset)?;
        let sp = self.trace.span(Layer::Fuse, "fuse.read_strided", t);
        sp.arg("file", file.0)
            .arg("runs", count)
            .arg("bytes", run_len * count);
        t += self.cfg.op_overhead;

        let cs = self.chunk_size();
        if self.cfg.pipelined_io {
            let mut segs = Vec::new();
            for r in 0..count {
                let start = offset + r * stride;
                self.read_req_bytes.add(self.page_rounded(start, run_len));
                segments_of(start, run_len, cs, (r * run_len) as usize, &mut segs);
            }
            t = self.pipelined_span(t, file, &segs, SpanIo::Read(out))?;
        } else {
            for r in 0..count {
                let start = offset + r * stride;
                self.read_req_bytes.add(self.page_rounded(start, run_len));
                let out_base = (r * run_len) as usize;
                let mut pos = 0usize;
                while (pos as u64) < run_len {
                    let abs = start + pos as u64;
                    let idx = (abs / cs) as usize;
                    let within = (abs % cs) as usize;
                    let take = (cs as usize - within).min((run_len as usize) - pos);
                    t = self.ensure_chunk(t, file, idx)?;
                    let mut st = self.state.lock();
                    let entry = st.cache.peek_mut(&(file, idx)).expect("just ensured");
                    out[out_base + pos..out_base + pos + take]
                        .copy_from_slice(&entry.data[within..within + take]);
                    pos += take;
                }
            }
        }
        // A strided burst is not a sequential stream — but it must only
        // disturb streams it actually collided with: drop the cursors whose
        // expected next offset falls inside the strided range, and leave
        // unrelated streams (other regions of the file) intact.
        {
            let mut st = self.state.lock();
            if let Some(cursors) = st.seq.get_mut(&file) {
                cursors.retain(|&(c, _)| c < offset || c >= last_end);
                if cursors.is_empty() {
                    st.seq.remove(&file);
                }
            }
        }
        sp.finish(t);
        Ok(t)
    }

    /// Byte-granular write from `data` into `file[offset..]`.
    pub fn write(&self, mut t: VTime, file: FileId, offset: u64, data: &[u8]) -> Result<VTime> {
        if data.is_empty() {
            return Ok(t);
        }
        self.bounds_check(file, offset, data.len() as u64)?;
        self.write_req_bytes
            .add(self.page_rounded(offset, data.len() as u64));
        let sp = self.trace.span(Layer::Fuse, "fuse.write", t);
        sp.arg("file", file.0).arg("bytes", data.len() as u64);
        t += self.cfg.op_overhead;

        let cs = self.chunk_size();
        if self.cfg.pipelined_io {
            let mut segs = Vec::new();
            segments_of(offset, data.len() as u64, cs, 0, &mut segs);
            let end = self.pipelined_span(t, file, &segs, SpanIo::Write(data))?;
            sp.finish(end);
            return Ok(end);
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let idx = (abs / cs) as usize;
            let within = abs % cs;
            let take = ((cs - within) as usize).min(data.len() - pos);
            // Read-modify-write: a miss pulls the chunk first (§III-D).
            t = self.ensure_chunk(t, file, idx)?;
            {
                let mut st = self.state.lock();
                let entry = st.cache.peek_mut(&(file, idx)).expect("just ensured");
                entry.data[within as usize..within as usize + take]
                    .copy_from_slice(&data[pos..pos + take]);
                t = self.note_write(&mut st, t, (file, idx), within, within + take as u64)?;
            }
            pos += take;
        }
        sp.finish(t);
        Ok(t)
    }

    /// Write back every dirty page of `file`, keeping chunks cached clean.
    /// Used by `ssdcheckpoint()` before chunk linking and by close paths.
    pub fn flush_file(&self, mut t: VTime, file: FileId) -> Result<VTime> {
        let keys = { self.state.lock().cache.keys_of_file(file) };
        let sp = self.trace.span(Layer::Fuse, "fuse.flush", t);
        sp.arg("file", file.0).arg("chunks", keys.len() as u64);
        if self.cfg.pipelined_io {
            let end = self.flush_keys_batched(t, &keys)?;
            sp.finish(end);
            return Ok(end);
        }
        for key in keys {
            t = self.flush_entry(t, key)?;
        }
        sp.finish(t);
        Ok(t)
    }

    /// The dirty cached chunk indices of `file` (for callers that flush
    /// incrementally, yielding to a scheduler between chunks).
    pub fn dirty_chunks_of(&self, file: FileId) -> Vec<usize> {
        let st = self.state.lock();
        st.cache
            .keys_of_file(file)
            .into_iter()
            .filter(|k| st.cache.peek(k).map(|e| e.dirty.any()).unwrap_or(false))
            .map(|(_, idx)| idx)
            .collect()
    }

    /// Write back one chunk's dirty pages.
    pub fn flush_chunk(&self, t: VTime, file: FileId, idx: usize) -> Result<VTime> {
        self.flush_entry(t, (file, idx))
    }

    /// Write back every dirty chunk of every file on this mount.
    pub fn flush_all(&self, mut t: VTime) -> Result<VTime> {
        let keys = { self.state.lock().cache.dirty_keys() };
        let sp = self.trace.span(Layer::Fuse, "fuse.flush", t);
        sp.arg("chunks", keys.len() as u64);
        if self.cfg.pipelined_io {
            let end = self.flush_keys_batched(t, &keys)?;
            sp.finish(end);
            return Ok(end);
        }
        for key in keys {
            t = self.flush_entry(t, key)?;
        }
        sp.finish(t);
        Ok(t)
    }

    /// Write back one chunk's dirty pages, shipping slices borrowed from
    /// the cache entry under the state lock — no intermediate copy. The
    /// dirty bits are cleared only after the store accepts the write, so a
    /// failed flush leaves the pages dirty for a retry.
    fn flush_entry(&self, t: VTime, key: ChunkKey) -> Result<VTime> {
        let mut st = self.state.lock();
        let Some(entry) = st.cache.peek(&key) else {
            return Ok(t);
        };
        if !entry.dirty.any() {
            return Ok(t);
        }
        let runs = entry.dirty.runs(self.page_size());
        let updates: Vec<(u64, &[u8])> = runs
            .iter()
            .map(|&(off, len)| (off, &entry.data[off as usize..(off + len) as usize]))
            .collect();
        let bytes: u64 = updates.iter().map(|(_, d)| d.len() as u64).sum();
        self.writeback_bytes.add(bytes);
        let sp = self.trace.span(Layer::Fuse, "fuse.writeback", t);
        sp.arg("bytes", bytes);
        let end = self
            .store
            .write_pages(t, self.node, key.0, key.1, &updates)?;
        sp.finish(end);
        drop(updates);
        st.cache.clear_dirty(&key);
        Ok(end)
    }

    /// Batched flush (pipelined mode): one manager RPC for the whole set,
    /// per-benefactor write chains overlapped across benefactors. Slices
    /// are borrowed from the cache entries under the state lock; dirty
    /// bits clear only after the store accepts the batch. Returns the
    /// latest per-entry completion (the flush barrier).
    fn flush_keys_batched(&self, t: VTime, keys: &[ChunkKey]) -> Result<VTime> {
        let ps = self.page_size();
        let mut st = self.state.lock();
        let dirty: Vec<(ChunkKey, Vec<(u64, u64)>)> = keys
            .iter()
            .filter_map(|key| {
                let e = st.cache.peek(key)?;
                if e.dirty.any() {
                    Some((*key, e.dirty.runs(ps)))
                } else {
                    None
                }
            })
            .collect();
        if dirty.is_empty() {
            return Ok(t);
        }
        let updates: Vec<Vec<(u64, &[u8])>> = dirty
            .iter()
            .map(|(key, runs)| {
                let e = st.cache.peek(key).expect("collected above");
                runs.iter()
                    .map(|&(off, len)| (off, &e.data[off as usize..(off + len) as usize]))
                    .collect()
            })
            .collect();
        let entries: Vec<BatchWrite<'_>> = dirty
            .iter()
            .zip(&updates)
            .map(|((key, _), u)| BatchWrite {
                file: key.0,
                idx: key.1,
                updates: u,
            })
            .collect();
        let bytes: u64 = updates.iter().flatten().map(|(_, d)| d.len() as u64).sum();
        self.writeback_bytes.add(bytes);
        let sp = self.trace.span(Layer::Fuse, "fuse.writeback", t);
        sp.arg("bytes", bytes).arg("chunks", dirty.len() as u64);
        let times = self.store.write_pages_batch(t, self.node, &entries)?;
        drop(entries);
        drop(updates);
        for (key, _) in &dirty {
            st.cache.clear_dirty(key);
        }
        let mut end = t;
        for tt in times {
            end = end.max(tt);
        }
        sp.finish(end);
        Ok(end)
    }

    // ----- write-back daemon (DESIGN.md §10) ---------------------------------

    fn writeback_daemon_on(&self) -> bool {
        self.cfg.dirty_background_ratio < 1.0
    }

    /// Dirty chunks strictly above this wake the background flusher; the
    /// flusher drains back down to it (the low watermark).
    fn bg_threshold(&self, capacity: usize) -> usize {
        (capacity as f64 * self.cfg.dirty_background_ratio) as usize
    }

    /// The most dirty chunks a writer may ever create; `>= 1` so a writer
    /// can always make progress.
    fn hard_limit(&self, capacity: usize) -> usize {
        ((capacity as f64 * self.cfg.dirty_hard_ratio) as usize).max(1)
    }

    /// Observed high-water dirty ratio (dirty chunks / capacity) — the
    /// throttle-invariant probe: with the daemon on this never exceeds
    /// `dirty_hard_ratio` at any virtual instant.
    pub fn max_dirty_ratio(&self) -> f64 {
        let st = self.state.lock();
        st.cache.max_dirty_chunks() as f64 / st.cache.capacity() as f64
    }

    /// Dirty chunks currently cached (all files).
    pub fn dirty_chunk_count(&self) -> usize {
        self.state.lock().cache.dirty_chunks()
    }

    /// One background flusher batch, issued at `start`: take the oldest
    /// dirty chunks (enough to drain back to the background threshold, at
    /// least one), coalesce them into a single batched store write — one
    /// manager RPC, per-benefactor chains overlapped — and mark them
    /// clean. The batch's virtual time is paced by `flusher_busy_until`,
    /// never by the foreground clock. Dirty bits clear only after the
    /// store accepts the batch, so a failed flush (benefactor down) leaves
    /// the pages dirty for a later retry.
    fn bg_flush_batch(&self, st: &mut MountState, start: VTime) -> Result<VTime> {
        let cap = st.cache.capacity();
        let low = self.bg_threshold(cap).min(self.hard_limit(cap) - 1);
        let dirty = st.cache.dirty_keys();
        if dirty.is_empty() {
            return Ok(start);
        }
        let take = dirty.len().saturating_sub(low).max(1).min(dirty.len());
        let batch = &dirty[..take];
        // A dirty chunk may itself still be in flight (prefetched, then
        // written): the flush can only start once its data has arrived.
        let mut start = start;
        for key in batch {
            start = start.max(st.cache.peek(key).expect("dirty key cached").ready_at);
        }
        let ps = self.page_size();
        let runs: Vec<Vec<(u64, u64)>> = batch
            .iter()
            .map(|key| {
                let e = st.cache.peek(key).expect("dirty key cached");
                if self.cfg.dirty_page_writeback {
                    e.dirty.runs(ps)
                } else {
                    vec![(0, e.data.len() as u64)]
                }
            })
            .collect();
        let updates: Vec<Vec<(u64, &[u8])>> = batch
            .iter()
            .zip(&runs)
            .map(|(key, rs)| {
                let e = st.cache.peek(key).expect("dirty key cached");
                rs.iter()
                    .map(|&(off, len)| (off, &e.data[off as usize..(off + len) as usize]))
                    .collect()
            })
            .collect();
        let entries: Vec<BatchWrite<'_>> = batch
            .iter()
            .zip(&updates)
            .map(|(key, u)| BatchWrite {
                file: key.0,
                idx: key.1,
                updates: u,
            })
            .collect();
        let bytes: u64 = updates.iter().flatten().map(|(_, d)| d.len() as u64).sum();
        let sp = self.trace.span(Layer::Fuse, "fuse.bg_flush", start);
        sp.arg("chunks", batch.len() as u64).arg("bytes", bytes);
        let times = self.store.write_pages_batch(start, self.node, &entries)?;
        drop(entries);
        drop(updates);
        for key in batch {
            st.cache.clear_dirty(key);
        }
        self.bg_flushes.inc();
        self.bg_writeback_bytes.add(bytes);
        self.writeback_bytes.add(bytes);
        let mut end = start;
        for tt in times {
            end = end.max(tt);
        }
        sp.finish(end);
        Ok(end)
    }

    /// Wake the background flusher if it is idle at `t` and the dirty
    /// ratio is past the background threshold. The foreground clock is
    /// untouched; a flush failure leaves the dirty bits set (the next
    /// wake retries).
    fn kick_bg_flush(&self, st: &mut MountState, t: VTime) {
        if !self.writeback_daemon_on() || t < st.flusher_busy_until {
            return;
        }
        let cap = st.cache.capacity();
        if st.cache.dirty_chunks() <= self.bg_threshold(cap) {
            return;
        }
        if let Ok(end) = self.bg_flush_batch(st, t) {
            st.flusher_busy_until = end;
        }
    }

    /// The per-write dirty bookkeeping shared by the serial and pipelined
    /// write paths: throttle the writer while one more dirty chunk would
    /// break the hard limit (each stall runs a flusher batch and advances
    /// the writer's clock to its completion — `balance_dirty_pages`), then
    /// mark the pages dirty, then wake the background flusher. Returns the
    /// possibly-throttled clock.
    fn note_write(
        &self,
        st: &mut MountState,
        mut t: VTime,
        key: ChunkKey,
        start: u64,
        end: u64,
    ) -> Result<VTime> {
        let ps = self.page_size();
        if !self.writeback_daemon_on() && self.cfg.dirty_hard_ratio >= 1.0 {
            st.cache.mark_dirty_range(&key, start, end, ps);
            return Ok(t);
        }
        let transitions = st.cache.peek(&key).map(|e| !e.dirty.any()).unwrap_or(false);
        if transitions && self.cfg.dirty_hard_ratio < 1.0 {
            let hard = self.hard_limit(st.cache.capacity());
            while st.cache.dirty_chunks() + 1 > hard && st.cache.dirty_chunks() > 0 {
                let at = t.max(st.flusher_busy_until);
                let done = self.bg_flush_batch(st, at)?;
                st.flusher_busy_until = done;
                t = t.max(done);
                self.throttled_writes.inc();
            }
        }
        st.cache.mark_dirty_range(&key, start, end, ps);
        self.kick_bg_flush(st, t);
        Ok(t)
    }

    // ----- internals ----------------------------------------------------------

    fn bounds_check(&self, file: FileId, offset: u64, len: u64) -> Result<()> {
        let size = self.store.file_size(file)?;
        if offset + len > size {
            return Err(StoreError::OutOfBounds {
                file,
                offset,
                len,
                size,
            });
        }
        Ok(())
    }

    /// Make `(file, idx)` resident; returns the time the data is usable.
    fn ensure_chunk(&self, mut t: VTime, file: FileId, idx: usize) -> Result<VTime> {
        {
            let mut st = self.state.lock();
            if st.cache.is_protected(&(file, idx)) {
                self.scan_protected_hits.inc();
            }
            if let Some(entry) = st.cache.get_mut(&(file, idx)) {
                self.hits.inc();
                // Prefetched data may still be in flight.
                return Ok(t.max(entry.ready_at));
            }
        }
        self.misses.inc();
        let sp = self.trace.span(Layer::Fuse, "fuse.miss_fill", t);
        sp.arg("file", file.0).arg("chunks", 1);
        t = self.make_room(t)?;
        let (t2, payload) = self.store.fetch_chunk(t, self.node, file, idx)?;
        sp.finish(t2);
        let data = match payload {
            ChunkPayload::Zeros => vec![0u8; self.chunk_size() as usize].into_boxed_slice(),
            ChunkPayload::Data(d) => d,
        };
        let mut st = self.state.lock();
        st.cache.insert((file, idx), data, t2);
        Ok(t2)
    }

    /// The eviction victim under the configured policy: plain LRU, or —
    /// with the segmented cache — the coldest *clean* entry first, so
    /// eviction almost never pays a synchronous write-back.
    fn pick_victim(
        &self,
        cache: &mut ChunkCache,
        exclude: impl FnMut(&ChunkKey) -> bool,
    ) -> Option<ChunkKey> {
        if self.cfg.seg_cache {
            cache.victim_clean_first(exclude)
        } else {
            cache.lru_key_excluding(exclude)
        }
    }

    /// Evict until one slot is free, writing back dirty pages (or whole
    /// chunks when the optimization is off).
    fn make_room(&self, mut t: VTime) -> Result<VTime> {
        loop {
            let victim = {
                let mut st = self.state.lock();
                if !st.cache.is_full() {
                    return Ok(t);
                }
                self.pick_victim(&mut st.cache, |_| false)
                    .expect("full cache has a victim")
            };
            t = self.evict(t, victim)?;
        }
    }

    fn evict(&self, t: VTime, key: ChunkKey) -> Result<VTime> {
        let entry = {
            let mut st = self.state.lock();
            match st.cache.remove(&key) {
                Some(e) => e,
                None => return Ok(t),
            }
        };
        self.evictions.inc();
        if !entry.dirty.any() {
            self.clean_evictions.inc();
            return Ok(t);
        }
        let updates: Vec<(u64, &[u8])> = if self.cfg.dirty_page_writeback {
            entry
                .dirty
                .runs(self.page_size())
                .into_iter()
                .map(|(off, len)| (off, &entry.data[off as usize..(off + len) as usize]))
                .collect()
        } else {
            // Ablation baseline: ship the entire chunk.
            vec![(0, &entry.data[..])]
        };
        let bytes: u64 = updates.iter().map(|(_, d)| d.len() as u64).sum();
        self.writeback_bytes.add(bytes);
        let sp = self.trace.span(Layer::Fuse, "fuse.evict", t);
        sp.arg("bytes", bytes);
        let end = self
            .store
            .write_pages(t, self.node, key.0, key.1, &updates)?;
        sp.finish(end);
        Ok(end)
    }

    /// Asynchronous prefetch of up to `depth` chunks following
    /// `from_offset`. Charges the store-side resources but not the
    /// caller's clock; a later hit waits on `ready_at` if the data has not
    /// "arrived" yet. In pipelined mode the whole prefetch window goes
    /// through the batched fetch path (one manager RPC, overlapped
    /// chains) and dirty victims are written back asynchronously; the
    /// serial path keeps the conservative never-evict-dirty rule.
    fn read_ahead(&self, t: VTime, file: FileId, from_offset: u64, depth: usize) -> Result<()> {
        let cs = self.chunk_size();
        let n_chunks = self.store.chunk_count(file)?;
        let first = (from_offset / cs) as usize + usize::from(!from_offset.is_multiple_of(cs));
        let last = (first + depth).min(n_chunks);
        if first >= last {
            return Ok(());
        }
        if self.cfg.pipelined_io {
            let (missing, cap) = {
                let st = self.state.lock();
                let missing: Vec<usize> = (first..last)
                    .filter(|&i| !st.cache.contains(&(file, i)))
                    .collect();
                (missing, st.cache.capacity())
            };
            if missing.is_empty() {
                return Ok(());
            }
            let missing = &missing[..missing.len().min(cap)];
            let sp = self.trace.span(Layer::Fuse, "fuse.read_ahead", t);
            sp.arg("file", file.0).arg("chunks", missing.len() as u64);
            let t0 = self.make_room_n(t, file, missing, missing.len())?;
            debug_assert_eq!(t0, t); // async write-back: caller clock untouched
            let targets: Vec<(FileId, usize)> = missing.iter().map(|&i| (file, i)).collect();
            let results = self
                .store
                .fetch_chunks(t, self.node, &targets, Some(&self.loc_cache))?;
            self.readahead_fetches.add(missing.len() as u64);
            let mut done = t;
            let mut st = self.state.lock();
            for ((ready, payload), &idx) in results.into_iter().zip(missing) {
                let data = match payload {
                    ChunkPayload::Zeros => vec![0u8; cs as usize].into_boxed_slice(),
                    ChunkPayload::Data(d) => d,
                };
                done = done.max(ready);
                st.cache.insert((file, idx), data, ready);
            }
            drop(st);
            sp.finish(done);
            return Ok(());
        }
        for idx in first..last {
            {
                let mut st = self.state.lock();
                if st.cache.contains(&(file, idx)) {
                    continue;
                }
                // Only prefetch into free-or-clean space: prefetching must
                // never force synchronous dirty write-back.
                if st.cache.is_full() {
                    let victim = self.pick_victim(&mut st.cache, |_| false).expect("full");
                    let dirty = st
                        .cache
                        .peek(&victim)
                        .map(|e| e.dirty.any())
                        .unwrap_or(false);
                    if dirty {
                        return Ok(());
                    }
                }
            }
            let t0 = self.make_room(t)?; // clean eviction: t unchanged
            debug_assert_eq!(t0, t);
            let sp = self.trace.span(Layer::Fuse, "fuse.read_ahead", t);
            sp.arg("file", file.0).arg("chunks", 1);
            let (ready, payload) = self.store.fetch_chunk(t, self.node, file, idx)?;
            sp.finish(ready);
            self.readahead_fetches.inc();
            let data = match payload {
                ChunkPayload::Zeros => vec![0u8; cs as usize].into_boxed_slice(),
                ChunkPayload::Data(d) => d,
            };
            let mut st = self.state.lock();
            st.cache.insert((file, idx), data, ready);
        }
        Ok(())
    }

    // ----- pipelined data path (DESIGN.md §8) --------------------------------

    /// Run a chunk-segmented span through the batched data path, windowed
    /// by cache capacity so arbitrarily large spans still fit: ensure each
    /// window's chunks with one batched fetch, then copy every segment of
    /// the window under a single lock. Returns the time the last chunk of
    /// the span is usable.
    fn pipelined_span(
        &self,
        mut t: VTime,
        file: FileId,
        segs: &[Seg],
        mut io: SpanIo<'_>,
    ) -> Result<VTime> {
        let cap = { self.state.lock().cache.capacity() };
        let mut start = 0usize;
        while start < segs.len() {
            // Grow the window while its unique chunk count fits the cache.
            // Segment chunk indices are non-decreasing (byte positions only
            // move forward), so consecutive dedup counts unique chunks.
            let mut end = start;
            let mut idxs: Vec<usize> = Vec::new();
            while end < segs.len() {
                let idx = segs[end].idx;
                if idxs.last() != Some(&idx) {
                    if idxs.len() == cap {
                        break;
                    }
                    idxs.push(idx);
                }
                end += 1;
            }
            t = self.ensure_chunks_list(t, file, &idxs)?;
            {
                let mut st = self.state.lock();
                for s in &segs[start..end] {
                    let entry = st.cache.peek_mut(&(file, s.idx)).expect("just ensured");
                    match &mut io {
                        SpanIo::Read(buf) => {
                            buf[s.pos..s.pos + s.take]
                                .copy_from_slice(&entry.data[s.within..s.within + s.take]);
                        }
                        SpanIo::Write(data) => {
                            entry.data[s.within..s.within + s.take]
                                .copy_from_slice(&data[s.pos..s.pos + s.take]);
                            t = self.note_write(
                                &mut st,
                                t,
                                (file, s.idx),
                                s.within as u64,
                                (s.within + s.take) as u64,
                            )?;
                        }
                    }
                }
            }
            start = end;
        }
        Ok(t)
    }

    /// Make every chunk in `idxs` resident with ONE batched store fetch
    /// for the misses; returns the time all of them are usable. Hits that
    /// are still in flight contribute their `ready_at`; the working set
    /// (`idxs`) is protected from eviction while room is made.
    fn ensure_chunks_list(&self, t: VTime, file: FileId, idxs: &[usize]) -> Result<VTime> {
        let mut ready = t;
        let mut missing: Vec<usize> = Vec::new();
        {
            let mut st = self.state.lock();
            for &idx in idxs {
                if st.cache.is_protected(&(file, idx)) {
                    self.scan_protected_hits.inc();
                }
                if let Some(entry) = st.cache.get_mut(&(file, idx)) {
                    self.hits.inc();
                    ready = ready.max(entry.ready_at);
                } else {
                    missing.push(idx);
                }
            }
        }
        if missing.is_empty() {
            return Ok(ready);
        }
        self.misses.add(missing.len() as u64);
        let sp = self.trace.span(Layer::Fuse, "fuse.miss_fill", t);
        sp.arg("file", file.0).arg("chunks", missing.len() as u64);
        let t = self.make_room_n(t, file, idxs, missing.len())?;
        let targets: Vec<(FileId, usize)> = missing.iter().map(|&i| (file, i)).collect();
        let results = self
            .store
            .fetch_chunks(t, self.node, &targets, Some(&self.loc_cache))?;
        let mut st = self.state.lock();
        for ((ready_at, payload), &idx) in results.into_iter().zip(&missing) {
            let data = match payload {
                ChunkPayload::Zeros => vec![0u8; self.chunk_size() as usize].into_boxed_slice(),
                ChunkPayload::Data(d) => d,
            };
            st.cache.insert((file, idx), data, ready_at);
            ready = ready.max(ready_at);
        }
        drop(st);
        sp.finish(ready);
        Ok(ready)
    }

    /// Evict until `need` slots are free, never touching the protected
    /// working set of `file`. Dirty victims are written back with ONE
    /// batched store write charged at the time the victims' data is
    /// available — but the caller's clock is NOT advanced: the write-back
    /// proceeds in the background while the incoming fetch (whose own
    /// completion time covers any queueing behind the write on shared
    /// resources) overlaps it. The reader never blocks on eviction.
    fn make_room_n(&self, t: VTime, file: FileId, protect: &[usize], need: usize) -> Result<VTime> {
        let mut dirty_victims: Vec<(ChunkKey, CacheEntry)> = Vec::new();
        {
            let mut st = self.state.lock();
            while st.cache.capacity() - st.cache.len() < need {
                let victim = self
                    .pick_victim(&mut st.cache, |k| k.0 == file && protect.contains(&k.1))
                    .expect("window sized within cache capacity");
                let entry = st.cache.remove(&victim).expect("victim is cached");
                self.evictions.inc();
                if entry.dirty.any() {
                    dirty_victims.push((victim, entry));
                } else {
                    self.clean_evictions.inc();
                }
            }
        }
        if dirty_victims.is_empty() {
            return Ok(t);
        }
        // The write-back can only start once the victims' own data has
        // arrived (a dirty chunk may itself still be in flight).
        let mut start = t;
        for (_, e) in &dirty_victims {
            start = start.max(e.ready_at);
        }
        let ps = self.page_size();
        let runs: Vec<Vec<(u64, u64)>> = dirty_victims
            .iter()
            .map(|(_, e)| {
                if self.cfg.dirty_page_writeback {
                    e.dirty.runs(ps)
                } else {
                    vec![(0, e.data.len() as u64)]
                }
            })
            .collect();
        let updates: Vec<Vec<(u64, &[u8])>> = dirty_victims
            .iter()
            .zip(&runs)
            .map(|((_, e), rs)| {
                rs.iter()
                    .map(|&(off, len)| (off, &e.data[off as usize..(off + len) as usize]))
                    .collect()
            })
            .collect();
        let entries: Vec<BatchWrite<'_>> = dirty_victims
            .iter()
            .zip(&updates)
            .map(|((key, _), u)| BatchWrite {
                file: key.0,
                idx: key.1,
                updates: u,
            })
            .collect();
        let bytes: u64 = updates.iter().flatten().map(|(_, d)| d.len() as u64).sum();
        self.writeback_bytes.add(bytes);
        self.async_writebacks.add(dirty_victims.len() as u64);
        let sp = self.trace.span(Layer::Fuse, "fuse.async_writeback", start);
        sp.arg("bytes", bytes)
            .arg("chunks", dirty_victims.len() as u64);
        // Completion times intentionally dropped (asynchronous write-back);
        // the span still records when the background writes land.
        let times = self.store.write_pages_batch(start, self.node, &entries)?;
        let mut done = start;
        for tt in times {
            done = done.max(tt);
        }
        sp.finish(done);
        Ok(t)
    }
}

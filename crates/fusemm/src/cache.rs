//! The per-node chunk cache: LRU over `(file, chunk index)` entries with
//! per-page dirty bits.
//!
//! The cache itself is a passive data structure; [`crate::mount::Mount`]
//! drives it and charges virtual time. Capacity is counted in chunks
//! (64 MiB / 256 KiB = 256 entries at the paper's defaults).
//!
//! Two replacement modes (DESIGN.md §10):
//!
//! * **plain LRU** (default) — one recency list, victim = least recently
//!   used, byte-identical to the paper-fidelity configuration;
//! * **segmented LRU** (`FuseConfig::seg_cache`) — probation/protected
//!   lists: a chunk enters on probation and is promoted on its first
//!   re-reference, so a one-touch streaming scan churns probation while
//!   the re-referenced working set survives in the protected segment.
//!
//! Victim selection is O(log n): recency is kept in ordered tick indexes
//! (`BTreeSet<(tick, key)>`), never by scanning the whole entry map. The
//! cache also tracks its dirty-chunk count (and high-water mark) so the
//! mount's write-back daemon can check dirty ratios in O(1); all dirty-bit
//! transitions must therefore go through [`ChunkCache::mark_dirty_range`] /
//! [`ChunkCache::clear_dirty`].

use crate::dirty::DirtyPages;
use chunkstore::FileId;
use simcore::VTime;
use std::collections::{BTreeSet, HashMap};

/// One cached chunk.
#[derive(Debug)]
pub struct CacheEntry {
    pub data: Box<[u8]>,
    pub dirty: DirtyPages,
    /// LRU tick of the last touch.
    pub last_use: u64,
    /// For asynchronously prefetched chunks: when the data is actually
    /// available; a hit earlier than this waits until `ready_at`.
    pub ready_at: VTime,
    /// Segmented mode: true once the entry has been re-referenced and
    /// promoted out of probation. Maintained by the cache.
    pub(crate) protected: bool,
}

/// Key: which chunk of which file.
pub type ChunkKey = (FileId, usize);

/// How deep the clean-first victim scan looks into each recency list
/// before giving up and taking the plain LRU victim (Linux's shrinker
/// uses the same bounded-scan idea). Keeps victim selection O(1)-ish
/// even when the cache is mostly dirty.
const CLEAN_SCAN_DEPTH: usize = 16;

/// LRU chunk cache (plain or segmented).
#[derive(Debug)]
pub struct ChunkCache {
    entries: HashMap<ChunkKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    pages_per_chunk: usize,
    segmented: bool,
    /// Max entries the protected segment may hold (segmented mode).
    protected_cap: usize,
    protected_len: usize,
    /// Recency index of probationary entries — every entry when the
    /// cache is unsegmented. Ticks are unique, so ordering is total and
    /// deterministic.
    probation: BTreeSet<(u64, ChunkKey)>,
    /// Recency index of protected entries (empty when unsegmented).
    protected: BTreeSet<(u64, ChunkKey)>,
    /// Chunks with at least one dirty page, and the high-water mark.
    dirty_count: usize,
    max_dirty: usize,
    /// Entries examined across all victim selections (the quadratic-path
    /// regression guard in tests).
    victim_scan_steps: u64,
}

impl ChunkCache {
    pub fn new(capacity_chunks: usize, pages_per_chunk: usize) -> Self {
        Self::build(capacity_chunks, pages_per_chunk, false)
    }

    /// A segmented (probation/protected) cache; the protected segment
    /// holds up to 4/5 of capacity, probation always keeps >= 1 slot.
    pub fn new_segmented(capacity_chunks: usize, pages_per_chunk: usize) -> Self {
        Self::build(capacity_chunks, pages_per_chunk, true)
    }

    fn build(capacity_chunks: usize, pages_per_chunk: usize, segmented: bool) -> Self {
        assert!(capacity_chunks > 0, "cache needs at least one chunk");
        ChunkCache {
            entries: HashMap::with_capacity(capacity_chunks),
            capacity: capacity_chunks,
            tick: 0,
            pages_per_chunk,
            segmented,
            protected_cap: if segmented {
                (capacity_chunks * 4 / 5).min(capacity_chunks - 1)
            } else {
                0
            },
            protected_len: 0,
            probation: BTreeSet::new(),
            protected: BTreeSet::new(),
            dirty_count: 0,
            max_dirty: 0,
            victim_scan_steps: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.entries.contains_key(key)
    }

    pub fn is_segmented(&self) -> bool {
        self.segmented
    }

    /// Is the entry in the protected segment? (false when missing or
    /// unsegmented.)
    pub fn is_protected(&self, key: &ChunkKey) -> bool {
        self.entries.get(key).map(|e| e.protected).unwrap_or(false)
    }

    /// Entries currently in the protected segment.
    pub fn protected_len(&self) -> usize {
        self.protected_len
    }

    /// Chunks with at least one dirty page.
    pub fn dirty_chunks(&self) -> usize {
        self.dirty_count
    }

    /// High-water mark of [`Self::dirty_chunks`] over the cache's life.
    pub fn max_dirty_chunks(&self) -> usize {
        self.max_dirty
    }

    /// Entries examined by victim selection so far (regression guard: must
    /// stay proportional to evictions, not evictions x capacity).
    pub fn victim_scan_steps(&self) -> u64 {
        self.victim_scan_steps
    }

    /// Touch and return an entry (LRU update; segmented mode promotes a
    /// probationary entry to the protected segment).
    pub fn get_mut(&mut self, key: &ChunkKey) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        let was_protected = entry.protected;
        let promote = self.segmented && !was_protected && self.protected_cap > 0;
        if was_protected {
            self.protected.remove(&(entry.last_use, *key));
        } else {
            self.probation.remove(&(entry.last_use, *key));
        }
        entry.last_use = tick;
        entry.protected = was_protected || promote;
        if entry.protected {
            self.protected.insert((tick, *key));
        } else {
            self.probation.insert((tick, *key));
        }
        if promote {
            self.protected_len += 1;
            if self.protected_len > self.protected_cap {
                self.demote_protected_lru();
            }
        }
        self.entries.get_mut(key)
    }

    /// The protected segment overflowed: its LRU entry moves back to the
    /// MRU end of probation (classic SLRU demotion).
    fn demote_protected_lru(&mut self) {
        let &(old_tick, key) = self.protected.first().expect("protected is over cap");
        self.protected.remove(&(old_tick, key));
        self.protected_len -= 1;
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&key).expect("indexed entry exists");
        e.protected = false;
        e.last_use = tick;
        self.probation.insert((tick, key));
    }

    /// Peek without LRU update (used by flush scans).
    pub fn peek(&self, key: &ChunkKey) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    /// Peek mutably without LRU update. Callers must not change dirty
    /// bits through this — use [`Self::mark_dirty_range`] /
    /// [`Self::clear_dirty`] so the dirty-chunk count stays right.
    pub fn peek_mut(&mut self, key: &ChunkKey) -> Option<&mut CacheEntry> {
        self.entries.get_mut(key)
    }

    /// Insert a chunk; the caller must have made room first. New entries
    /// start clean and (in segmented mode) on probation.
    pub fn insert(&mut self, key: ChunkKey, data: Box<[u8]>, ready_at: VTime) {
        assert!(!self.is_full(), "insert into a full cache");
        self.tick += 1;
        let prev = self.entries.insert(
            key,
            CacheEntry {
                data,
                dirty: DirtyPages::new(self.pages_per_chunk),
                last_use: self.tick,
                ready_at,
                protected: false,
            },
        );
        assert!(prev.is_none(), "duplicate cache insert");
        self.probation.insert((self.tick, key));
    }

    /// Mark `[start, end)` bytes of the entry dirty, keeping the cache's
    /// dirty-chunk count (and high-water mark) consistent.
    pub fn mark_dirty_range(&mut self, key: &ChunkKey, start: u64, end: u64, page_size: u64) {
        let e = self
            .entries
            .get_mut(key)
            .expect("mark_dirty_range on a missing entry");
        let was_dirty = e.dirty.any();
        e.dirty.mark_range(start, end, page_size);
        if !was_dirty && e.dirty.any() {
            self.dirty_count += 1;
            self.max_dirty = self.max_dirty.max(self.dirty_count);
        }
    }

    /// Mark one page of the entry dirty (test convenience).
    pub fn mark_dirty_page(&mut self, key: &ChunkKey, page: usize) {
        let e = self
            .entries
            .get_mut(key)
            .expect("mark_dirty_page on a missing entry");
        let was_dirty = e.dirty.any();
        e.dirty.mark(page);
        if !was_dirty {
            self.dirty_count += 1;
            self.max_dirty = self.max_dirty.max(self.dirty_count);
        }
    }

    /// Clear the entry's dirty bits (after a successful write-back).
    pub fn clear_dirty(&mut self, key: &ChunkKey) {
        if let Some(e) = self.entries.get_mut(key) {
            if e.dirty.any() {
                self.dirty_count -= 1;
            }
            e.dirty.clear();
        }
    }

    /// The least-recently-used key (eviction victim), if any. Probation
    /// is drained before the protected segment in segmented mode.
    pub fn lru_key(&mut self) -> Option<ChunkKey> {
        self.victim_scan_steps += 1;
        self.probation
            .first()
            .or_else(|| self.protected.first())
            .map(|&(_, k)| k)
    }

    /// The LRU key among entries for which `exclude` is false — victim
    /// selection that must not evict the working set currently being
    /// ensured (the batched data path's protection rule).
    pub fn lru_key_excluding(
        &mut self,
        mut exclude: impl FnMut(&ChunkKey) -> bool,
    ) -> Option<ChunkKey> {
        let mut steps = 0u64;
        let found = self
            .probation
            .iter()
            .chain(self.protected.iter())
            .inspect(|_| steps += 1)
            .map(|&(_, k)| k)
            .find(|k| !exclude(k));
        self.victim_scan_steps += steps;
        found
    }

    /// Clean-first victim selection (segmented mode): prefer a *clean*
    /// entry near the cold end of probation, then of the protected
    /// segment, scanning at most [`CLEAN_SCAN_DEPTH`] entries per list;
    /// fall back to the plain LRU victim when everything cold is dirty.
    /// A clean victim means eviction ships nothing synchronously.
    pub fn victim_clean_first(
        &mut self,
        mut exclude: impl FnMut(&ChunkKey) -> bool,
    ) -> Option<ChunkKey> {
        let mut steps = 0u64;
        let mut clean = None;
        'lists: for list in [&self.probation, &self.protected] {
            for &(_, k) in list.iter().take(CLEAN_SCAN_DEPTH) {
                steps += 1;
                if exclude(&k) {
                    continue;
                }
                if !self.entries[&k].dirty.any() {
                    clean = Some(k);
                    break 'lists;
                }
            }
        }
        self.victim_scan_steps += steps;
        clean.or_else(|| self.lru_key_excluding(exclude))
    }

    /// Remove an entry, returning it (for write-back of its dirty pages).
    pub fn remove(&mut self, key: &ChunkKey) -> Option<CacheEntry> {
        let e = self.entries.remove(key)?;
        if e.protected {
            self.protected.remove(&(e.last_use, *key));
            self.protected_len -= 1;
        } else {
            self.probation.remove(&(e.last_use, *key));
        }
        if e.dirty.any() {
            self.dirty_count -= 1;
        }
        Some(e)
    }

    /// All keys belonging to `file` (flush / invalidate scans).
    pub fn keys_of_file(&self, file: FileId) -> Vec<ChunkKey> {
        let mut keys: Vec<ChunkKey> = self
            .entries
            .keys()
            .filter(|(f, _)| *f == file)
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Keys of every dirty chunk, in LRU order (flush-all scans and the
    /// background flusher, which writes back oldest-first).
    pub fn dirty_keys(&self) -> Vec<ChunkKey> {
        let mut keyed: Vec<(u64, ChunkKey)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty.any())
            .map(|(k, e)| (e.last_use, *k))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> ChunkKey {
        (FileId(1), i)
    }

    fn cache(cap: usize) -> ChunkCache {
        ChunkCache::new(cap, 64)
    }

    fn data() -> Box<[u8]> {
        vec![0u8; 256].into_boxed_slice()
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(2);
        c.insert(key(0), data(), VTime::ZERO);
        assert!(c.contains(&key(0)));
        assert!(c.get_mut(&key(0)).is_some());
        assert!(c.get_mut(&key(1)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut c = cache(3);
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
        c.insert(key(2), data(), VTime::ZERO);
        // Touch 0: now 1 is the LRU.
        c.get_mut(&key(0));
        assert_eq!(c.lru_key(), Some(key(1)));
        c.get_mut(&key(1));
        assert_eq!(c.lru_key(), Some(key(2)));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_into_full_cache_panics() {
        let mut c = cache(1);
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
    }

    #[test]
    fn remove_frees_room() {
        let mut c = cache(1);
        c.insert(key(0), data(), VTime::ZERO);
        assert!(c.is_full());
        let e = c.remove(&key(0)).unwrap();
        assert!(!e.dirty.any());
        assert!(c.is_empty());
        c.insert(key(1), data(), VTime::ZERO);
    }

    #[test]
    fn file_and_dirty_scans() {
        let mut c = cache(4);
        c.insert((FileId(1), 0), data(), VTime::ZERO);
        c.insert((FileId(2), 0), data(), VTime::ZERO);
        c.insert((FileId(1), 3), data(), VTime::ZERO);
        assert_eq!(
            c.keys_of_file(FileId(1)),
            vec![(FileId(1), 0), (FileId(1), 3)]
        );
        assert!(c.dirty_keys().is_empty());
        c.mark_dirty_page(&(FileId(1), 3), 0);
        assert_eq!(c.dirty_keys(), vec![(FileId(1), 3)]);
    }

    #[test]
    fn dirty_count_tracks_transitions() {
        let mut c = cache(4);
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
        assert_eq!(c.dirty_chunks(), 0);
        c.mark_dirty_range(&key(0), 0, 8, 4);
        c.mark_dirty_range(&key(0), 16, 24, 4); // same chunk: still 1
        c.mark_dirty_page(&key(1), 2);
        assert_eq!(c.dirty_chunks(), 2);
        assert_eq!(c.max_dirty_chunks(), 2);
        c.clear_dirty(&key(0));
        assert_eq!(c.dirty_chunks(), 1);
        c.remove(&key(1));
        assert_eq!(c.dirty_chunks(), 0);
        assert_eq!(c.max_dirty_chunks(), 2, "high-water mark sticks");
    }

    #[test]
    fn segmented_promotion_and_demotion() {
        // cap 5 => protected_cap 4.
        let mut c = ChunkCache::new_segmented(5, 64);
        for i in 0..5 {
            c.insert(key(i), data(), VTime::ZERO);
        }
        assert_eq!(c.protected_len(), 0);
        // Re-reference 0..4: all promoted, 4th promotion demotes the
        // protected LRU (0) back to probation.
        for i in 0..5 {
            c.get_mut(&key(i));
        }
        assert_eq!(c.protected_len(), 4);
        assert!(!c.is_protected(&key(0)), "LRU demoted on overflow");
        for i in 1..5 {
            assert!(c.is_protected(&key(i)));
        }
    }

    #[test]
    fn segmented_scan_cannot_evict_protected_working_set() {
        let mut c = ChunkCache::new_segmented(4, 64);
        // Working set: chunks 0 and 1, re-referenced (protected).
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
        c.get_mut(&key(0));
        c.get_mut(&key(1));
        // One-touch scan through 100 chunks: victims always come from
        // probation, so the protected pair survives the whole scan.
        for i in 2..102 {
            if c.is_full() {
                let v = c.lru_key().unwrap();
                assert!(v != key(0) && v != key(1), "scan evicted working set");
                c.remove(&v);
            }
            c.insert(key(i), data(), VTime::ZERO);
        }
        assert!(c.contains(&key(0)) && c.contains(&key(1)));
    }

    #[test]
    fn clean_first_victim_skips_dirty_cold_entries() {
        let mut c = ChunkCache::new_segmented(4, 64);
        for i in 0..4 {
            c.insert(key(i), data(), VTime::ZERO);
        }
        // Coldest two are dirty; 2 is the coldest *clean* entry.
        c.mark_dirty_page(&key(0), 0);
        c.mark_dirty_page(&key(1), 0);
        assert_eq!(c.victim_clean_first(|_| false), Some(key(2)));
        // All dirty: falls back to the true LRU.
        c.mark_dirty_page(&key(2), 0);
        c.mark_dirty_page(&key(3), 0);
        assert_eq!(c.victim_clean_first(|_| false), Some(key(0)));
    }

    #[test]
    fn victim_selection_stays_off_the_quadratic_path() {
        // The O(n)-scan regression guard: evicting half of a big cache
        // must examine ~one entry per eviction, not ~capacity per
        // eviction (the old full-map min_by_key scan).
        let cap = 1024;
        let mut c = cache(cap);
        for i in 0..cap {
            c.insert(key(i), data(), VTime::ZERO);
        }
        let evictions = cap / 2;
        for _ in 0..evictions {
            let v = c.lru_key().unwrap();
            c.remove(&v);
        }
        let steps = c.victim_scan_steps();
        assert!(
            steps <= (evictions as u64) * 2,
            "victim selection scanned {steps} entries for {evictions} evictions"
        );
    }
}

//! The per-node chunk cache: LRU over `(file, chunk index)` entries with
//! per-page dirty bits.
//!
//! The cache itself is a passive data structure; [`crate::mount::Mount`]
//! drives it and charges virtual time. Capacity is counted in chunks
//! (64 MiB / 256 KiB = 256 entries at the paper's defaults).

use crate::dirty::DirtyPages;
use chunkstore::FileId;
use simcore::VTime;
use std::collections::HashMap;

/// One cached chunk.
#[derive(Debug)]
pub struct CacheEntry {
    pub data: Box<[u8]>,
    pub dirty: DirtyPages,
    /// LRU tick of the last touch.
    pub last_use: u64,
    /// For asynchronously prefetched chunks: when the data is actually
    /// available; a hit earlier than this waits until `ready_at`.
    pub ready_at: VTime,
}

/// Key: which chunk of which file.
pub type ChunkKey = (FileId, usize);

/// LRU chunk cache.
#[derive(Debug)]
pub struct ChunkCache {
    entries: HashMap<ChunkKey, CacheEntry>,
    capacity: usize,
    tick: u64,
    pages_per_chunk: usize,
}

impl ChunkCache {
    pub fn new(capacity_chunks: usize, pages_per_chunk: usize) -> Self {
        assert!(capacity_chunks > 0, "cache needs at least one chunk");
        ChunkCache {
            entries: HashMap::with_capacity(capacity_chunks),
            capacity: capacity_chunks,
            tick: 0,
            pages_per_chunk,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    pub fn contains(&self, key: &ChunkKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Touch and return an entry (LRU update).
    pub fn get_mut(&mut self, key: &ChunkKey) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_use = tick;
        Some(entry)
    }

    /// Peek without LRU update (used by flush scans).
    pub fn peek(&self, key: &ChunkKey) -> Option<&CacheEntry> {
        self.entries.get(key)
    }

    pub fn peek_mut(&mut self, key: &ChunkKey) -> Option<&mut CacheEntry> {
        self.entries.get_mut(key)
    }

    /// Insert a chunk; the caller must have made room first.
    pub fn insert(&mut self, key: ChunkKey, data: Box<[u8]>, ready_at: VTime) {
        assert!(!self.is_full(), "insert into a full cache");
        self.tick += 1;
        let prev = self.entries.insert(
            key,
            CacheEntry {
                data,
                dirty: DirtyPages::new(self.pages_per_chunk),
                last_use: self.tick,
                ready_at,
            },
        );
        assert!(prev.is_none(), "duplicate cache insert");
    }

    /// The least-recently-used key (eviction victim), if any.
    pub fn lru_key(&self) -> Option<ChunkKey> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k)
    }

    /// The LRU key among entries for which `exclude` is false — victim
    /// selection that must not evict the working set currently being
    /// ensured (the batched data path's protection rule).
    pub fn lru_key_excluding(
        &self,
        mut exclude: impl FnMut(&ChunkKey) -> bool,
    ) -> Option<ChunkKey> {
        self.entries
            .iter()
            .filter(|(k, _)| !exclude(k))
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| *k)
    }

    /// Remove an entry, returning it (for write-back of its dirty pages).
    pub fn remove(&mut self, key: &ChunkKey) -> Option<CacheEntry> {
        self.entries.remove(key)
    }

    /// All keys belonging to `file` (flush / invalidate scans).
    pub fn keys_of_file(&self, file: FileId) -> Vec<ChunkKey> {
        let mut keys: Vec<ChunkKey> = self
            .entries
            .keys()
            .filter(|(f, _)| *f == file)
            .copied()
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Keys of every dirty chunk, in LRU order (flush-all scans).
    pub fn dirty_keys(&self) -> Vec<ChunkKey> {
        let mut keyed: Vec<(u64, ChunkKey)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.dirty.any())
            .map(|(k, e)| (e.last_use, *k))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().map(|(_, k)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> ChunkKey {
        (FileId(1), i)
    }

    fn cache(cap: usize) -> ChunkCache {
        ChunkCache::new(cap, 64)
    }

    fn data() -> Box<[u8]> {
        vec![0u8; 256].into_boxed_slice()
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(2);
        c.insert(key(0), data(), VTime::ZERO);
        assert!(c.contains(&key(0)));
        assert!(c.get_mut(&key(0)).is_some());
        assert!(c.get_mut(&key(1)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut c = cache(3);
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
        c.insert(key(2), data(), VTime::ZERO);
        // Touch 0: now 1 is the LRU.
        c.get_mut(&key(0));
        assert_eq!(c.lru_key(), Some(key(1)));
        c.get_mut(&key(1));
        assert_eq!(c.lru_key(), Some(key(2)));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn insert_into_full_cache_panics() {
        let mut c = cache(1);
        c.insert(key(0), data(), VTime::ZERO);
        c.insert(key(1), data(), VTime::ZERO);
    }

    #[test]
    fn remove_frees_room() {
        let mut c = cache(1);
        c.insert(key(0), data(), VTime::ZERO);
        assert!(c.is_full());
        let e = c.remove(&key(0)).unwrap();
        assert!(!e.dirty.any());
        assert!(c.is_empty());
        c.insert(key(1), data(), VTime::ZERO);
    }

    #[test]
    fn file_and_dirty_scans() {
        let mut c = cache(4);
        c.insert((FileId(1), 0), data(), VTime::ZERO);
        c.insert((FileId(2), 0), data(), VTime::ZERO);
        c.insert((FileId(1), 3), data(), VTime::ZERO);
        assert_eq!(
            c.keys_of_file(FileId(1)),
            vec![(FileId(1), 0), (FileId(1), 3)]
        );
        assert!(c.dirty_keys().is_empty());
        c.peek_mut(&(FileId(1), 3)).unwrap().dirty.mark(0);
        assert_eq!(c.dirty_keys(), vec![(FileId(1), 3)]);
    }
}

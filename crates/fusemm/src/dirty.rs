//! Per-page dirty tracking within a cached chunk.
//!
//! A 256 KiB chunk holds 64 OS pages of 4 KiB ("The 256KB chunk includes
//! 64 pages (4KB)", §III-D); the write path marks pages dirty and the
//! eviction path ships only those pages. Sizes are configurable for the
//! ablation sweeps, so the bitmap is a small `Vec<u64>` rather than a
//! single word.

/// A fixed-size page bitmap.
///
/// ```
/// use fusemm::DirtyPages;
/// let mut d = DirtyPages::new(64);
/// d.mark_range(0, 8192, 4096);   // bytes [0, 8K) → pages 0 and 1
/// d.mark(5);
/// assert_eq!(d.runs(4096), vec![(0, 8192), (5 * 4096, 4096)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyPages {
    words: Vec<u64>,
    pages: usize,
}

impl DirtyPages {
    pub fn new(pages: usize) -> Self {
        DirtyPages {
            words: vec![0; pages.div_ceil(64)],
            pages,
        }
    }

    pub fn page_count(&self) -> usize {
        self.pages
    }

    pub fn mark(&mut self, page: usize) {
        assert!(page < self.pages, "page index out of range");
        self.words[page / 64] |= 1 << (page % 64);
    }

    /// Mark every page overlapping the byte range `[start, end)` given the
    /// page size.
    pub fn mark_range(&mut self, start: u64, end: u64, page_size: u64) {
        assert!(start < end, "empty range");
        let first = (start / page_size) as usize;
        let last = ((end - 1) / page_size) as usize;
        for p in first..=last {
            self.mark(p);
        }
    }

    pub fn is_dirty(&self, page: usize) -> bool {
        assert!(page < self.pages);
        self.words[page / 64] & (1 << (page % 64)) != 0
    }

    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterate dirty page indices in order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.pages).filter(move |&p| self.is_dirty(p))
    }

    /// Coalesce dirty pages into maximal `(byte_offset, byte_len)` runs —
    /// the write-back messages sent to a benefactor.
    pub fn runs(&self, page_size: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut run: Option<(usize, usize)> = None; // (first, last)
        for p in self.iter() {
            match run {
                Some((first, last)) if p == last + 1 => run = Some((first, p)),
                Some((first, last)) => {
                    out.push((
                        first as u64 * page_size,
                        (last - first + 1) as u64 * page_size,
                    ));
                    run = Some((p, p));
                }
                None => run = Some((p, p)),
            }
        }
        if let Some((first, last)) = run {
            out.push((
                first as u64 * page_size,
                (last - first + 1) as u64 * page_size,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_query() {
        let mut d = DirtyPages::new(64);
        assert!(!d.any());
        d.mark(0);
        d.mark(63);
        assert!(d.is_dirty(0));
        assert!(d.is_dirty(63));
        assert!(!d.is_dirty(32));
        assert_eq!(d.count(), 2);
        d.clear();
        assert!(!d.any());
    }

    #[test]
    fn works_beyond_64_pages() {
        let mut d = DirtyPages::new(100);
        d.mark(64);
        d.mark(99);
        assert!(d.is_dirty(64));
        assert!(d.is_dirty(99));
        assert_eq!(d.count(), 2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![64, 99]);
    }

    #[test]
    fn mark_range_covers_partial_pages() {
        let mut d = DirtyPages::new(64);
        // Bytes [4000, 4100) touch pages 0 and 1 with 4 KiB pages.
        d.mark_range(4000, 4100, 4096);
        assert!(d.is_dirty(0));
        assert!(d.is_dirty(1));
        assert_eq!(d.count(), 2);
    }

    #[test]
    fn runs_coalesce_adjacent_pages() {
        let mut d = DirtyPages::new(64);
        d.mark(1);
        d.mark(2);
        d.mark(3);
        d.mark(7);
        assert_eq!(d.runs(4096), vec![(4096, 3 * 4096), (7 * 4096, 4096)]);
    }

    #[test]
    fn runs_empty_when_clean() {
        let d = DirtyPages::new(64);
        assert!(d.runs(4096).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mark_out_of_range_panics() {
        let mut d = DirtyPages::new(8);
        d.mark(8);
    }
}

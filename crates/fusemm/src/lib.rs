//! # fusemm — the FUSE-equivalent client layer
//!
//! The paper mounts the aggregate NVM store on every compute node through
//! FUSE (`/mnt/aggregatenvm`) and bridges mmap's byte-granular accesses to
//! the store's 256 KiB chunks with a client-side cache (§III-D). This
//! crate implements that layer natively:
//!
//! * [`cache`] — the 64 MiB LRU chunk cache;
//! * [`dirty`] — 4 KiB page dirty bitmaps inside cached chunks;
//! * [`mount`] — the per-node mount: byte reads/writes, fetch-on-miss,
//!   sequential read-ahead, dirty-page-only eviction write-back, flush.
//!
//! The kernel FUSE module itself is an OS plumbing detail; what the
//! paper's evaluation measures is the caching logic, which lives here and
//! is exercised by the same workloads.

pub mod cache;
pub mod dirty;
pub mod mount;

#[cfg(test)]
mod mount_tests;

pub use cache::{CacheEntry, ChunkCache, ChunkKey};
pub use dirty::DirtyPages;
pub use mount::{FuseConfig, Mount};

//! Write-back daemon behaviour tests (DESIGN.md §10): background flushing
//! off the foreground clock, hard-limit throttling, flush-failure retry
//! under benefactor crashes, and segmented-cache scan resistance.

use chunkstore::{AggregateStore, Benefactor, FileId, PlacementPolicy, StoreConfig, StripeSpec};
use devices::{Ssd, INTEL_X25E};
use faults::FaultPlanBuilder;
use fusemm::{FuseConfig, Mount};
use netsim::{NetConfig, Network};
use simcore::time::bytes::mib;
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;
const PAGE: usize = 4096;

/// 3-node world: manager+benefactor on node 0, benefactor on node 1,
/// client mount on node 2.
fn world(cfg: FuseConfig) -> (Mount, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(3, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in [0usize, 1] {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(256), CHUNK));
    }
    (Mount::new(store, 2, cfg, &stats), stats)
}

fn small_cache() -> FuseConfig {
    FuseConfig {
        cache_bytes: 4 * CHUNK, // four entries
        read_ahead_chunks: 0,
        ..FuseConfig::default()
    }
}

fn mk_file(m: &Mount, name: &str, size: u64) -> FileId {
    m.create(
        VTime::ZERO,
        name,
        size,
        StripeSpec::all(),
        PlacementPolicy::RoundRobin,
    )
    .unwrap()
    .1
}

/// Dirty one page at the start of each of `chunks` chunks, threading the
/// virtual clock; returns the foreground clock after the last write.
fn dirty_chunks(m: &Mount, f: FileId, chunks: u64, fill: u8) -> VTime {
    let page = vec![fill; PAGE];
    let mut t = VTime::ZERO;
    for c in 0..chunks {
        t = m.write(t, f, c * CHUNK, &page).unwrap();
    }
    t
}

#[test]
fn background_flusher_cleans_dirty_chunks_off_the_foreground_clock() {
    // Past the background threshold the flusher batches oldest-dirty
    // chunks out without charging the writer; the foreground clock is
    // bit-identical to a run with the daemon off.
    let baseline = {
        let (m, _) = world(small_cache());
        let f = mk_file(&m, "/v", 4 * CHUNK);
        dirty_chunks(&m, f, 4, 7)
    };

    let (m, stats) = world(small_cache().with_writeback(0.5, 1.0));
    let f = mk_file(&m, "/v", 4 * CHUNK);
    let t = dirty_chunks(&m, f, 4, 7);

    assert_eq!(t, baseline, "background flushing is free for the writer");
    assert!(stats.get("fuse.bg_flushes") >= 1, "daemon woke up");
    assert!(stats.get("fuse.bg_writeback_bytes") >= PAGE as u64);
    assert_eq!(stats.get("fuse.throttled_writes"), 0, "hard=1.0: no stalls");
    assert!(
        m.dirty_chunk_count() < 4,
        "some dirty chunks were cleaned in the background"
    );

    // Background-flushed data is durable: a cold mount reads it back.
    let t = m.flush_all(t).unwrap();
    let m2 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; PAGE];
    m2.read(t, f, 3 * CHUNK, &mut out).unwrap();
    assert!(out.iter().all(|&b| b == 7));
}

#[test]
fn daemon_takes_dirty_eviction_off_the_read_path() {
    // Fill a 4-chunk cache with dirty chunks, then stream reads through
    // it. Demand eviction pays a synchronous write-back per miss; with
    // the daemon + segmented cache the flusher has already cleaned the
    // victims, so the read phase is strictly faster.
    let read_phase = |cfg: FuseConfig, stats_out: &mut Option<StatsRegistry>| -> VTime {
        let (m, stats) = world(cfg);
        let f = mk_file(&m, "/v", 8 * CHUNK);
        let t0 = dirty_chunks(&m, f, 4, 9);
        let mut t = t0;
        let mut buf = vec![0u8; PAGE];
        for c in 4..8 {
            t = m.read(t, f, c * CHUNK, &mut buf).unwrap();
        }
        *stats_out = Some(stats);
        t - t0
    };

    let mut demand_stats = None;
    let demand = read_phase(small_cache(), &mut demand_stats);
    let mut daemon_stats = None;
    let daemon = read_phase(
        small_cache().with_writeback(0.25, 1.0).with_seg_cache(),
        &mut daemon_stats,
    );

    assert!(
        daemon < demand,
        "daemon read phase {daemon:?} should beat demand eviction {demand:?}"
    );
    let stats = daemon_stats.unwrap();
    assert!(stats.get("fuse.bg_flushes") >= 1);
    assert!(
        stats.get("fuse.clean_evictions") >= 1,
        "reads evicted chunks the flusher had already cleaned"
    );
    assert_eq!(demand_stats.unwrap().get("fuse.clean_evictions"), 0);
}

#[test]
fn writer_outrunning_flusher_throttles_at_the_hard_limit() {
    // bg=0.25, hard=0.5 on a 4-chunk cache: at most 2 dirty chunks may
    // exist at any virtual instant; a writer dirtying 8 chunks faster
    // than the flusher drains must stall (balance_dirty_pages).
    let cfg = small_cache().with_writeback(0.25, 0.5);
    let hard = cfg.dirty_hard_ratio;
    let (m, stats) = world(cfg);
    let f = mk_file(&m, "/v", 8 * CHUNK);
    let t = dirty_chunks(&m, f, 8, 3);

    assert!(
        stats.get("fuse.throttled_writes") >= 1,
        "writer outran the flusher and stalled"
    );
    assert!(
        m.max_dirty_ratio() <= hard,
        "dirty ratio {} never exceeds dirty_hard_ratio {hard} at any instant",
        m.max_dirty_ratio()
    );

    // Throttled writes still land: verify every page after a full flush.
    let t = m.flush_all(t).unwrap();
    let m2 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; PAGE];
    let mut t2 = t;
    for c in 0..8 {
        t2 = m2.read(t2, f, c * CHUNK, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 3), "chunk {c} readable");
    }
}

#[test]
fn daemon_runs_are_deterministic() {
    let run = || {
        let cfg = small_cache().with_writeback(0.25, 0.5).with_seg_cache();
        let (m, stats) = world(cfg);
        let f = mk_file(&m, "/v", 8 * CHUNK);
        let mut t = dirty_chunks(&m, f, 8, 5);
        let mut buf = vec![0u8; PAGE];
        for c in 0..8 {
            t = m.read(t, f, c * CHUNK, &mut buf).unwrap();
        }
        (
            t,
            stats.get("fuse.bg_flushes"),
            stats.get("fuse.throttled_writes"),
            stats.get("fuse.clean_evictions"),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn crashed_benefactor_leaves_dirty_bits_for_a_later_flush() {
    // A crash mid-flush fails the batch *before* any dirty bit clears;
    // once the benefactor recovers, a retry flushes the same pages.
    let (m, stats) = world(small_cache());
    let f = mk_file(&m, "/v", 2 * CHUNK);
    dirty_chunks(&m, f, 2, 11);
    assert_eq!(m.dirty_chunk_count(), 2);

    m.store().attach_faults(
        FaultPlanBuilder::new(42)
            .crash(VTime::from_millis(1), 0)
            .recover(VTime::from_secs(10), 0)
            .build(),
    );

    // Unreplicated chunks homed on the dead benefactor cannot flush.
    let err = m.flush_file(VTime::from_millis(2), f);
    assert!(err.is_err(), "flush into a dead benefactor fails");
    assert_eq!(stats.get("store.benefactor_crashes"), 1);
    assert!(
        m.dirty_chunk_count() >= 1,
        "failed flush leaves dirty bits set for retry"
    );

    // After the scheduled recovery the retry drains everything.
    let t = m.flush_file(VTime::from_secs(11), f).unwrap();
    assert_eq!(m.dirty_chunk_count(), 0);
    assert_eq!(stats.get("store.benefactor_recoveries"), 1);

    let m2 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; PAGE];
    let mut t2 = t;
    for c in 0..2 {
        t2 = m2.read(t2, f, c * CHUNK, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 11), "chunk {c} survived the retry");
    }
}

#[test]
fn replicated_flush_survives_crash_and_repair_restores_degree() {
    // With replicas=2 a crash degrades rather than fails the data path:
    // reads fail over, a flush while degraded lands on the survivor, and
    // repair re-replicates once the benefactor returns.
    let (m, stats) = world(small_cache());
    let f = m
        .create(
            VTime::ZERO,
            "/v",
            2 * CHUNK,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap()
        .1;
    let t = dirty_chunks(&m, f, 2, 13);
    let t = m.flush_file(t, f).unwrap(); // fully replicated, pre-crash

    m.store().attach_faults(
        FaultPlanBuilder::new(7)
            .crash(VTime::from_millis(1), 0)
            .recover(VTime::from_secs(10), 0)
            .build(),
    );

    // A cold mount after the crash reads through the degraded store.
    let m2 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; PAGE];
    let t = m2
        .read(t.max(VTime::from_millis(2)), f, 0, &mut out)
        .unwrap();
    assert!(out.iter().all(|&b| b == 13));
    assert!(stats.get("store.failovers") > 0);
    assert!(stats.get("store.degraded_reads") > 0);

    // A flush while degraded succeeds on the survivor, dropping the dead
    // copy from the home list.
    let page = vec![17u8; PAGE];
    let t = m2.write(t, f, 0, &page).unwrap();
    let t = m2.flush_file(t, f).unwrap();
    assert_eq!(m2.dirty_chunk_count(), 0);
    assert!(!m2.store().manager().under_replicated().is_empty());

    // After recovery, repair restores the replica degree.
    let (t, report) = m2
        .store()
        .repair_under_replicated(t.max(VTime::from_secs(11)));
    assert!(report.chunks_repaired >= 1);
    assert_eq!(report.chunks_unrepairable, 0);
    assert!(stats.get("store.repairs_chunks") >= 1);
    assert!(m2.store().manager().under_replicated().is_empty());

    let m3 = Mount::new(m.store().clone(), 2, small_cache(), &stats);
    let mut out = vec![0u8; PAGE];
    m3.read(t, f, 0, &mut out).unwrap();
    assert!(out.iter().all(|&b| b == 17));
}

#[test]
fn segmented_cache_protects_the_working_set_from_a_scan() {
    // Re-referenced chunks live in the protected segment; a one-touch
    // streaming scan can only churn probation and cannot evict them.
    let (m, stats) = world(FuseConfig {
        seg_cache: true,
        ..small_cache()
    });
    let f = mk_file(&m, "/v", 16 * CHUNK);
    let mut buf = vec![0u8; PAGE];

    // Touch chunk 0 twice: second reference promotes it to protected.
    let mut t = m.read(VTime::ZERO, f, 0, &mut buf).unwrap();
    t = m.read(t, f, 0, &mut buf).unwrap();

    // Stream the rest of the file once through the 4-chunk cache.
    for c in 1..16 {
        t = m.read(t, f, c * CHUNK, &mut buf).unwrap();
    }

    // The hot chunk survived the scan: no new fetch, and the protected
    // hit is visible on the counter.
    let fetches = stats.get("store.chunk_fetches");
    let hits = stats.get("fuse.scan_protected_hits");
    m.read(t, f, 0, &mut buf).unwrap();
    assert_eq!(
        stats.get("store.chunk_fetches"),
        fetches,
        "protected chunk still resident after the scan"
    );
    assert!(stats.get("fuse.scan_protected_hits") > hits);
}

//! FUSE-layer behaviour tests: strided reads, read-ahead depth, prefetch
//! arrival semantics, flush granularity, and accounting edge cases.

use chunkstore::{
    AggregateStore, Benefactor, FileId, PlacementPolicy, StoreConfig, StoreError, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use fusemm::{FuseConfig, Mount};
use netsim::{NetConfig, Network};
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

fn world(cfg: FuseConfig) -> (Mount, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(2, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    let ssd = Ssd::new("b0.ssd", INTEL_X25E, &stats);
    store.add_benefactor(Benefactor::new(0, ssd, 512 * CHUNK, CHUNK));
    (Mount::new(store, 1, cfg, &stats), stats)
}

fn mk_file(m: &Mount, chunks: u64) -> FileId {
    m.create(
        VTime::ZERO,
        "/v",
        chunks * CHUNK,
        StripeSpec::all(),
        PlacementPolicy::RoundRobin,
    )
    .unwrap()
    .1
}

fn fill(m: &Mount, f: FileId, chunks: u64) -> VTime {
    let data: Vec<u8> = (0..(chunks * CHUNK) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    let t = m.write(VTime::ZERO, f, 0, &data).unwrap();
    m.flush_file(t, f).unwrap()
}

#[test]
fn strided_read_correctness_across_chunks() {
    let (m, _) = world(FuseConfig::default());
    let f = mk_file(&m, 8);
    let t = fill(&m, f, 8);
    // Runs of 100 bytes every 100_000 bytes: crosses chunk boundaries.
    let (run, stride, count) = (100u64, 100_000u64, 15u64);
    let mut out = vec![0u8; (run * count) as usize];
    m.read_strided(t, f, 50, run, stride, count, &mut out)
        .unwrap();
    for r in 0..count {
        for b in 0..run {
            let abs = (50 + r * stride + b) as usize;
            assert_eq!(out[(r * run + b) as usize], (abs % 251) as u8);
        }
    }
}

#[test]
fn strided_read_bounds_checked() {
    let (m, _) = world(FuseConfig::default());
    let f = mk_file(&m, 2);
    let mut out = vec![0u8; 200];
    let err = m
        .read_strided(VTime::ZERO, f, 2 * CHUNK - 150, 100, 100, 2, &mut out)
        .unwrap_err();
    assert!(matches!(err, StoreError::OutOfBounds { .. }));
}

#[test]
fn strided_read_counts_page_granular_requests() {
    let (m, stats) = world(FuseConfig::default());
    let f = mk_file(&m, 8);
    let t = fill(&m, f, 8);
    let before = stats.get("fuse.read_req_bytes");
    // 10 one-byte runs, each on its own page.
    let mut out = vec![0u8; 10];
    m.read_strided(t, f, 0, 1, 8192, 10, &mut out).unwrap();
    assert_eq!(stats.get("fuse.read_req_bytes") - before, 10 * 4096);
}

#[test]
fn deeper_readahead_prefetches_more() {
    for (depth, want_min) in [(1usize, 1u64), (3, 3)] {
        let (m, stats) = world(FuseConfig {
            cache_bytes: 16 * CHUNK,
            read_ahead_chunks: depth,
            ..FuseConfig::default()
        });
        let f = mk_file(&m, 16);
        let t = fill(&m, f, 16);
        let m2 = Mount::new(m.store().clone(), 1, *m.config(), &stats);
        let mut buf = vec![0u8; CHUNK as usize];
        let t1 = m2.read(t, f, 0, &mut buf).unwrap();
        m2.read(t1, f, CHUNK, &mut buf).unwrap(); // sequential → prefetch
        assert!(
            stats.get("fuse.readahead_fetches") >= want_min,
            "depth {depth}: {}",
            stats.get("fuse.readahead_fetches")
        );
    }
}

#[test]
fn prefetched_chunk_hit_waits_for_arrival() {
    let (m, _) = world(FuseConfig {
        cache_bytes: 16 * CHUNK,
        read_ahead_chunks: 1,
        ..FuseConfig::default()
    });
    let f = mk_file(&m, 8);
    let t = fill(&m, f, 8);
    let m2 = Mount::new(m.store().clone(), 1, *m.config(), &Default::default());
    let mut buf = vec![0u8; CHUNK as usize];
    let t1 = m2.read(t, f, 0, &mut buf).unwrap();
    let t2 = m2.read(t1, f, CHUNK, &mut buf).unwrap(); // issues prefetch of chunk 2
                                                       // An *immediate* access to the prefetched chunk cannot complete before
                                                       // the prefetch's own SSD time.
    let t3 = m2.read(t2, f, 2 * CHUNK, &mut buf).unwrap();
    assert!(t3 >= t2, "prefetch hit still respects ready_at");
}

#[test]
fn flush_chunk_is_selective() {
    let (m, stats) = world(FuseConfig::default());
    let f = mk_file(&m, 4);
    let page = vec![1u8; 4096];
    let mut t = m.write(VTime::ZERO, f, 0, &page).unwrap();
    t = m.write(t, f, CHUNK, &page).unwrap();
    assert_eq!(m.dirty_chunks_of(f), vec![0, 1]);
    t = m.flush_chunk(t, f, 0).unwrap();
    assert_eq!(m.dirty_chunks_of(f), vec![1]);
    assert_eq!(stats.get("fuse.writeback_bytes"), 4096);
    m.flush_chunk(t, f, 1).unwrap();
    assert!(m.dirty_chunks_of(f).is_empty());
}

#[test]
fn dirty_page_runs_coalesce_in_writeback() {
    let (m, stats) = world(FuseConfig {
        cache_bytes: 2 * CHUNK,
        read_ahead_chunks: 0,
        ..FuseConfig::default()
    });
    let f = mk_file(&m, 4);
    // Dirty pages 0,1,2 and 10 of chunk 0: two runs.
    let mut t = m.write(VTime::ZERO, f, 0, &vec![1u8; 3 * 4096]).unwrap();
    t = m.write(t, f, 10 * 4096, &[2u8; 100]).unwrap();
    m.flush_chunk(t, f, 0).unwrap();
    // 3 pages + 1 page shipped.
    assert_eq!(stats.get("fuse.writeback_bytes"), 4 * 4096);
    assert_eq!(stats.get("store.bytes_from_clients"), 4 * 4096);
}

#[test]
fn write_only_chunks_never_fetch_data() {
    let (m, stats) = world(FuseConfig::default());
    let f = mk_file(&m, 4);
    // Writing into unmaterialized space fetches only zero-fill metadata.
    m.write(VTime::ZERO, f, 0, &vec![1u8; (2 * CHUNK) as usize])
        .unwrap();
    assert_eq!(stats.get("store.bytes_to_clients"), 0);
    assert_eq!(stats.get("store.zero_fills"), 2);
}

#[test]
fn empty_reads_and_writes_are_free() {
    let (m, stats) = world(FuseConfig::default());
    let f = mk_file(&m, 1);
    let t0 = VTime::from_secs(5);
    assert_eq!(m.read(t0, f, 0, &mut []).unwrap(), t0);
    assert_eq!(m.write(t0, f, 0, &[]).unwrap(), t0);
    assert_eq!(stats.get("fuse.read_req_bytes"), 0);
    assert_eq!(stats.get("fuse.write_req_bytes"), 0);
}

#[test]
fn lru_eviction_order_is_strict() {
    let (m, _) = world(FuseConfig {
        cache_bytes: 3 * CHUNK,
        read_ahead_chunks: 0,
        ..FuseConfig::default()
    });
    let f = mk_file(&m, 8);
    let t = fill(&m, f, 8);
    let m2 = Mount::new(m.store().clone(), 1, *m.config(), &Default::default());
    let stats = StatsRegistry::new();
    let _ = stats;
    let mut buf = [0u8; 16];
    // Touch 0,1,2 then re-touch 0: LRU is 1.
    let mut t2 = t;
    for idx in [0u64, 1, 2, 0] {
        t2 = m2.read(t2, f, idx * CHUNK, &mut buf).unwrap();
    }
    // Insert 3 → evicts 1. A re-read of 0 and 2 must still hit.
    let (hits_before, fetches_before) = {
        let s = m2.store();
        let _ = s;
        (0, 0)
    };
    let _ = (hits_before, fetches_before);
    t2 = m2.read(t2, f, 3 * CHUNK, &mut buf).unwrap();
    let t3 = m2.read(t2, f, 0, &mut buf).unwrap();
    let t4 = m2.read(t3, f, 2 * CHUNK, &mut buf).unwrap();
    // Hits cost only op overhead.
    assert_eq!(t3 - t2, m.config().op_overhead);
    assert_eq!(t4 - t3, m.config().op_overhead);
    // Chunk 1 was evicted: reading it costs a real fetch.
    let t5 = m2.read(t4, f, CHUNK, &mut buf).unwrap();
    assert!(t5 - t4 > m.config().op_overhead * 10);
}

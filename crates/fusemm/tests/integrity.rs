//! Mount-level integrity semantics (DESIGN.md §11): a chunk whose every
//! copy fails CRC verification surfaces as a read *error* — never as
//! silently wrong bytes and never as a poisoned cache entry — while a
//! single corrupt replica fails over transparently. Dirty state is
//! untouched by a failed read, so writers can retry after repair.

use chunkstore::{
    AggregateStore, Benefactor, BenefactorId, ChunkId, FileId, PlacementPolicy, Slot, StoreConfig,
    StoreError, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use fusemm::{FuseConfig, Mount};
use netsim::{NetConfig, Network};
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

/// A verifying store with `n` benefactors (nodes `0..n`), mount on node `n`.
fn world_verify(n: usize) -> (Mount, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(n + 1, NetConfig::default(), &stats);
    let cfg = StoreConfig {
        verify_reads: true,
        ..StoreConfig::default()
    };
    let store = AggregateStore::new(cfg, net, &stats);
    for node in 0..n {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, 512 * CHUNK, CHUNK));
    }
    (Mount::new(store, n, FuseConfig::default(), &stats), stats)
}

fn mk_file(m: &Mount, chunks: u64, k: usize) -> FileId {
    m.create(
        VTime::ZERO,
        "/v",
        chunks * CHUNK,
        StripeSpec::all().with_replicas(k),
        PlacementPolicy::RoundRobin,
    )
    .unwrap()
    .1
}

fn fill(m: &Mount, f: FileId, chunks: u64) -> VTime {
    let data: Vec<u8> = (0..(chunks * CHUNK) as usize)
        .map(|i| (i % 251) as u8)
        .collect();
    let t = m.write(VTime::ZERO, f, 0, &data).unwrap();
    m.flush_file(t, f).unwrap()
}

fn chunk_of(store: &AggregateStore, f: FileId, idx: usize) -> ChunkId {
    match store.manager().file(f).unwrap().slots[idx] {
        Slot::Chunk(c) => c,
        _ => panic!("slot {idx} not materialized"),
    }
}

/// Flip one byte of a stored copy. `corrupt_chunk` XORs, so applying it
/// twice restores the original — the tests use that to model a repair.
fn flip(store: &AggregateStore, b: BenefactorId, c: ChunkId, off: u64) {
    assert!(store.manager().benefactor_mut(b).corrupt_chunk(c, off));
}

#[test]
fn corrupt_sole_copy_is_a_mount_read_error_and_retry_after_repair_works() {
    let (m, stats) = world_verify(1);
    let f = mk_file(&m, 2, 1);
    let t = fill(&m, f, 2);
    let c = chunk_of(m.store(), f, 1);
    flip(m.store(), BenefactorId(0), c, 33);

    // A cold mount over the same store: the read must come from disk.
    let m2 = Mount::new(m.store().clone(), 1, FuseConfig::default(), &stats);
    let mut buf = vec![0u8; 64];
    let err = m2.read(t, f, CHUNK + 16, &mut buf).unwrap_err();
    assert!(
        matches!(err, StoreError::ChunkCorrupt { chunk, .. } if chunk == c),
        "got {err}"
    );
    assert!(buf.iter().all(|&b| b == 0), "no unverified bytes leaked");
    // The intact chunk is still readable — the error is per-chunk.
    let (_, _) = {
        let mut ok = vec![0u8; 64];
        (m2.read(t, f, 16, &mut ok).unwrap(), ok[0])
    };

    // "Repair" the copy (the XOR is an involution), then retry: the
    // failed fetch must not have poisoned the cache with bad bytes.
    flip(m.store(), BenefactorId(0), c, 33);
    let mut buf = vec![0u8; 64];
    m2.read(t, f, CHUNK + 16, &mut buf).unwrap();
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(b, (((CHUNK + 16) as usize + i) % 251) as u8);
    }
}

#[test]
fn corrupt_replica_fails_over_transparently_at_the_mount() {
    let (m, stats) = world_verify(3);
    let f = mk_file(&m, 2, 2);
    let t = fill(&m, f, 2);
    let c = chunk_of(m.store(), f, 0);
    let primary = m.store().manager().chunk_homes(c).unwrap()[0];
    flip(m.store(), primary, c, 7);

    let m2 = Mount::new(m.store().clone(), 3, FuseConfig::default(), &stats);
    let mut buf = vec![0u8; 128];
    m2.read(t, f, 0, &mut buf).unwrap();
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(b, (i % 251) as u8, "failover served the intact copy");
    }
    assert_eq!(stats.get("store.crc_mismatches"), 1);
    assert_eq!(stats.get("store.degraded_reads"), 1);
}

#[test]
fn failed_read_leaves_dirty_state_intact_for_retry() {
    let (m, stats) = world_verify(1);
    let f = mk_file(&m, 2, 1);
    let t = fill(&m, f, 2);
    let c1 = chunk_of(m.store(), f, 1);

    let m2 = Mount::new(m.store().clone(), 1, FuseConfig::default(), &stats);
    // Dirty some pages of chunk 0 on the cold mount.
    let t = m2.write(t, f, 4096, &[0xAB; 4096]).unwrap();
    assert_eq!(m2.dirty_chunks_of(f), vec![0]);

    // Now a read of chunk 1 fails verification mid-operation.
    flip(m.store(), BenefactorId(0), c1, 0);
    let mut buf = vec![0u8; 32];
    let err = m2.read(t, f, CHUNK, &mut buf).unwrap_err();
    assert!(matches!(err, StoreError::ChunkCorrupt { .. }));

    // The failure touched neither the dirty bits nor the cached data:
    // the writer's pages are still queued and flush cleanly.
    assert_eq!(m2.dirty_chunks_of(f), vec![0]);
    let t = m2.flush_file(t, f).unwrap();
    assert!(m2.dirty_chunks_of(f).is_empty());

    // And once the copy is repaired the same read succeeds, seeing both
    // the original fill and the new write where they belong.
    flip(m.store(), BenefactorId(0), c1, 0);
    let mut buf = vec![0u8; 32];
    m2.read(t, f, CHUNK, &mut buf).unwrap();
    for (i, &b) in buf.iter().enumerate() {
        assert_eq!(b, ((CHUNK as usize + i) % 251) as u8);
    }
}

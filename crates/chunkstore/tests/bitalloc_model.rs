//! Property tests for the two-level bitmap-tree slot allocator
//! (DESIGN.md §13), against a naive ordered-set model:
//!
//! * **First-fit determinism** — `alloc` always returns the lowest free
//!   slot, exactly what a linear scan over the model would pick.
//! * **Model agreement** — after an arbitrary interleaving of allocs and
//!   frees, the allocator's membership matches the model bit for bit.
//! * **O(1) counter agreement** — the folded free counter equals
//!   `len - |model|` at every step, never recounted.
//! * **Summary/child consistency** — every summary bit equals
//!   "child word full" after any interleaving, and rebuilding from the
//!   leaf bitmap alone (`from_leaf`, the crash-recovery path) reproduces
//!   the live allocator exactly.

use chunkstore::BitAlloc;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One step of an interleaving: allocate, or free the `pick`-th oldest
/// allocated slot (ignored when nothing is allocated).
#[derive(Clone, Debug)]
enum Op {
    Alloc,
    Free { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Alloc),
        1 => (0usize..1024).prop_map(|pick| Op::Free { pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn matches_naive_set_model(
        len in 1usize..600,
        ops in proptest::collection::vec(op_strategy(), 1..400),
    ) {
        let mut a = BitAlloc::new(len);
        let mut model: BTreeSet<usize> = BTreeSet::new();

        for op in &ops {
            match op {
                Op::Alloc => {
                    // The model's first-fit pick: lowest index not allocated.
                    let expect = (0..len).find(|s| !model.contains(s));
                    let got = a.alloc();
                    prop_assert_eq!(got, expect, "alloc must be first-fit");
                    if let Some(s) = got {
                        model.insert(s);
                    }
                }
                Op::Free { pick } => {
                    if model.is_empty() {
                        continue;
                    }
                    let &s = model
                        .iter()
                        .nth(pick % model.len())
                        .expect("model non-empty");
                    prop_assert!(a.is_allocated(s));
                    a.release(s);
                    model.remove(&s);
                }
            }
            // O(1) folded counter agrees with the model at every step.
            prop_assert_eq!(a.free_count(), len - model.len());
            prop_assert_eq!(a.allocated(), model.len());
        }

        // Final membership is bit-identical to the model.
        for s in 0..len {
            prop_assert_eq!(a.is_allocated(s), model.contains(&s), "slot {}", s);
        }
        // Summary tree and counters are internally consistent…
        a.assert_consistent();
        // …and the leaf bitmap alone reconstructs the allocator (the
        // crash-recovery claim: summaries and counters are derived state).
        let rebuilt = BitAlloc::from_leaf(a.leaf_words().to_vec(), a.len());
        prop_assert_eq!(rebuilt.free_count(), a.free_count());
        for s in 0..len {
            prop_assert_eq!(rebuilt.is_allocated(s), a.is_allocated(s));
        }
        rebuilt.assert_consistent();
    }

    #[test]
    fn alloc_free_alloc_returns_the_same_slot(
        len in 1usize..300,
        churn in 1usize..64,
    ) {
        // Determinism of find-first-free: freeing the slot just allocated
        // and allocating again must return the same slot, every time.
        let mut a = BitAlloc::new(len);
        for _ in 0..churn {
            let Some(s) = a.alloc() else { break };
            a.release(s);
            prop_assert_eq!(a.alloc(), Some(s));
        }
        a.assert_consistent();
    }

    #[test]
    fn fills_exactly_to_capacity(len in 1usize..600) {
        let mut a = BitAlloc::new(len);
        for want in 0..len {
            prop_assert_eq!(a.alloc(), Some(want), "ascending first-fit fill");
        }
        prop_assert_eq!(a.alloc(), None, "full allocator refuses");
        prop_assert_eq!(a.free_count(), 0);
        a.assert_consistent();
    }
}

//! Model-based property testing of the manager: under arbitrary
//! create/write/link/delete sequences, the space books must stay
//! consistent and chunk reference counting must never leak or
//! double-free.

use chunkstore::{AggregateStore, Benefactor, FileId, PlacementPolicy, StoreConfig, StripeSpec};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use proptest::prelude::*;
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;
const BENEFACTORS: usize = 3;
const CAP_CHUNKS: u64 = 48;

#[derive(Clone, Debug)]
enum Action {
    Create { size_chunks: u64, replicas: usize },
    WritePage { file_slot: usize, chunk_idx: usize },
    Link { dst_slot: usize, src_slot: usize },
    Delete { file_slot: usize },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (1u64..6, 1usize..3).prop_map(|(size_chunks, replicas)| Action::Create {
            size_chunks,
            replicas
        }),
        4 => (0usize..8, 0usize..6).prop_map(|(file_slot, chunk_idx)| Action::WritePage {
            file_slot,
            chunk_idx
        }),
        2 => (0usize..8, 0usize..8).prop_map(|(dst_slot, src_slot)| Action::Link {
            dst_slot,
            src_slot
        }),
        2 => (0usize..8).prop_map(|file_slot| Action::Delete { file_slot }),
    ]
}

fn store() -> AggregateStore {
    let stats = StatsRegistry::new();
    let net = Network::new(BENEFACTORS + 1, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..BENEFACTORS {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, CAP_CHUNKS * CHUNK, CHUNK));
    }
    store
}

/// Invariants that must hold after every action.
fn check_invariants(store: &AggregateStore, live: &[FileId]) {
    let mgr = store.manager();
    // Every benefactor's books stay within capacity and non-negative.
    let (total, free) = mgr.space();
    assert!(free <= total);
    // Copies held by benefactors match the metadata home lists exactly
    // (a copy on disk with no home entry — or vice versa — is a leak),
    // and `physical_bytes` counts each distinct chunk once.
    let stored: u64 = (0..mgr.benefactor_count())
        .map(|i| mgr.benefactor(chunkstore::BenefactorId(i)).chunk_count() as u64)
        .sum();
    let chunks = mgr.chunk_ids_sorted();
    let homed: u64 = chunks
        .iter()
        .map(|&c| mgr.chunk_homes(c).unwrap().len() as u64)
        .sum();
    assert_eq!(stored, homed, "benefactor copies match metadata homes");
    assert_eq!(mgr.physical_bytes(), chunks.len() as u64 * CHUNK);
    // Every live file's materialized chunks resolve to a live benefactor
    // entry with a positive refcount.
    for &f in live {
        let meta = mgr.file(f).expect("live file exists");
        for slot in &meta.slots {
            if let chunkstore::Slot::Chunk(c) = slot {
                assert!(mgr.chunk_refcount(*c) >= 1, "live chunk without refs");
                // *Every* replica home must hold the bytes, not just the
                // primary — a leaked or dangling replica is corruption.
                let homes = mgr.chunk_homes(*c).expect("chunk has homes");
                assert!(!homes.is_empty());
                for home in homes {
                    assert!(
                        mgr.benefactor(*home).has_chunk(*c),
                        "metadata points at data on every replica"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn space_and_refcounts_never_corrupt(actions in proptest::collection::vec(action_strategy(), 1..60)) {
        let store = store();
        let node = BENEFACTORS;
        let mut files: Vec<FileId> = Vec::new();
        let mut t = VTime::ZERO;
        let mut name = 0u64;

        for action in actions {
            match action {
                Action::Create { size_chunks, replicas } => {
                    name += 1;
                    if let Ok((t2, f)) = store.create_file(t, node, &format!("/f{name}")) {
                        t = t2;
                        // Mixing k=1 and k=2 files exercises replica
                        // reservation release alongside plain refcounts.
                        match store.fallocate(
                            t, node, f, size_chunks * CHUNK,
                            StripeSpec::all().with_replicas(replicas),
                            PlacementPolicy::RoundRobin,
                        ) {
                            Ok(t2) => { t = t2; files.push(f); }
                            Err(_) => { t = store.delete(t, node, f).unwrap(); }
                        }
                    }
                }
                Action::WritePage { file_slot, chunk_idx } => {
                    if files.is_empty() { continue; }
                    let f = files[file_slot % files.len()];
                    let n_chunks = store.chunk_count(f).unwrap();
                    if n_chunks == 0 { continue; }
                    let idx = chunk_idx % n_chunks;
                    let page = vec![(chunk_idx % 251) as u8; 4096];
                    // OutOfSpace on COW is a legal refusal, not corruption.
                    match store.write_pages(t, node, f, idx, &[(0, &page)]) {
                        Ok(t2) => t = t2,
                        Err(chunkstore::StoreError::OutOfSpace { .. }) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                Action::Link { dst_slot, src_slot } => {
                    if files.len() < 2 { continue; }
                    let dst = files[dst_slot % files.len()];
                    let src = files[src_slot % files.len()];
                    if dst == src { continue; }
                    t = store.link_file(t, node, dst, src).unwrap();
                }
                Action::Delete { file_slot } => {
                    if files.is_empty() { continue; }
                    let f = files.remove(file_slot % files.len());
                    t = store.delete(t, node, f).unwrap();
                }
            }
            check_invariants(&store, &files);
        }

        // Tear everything down: the store must come back empty.
        for f in files.drain(..) {
            t = store.delete(t, node, f).unwrap();
        }
        assert_eq!(store.manager().physical_bytes(), 0);
        let (total, free) = store.manager().space();
        assert_eq!(total, free, "all reservations released");
    }
}

//! The batched data path must be an *optimization*, never a semantic
//! change: for any reachable store state — including one shaped by a
//! fault plan — `fetch_chunks` returns the same bytes and counts the
//! same failovers as the serial `fetch_chunk` loop it replaces. A second
//! suite pins the location cache's epoch coherence across the full
//! crash → repair → recovery cycle.

use chunkstore::{
    AggregateStore, Benefactor, BenefactorId, ChunkPayload, LocationCache, PlacementPolicy,
    StoreConfig, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use faults::FaultPlanBuilder;
use netsim::{NetConfig, Network};
use proptest::prelude::*;
use simcore::{time::bytes::mib, StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;
const SLOTS: usize = 6;

fn build_store(benefactors: usize) -> (AggregateStore, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(benefactors + 1, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..benefactors {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(64), CHUNK));
    }
    (store, stats)
}

/// Set up one store: a k-replicated file with `writes[i]` in slot i
/// (None = never written) and an optional benefactor crash scheduled
/// strictly before the fetch epoch, delivered through a fault plan.
fn prepare(
    nbene: usize,
    k: usize,
    writes: &[Option<u8>],
    victim: Option<usize>,
) -> (AggregateStore, StatsRegistry, chunkstore::FileId, VTime) {
    let (store, stats) = build_store(nbene);
    let client = nbene;
    let (t0, f) = store.create_file(VTime::ZERO, client, "/v").unwrap();
    store
        .fallocate(
            t0,
            client,
            f,
            SLOTS as u64 * CHUNK,
            StripeSpec::all().with_replicas(k),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let mut t = t0;
    for (idx, w) in writes.iter().enumerate() {
        if let Some(v) = w {
            let page = vec![*v; 4096];
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
    }
    if let Some(b) = victim {
        // All events land at-or-before the fetch epoch so the serial loop
        // and the single batch observe the same liveness set.
        store.attach_faults(FaultPlanBuilder::new(99).crash(t, b).build());
    }
    (store, stats, f, t + VTime::from_micros(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial loop vs one batch over identical twin stores: byte-identical
    /// payloads, identical failover counts.
    #[test]
    fn batched_fetch_matches_serial(
        nbene in 2usize..5,
        raw_writes in proptest::collection::vec(0u8..255, SLOTS..SLOTS + 1),
        crash in 0usize..5,
    ) {
        // k=2 and at most one crash: every chunk keeps a live copy, so
        // both paths succeed (possibly via failover) on every slot.
        // 0 encodes "no write" / "no crash" in the shrink-friendly way.
        let writes: Vec<Option<u8>> =
            raw_writes.iter().map(|&v| if v == 0 { None } else { Some(v) }).collect();
        let victim = if crash == 0 { None } else { Some((crash - 1) % nbene) };
        let (serial_store, serial_stats, f_s, t) = prepare(nbene, 2, &writes, victim);
        let (batch_store, batch_stats, f_b, t_b) = prepare(nbene, 2, &writes, victim);
        prop_assert_eq!(t, t_b);

        let client = nbene;
        let mut serial_payloads = Vec::new();
        let mut ts = t;
        for idx in 0..SLOTS {
            let (t2, p) = serial_store.fetch_chunk(ts, client, f_s, idx).unwrap();
            ts = t2;
            serial_payloads.push(p);
        }

        let targets: Vec<_> = (0..SLOTS).map(|idx| (f_b, idx)).collect();
        let batched = batch_store.fetch_chunks(t, client, &targets, None).unwrap();

        for (idx, ((_, bp), sp)) in batched.iter().zip(&serial_payloads).enumerate() {
            prop_assert_eq!(bp, sp, "payload divergence at slot {}", idx);
            match (bp, &writes[idx]) {
                (ChunkPayload::Zeros, None) => {}
                (ChunkPayload::Data(d), Some(v)) => prop_assert_eq!(d[0], *v),
                _ => panic!("payload does not match what was written at slot {idx}"),
            }
        }
        prop_assert_eq!(
            serial_stats.get("store.failovers"),
            batch_stats.get("store.failovers"),
            "failover accounting diverged"
        );
        prop_assert_eq!(
            serial_stats.get("store.degraded_reads"),
            batch_stats.get("store.degraded_reads"),
            "degraded-read accounting diverged"
        );
    }
}

/// A degraded slot must cost the batch exactly what it costs the serial
/// path: `fetch_chunks` routes fallback targets through the same
/// verified retry loop as `fetch_chunk` (one manager RPC, then
/// failover/backoff from the RPC's end), so the virtual completion
/// times — not just the payloads — are identical.
#[test]
fn batched_degraded_fetch_costs_the_same_virtual_time_as_serial() {
    let writes: Vec<Option<u8>> = vec![Some(42), None, None, None, None, None];
    for nbene in 2..5 {
        // Crash slot 0's primary home so the single target is degraded.
        let (serial_store, serial_stats, f_s, t) = prepare(nbene, 2, &writes, Some(0));
        let (batch_store, batch_stats, f_b, _) = prepare(nbene, 2, &writes, Some(0));
        let client = nbene;

        let (t_serial, p_serial) = serial_store.fetch_chunk(t, client, f_s, 0).unwrap();
        let batched = batch_store
            .fetch_chunks(t, client, &[(f_b, 0)], None)
            .unwrap();
        let (t_batch, p_batch) = &batched[0];

        assert_eq!(
            t_serial, *t_batch,
            "degraded fetch time diverged at nbene={nbene}"
        );
        assert_eq!(&p_serial, p_batch);
        assert_eq!(serial_stats.get("store.degraded_reads"), 1);
        assert_eq!(batch_stats.get("store.degraded_reads"), 1);
        assert_eq!(
            serial_stats.get("store.failovers"),
            batch_stats.get("store.failovers")
        );
    }
}

/// Epoch coherence: the cache serves repeat fetches without manager
/// traffic, is dropped wholesale the moment placement can have changed
/// (crash, repair, recovery), and never yields stale homes — reads stay
/// correct through the whole cycle.
#[test]
fn location_cache_invalidates_across_crash_repair_recovery() {
    let nbene = 4;
    let writes: Vec<Option<u8>> = (0..SLOTS).map(|i| Some(i as u8 + 1)).collect();
    let (store, stats, f, t) = prepare(nbene, 2, &writes, None);
    let client = nbene;
    let cache = LocationCache::new(&stats);
    let targets: Vec<_> = (0..SLOTS).map(|idx| (f, idx)).collect();

    // Cold batch populates the cache; a warm batch is pure hits.
    let warm = store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(cache.len(), SLOTS);
    assert_eq!(stats.get("store.loc_cache_hits"), 0);
    let t = warm.iter().map(|(t, _)| *t).max().unwrap();
    store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(stats.get("store.loc_cache_hits"), SLOTS as u64);
    assert_eq!(stats.get("store.loc_cache_invalidations"), 0);

    // Crash: placement epoch moves, the stale map is dropped in one
    // invalidation, and the refill still reads the right bytes.
    store.set_benefactor_alive(BenefactorId(1), false);
    let refill = store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(stats.get("store.loc_cache_invalidations"), 1);
    for (idx, (_, p)) in refill.iter().enumerate() {
        match p {
            ChunkPayload::Data(d) => assert_eq!(d[0], idx as u8 + 1),
            ChunkPayload::Zeros => panic!("written slot read as zeros"),
        }
    }
    assert_eq!(cache.len(), SLOTS, "cache refilled under the new epoch");
    let t = refill.iter().map(|(t, _)| *t).max().unwrap();

    // Repair re-homes the degraded copies: another epoch, another flush.
    let (t, repair) = store.repair_under_replicated(t);
    assert!(repair.chunks_repaired > 0);
    store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(stats.get("store.loc_cache_invalidations"), 2);

    // Recovery of the crashed benefactor: same rule once more, and the
    // final warm batch hits without a single stale-home read.
    store.set_benefactor_alive(BenefactorId(1), true);
    let final_read = store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(stats.get("store.loc_cache_invalidations"), 3);
    let t = final_read.iter().map(|(t, _)| *t).max().unwrap();
    let hits_before = stats.get("store.loc_cache_hits");
    let warm = store
        .fetch_chunks(t, client, &targets, Some(&cache))
        .unwrap();
    assert_eq!(
        stats.get("store.loc_cache_hits"),
        hits_before + SLOTS as u64
    );
    for (idx, (_, p)) in warm.iter().enumerate() {
        match p {
            ChunkPayload::Data(d) => assert_eq!(d[0], idx as u8 + 1),
            ChunkPayload::Zeros => panic!("written slot read as zeros"),
        }
    }
}

//! Property tests for the sharded placement manager (DESIGN.md §12):
//!
//! * **Ring growth is minimal** — adding one shard to an N-shard ring
//!   moves keys *only* to the new shard, and in aggregate no more than
//!   roughly its fair `1/(N+1)` share of a random key population.
//! * **Revocation is airtight** — recovering a crashed shard (which
//!   revokes its leases) always strictly bumps the placement epoch, and
//!   no stale `LocationCache` hit survives it: the next batched fetch
//!   re-resolves through the shards.

use chunkstore::shardmgr::DEFAULT_VNODES;
use chunkstore::{
    AggregateStore, BatchWrite, Benefactor, ChunkId, ChunkPayload, FileId, HashRing, LocationCache,
    PlacementPolicy, StoreConfig, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use proptest::prelude::*;
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;
const BENEFACTORS: usize = 3;

/// Benefactors on nodes `1..=BENEFACTORS`, `shards` manager ranks
/// round-robin on those nodes, client driving from the last node.
fn sharded_store(shards: usize, seed: u64) -> (AggregateStore, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(BENEFACTORS + 2, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 1..=BENEFACTORS {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, 64 * CHUNK, CHUNK));
    }
    let nodes: Vec<usize> = (0..shards).map(|k| (k % BENEFACTORS) + 1).collect();
    store.install_shards(&nodes, seed);
    (store, stats)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn growth_remaps_at_most_a_fair_share_and_only_to_the_new_shard(
        seed in any::<u64>(),
        shards in 1usize..8,
        keys in proptest::collection::vec(any::<u64>(), 256..512),
    ) {
        let old = HashRing::new(shards, DEFAULT_VNODES, seed);
        let new = HashRing::new(shards + 1, DEFAULT_VNODES, seed);
        let mut moved = 0usize;
        for &k in &keys {
            let a = old.owner_of_chunk(ChunkId(k));
            let b = new.owner_of_chunk(ChunkId(k));
            if a != b {
                prop_assert_eq!(b, shards, "keys only ever move to the new shard");
                moved += 1;
            }
        }
        // Expected share is 1/(N+1); with `DEFAULT_VNODES` points per shard the
        // realized share stays within a few percent of that, so 2.5x
        // slack (plus a small absolute allowance for tiny populations)
        // is many standard deviations of headroom.
        let bound = keys.len() * 5 / (2 * (shards + 1)) + 8;
        prop_assert!(
            moved <= bound,
            "remapped {} of {} keys growing {}→{} shards (bound {})",
            moved, keys.len(), shards, shards + 1, bound
        );
    }

    #[test]
    fn revocation_always_bumps_the_epoch_and_kills_stale_hits(
        seed in any::<u64>(),
        shards in 1usize..5,
        slots in 2usize..10,
        victim_raw in any::<usize>(),
    ) {
        let (store, stats) = sharded_store(shards, seed);
        let client = BENEFACTORS + 1;
        let (t, f) = store.create_file(VTime::ZERO, client, "/p").unwrap();
        let t = store
            .fallocate(
                t,
                client,
                f,
                slots as u64 * CHUNK,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![1u8; 4096];
        let upd = [(0u64, page.as_slice())];
        let batch: Vec<BatchWrite> = (0..slots)
            .map(|idx| BatchWrite { file: f, idx, updates: &upd })
            .collect();
        let ends = store.write_pages_batch(t, client, &batch).unwrap();
        let t = ends.iter().copied().max().unwrap();
        let cache = LocationCache::new(&stats);
        let targets: Vec<(FileId, usize)> = (0..slots).map(|i| (f, i)).collect();
        let r = store.fetch_chunks(t, client, &targets, Some(&cache)).unwrap();
        let t = r.iter().map(|&(e, _)| e).max().unwrap();
        // Warmed up: the same batch is all lease-backed cache hits.
        let hits0 = stats.get("store.loc_cache_hits");
        let rpcs0 = stats.get("store.mgr_rpcs");
        let r = store.fetch_chunks(t, client, &targets, Some(&cache)).unwrap();
        let t = r.iter().map(|&(e, _)| e).max().unwrap();
        prop_assert_eq!(stats.get("store.loc_cache_hits"), hits0 + slots as u64);
        prop_assert_eq!(stats.get("store.mgr_rpcs"), rpcs0);
        // Crash + recover an arbitrary shard. Recovery revokes the
        // shard's delegations: the placement epoch must strictly
        // advance, and not one stale cache hit may survive.
        let victim = victim_raw % shards;
        let epoch0 = store.manager().placement_epoch();
        store.set_shard_alive(victim, false);
        store.set_shard_alive(victim, true);
        prop_assert!(
            store.manager().placement_epoch() > epoch0,
            "revocation must bump the placement epoch"
        );
        let hits1 = stats.get("store.loc_cache_hits");
        let rpcs1 = stats.get("store.mgr_rpcs");
        let r = store.fetch_chunks(t, client, &targets, Some(&cache)).unwrap();
        prop_assert!(r.iter().all(|(_, p)| matches!(p, ChunkPayload::Data(_))));
        prop_assert_eq!(
            stats.get("store.loc_cache_hits"),
            hits1,
            "no stale LocationCache hit survives a revoke"
        );
        prop_assert!(
            stats.get("store.mgr_rpcs") > rpcs1,
            "placement is re-resolved from the shards"
        );
    }
}

//! Property-based model of the replicated store.
//!
//! A reference model (per-slot "last written value") is driven alongside
//! the real store through random sequences of writes, benefactor crashes,
//! recoveries and repair sweeps. Invariants:
//!
//! * placement — no two replicas of a chunk ever share a benefactor, and
//!   every listed home is a registered benefactor;
//! * durability — after all benefactors are revived and one repair sweep
//!   runs, every chunk is back at exactly its target replica degree;
//! * consistency — a read that succeeds (possibly via failover) always
//!   returns the *latest* written bytes, never a torn or stale version.

use chunkstore::{
    AggregateStore, Benefactor, BenefactorId, ChunkPayload, PlacementPolicy, StoreConfig,
    StoreError, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use proptest::prelude::*;
use simcore::{time::bytes::mib, StatsRegistry, VTime};
use std::collections::HashSet;

const CHUNK: u64 = 256 * 1024;
const SLOTS: usize = 4;

fn build_store(benefactors: usize) -> AggregateStore {
    let stats = StatsRegistry::new();
    let net = Network::new(benefactors + 1, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..benefactors {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, mib(64), CHUNK));
    }
    store
}

/// Check the placement invariant over every materialized chunk of `f`.
fn assert_placement(store: &AggregateStore, f: chunkstore::FileId, benefactors: usize) {
    let mgr = store.manager();
    let meta = mgr.file(f).unwrap();
    for slot in &meta.slots {
        if let chunkstore::Slot::Chunk(c) = slot {
            let homes = mgr.chunk_homes(*c).unwrap();
            let distinct: HashSet<BenefactorId> = homes.iter().copied().collect();
            assert_eq!(distinct.len(), homes.len(), "replicas share a benefactor");
            assert!(homes.iter().all(|h| h.0 < benefactors), "unknown home");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replicated_store_matches_model(
        nbene in 2usize..5,
        kraw in 1usize..4,
        ops in proptest::collection::vec((0u8..4, 0usize..64, 1u8..255), 1..40),
    ) {
        let k = kraw.min(nbene);
        let store = build_store(nbene);
        let client = nbene; // the extra node
        let (t0, f) = store.create_file(VTime::ZERO, client, "/v").unwrap();
        store
            .fallocate(
                t0,
                client,
                f,
                SLOTS as u64 * CHUNK,
                StripeSpec::all().with_replicas(k),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();

        let mut model: Vec<Option<u8>> = vec![None; SLOTS];
        let mut alive = vec![true; nbene];
        let mut t = t0;

        for (op, sel, val) in ops {
            match op {
                // Write a full page of `val` into a slot.
                0 => {
                    let idx = sel % SLOTS;
                    let page = vec![val; 4096];
                    match store.write_pages(t, client, f, idx, &[(0, &page)]) {
                        Ok(t2) => {
                            t = t2;
                            model[idx] = Some(val);
                        }
                        Err(StoreError::BenefactorDown(_)) => {
                            // Legal only when every copy is dead; the model
                            // keeps its old value and the store must too.
                        }
                        Err(e) => panic!("unexpected write error: {e:?}"),
                    }
                }
                // Crash a benefactor (never the last one standing).
                1 => {
                    let b = sel % nbene;
                    if alive.iter().filter(|&&a| a).count() > 1 && alive[b] {
                        store.set_benefactor_alive(BenefactorId(b), false);
                        alive[b] = false;
                    }
                }
                // Revive a benefactor.
                2 => {
                    let b = sel % nbene;
                    if !alive[b] {
                        store.set_benefactor_alive(BenefactorId(b), true);
                        alive[b] = true;
                    }
                }
                // Repair sweep.
                _ => {
                    let (t2, _) = store.repair_under_replicated(t);
                    t = t2;
                }
            }
            assert_placement(&store, f, nbene);

            // Consistency: any read that succeeds returns the latest write.
            for (idx, expect) in model.iter().enumerate() {
                match store.fetch_chunk(t, client, f, idx) {
                    Ok((t2, payload)) => {
                        t = t2;
                        match (payload, expect) {
                            (ChunkPayload::Zeros, None) => {}
                            (ChunkPayload::Data(d), Some(v)) => {
                                prop_assert_eq!(d[0], *v, "stale read at slot {}", idx);
                                prop_assert_eq!(d[4095], *v, "torn read at slot {}", idx);
                            }
                            (ChunkPayload::Data(_), None) => {
                                panic!("read data from a never-written slot")
                            }
                            (ChunkPayload::Zeros, Some(_)) => {
                                panic!("written slot read back as zeros")
                            }
                        }
                    }
                    Err(StoreError::BenefactorDown(_)) => {
                        // Every copy is on a dead benefactor — acceptable,
                        // the value is not lost (metadata still knows it).
                    }
                    Err(e) => panic!("unexpected read error: {e:?}"),
                }
            }
        }

        // Durability: revive everyone, run one repair sweep; every chunk
        // must be back at exactly its target degree with the right bytes.
        for (b, live) in alive.iter().enumerate().take(nbene) {
            if !live {
                store.set_benefactor_alive(BenefactorId(b), true);
            }
        }
        let (t2, _) = store.repair_under_replicated(t);
        t = t2;
        prop_assert!(store.manager().under_replicated().is_empty());
        {
            let mgr = store.manager();
            let meta = mgr.file(f).unwrap();
            for slot in &meta.slots {
                if let chunkstore::Slot::Chunk(c) = slot {
                    prop_assert_eq!(
                        mgr.chunk_homes(*c).unwrap().len(),
                        mgr.chunk_target(*c).unwrap(),
                        "replica degree not restored after full recovery"
                    );
                }
            }
        }
        for (idx, expect) in model.iter().enumerate() {
            let (t2, payload) = store.fetch_chunk(t, client, f, idx).unwrap();
            t = t2;
            match (payload, expect) {
                (ChunkPayload::Zeros, None) => {}
                (ChunkPayload::Data(d), Some(v)) => prop_assert_eq!(d[0], *v),
                _ => panic!("model/store divergence after recovery at slot {idx}"),
            }
        }
    }
}

//! File-lifetime tests (§III-C: variables persistent beyond the run,
//! reclaimed by the manager once expired).

use chunkstore::{AggregateStore, Benefactor, PlacementPolicy, StoreConfig, StripeSpec};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

fn store() -> AggregateStore {
    let stats = StatsRegistry::new();
    let net = Network::new(2, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    let ssd = Ssd::new("b.ssd", INTEL_X25E, &stats);
    store.add_benefactor(Benefactor::new(0, ssd, 64 * CHUNK, CHUNK));
    store
}

#[test]
fn expired_files_are_reclaimed() {
    let store = store();
    let node = 1;
    let (t, keep) = store.create_file(VTime::ZERO, node, "/keep").unwrap();
    store
        .fallocate(
            t,
            node,
            keep,
            CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let (t, ttl) = store.create_file(t, node, "/ttl").unwrap();
    store
        .fallocate(
            t,
            node,
            ttl,
            CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let data = vec![1u8; 4096];
    let t = store.write_pages(t, node, ttl, 0, &[(0, &data)]).unwrap();

    store
        .manager()
        .set_lifetime(ttl, Some(VTime::from_secs(10)))
        .unwrap();

    // Before the deadline: nothing happens.
    assert_eq!(store.manager().expire_files(VTime::from_secs(9)), 0);
    assert!(store.fetch_chunk(t, node, ttl, 0).is_ok());

    // After: the file and its chunks are gone; the other file remains.
    assert_eq!(store.manager().expire_files(VTime::from_secs(10)), 1);
    assert!(store.fetch_chunk(t, node, ttl, 0).is_err());
    assert_eq!(store.manager().lookup("/ttl"), None);
    assert_eq!(store.manager().lookup("/keep"), Some(keep));
    assert_eq!(store.manager().physical_bytes(), 0);
}

#[test]
fn lifetime_can_be_cleared() {
    let store = store();
    let node = 1;
    let (t, f) = store.create_file(VTime::ZERO, node, "/f").unwrap();
    store
        .fallocate(
            t,
            node,
            f,
            CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    store
        .manager()
        .set_lifetime(f, Some(VTime::from_secs(1)))
        .unwrap();
    store.manager().set_lifetime(f, None).unwrap();
    assert_eq!(store.manager().expire_files(VTime::from_secs(100)), 0);
    assert_eq!(store.manager().lookup("/f"), Some(f));
}

#[test]
fn expiry_of_linked_checkpoint_respects_refcounts() {
    let store = store();
    let node = 1;
    let (t, var) = store.create_file(VTime::ZERO, node, "/var").unwrap();
    store
        .fallocate(
            t,
            node,
            var,
            CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let data = vec![7u8; 4096];
    let t = store.write_pages(t, node, var, 0, &[(0, &data)]).unwrap();
    let (t2, ck) = store.create_file(t, node, "/ck").unwrap();
    let t = store.link_file(t2, node, ck, var).unwrap();

    // The checkpoint expires; the variable keeps its chunk.
    store
        .manager()
        .set_lifetime(ck, Some(VTime::from_secs(1)))
        .unwrap();
    assert_eq!(store.manager().expire_files(VTime::from_secs(2)), 1);
    assert!(store.fetch_chunk(t, node, var, 0).is_ok());
    assert_eq!(store.manager().physical_bytes(), CHUNK);
}

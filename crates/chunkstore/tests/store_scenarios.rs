//! Aggregate-store scenario tests: checkpoint-of-checkpoint linking,
//! deletion ordering, COW under space pressure, placement distribution.

use chunkstore::{
    AggregateStore, Benefactor, BenefactorId, ChunkPayload, PlacementPolicy, StoreConfig,
    StoreError, StripeSpec,
};
use devices::{Ssd, INTEL_X25E};
use netsim::{NetConfig, Network};
use simcore::{StatsRegistry, VTime};

const CHUNK: u64 = 256 * 1024;

fn store_with(benefactors: usize, cap_chunks: u64) -> (AggregateStore, StatsRegistry) {
    let stats = StatsRegistry::new();
    let net = Network::new(benefactors + 1, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 0..benefactors {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, cap_chunks * CHUNK, CHUNK));
    }
    (store, stats)
}

fn client() -> usize {
    // All data-plane calls come from the last node (no benefactor there).
    usize::MAX // replaced per call; see mk_file
}

fn mk_file(store: &AggregateStore, name: &str, chunks: u64, node: usize) -> chunkstore::FileId {
    let (t, f) = store.create_file(VTime::ZERO, node, name).unwrap();
    store
        .fallocate(
            t,
            node,
            f,
            chunks * CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    f
}

#[test]
fn checkpoint_of_checkpoint_chains_links() {
    let (store, _) = store_with(2, 64);
    let node = 2;
    let var = mk_file(&store, "/var", 2, node);
    let data = vec![3u8; CHUNK as usize];
    let mut t = store.write_span(VTime::ZERO, node, var, 0, &data).unwrap();

    let (t1, ck1) = store.create_file(t, node, "/ck1").unwrap();
    t = store.link_file(t1, node, ck1, var).unwrap();
    let (t2, ck2) = store.create_file(t, node, "/ck2").unwrap();
    t = store.link_file(t2, node, ck2, ck1).unwrap();

    // One physical chunk serves all three files.
    assert_eq!(store.manager().physical_bytes(), CHUNK);

    // Deleting the middle link keeps the chain's ends alive.
    store.delete(t, node, ck1).unwrap();
    let (_, p) = store.fetch_chunk(t, node, ck2, 0).unwrap();
    match p {
        ChunkPayload::Data(d) => assert_eq!(d[0], 3),
        _ => panic!("expected data through the surviving link"),
    }
    store.delete(t, node, var).unwrap();
    store.delete(t, node, ck2).unwrap();
    assert_eq!(store.manager().physical_bytes(), 0);
    let _ = client();
}

#[test]
fn cow_fails_cleanly_when_benefactor_full() {
    // One benefactor with exactly 2 chunk slots: a 2-chunk file fills it;
    // a linked checkpoint then makes any write need a COW clone, which
    // has nowhere to go.
    let (store, _) = store_with(1, 2);
    let node = 1;
    let var = mk_file(&store, "/var", 2, node);
    let data = vec![1u8; (2 * CHUNK) as usize];
    let mut t = store.write_span(VTime::ZERO, node, var, 0, &data).unwrap();
    let (t1, ck) = store.create_file(t, node, "/ck").unwrap();
    t = store.link_file(t1, node, ck, var).unwrap();

    let page = vec![2u8; 4096];
    let err = store
        .write_pages(t, node, var, 0, &[(0, &page)])
        .unwrap_err();
    assert!(matches!(err, StoreError::OutOfSpace { .. }));
    // The frozen checkpoint is intact.
    let (_, p) = store.fetch_chunk(t, node, ck, 0).unwrap();
    assert!(matches!(p, ChunkPayload::Data(d) if d[0] == 1));
}

#[test]
fn stripe_count_rotates_across_files() {
    let (store, _) = store_with(4, 64);
    let node = 4;
    let mut firsts = Vec::new();
    for i in 0..4 {
        let (t, f) = store
            .create_file(VTime::ZERO, node, &format!("/f{i}"))
            .unwrap();
        store
            .fallocate(
                t,
                node,
                f,
                CHUNK,
                StripeSpec::count(1),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        firsts.push(store.manager().file(f).unwrap().stripe[0]);
    }
    // Four Count(1) files land on four different benefactors.
    firsts.sort();
    firsts.dedup();
    assert_eq!(firsts.len(), 4, "cursor must rotate: {firsts:?}");
}

#[test]
fn random_placement_spreads_chunks() {
    let (store, _) = store_with(4, 256);
    let node = 4;
    let (t, f) = store.create_file(VTime::ZERO, node, "/rand").unwrap();
    store
        .fallocate(
            t,
            node,
            f,
            64 * CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RandomPermutation { seed: 123 },
        )
        .unwrap();
    let mut per_bene = [0u32; 4];
    {
        let mgr = store.manager();
        let meta = mgr.file(f).unwrap();
        for i in 0..64 {
            per_bene[meta.home_of_slot(i).0] += 1;
        }
    }
    // Every benefactor got a reasonable share of 64 chunks.
    assert!(per_bene.iter().all(|&c| c >= 4), "skewed: {per_bene:?}");
}

#[test]
fn deleting_variable_before_checkpoint_is_safe_any_order() {
    for delete_var_first in [true, false] {
        let (store, _) = store_with(2, 64);
        let node = 2;
        let var = mk_file(&store, "/var", 3, node);
        let data = vec![7u8; (3 * CHUNK) as usize];
        let mut t = store.write_span(VTime::ZERO, node, var, 0, &data).unwrap();
        let (t1, ck) = store.create_file(t, node, "/ck").unwrap();
        t = store.link_file(t1, node, ck, var).unwrap();

        if delete_var_first {
            store.delete(t, node, var).unwrap();
            let (_, p) = store.fetch_chunk(t, node, ck, 0).unwrap();
            assert!(matches!(p, ChunkPayload::Data(_)));
            store.delete(t, node, ck).unwrap();
        } else {
            store.delete(t, node, ck).unwrap();
            let (_, p) = store.fetch_chunk(t, node, var, 0).unwrap();
            assert!(matches!(p, ChunkPayload::Data(_)));
            store.delete(t, node, var).unwrap();
        }
        assert_eq!(store.manager().physical_bytes(), 0);
    }
}

#[test]
fn reads_and_writes_interleave_across_many_files() {
    let (store, _) = store_with(3, 64);
    let node = 3;
    let files: Vec<_> = (0..5)
        .map(|i| mk_file(&store, &format!("/f{i}"), 4, node))
        .collect();
    let mut t = VTime::ZERO;
    for round in 0..4u8 {
        for (i, &f) in files.iter().enumerate() {
            let payload = vec![round * 10 + i as u8; 4096];
            t = store
                .write_pages(t, node, f, round as usize, &[(0, &payload)])
                .unwrap();
        }
    }
    for (i, &f) in files.iter().enumerate() {
        for round in 0..4u8 {
            let (t2, p) = store.fetch_chunk(t, node, f, round as usize).unwrap();
            t = t2;
            match p {
                ChunkPayload::Data(d) => assert_eq!(d[0], round * 10 + i as u8),
                _ => panic!("expected data"),
            }
        }
    }
}

#[test]
fn killing_and_reviving_a_benefactor() {
    let (store, _) = store_with(2, 64);
    let node = 2;
    let f = mk_file(&store, "/f", 2, node);
    let data = vec![9u8; (2 * CHUNK) as usize];
    let t = store.write_span(VTime::ZERO, node, f, 0, &data).unwrap();

    store.set_benefactor_alive(BenefactorId(0), false);
    // One of the two chunks lives on the dead benefactor.
    let r0 = store.fetch_chunk(t, node, f, 0);
    let r1 = store.fetch_chunk(t, node, f, 1);
    assert!(r0.is_err() || r1.is_err());
    // New allocations avoid the dead benefactor.
    let (t2, g) = store.create_file(t, node, "/g").unwrap();
    store
        .fallocate(
            t2,
            node,
            g,
            CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    assert_eq!(
        store.manager().file(g).unwrap().stripe,
        vec![BenefactorId(1)]
    );

    store.set_benefactor_alive(BenefactorId(0), true);
    assert!(store.fetch_chunk(t, node, f, 0).is_ok());
    assert!(store.fetch_chunk(t, node, f, 1).is_ok());
}

#[test]
fn zero_length_file_roundtrip() {
    let (store, _) = store_with(1, 4);
    let node = 1;
    let (t, f) = store.create_file(VTime::ZERO, node, "/empty").unwrap();
    store
        .fallocate(
            t,
            node,
            f,
            0,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    assert_eq!(store.file_size(f).unwrap(), 0);
    assert_eq!(store.chunk_count(f).unwrap(), 0);
    let err = store.fetch_chunk(t, node, f, 0).unwrap_err();
    assert!(matches!(err, StoreError::OutOfBounds { .. }));
    store.delete(t, node, f).unwrap();
}

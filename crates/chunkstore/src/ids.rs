//! Typed identifiers for store objects.

use std::fmt;

/// A logical file on the aggregate store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u64);

/// A stored chunk (the unit of striping, 256 KiB by default).
/// Chunk ids are global — checkpoint files *link* to the very same chunk
/// ids as the memory-mapped variable they snapshot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChunkId(pub u64);

/// Index of a benefactor process within the store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BenefactorId(pub usize);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}
impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk#{}", self.0)
    }
}
impl fmt::Display for BenefactorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "benefactor#{}", self.0)
    }
}

//! The timed facade over the manager + benefactor fleet: every operation
//! takes the client's node and current virtual time, charges manager-RPC,
//! network and SSD costs, and returns the completion time.
//!
//! This is the interface the FUSE-like client layer (`fusemm`) talks to —
//! the simulated equivalent of the RPC protocol between a compute node and
//! the aggregate store.

use crate::benefactor::Benefactor;
use crate::crc::{self, crc64};
use crate::error::{Result, StoreError};
use crate::ids::{BenefactorId, ChunkId, FileId};
use crate::loc_cache::{CachedLoc, LocationCache};
use crate::manager::{Manager, PlacementPolicy, Slot, StripeSpec};
use crate::shardmgr::{HashRing, LeaseCounters, ShardSet, DEFAULT_VNODES};
use devices::WearReport;
use faults::{FaultEvent, FaultPlan};
use netsim::{LinkFault, Network};
use obs::{Layer, TraceRecorder};
use parking_lot::{Mutex, MutexGuard};
use simcore::rng::child_seed;
use simcore::{Counter, StatsRegistry, VTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Aggregate store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Striping unit; the paper uses 256 KiB.
    pub chunk_size: u64,
    /// Dirty-tracking granularity; the paper uses the 4 KiB OS page.
    pub page_size: u64,
    /// Cluster node hosting the manager process.
    pub manager_node: usize,
    /// Size of a manager-RPC request/response message.
    pub rpc_bytes: u64,
    /// Manager CPU time per metadata operation.
    pub mgr_cpu: VTime,
    /// Failover attempts per chunk read after every listed replica looks
    /// dead: each retry waits `retry_backoff` of virtual time, re-polls
    /// the fault plan (a scheduled recovery may land in between) and
    /// rescans the replica list.
    pub fetch_retries: u32,
    /// Virtual-time backoff between failover retries.
    pub retry_backoff: VTime,
    /// Verify every fetched chunk against its manager-recorded CRC64 and
    /// fail over / repair on mismatch (DESIGN.md §11). Off by default:
    /// with this unset, read timing and counters are bit-identical to a
    /// build without the integrity subsystem.
    pub verify_reads: bool,
    /// Number of placement-manager shard ranks (DESIGN.md §12). `0` (the
    /// default) keeps the serial single-manager path untouched; cluster
    /// builds consume this knob and call
    /// [`AggregateStore::install_shards`] with one rank per shard.
    pub manager_shards: usize,
    /// TTL of a client's placement-delegation lease in shard mode.
    pub lease_ttl: VTime,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_size: 256 * 1024,
            page_size: 4096,
            manager_node: 0,
            rpc_bytes: 256,
            mgr_cpu: VTime::from_micros(10),
            fetch_retries: 2,
            retry_backoff: VTime::from_millis(5),
            verify_reads: false,
            manager_shards: 0,
            lease_ttl: VTime::from_secs(5),
        }
    }
}

/// Background scrub daemon configuration (DESIGN.md §11). The daemon only
/// runs once [`AggregateStore::attach_scrub`] installs it; like PR 4's
/// write-back flusher it is paced in virtual time off the foreground
/// clock — a pass is kicked by the first fault poll at or after `next_at`
/// and charges only benefactor-side SSD time plus repair traffic.
#[derive(Clone, Copy, Debug)]
pub struct ScrubConfig {
    /// Virtual time between scrub passes.
    pub interval: VTime,
    /// Chunk ids verified per pass; the walk cursor persists across
    /// passes and wraps, so every chunk is eventually visited.
    pub chunks_per_pass: usize,
    /// Quarantine a benefactor once its observed corruption rate
    /// (bad copies / copies scrubbed there) exceeds this fraction…
    pub quarantine_rate: f64,
    /// …with at least this many copies scrubbed as evidence.
    pub quarantine_min_samples: u64,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            interval: VTime::from_millis(50),
            // ~8 SSD chunk reads per pass (~10 ms): a low duty cycle, so
            // scrubbing steals little bandwidth from foreground I/O.
            chunks_per_pass: 8,
            quarantine_rate: 0.5,
            quarantine_min_samples: 8,
        }
    }
}

/// Scrub daemon runtime state (see [`ScrubConfig`]).
#[derive(Debug)]
struct ScrubState {
    cfg: ScrubConfig,
    /// Earliest virtual time the next pass may start.
    next_at: VTime,
    /// When the in-flight pass finishes; a poll before this is a no-op so
    /// passes never overlap.
    busy_until: VTime,
    /// Chunk-id walk cursor: the next pass resumes at the first chunk id
    /// ≥ this value (wrapping).
    cursor: u64,
    /// Per-benefactor copies verified, for the quarantine rate.
    scrubbed: Vec<u64>,
    /// Per-benefactor CRC mismatches found.
    bad: Vec<u64>,
}

/// One chunk's worth of dirty-page runs in a batched write-back (see
/// [`AggregateStore::write_pages_batch`]).
#[derive(Clone, Copy, Debug)]
pub struct BatchWrite<'a> {
    pub file: FileId,
    pub idx: usize,
    /// `(offset_within_chunk, bytes)` runs, same contract as
    /// [`AggregateStore::write_pages`].
    pub updates: &'a [(u64, &'a [u8])],
}

/// What a chunk fetch returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPayload {
    /// The chunk was never written: the client materializes zeros locally
    /// (a file-hole read — no data crosses the network).
    Zeros,
    /// Chunk bytes shipped from its benefactor.
    Data(Box<[u8]>),
}

/// What `fetch_verified` hands back: the verified bytes plus the copy
/// they came from, for span labelling and degraded accounting.
struct FetchOutcome {
    end: VTime,
    data: Box<[u8]>,
    home: BenefactorId,
    node: usize,
    degraded: bool,
}

/// Outcome of one repair sweep (see `repair_under_replicated`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Chunks whose replica degree was restored.
    pub chunks_repaired: u64,
    /// Bytes copied between benefactors to do it.
    pub bytes_copied: u64,
    /// Chunks still below target (no live donor or no space anywhere).
    pub chunks_unrepairable: u64,
}

/// Reusable per-benefactor chain-grouping scratch for the batched
/// fetch/write drains. Flat Vecs keyed by benefactor index, recycled
/// across calls (taken from and returned to the store's mutex), so
/// steady-state batch planning allocates nothing — the previous code
/// built a fresh `BTreeMap` of `Vec`s per call and popped entries with
/// `remove(0)`.
#[derive(Debug, Default)]
struct ChainScratch {
    /// Per-benefactor chain cursor (completion of its last entry).
    cursor: Vec<VTime>,
    /// Per-benefactor queued entry indices, in input order.
    queue: Vec<Vec<usize>>,
    /// Per-benefactor drain position into `queue` (O(1) pop-front).
    head: Vec<usize>,
    /// Benefactor indexes holding any queued entries this batch.
    active: Vec<usize>,
}

impl ChainScratch {
    /// Reset for a batch over a fleet of `n` benefactors.
    fn begin(&mut self, n: usize) {
        for &b in &self.active {
            self.queue[b].clear();
            self.head[b] = 0;
        }
        self.active.clear();
        if self.cursor.len() < n {
            self.cursor.resize(n, VTime::ZERO);
            self.queue.resize_with(n, Vec::new);
            self.head.resize(n, 0);
        }
    }

    fn push(&mut self, home: BenefactorId, i: usize) {
        let b = home.0;
        if self.queue[b].is_empty() {
            self.cursor[b] = VTime::ZERO;
            self.active.push(b);
        }
        self.queue[b].push(i);
    }

    /// Pop the entry whose chain start `max(cursor, ready[front])` is
    /// minimal, benefactor id breaking ties — the exact drain order the
    /// old per-call BTreeMap min-scan produced. Returns the entry's
    /// benefactor, index and chain start time.
    fn pop_min(&mut self, ready: &[VTime]) -> Option<(BenefactorId, usize, VTime)> {
        let mut best: Option<(VTime, usize)> = None;
        for &b in &self.active {
            if self.head[b] == self.queue[b].len() {
                continue;
            }
            let start = self.cursor[b].max(ready[self.queue[b][self.head[b]]]);
            if best.is_none_or(|k| (start, b) < k) {
                best = Some((start, b));
            }
        }
        let (start, b) = best?;
        let i = self.queue[b][self.head[b]];
        self.head[b] += 1;
        Some((BenefactorId(b), i, start))
    }

    /// Record that `home`'s chain now extends to `end`.
    fn set_cursor(&mut self, home: BenefactorId, end: VTime) {
        self.cursor[home.0] = end;
    }
}

/// The aggregate NVM store, shared by every client on the cluster.
#[derive(Clone)]
pub struct AggregateStore {
    mgr: Arc<Mutex<Manager>>,
    /// Recycled grouping scratch for `fetch_chunks`/`write_pages_batch`.
    chain_scratch: Arc<Mutex<ChainScratch>>,
    net: Network,
    cfg: StoreConfig,
    faults: Arc<Mutex<Option<FaultPlan>>>,
    mgr_rpcs: Counter,
    mgr_rpc_fetch: Counter,
    mgr_rpc_write: Counter,
    mgr_rpc_place: Counter,
    chunk_fetches: Counter,
    zero_fills: Counter,
    bytes_to_clients: Counter,
    bytes_from_clients: Counter,
    cow_clones: Counter,
    failovers: Counter,
    degraded_reads: Counter,
    repairs_chunks: Counter,
    repairs_bytes: Counter,
    benefactor_crashes: Counter,
    benefactor_recoveries: Counter,
    batched_fetches: Counter,
    batched_writes: Counter,
    /// Integrity counters (`store.crc_mismatches` etc.) are registered
    /// through here only once verification or scrubbing is switched on,
    /// so knobs-off stat snapshots stay byte-identical.
    stats: StatsRegistry,
    scrub: Arc<Mutex<Option<ScrubState>>>,
    /// The sharded placement manager (DESIGN.md §12); `None` until
    /// [`AggregateStore::install_shards`] runs. Like scrub, entirely
    /// opt-in: with no shard set every path below uses the serial
    /// manager RPC.
    shards: Arc<Mutex<Option<ShardSet>>>,
    trace: TraceRecorder,
}

/// The three metadata-RPC flavours, split out per ISSUE 6 so bench
/// footers can show *what* the manager is being asked, not just how often.
#[derive(Clone, Copy, Debug)]
enum MgrOp {
    /// Chunk-location resolution for reads.
    Fetch,
    /// Write-back resolution / placement mutation.
    Write,
    /// Namespace + allocation control plane (create/fallocate/open/
    /// delete/link).
    Place,
}

/// The netsim endpoint name shard `k` registers at install time.
fn shard_endpoint(k: usize) -> String {
    format!("shardmgr/{k}")
}

impl AggregateStore {
    pub fn new(cfg: StoreConfig, net: Network, stats: &StatsRegistry) -> Self {
        let store = AggregateStore {
            mgr: Arc::new(Mutex::new(Manager::new(cfg.chunk_size))),
            chain_scratch: Arc::new(Mutex::new(ChainScratch::default())),
            net,
            cfg,
            faults: Arc::new(Mutex::new(None)),
            mgr_rpcs: stats.counter("store.mgr_rpcs"),
            mgr_rpc_fetch: stats.counter("store.mgr_rpc_fetch"),
            mgr_rpc_write: stats.counter("store.mgr_rpc_write"),
            mgr_rpc_place: stats.counter("store.mgr_rpc_place"),
            chunk_fetches: stats.counter("store.chunk_fetches"),
            zero_fills: stats.counter("store.zero_fills"),
            bytes_to_clients: stats.counter("store.bytes_to_clients"),
            bytes_from_clients: stats.counter("store.bytes_from_clients"),
            cow_clones: stats.counter("store.cow_clones"),
            failovers: stats.counter("store.failovers"),
            degraded_reads: stats.counter("store.degraded_reads"),
            repairs_chunks: stats.counter("store.repairs_chunks"),
            repairs_bytes: stats.counter("store.repairs_bytes"),
            benefactor_crashes: stats.counter("store.benefactor_crashes"),
            benefactor_recoveries: stats.counter("store.benefactor_recoveries"),
            batched_fetches: stats.counter("store.batched_fetches"),
            batched_writes: stats.counter("store.batched_writes"),
            stats: stats.clone(),
            scrub: Arc::new(Mutex::new(None)),
            shards: Arc::new(Mutex::new(None)),
            trace: TraceRecorder::disabled(),
        };
        if store.cfg.verify_reads {
            store.register_integrity_counters();
        }
        store
    }

    /// Register the integrity counter set. Deferred until verification or
    /// scrubbing actually activates: registered counters appear in every
    /// stats snapshot (even at zero), and committed knobs-off bench
    /// expectations must not grow keys.
    fn register_integrity_counters(&self) {
        self.stats.counter("store.crc_mismatches");
        self.stats.counter("store.scrub_passes");
        self.stats.counter("store.scrub_repairs");
        self.stats.counter("store.quarantined");
    }

    /// Attach a trace recorder (builder style; clones share it). Manager
    /// RPCs, chunk fetches, write-backs and repair sweeps become spans;
    /// applied fault events become instants.
    pub fn with_tracer(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Direct manager access for registration, administration and tests.
    pub fn manager(&self) -> MutexGuard<'_, Manager> {
        self.mgr.lock()
    }

    /// Register a benefactor contributing `capacity` bytes of `node`'s SSD.
    pub fn add_benefactor(&self, b: Benefactor) -> BenefactorId {
        self.mgr.lock().register_benefactor(b)
    }

    // ----- fault injection --------------------------------------------------

    /// Install a fault plan. Due events are applied at the top of every
    /// timed store operation, so the fleet's state tracks the virtual
    /// clock without a separate driver process.
    pub fn attach_faults(&self, plan: FaultPlan) {
        *self.faults.lock() = Some(plan);
    }

    /// Apply every scheduled fault due at or before `t`, then give the
    /// scrub daemon (when attached) a chance to run a due pass — faults
    /// first, so a pass at `t` sees the world as of `t`.
    pub fn poll_faults(&self, t: VTime) {
        let due = match self.faults.lock().as_mut() {
            Some(plan) => plan.due(t),
            None => Vec::new(),
        };
        for fault in due {
            self.trace
                .instant(Layer::Fault, fault.event.describe(), fault.at);
            self.apply_fault(fault.event);
        }
        self.poll_scrub(t);
    }

    fn apply_fault(&self, event: FaultEvent) {
        match event {
            FaultEvent::BenefactorCrash { benefactor } => {
                self.set_benefactor_alive(BenefactorId(benefactor), false);
            }
            FaultEvent::BenefactorRecover { benefactor } => {
                self.set_benefactor_alive(BenefactorId(benefactor), true);
            }
            FaultEvent::LinkDegrade {
                node,
                bw_divisor,
                extra_latency,
            } => {
                let partitioned = self.net.link_fault(node).partitioned;
                self.net.set_link_fault(
                    node,
                    LinkFault {
                        bw_divisor,
                        extra_latency,
                        partitioned,
                    },
                );
            }
            FaultEvent::LinkRestore { node } => {
                let partitioned = self.net.link_fault(node).partitioned;
                self.net.set_link_fault(
                    node,
                    LinkFault {
                        partitioned,
                        ..LinkFault::default()
                    },
                );
            }
            FaultEvent::Partition { node } => {
                let mut fault = self.net.link_fault(node);
                fault.partitioned = true;
                self.net.set_link_fault(node, fault);
            }
            FaultEvent::Heal { node } => {
                let mut fault = self.net.link_fault(node);
                fault.partitioned = false;
                self.net.set_link_fault(node, fault);
            }
            FaultEvent::SsdSlowdown { node, factor } => self.set_node_ssd_slowdown(node, factor),
            FaultEvent::SsdRestore { node } => self.set_node_ssd_slowdown(node, 1.0),
            FaultEvent::BitRot {
                benefactor,
                rate_bp,
                seed,
            } => self.apply_bit_rot(BenefactorId(benefactor), rate_bp, seed),
            FaultEvent::TornWrite { benefactor } => {
                self.mgr
                    .lock()
                    .benefactor_mut(BenefactorId(benefactor))
                    .arm_torn_write();
            }
            FaultEvent::CorruptionRate {
                benefactor,
                rate_bp,
                seed,
            } => {
                self.mgr
                    .lock()
                    .benefactor_mut(BenefactorId(benefactor))
                    .set_corruption_rate(rate_bp, seed);
            }
            FaultEvent::ShardCrash { shard } => self.set_shard_alive(shard, false),
            FaultEvent::ShardRecover { shard } => self.set_shard_alive(shard, true),
        }
    }

    /// Silent bit-rot: each chunk stored on `b` is corrupted with
    /// probability `rate_bp` basis points, scaled up by the SSD's consumed
    /// life — a worn device rots faster (PAPER.md Table I wear counters).
    /// Seed-stable per chunk id, so identical runs rot identical bytes.
    /// Data-only: no virtual time is charged.
    fn apply_bit_rot(&self, b: BenefactorId, rate_bp: u32, seed: u64) {
        let mut mgr = self.mgr.lock();
        let life = mgr.benefactor(b).ssd().wear().life_consumed;
        let effective_bp = (rate_bp as f64 * (1.0 + life)) as u64;
        for c in mgr.benefactor(b).chunk_ids() {
            let draw = child_seed(seed, c.0);
            if draw % 10_000 < effective_bp {
                let off = child_seed(draw, 1);
                mgr.benefactor_mut(b).corrupt_chunk(c, off);
            }
        }
    }

    fn set_node_ssd_slowdown(&self, node: usize, factor: f64) {
        let mgr = self.mgr.lock();
        for i in 0..mgr.benefactor_count() {
            let b = mgr.benefactor(BenefactorId(i));
            if b.node == node {
                b.ssd().set_slowdown(factor);
            }
        }
    }

    // ----- scrub daemon -----------------------------------------------------

    /// Install the background scrub daemon; the first pass may start at
    /// `start_at`. Like fault plans, the daemon is driven by the fault
    /// polls at the top of every timed store operation.
    pub fn attach_scrub(&self, cfg: ScrubConfig, start_at: VTime) {
        assert!(cfg.chunks_per_pass > 0, "scrub pass must cover chunks");
        self.register_integrity_counters();
        let n = self.mgr.lock().benefactor_count();
        *self.scrub.lock() = Some(ScrubState {
            cfg,
            next_at: start_at,
            busy_until: VTime::ZERO,
            cursor: 0,
            scrubbed: vec![0; n],
            bad: vec![0; n],
        });
    }

    /// Run one scrub pass if the daemon is attached and due. The pass is
    /// kicked at the poll time `t` (the flusher pattern from PR 4): it
    /// charges benefactor SSD reads and repair traffic in virtual time,
    /// but never the foreground clock — `poll_faults` returns `()` and the
    /// caller's `t` is unchanged.
    fn poll_scrub(&self, t: VTime) {
        let mut guard = self.scrub.lock();
        let Some(st) = guard.as_mut() else { return };
        if t < st.next_at || t < st.busy_until {
            return;
        }
        let sp = self.trace.span(Layer::Store, "store.scrub", t);
        let mut now = t;
        let mut verified = 0u64;
        let mut repaired = 0u64;
        let mut mgr = self.mgr.lock();
        let ids = mgr.chunk_ids_sorted();
        if !ids.is_empty() {
            let start = ids.partition_point(|c| c.0 < st.cursor);
            let n = st.cfg.chunks_per_pass.min(ids.len());
            for k in 0..n {
                let c = ids[(start + k) % ids.len()];
                now = self.scrub_chunk(&mut mgr, st, c, now, &mut verified, &mut repaired);
            }
            let last = ids[(start + n - 1) % ids.len()];
            st.cursor = last.0 + 1;
        }
        // Quarantine benefactors whose observed corruption rate crossed
        // the threshold: placement stops choosing them (alive, but no new
        // bytes land there).
        for i in 0..mgr.benefactor_count() {
            let b = BenefactorId(i);
            if mgr.benefactor(b).is_quarantined() || st.scrubbed[i] < st.cfg.quarantine_min_samples
            {
                continue;
            }
            if st.bad[i] as f64 > st.cfg.quarantine_rate * st.scrubbed[i] as f64 {
                mgr.set_quarantined(b, true);
                mgr.bump_placement_epoch();
                self.stats.counter("store.quarantined").inc();
                self.trace
                    .instant(Layer::Store, format!("store.quarantine b={i}"), now);
            }
        }
        drop(mgr);
        self.stats.counter("store.scrub_passes").inc();
        st.busy_until = now;
        // Idle a full interval after the pass *finishes* — scheduling from
        // the kick time would let passes longer than the interval run
        // back-to-back and saturate the SSDs the foreground needs.
        st.next_at = now + st.cfg.interval;
        sp.arg("verified", verified).arg("repaired", repaired);
        sp.finish(now);
    }

    /// Scrub one chunk: verify every live copy benefactor-side (local SSD
    /// read, no network), quarantine mismatching copies, then restore the
    /// replica degree from a surviving copy. Returns the advanced pass
    /// clock.
    fn scrub_chunk(
        &self,
        mgr: &mut Manager,
        st: &mut ScrubState,
        c: ChunkId,
        mut now: VTime,
        verified: &mut u64,
        repaired: &mut u64,
    ) -> VTime {
        let Some(expected) = mgr.chunk_crc(c) else {
            return now; // deleted since the id list was taken
        };
        let homes: Vec<BenefactorId> = mgr.chunk_homes(c).expect("chunk without home").to_vec();
        for h in homes {
            if !mgr.benefactor(h).is_alive() {
                continue;
            }
            let (g, data) = mgr.benefactor(h).read_chunk(now, c);
            now = g.end;
            st.scrubbed[h.0] += 1;
            *verified += 1;
            if crc64(&data) != expected {
                st.bad[h.0] += 1;
                self.stats.counter("store.crc_mismatches").inc();
                self.trace.instant(
                    Layer::Store,
                    format!("store.scrub_mismatch c={} b={}", c.0, h.0),
                    now,
                );
                // Drop the rotten copy while a replica remains; a sole
                // bad copy must stay listed (reads report ChunkCorrupt,
                // never serve it silently).
                if mgr.chunk_homes(c).expect("chunk listed").len() > 1 {
                    mgr.remove_chunk_home(c, h);
                    mgr.benefactor_mut(h).drop_chunk(c);
                }
            }
        }
        // Re-replicate from a surviving copy up to the target degree.
        loop {
            let target = mgr.chunk_target(c).expect("chunk has a target");
            let homes: Vec<BenefactorId> = mgr.chunk_homes(c).expect("chunk listed").to_vec();
            let live: Vec<BenefactorId> = homes
                .iter()
                .copied()
                .filter(|&h| mgr.benefactor(h).is_alive())
                .collect();
            if live.is_empty() || live.len() >= target {
                break;
            }
            let donor = live[0];
            let dest = (0..mgr.benefactor_count()).map(BenefactorId).find(|&b| {
                !homes.contains(&b)
                    && mgr.benefactor(b).is_placeable()
                    && mgr.benefactor(b).can_allocate_chunk(false)
            });
            let Some(dest) = dest else { break };
            let donor_node = mgr.benefactor(donor).node;
            let dest_node = mgr.benefactor(dest).node;
            let (g, data) = mgr.benefactor(donor).read_chunk(now, c);
            let xfer = self
                .net
                .transfer_at(g.end, donor_node, dest_node, self.cfg.chunk_size);
            let g2 = mgr.benefactor_mut(dest).store_chunk(
                xfer.arrived,
                c,
                data,
                self.cfg.chunk_size,
                false,
            );
            mgr.add_chunk_home(c, dest);
            now = g2.end;
            *repaired += 1;
            self.stats.counter("store.scrub_repairs").inc();
        }
        now
    }

    /// Untimed admin sweep: how many stored chunk copies currently
    /// disagree with their recorded CRC (bench/test instrumentation —
    /// time-to-repair is "first poll at which this reaches zero").
    pub fn count_corrupt_copies(&self) -> usize {
        let mgr = self.mgr.lock();
        let mut n = 0;
        for c in mgr.chunk_ids_sorted() {
            let expected = mgr.chunk_crc(c).expect("chunk without crc");
            for &h in mgr.chunk_homes(c).expect("chunk listed") {
                if let Some(data) = mgr.benefactor(h).peek_chunk(c) {
                    if crc64(data) != expected {
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// Bump the aggregate RPC counter plus the per-op split (ISSUE 6
    /// satellite: `store_health` footers show fetch/write/place shares).
    fn count_mgr_rpc(&self, op: MgrOp) {
        self.mgr_rpcs.inc();
        match op {
            MgrOp::Fetch => self.mgr_rpc_fetch.inc(),
            MgrOp::Write => self.mgr_rpc_write.inc(),
            MgrOp::Place => self.mgr_rpc_place.inc(),
        }
    }

    /// Charge one metadata round-trip to the serial manager.
    fn mgr_rpc(&self, t: VTime, client_node: usize, op: MgrOp) -> VTime {
        self.count_mgr_rpc(op);
        let sp = self.trace.span(Layer::Store, "store.mgr_rpc", t);
        sp.arg("client", client_node as u64);
        let req = self
            .net
            .transfer_at(t, client_node, self.cfg.manager_node, self.cfg.rpc_bytes);
        let done = req.arrived + self.cfg.mgr_cpu;
        let resp =
            self.net
                .transfer_at(done, self.cfg.manager_node, client_node, self.cfg.rpc_bytes);
        sp.finish(resp.arrived);
        resp.arrived
    }

    // ----- sharded placement manager (DESIGN.md §12) ------------------------

    /// Install the sharded placement manager: shard `k` runs on
    /// `nodes[k]` and owns the keyspace the ring assigns it. Registers
    /// each shard's RPC endpoint with the network fabric and the
    /// shard/lease counters — lazily, like the integrity set, so
    /// knobs-off stat snapshots do not grow keys. `seed` fixes the ring
    /// layout; cluster builds pass [`crate::shardmgr::DEFAULT_RING_SEED`].
    pub fn install_shards(&self, nodes: &[usize], seed: u64) {
        assert!(!nodes.is_empty(), "a shard set needs at least one rank");
        let counters = LeaseCounters {
            grants: self.stats.counter("store.lease_grants"),
            renewals: self.stats.counter("store.lease_renewals"),
            revokes: self.stats.counter("store.lease_revokes"),
            expiries: self.stats.counter("store.lease_expiries"),
        };
        let per_shard = (0..nodes.len())
            .map(|k| self.stats.counter(&format!("store.shard_rpcs.s{k}")))
            .collect();
        for (k, &node) in nodes.iter().enumerate() {
            self.net.register_endpoint(&shard_endpoint(k), node);
        }
        let ring = HashRing::new(nodes.len(), DEFAULT_VNODES, seed);
        *self.shards.lock() = Some(ShardSet::new(
            ring,
            nodes,
            self.cfg.lease_ttl,
            seed,
            counters,
            per_shard,
        ));
    }

    /// Number of installed placement shards (`0` = serial manager).
    pub fn shards_installed(&self) -> usize {
        self.shards.lock().as_ref().map_or(0, |s| s.len())
    }

    /// Ring owner of a slot key, when shards are installed. Pure local
    /// computation — routing costs no RPC.
    pub fn shard_of_slot(&self, file: FileId, idx: usize) -> Option<usize> {
        self.shards
            .lock()
            .as_ref()
            .map(|s| s.ring().owner_of_slot(file, idx))
    }

    /// Is shard `k` currently alive? (Trivially true with no shard set.)
    pub fn shard_alive(&self, shard: usize) -> bool {
        self.shards
            .lock()
            .as_ref()
            .is_none_or(|s| s.is_alive(shard))
    }

    /// Live leases currently granted by `shard` (tests/benches).
    pub fn shard_leases(&self, shard: usize) -> usize {
        self.shards
            .lock()
            .as_ref()
            .map_or(0, |s| s.leases_held(shard))
    }

    /// Charge one metadata round-trip to placement shard `shard`. The
    /// request and response are control-sized messages to the shard's
    /// registered endpoint; the operation occupies the shard's FIFO
    /// metadata CPU — which is where client fan-in queues, and what extra
    /// shards relieve. The response piggybacks a lease grant/renewal for
    /// the calling client. A dead shard is retried on the same backoff
    /// schedule as benefactor failover (a scheduled recovery may land in
    /// between) before the op fails with [`StoreError::ShardDown`].
    fn shard_rpc(&self, t: VTime, client_node: usize, shard: usize, op: MgrOp) -> Result<VTime> {
        let mut t = t;
        let mut attempts = 0;
        loop {
            let alive = self
                .shards
                .lock()
                .as_ref()
                .expect("shard RPC without an installed shard set")
                .is_alive(shard);
            if !alive {
                if attempts >= self.cfg.fetch_retries {
                    return Err(StoreError::ShardDown(shard));
                }
                attempts += 1;
                t += self.cfg.retry_backoff;
                self.poll_faults(t);
                continue;
            }
            let node = self
                .net
                .endpoint_node(&shard_endpoint(shard))
                .expect("shard endpoint registered at install");
            self.count_mgr_rpc(op);
            let sp = self.trace.span(Layer::Store, "store.mgr_rpc", t);
            sp.arg("client", client_node as u64)
                .arg("shard", shard as u64);
            let req = self
                .net
                .transfer_at(t, client_node, node, self.cfg.rpc_bytes);
            let done = {
                let shards = self.shards.lock();
                let ss = shards.as_ref().expect("shard set installed");
                ss.count_rpc(shard);
                ss.cpu_done(shard, req.arrived, self.cfg.mgr_cpu)
            };
            let resp = self
                .net
                .transfer_at(done, node, client_node, self.cfg.rpc_bytes);
            self.shards
                .lock()
                .as_mut()
                .expect("shard set installed")
                .grant_lease(shard, client_node, resp.arrived);
            sp.finish(resp.arrived);
            return Ok(resp.arrived);
        }
    }

    /// Metadata round-trip for a namespace (control-plane) operation. The
    /// namespace has no per-chunk key to hash, so in shard mode it lives
    /// on shard 0 — the *root shard*; with no shard set this is the
    /// serial manager RPC.
    fn namespace_rpc(&self, t: VTime, client_node: usize) -> Result<VTime> {
        if self.shards_installed() > 0 {
            self.shard_rpc(t, client_node, 0, MgrOp::Place)
        } else {
            Ok(self.mgr_rpc(t, client_node, MgrOp::Place))
        }
    }

    /// Metadata round-trip resolving slot `(file, idx)`: routed to the
    /// ring owner in shard mode, the serial manager otherwise.
    fn slot_rpc(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
        op: MgrOp,
    ) -> Result<VTime> {
        match self.shard_of_slot(file, idx) {
            Some(shard) => self.shard_rpc(t, client_node, shard, op),
            None => Ok(self.mgr_rpc(t, client_node, op)),
        }
    }

    // ----- control plane ---------------------------------------------------

    pub fn create_file(&self, t: VTime, client_node: usize, name: &str) -> Result<(VTime, FileId)> {
        self.poll_faults(t);
        let t = self.namespace_rpc(t, client_node)?;
        let id = self.mgr.lock().create_file(name)?;
        Ok((t, id))
    }

    pub fn fallocate(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        size: u64,
        spec: StripeSpec,
        placement: PlacementPolicy,
    ) -> Result<VTime> {
        self.poll_faults(t);
        let t = self.namespace_rpc(t, client_node)?;
        self.mgr.lock().fallocate(file, size, spec, placement)?;
        Ok(t)
    }

    pub fn open(
        &self,
        t: VTime,
        client_node: usize,
        name: &str,
    ) -> Result<(VTime, Option<FileId>)> {
        self.poll_faults(t);
        let t = self.namespace_rpc(t, client_node)?;
        Ok((t, self.mgr.lock().lookup(name)))
    }

    pub fn delete(&self, t: VTime, client_node: usize, file: FileId) -> Result<VTime> {
        self.poll_faults(t);
        let t = self.namespace_rpc(t, client_node)?;
        self.mgr.lock().delete_file(file)?;
        Ok(t)
    }

    /// Zero-copy checkpoint linking: append `src`'s chunks to `dst`.
    pub fn link_file(
        &self,
        t: VTime,
        client_node: usize,
        dst: FileId,
        src: FileId,
    ) -> Result<VTime> {
        self.poll_faults(t);
        let t = self.namespace_rpc(t, client_node)?;
        self.mgr.lock().link_file(dst, src)?;
        Ok(t)
    }

    /// Untimed metadata peek (clients cache sizes at open/malloc time).
    pub fn file_size(&self, file: FileId) -> Result<u64> {
        Ok(self.mgr.lock().file(file)?.size)
    }

    pub fn chunk_count(&self, file: FileId) -> Result<usize> {
        Ok(self.mgr.lock().file(file)?.slots.len())
    }

    // ----- data plane ------------------------------------------------------

    /// Fetch chunk `idx` of `file` to `client_node`.
    ///
    /// Cost model (paper §III-D): a manager RPC resolves the chunk to a
    /// benefactor, then the client pulls the chunk directly from that
    /// benefactor — request message, SSD read, data transfer back.
    ///
    /// With replication, the replica list is scanned in order and the
    /// read fails over to the first copy that is alive and reachable
    /// (counted in `store.failovers` / `store.degraded_reads`). When no
    /// copy is serviceable the read backs off `retry_backoff` of virtual
    /// time, re-polls the fault plan (a scheduled recovery may land in
    /// between) and retries up to `fetch_retries` times before failing
    /// with [`StoreError::BenefactorDown`] for the primary copy.
    pub fn fetch_chunk(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
    ) -> Result<(VTime, ChunkPayload)> {
        self.poll_faults(t);
        let sp = self.trace.span(Layer::Store, "store.chunk_fetch", t);
        sp.arg("file", file.0).arg("idx", idx as u64);
        let t = self.slot_rpc(t, client_node, file, idx, MgrOp::Fetch)?;
        self.chunk_fetches.inc();
        let chunk = {
            let mgr = self.mgr.lock();
            let meta = mgr.file(file)?;
            if idx >= meta.slots.len() {
                return Err(StoreError::OutOfBounds {
                    file,
                    offset: idx as u64 * self.cfg.chunk_size,
                    len: self.cfg.chunk_size,
                    size: meta.size,
                });
            }
            match meta.slots[idx] {
                Slot::Unmaterialized | Slot::Hole => None,
                Slot::Chunk(c) => Some(c),
            }
        };

        let c = match chunk {
            None => {
                // Hole: the manager's reply says "no data"; zeros are
                // materialized client-side for free.
                self.zero_fills.inc();
                sp.finish(t);
                return Ok((t, ChunkPayload::Zeros));
            }
            Some(c) => c,
        };

        let out = self.fetch_verified(t, client_node, c, false)?;
        sp.arg("benefactor", out.home.0 as u64)
            .arg("node", out.node as u64);
        if out.degraded {
            sp.arg("degraded", 1);
        }
        sp.finish(out.end);
        Ok((out.end, ChunkPayload::Data(out.data)))
    }

    /// The replica-scan / failover / backoff retry loop shared by the
    /// serial and batched fetch paths. `t` is when the caller is ready to
    /// issue the first benefactor request (post-resolution).
    ///
    /// Every attempt rescans the replica list: writes may have re-homed
    /// the chunk and recoveries may have revived a copy. With
    /// `verify_reads` set, arrived bytes are checked against the
    /// manager's CRC64; a mismatching copy is counted, quarantined (its
    /// bytes reclaimed while a replica remains — re-replication restores
    /// the degree) and the scan continues from the moment the bad bytes
    /// arrived. When no serviceable copy is left the read backs off
    /// `retry_backoff`, re-polls the fault plan and retries up to
    /// `fetch_retries` times; the final error is
    /// [`StoreError::ChunkCorrupt`] if any copy failed verification,
    /// [`StoreError::BenefactorDown`] otherwise. With verification off,
    /// timing and counters are identical to the pre-integrity retry loop.
    ///
    /// `degraded` marks a read the caller already knows is degraded (the
    /// batched path's non-primary picks) so `store.failovers` /
    /// `store.degraded_reads` count it even at rank 0.
    fn fetch_verified(
        &self,
        mut t: VTime,
        client_node: usize,
        c: ChunkId,
        degraded: bool,
    ) -> Result<FetchOutcome> {
        let mut attempts = 0;
        let mut known_bad: Vec<BenefactorId> = Vec::new();
        loop {
            let pick = {
                let mgr = self.mgr.lock();
                let homes = mgr.chunk_homes(c).expect("chunk without home");
                let primary = homes[0];
                let serviceable = homes.iter().enumerate().find(|(_, &h)| {
                    !known_bad.contains(&h)
                        && mgr.benefactor(h).is_alive()
                        && self.net.reachable(mgr.benefactor(h).node, client_node)
                });
                match serviceable {
                    Some((rank, &h)) => Ok((rank, h, mgr.benefactor(h).node)),
                    None => Err(primary),
                }
            };
            match pick {
                Ok((rank, home, home_node)) => {
                    // Request message to the benefactor…
                    let req = self
                        .net
                        .transfer_at(t, client_node, home_node, self.cfg.rpc_bytes);
                    // …SSD read at the benefactor…
                    let (grant, data) = {
                        let mgr = self.mgr.lock();
                        mgr.benefactor(home).read_chunk(req.arrived, c)
                    };
                    // …chunk shipped back.
                    let resp = self.net.transfer_at(
                        grant.end,
                        home_node,
                        client_node,
                        self.cfg.chunk_size,
                    );
                    self.bytes_to_clients.add(self.cfg.chunk_size);
                    if self.cfg.verify_reads {
                        let expected = self.mgr.lock().chunk_crc(c).expect("chunk without crc");
                        if crc64(&data) != expected {
                            self.stats.counter("store.crc_mismatches").inc();
                            self.trace.instant(
                                Layer::Store,
                                format!("store.crc_mismatch c={} b={}", c.0, home.0),
                                resp.arrived,
                            );
                            self.quarantine_copy(c, home);
                            known_bad.push(home);
                            t = resp.arrived;
                            continue;
                        }
                    }
                    let was_degraded =
                        degraded || rank > 0 || attempts > 0 || !known_bad.is_empty();
                    if was_degraded {
                        self.failovers.inc();
                        self.degraded_reads.inc();
                    }
                    return Ok(FetchOutcome {
                        end: resp.arrived,
                        data,
                        home,
                        node: home_node,
                        degraded: was_degraded,
                    });
                }
                Err(primary) => {
                    if attempts >= self.cfg.fetch_retries {
                        return Err(match known_bad.last() {
                            Some(&b) => StoreError::ChunkCorrupt {
                                chunk: c,
                                benefactor: b,
                            },
                            None => StoreError::BenefactorDown(primary),
                        });
                    }
                    attempts += 1;
                    t += self.cfg.retry_backoff;
                    self.poll_faults(t);
                }
            }
        }
    }

    /// Drop a CRC-mismatching copy: while a replica remains, the bad copy
    /// leaves the home list and its bytes are reclaimed (the chunk shows
    /// up under-replicated, so repair and scrub re-replicate the good
    /// copy). A sole copy stays listed — the metadata invariant keeps at
    /// least one home — but callers track it as known-bad and report
    /// [`StoreError::ChunkCorrupt`] rather than serve it.
    fn quarantine_copy(&self, c: ChunkId, home: BenefactorId) {
        let mut mgr = self.mgr.lock();
        if mgr.chunk_homes(c).expect("chunk listed").len() > 1 {
            mgr.remove_chunk_home(c, home);
            mgr.benefactor_mut(home).drop_chunk(c);
        }
    }

    /// Batched multi-benefactor fetch: resolve *all* targets with one
    /// manager RPC (or none, when a [`LocationCache`] still holds valid
    /// resolutions), then pull the chunks with per-benefactor pipelining.
    ///
    /// Cost model (DESIGN.md §8): each benefactor's chain — request →
    /// SSD read → transfer back — runs *serially* on that benefactor
    /// (chunk `i+1`'s request leaves when chunk `i`'s response arrives),
    /// but chains on distinct benefactors proceed concurrently from the
    /// shared resolution time. Shared resources (the client's NIC, each
    /// benefactor's SSD/NIC) still queue correctly because chains are
    /// issued in non-decreasing virtual-time order against the FIFO
    /// `Resource` registers. Per-chunk completion is its own response
    /// arrival, returned in input order.
    ///
    /// Fault semantics match the serial path per entry: every entry runs
    /// the same failover/verify/backoff retry loop (`fetch_verified`) the
    /// serial path uses. A degraded pick counts a failover; a target with
    /// *no* serviceable copy at batch time runs the loop unchained from
    /// the shared resolution time, independently of its batch-mates, and
    /// completes at exactly the time the serial fetch would.
    pub fn fetch_chunks(
        &self,
        t: VTime,
        client_node: usize,
        targets: &[(FileId, usize)],
        cache: Option<&LocationCache>,
    ) -> Result<Vec<(VTime, ChunkPayload)>> {
        if targets.is_empty() {
            return Ok(Vec::new());
        }
        self.poll_faults(t);
        self.batched_fetches.inc();
        let sp = self.trace.span(Layer::Store, "store.fetch_batch", t);
        sp.arg("targets", targets.len() as u64)
            .arg("client", client_node as u64);

        // Resolve from the location cache where the epoch allows. In
        // shard mode a cached entry may only be used while the client
        // holds a live lease from the shard owning that target
        // (DESIGN.md §12) — an unleased target is forced to the shard
        // even when cached. With one shard and a held lease the gate
        // never fires, so counters stay identical to the serial manager.
        let shard_mode = self.shards_installed() > 0;
        let owners: Vec<usize> = if shard_mode {
            let shards = self.shards.lock();
            let ss = shards.as_ref().expect("shard set installed");
            targets
                .iter()
                .map(|&(f, i)| ss.ring().owner_of_slot(f, i))
                .collect()
        } else {
            Vec::new()
        };
        let mut resolved: Vec<Option<CachedLoc>> = {
            let epoch = self.mgr.lock().placement_epoch();
            if !shard_mode {
                targets
                    .iter()
                    .map(|&key| cache.and_then(|c| c.lookup(epoch, key)))
                    .collect()
            } else {
                let mut shards = self.shards.lock();
                let ss = shards.as_mut().expect("shard set installed");
                targets
                    .iter()
                    .zip(&owners)
                    .map(|(&key, &owner)| match cache {
                        Some(c) if ss.check_lease(owner, client_node, t) => c.lookup(epoch, key),
                        Some(c) => {
                            c.note_unleased_miss(epoch, key);
                            None
                        }
                        None => None,
                    })
                    .collect()
            }
        };

        // One shared RPC covers every unresolved target — per owning
        // shard in shard mode, each issued concurrently from `t` (they
        // queue on *different* shard CPUs, which is the whole point).
        // Entry `i` may start its benefactor chain at `ready[i]`: its
        // owner's response arrival, or `t` when its shard was never
        // consulted (a leased cache hit). A fully cached batch skips
        // every manager round-trip.
        let any_miss = resolved.iter().any(|r| r.is_none());
        let ready: Vec<VTime> = if !shard_mode {
            let t0 = if any_miss {
                self.mgr_rpc(t, client_node, MgrOp::Fetch)
            } else {
                t
            };
            vec![t0; targets.len()]
        } else {
            let mut contacted: BTreeMap<usize, VTime> = BTreeMap::new();
            for (i, r) in resolved.iter().enumerate() {
                if r.is_none() {
                    contacted.entry(owners[i]).or_insert(VTime::ZERO);
                }
            }
            for (&shard, end) in contacted.iter_mut() {
                *end = self.shard_rpc(t, client_node, shard, MgrOp::Fetch)?;
            }
            (0..targets.len())
                .map(|i| contacted.get(&owners[i]).copied().unwrap_or(t))
                .collect()
        };
        if any_miss {
            let mgr = self.mgr.lock();
            let epoch = mgr.placement_epoch();
            for (i, &(file, idx)) in targets.iter().enumerate() {
                if resolved[i].is_some() {
                    continue;
                }
                let meta = mgr.file(file)?;
                if idx >= meta.slots.len() {
                    return Err(StoreError::OutOfBounds {
                        file,
                        offset: idx as u64 * self.cfg.chunk_size,
                        len: self.cfg.chunk_size,
                        size: meta.size,
                    });
                }
                let loc = match meta.slots[idx] {
                    Slot::Unmaterialized | Slot::Hole => CachedLoc::Zeros,
                    Slot::Chunk(c) => CachedLoc::Chunk {
                        chunk: c,
                        homes: mgr
                            .chunk_homes(c)
                            .expect("chunk without home")
                            .iter()
                            .map(|&h| (h, mgr.benefactor(h).node))
                            .collect(),
                    },
                };
                if let Some(cache) = cache {
                    cache.insert(epoch, (file, idx), loc.clone());
                }
                resolved[i] = Some(loc);
            }
        }

        // Plan each target: zeros, a benefactor chain, or the unchained
        // retry loop when no listed copy is serviceable right now.
        enum Plan {
            Zeros,
            Chain {
                home: BenefactorId,
                chunk: ChunkId,
                degraded: bool,
            },
            Fallback {
                chunk: ChunkId,
            },
        }
        let (plan, fleet): (Vec<Plan>, usize) = {
            let mgr = self.mgr.lock();
            let plan = resolved
                .iter()
                .map(|loc| match loc.as_ref().expect("all targets resolved") {
                    CachedLoc::Zeros => Plan::Zeros,
                    CachedLoc::Chunk { chunk, homes } => {
                        let pick = homes.iter().enumerate().find(|(_, &(h, node))| {
                            mgr.benefactor(h).is_alive() && self.net.reachable(node, client_node)
                        });
                        match pick {
                            Some((rank, &(home, _))) => Plan::Chain {
                                home,
                                chunk: *chunk,
                                degraded: rank > 0,
                            },
                            None => Plan::Fallback { chunk: *chunk },
                        }
                    }
                })
                .collect();
            (plan, mgr.benefactor_count())
        };

        // Group chains per benefactor (input order within a group) and
        // drain them min-cursor-first so resource requests are issued in
        // non-decreasing virtual time.
        // A group's cursor starts at ZERO; each entry starts at
        // `max(cursor, ready[i])`, so with a uniform `ready` (serial
        // manager, or shards=1 where every owner is shard 0) the drain is
        // exactly the original shared-`t0` schedule.
        let mut scratch = std::mem::take(&mut *self.chain_scratch.lock());
        scratch.begin(fleet);
        for (i, p) in plan.iter().enumerate() {
            if let Plan::Chain { home, .. } = p {
                scratch.push(*home, i);
            }
        }
        let mut out: Vec<Option<(VTime, ChunkPayload)>> = Vec::new();
        out.resize_with(targets.len(), || None);
        while let Some((home, i, start)) = scratch.pop_min(&ready) {
            let Plan::Chain {
                chunk, degraded, ..
            } = plan[i]
            else {
                unreachable!("grouped entries are chains")
            };
            self.chunk_fetches.inc();
            let csp = self.trace.span(Layer::Store, "store.chunk_fetch", start);
            // The shared retry loop re-picks from the live home list (the
            // same scan that planned this chain) and, under
            // `verify_reads`, fails the entry over to a replica when the
            // arrived bytes don't match the recorded CRC.
            let res = self.fetch_verified(start, client_node, chunk, degraded)?;
            csp.arg("benefactor", res.home.0 as u64)
                .arg("node", res.node as u64);
            if res.degraded {
                csp.arg("degraded", 1);
            }
            csp.finish(res.end);
            scratch.set_cursor(home, res.end);
            out[i] = Some((res.end, ChunkPayload::Data(res.data)));
        }
        *self.chain_scratch.lock() = scratch;

        // Zeros and degraded fallbacks fill in the gaps. A fallback runs
        // the same retry loop the serial path would, from its entry's
        // resolution time — no second manager RPC — so a degraded
        // batched fetch completes at exactly the serial fetch's time and
        // counts under the same `degraded_reads` counter.
        for (i, p) in plan.iter().enumerate() {
            match p {
                Plan::Zeros => {
                    self.chunk_fetches.inc();
                    self.zero_fills.inc();
                    out[i] = Some((ready[i], ChunkPayload::Zeros));
                }
                Plan::Fallback { chunk } => {
                    self.chunk_fetches.inc();
                    let csp = self.trace.span(Layer::Store, "store.chunk_fetch", ready[i]);
                    let res = self.fetch_verified(ready[i], client_node, *chunk, false)?;
                    csp.arg("benefactor", res.home.0 as u64)
                        .arg("node", res.node as u64);
                    if res.degraded {
                        csp.arg("degraded", 1);
                    }
                    csp.finish(res.end);
                    out[i] = Some((res.end, ChunkPayload::Data(res.data)));
                }
                Plan::Chain { .. } => {}
            }
        }
        let out: Vec<(VTime, ChunkPayload)> = out
            .into_iter()
            .map(|e| e.expect("all entries filled"))
            .collect();
        // The batch completes when its slowest entry does.
        sp.finish(out.iter().map(|&(end, _)| end).max().unwrap_or(t));
        Ok(out)
    }

    /// Write back dirty pages of chunk `idx` (the FUSE eviction path).
    ///
    /// `updates` are `(offset_within_chunk, bytes)` runs. Handles all
    /// three slot states:
    ///
    /// * unmaterialized → materialize a fresh chunk (zeros + updates);
    /// * exclusive chunk → in-place page update;
    /// * shared chunk (checkpoint-linked) → copy-on-write: the benefactor
    ///   clones the chunk locally, the updates land on the clone, and the
    ///   file's slot is switched while the checkpoint keeps the original.
    ///
    /// Replication: the dirty bytes ship to **every** live copy (each
    /// transfer and SSD write is charged; completion is the slowest
    /// replica). A copy whose benefactor is dead is dropped from the
    /// chunk's home list — its on-disk bytes are stale from now on and
    /// are reclaimed when the benefactor reconciles on recovery. The
    /// write only fails if *no* copy is on a live benefactor.
    pub fn write_pages(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
        updates: &[(u64, &[u8])],
    ) -> Result<VTime> {
        self.validate_updates(updates);
        self.poll_faults(t);
        let sp = self.trace.span(Layer::Store, "store.write_pages", t);
        sp.arg("file", file.0).arg("idx", idx as u64);
        let t = self.slot_rpc(t, client_node, file, idx, MgrOp::Write)?;
        let end = self.write_pages_resolved(t, client_node, file, idx, updates)?;
        sp.finish(end);
        Ok(end)
    }

    /// Batched write-back: one manager RPC covers every entry, then the
    /// entries run as per-benefactor chains exactly like
    /// [`Self::fetch_chunks`] — entries bound for the same primary home
    /// chain serially (entry `i+1` ships when entry `i`'s replicas have
    /// all acknowledged), chains on distinct benefactors proceed
    /// concurrently from the shared resolution time, so a background
    /// flush scales with stripe width. Chains are drained min-cursor
    /// first, keeping resource requests in non-decreasing virtual time.
    /// Returns per-entry completion times in input order (a flush's
    /// completion is their max). Replication semantics per entry are
    /// identical to [`Self::write_pages`]: each entry independently ships
    /// to every live home and drops dead ones; an entry with no live home
    /// runs unchained from the resolution time and surfaces the same
    /// error the serial path would.
    pub fn write_pages_batch(
        &self,
        t: VTime,
        client_node: usize,
        entries: &[BatchWrite<'_>],
    ) -> Result<Vec<VTime>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        for e in entries {
            self.validate_updates(e.updates);
        }
        self.poll_faults(t);
        self.batched_writes.inc();
        let sp = self.trace.span(Layer::Store, "store.write_batch", t);
        sp.arg("entries", entries.len() as u64);

        // Resolution RPC(s): one per owning shard in shard mode — writes
        // are placement mutations and always reach the authoritative
        // shard, no lease shortcut — issued concurrently from `t`; one
        // serial manager RPC otherwise. `ready[i]` is when entry `i`'s
        // resolution reply is in hand.
        let ready: Vec<VTime> = if self.shards_installed() == 0 {
            let t0 = self.mgr_rpc(t, client_node, MgrOp::Write);
            vec![t0; entries.len()]
        } else {
            let owners: Vec<usize> = {
                let shards = self.shards.lock();
                let ss = shards.as_ref().expect("shard set installed");
                entries
                    .iter()
                    .map(|e| ss.ring().owner_of_slot(e.file, e.idx))
                    .collect()
            };
            let mut contacted: BTreeMap<usize, VTime> = BTreeMap::new();
            for &owner in &owners {
                contacted.entry(owner).or_insert(VTime::ZERO);
            }
            for (&shard, end) in contacted.iter_mut() {
                *end = self.shard_rpc(t, client_node, shard, MgrOp::Write)?;
            }
            owners.iter().map(|o| contacted[o]).collect()
        };

        // Group entries by the benefactor their bytes land on first (the
        // primary live home). Resolution here is advisory — it only
        // shapes chains; `write_pages_resolved` re-resolves
        // authoritatively per entry. Cursors start at ZERO and each entry
        // starts at `max(cursor, ready[i])`, so a uniform `ready` yields
        // exactly the original shared-`t0` schedule.
        let (keys, fleet): (Vec<Option<BenefactorId>>, usize) = {
            let mgr = self.mgr.lock();
            let keys = entries
                .iter()
                .map(|e| Self::primary_live_home(&mgr, e.file, e.idx))
                .collect();
            (keys, mgr.benefactor_count())
        };
        let mut scratch = std::mem::take(&mut *self.chain_scratch.lock());
        scratch.begin(fleet);
        for (i, k) in keys.iter().enumerate() {
            if let Some(home) = k {
                scratch.push(*home, i);
            }
        }
        let mut ends: Vec<VTime> = ready.clone();
        while let Some((home, i, start)) = scratch.pop_min(&ready) {
            let e = &entries[i];
            let esp = self.trace.span(Layer::Store, "store.write_pages", start);
            esp.arg("file", e.file.0).arg("idx", e.idx as u64);
            let end = self.write_pages_resolved(start, client_node, e.file, e.idx, e.updates)?;
            esp.finish(end);
            scratch.set_cursor(home, end);
            ends[i] = end;
        }
        *self.chain_scratch.lock() = scratch;
        // Entries with no live home at batch time (they error, or — for
        // holes — allocate wherever space remains) run unchained from
        // their resolution time.
        for (i, k) in keys.iter().enumerate() {
            if k.is_some() {
                continue;
            }
            let e = &entries[i];
            let esp = self.trace.span(Layer::Store, "store.write_pages", ready[i]);
            esp.arg("file", e.file.0).arg("idx", e.idx as u64);
            let end = self.write_pages_resolved(ready[i], client_node, e.file, e.idx, e.updates)?;
            esp.finish(end);
            ends[i] = end;
        }
        sp.finish(ends.iter().copied().max().unwrap_or(t));
        Ok(ends)
    }

    /// The benefactor a write to `(file, idx)` primarily lands on — the
    /// chain-grouping key for [`Self::write_pages_batch`]. `None` when no
    /// listed home is alive or the slot does not resolve; such entries
    /// run unchained and reproduce the serial path's outcome.
    fn primary_live_home(mgr: &Manager, file: FileId, idx: usize) -> Option<BenefactorId> {
        let meta = mgr.file(file).ok()?;
        let slot = *meta.slots.get(idx)?;
        match slot {
            Slot::Unmaterialized => meta
                .homes_of_slot(idx)
                .into_iter()
                .find(|&h| mgr.benefactor(h).is_alive()),
            Slot::Hole => mgr
                .placeable_benefactors()
                .iter()
                .copied()
                .find(|&b| mgr.benefactor(b).can_allocate_chunk(false)),
            Slot::Chunk(c) => mgr
                .chunk_homes(c)?
                .iter()
                .copied()
                .find(|&h| mgr.benefactor(h).is_alive()),
        }
    }

    fn validate_updates(&self, updates: &[(u64, &[u8])]) {
        let dirty_bytes: u64 = updates.iter().map(|(_, d)| d.len() as u64).sum();
        assert!(dirty_bytes > 0, "write_pages with no updates");
        for (off, data) in updates {
            assert!(
                off + data.len() as u64 <= self.cfg.chunk_size,
                "update outside chunk"
            );
        }
    }

    /// The post-RPC body of a page write-back: `t` is the time the
    /// manager's resolution reply arrived.
    fn write_pages_resolved(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
        updates: &[(u64, &[u8])],
    ) -> Result<VTime> {
        let dirty_bytes: u64 = updates.iter().map(|(_, d)| d.len() as u64).sum();
        let mut mgr = self.mgr.lock();
        let meta = mgr.file(file)?;
        if idx >= meta.slots.len() {
            return Err(StoreError::OutOfBounds {
                file,
                offset: idx as u64 * self.cfg.chunk_size,
                len: self.cfg.chunk_size,
                size: meta.size,
            });
        }
        let slot = meta.slots[idx];
        let replicas = meta.replicas.max(1);

        // Resolve the live home set for this write.
        let (live_homes, target) = match slot {
            Slot::Unmaterialized => {
                let homes = meta.homes_of_slot(idx);
                let (live, dead): (Vec<BenefactorId>, Vec<BenefactorId>) =
                    homes.iter().partition(|&&h| mgr.benefactor(h).is_alive());
                if live.is_empty() {
                    return Err(StoreError::BenefactorDown(homes[0]));
                }
                // The dead homes' reservations move off their books: the
                // chunk materializes on the live subset only, and repair
                // re-replicates it elsewhere later.
                for h in dead {
                    mgr.benefactor_mut(h).release_slots(1);
                }
                (live, replicas)
            }
            Slot::Hole => {
                // Holes (zero regions inside linked checkpoint files)
                // carry no reservation and may sit in a file with no
                // stripe of its own; writing one allocates fresh space
                // wherever it fits — up to `replicas` distinct placeable
                // (non-quarantined) hosts.
                let mut picked = Vec::new();
                for &b in mgr.placeable_benefactors() {
                    if picked.len() == replicas {
                        break;
                    }
                    if mgr.benefactor(b).can_allocate_chunk(false) {
                        picked.push(b);
                    }
                }
                if picked.is_empty() {
                    return Err(StoreError::OutOfSpace {
                        requested: self.cfg.chunk_size,
                        available: 0,
                    });
                }
                (picked, replicas)
            }
            // A materialized chunk's authoritative homes are the chunk
            // map (a linked slot's position in *this* file says nothing
            // about where the shared chunk actually lives).
            Slot::Chunk(c) => {
                let homes: Vec<BenefactorId> =
                    mgr.chunk_homes(c).expect("chunk has a home").to_vec();
                let (live, dead): (Vec<BenefactorId>, Vec<BenefactorId>) =
                    homes.iter().partition(|&&h| mgr.benefactor(h).is_alive());
                if live.is_empty() {
                    return Err(StoreError::BenefactorDown(homes[0]));
                }
                for h in dead {
                    mgr.remove_chunk_home(c, h);
                }
                let target = mgr.chunk_target(c).expect("chunk has a target");
                (live, target)
            }
        };

        // COW space check happens before any time is charged.
        if let Slot::Chunk(c) = slot {
            if mgr.chunk_refcount(c) > 1 {
                for &h in &live_homes {
                    if !mgr.benefactor(h).can_allocate_chunk(false) {
                        return Err(StoreError::OutOfSpace {
                            requested: self.cfg.chunk_size,
                            available: mgr.benefactor(h).free(),
                        });
                    }
                }
            }
        }

        let chunk_len = self.cfg.chunk_size;
        let compose = |updates: &[(u64, &[u8])]| {
            let mut data = vec![0u8; chunk_len as usize].into_boxed_slice();
            for (off, d) in updates {
                data[*off as usize..*off as usize + d.len()].copy_from_slice(d);
            }
            data
        };

        // Digest of a zero chunk with `updates` applied, without scanning
        // the composed buffer: start from the all-zeros digest and splice
        // each dirty run in — O(dirty bytes), not O(chunk). Dirty runs
        // never overlap (they come from a page bitmap), which the splice
        // algebra relies on.
        let compose_crc = |updates: &[(u64, &[u8])]| {
            let mut crc = crc::crc64_zeros(chunk_len);
            for (off, d) in updates {
                crc = crc::crc64_splice_fresh(crc, chunk_len, *off, d);
            }
            crc
        };

        // Digest of the *intended* post-write content of chunk `c`,
        // recorded in metadata before any benefactor write lands — a torn
        // write or silent corruption on the media then disagrees with it.
        //
        // The recorded digest is the digest of the intended *current*
        // content, so the new digest is an incremental splice of each
        // dirty run into it (O(dirty bytes + log chunk), no full-chunk
        // copy or rescan). With verification on, the old bytes under each
        // run are read from a copy that still matches the recorded CRC,
        // so existing rot on one replica is not laundered into the new
        // digest; if no copy verifies, fall back to a full recompute over
        // the best available bytes (prior behavior).
        let updated_crc = |mgr: &Manager, c: ChunkId, homes: &[BenefactorId]| -> u64 {
            let recorded = mgr.chunk_crc(c).expect("chunk without crc");
            let splice_all = |base: &[u8]| -> u64 {
                let mut crc = recorded;
                for (off, d) in updates {
                    let at = *off as usize;
                    crc = crc::crc64_splice(crc, chunk_len, *off, &base[at..at + d.len()], d);
                }
                crc
            };
            if self.cfg.verify_reads {
                if let Some(base) = homes.iter().find_map(|&h| {
                    mgr.benefactor(h)
                        .peek_chunk(c)
                        .filter(|b| crc64(b) == recorded)
                }) {
                    return splice_all(base);
                }
                let base = homes
                    .iter()
                    .find_map(|&h| mgr.benefactor(h).peek_chunk(c))
                    .expect("live copy present");
                let mut scratch: Box<[u8]> = base.into();
                for (off, d) in updates {
                    scratch[*off as usize..*off as usize + d.len()].copy_from_slice(d);
                }
                return crc64(&scratch);
            }
            let base = homes
                .iter()
                .find_map(|&h| mgr.benefactor(h).peek_chunk(c))
                .expect("live copy present");
            splice_all(base)
        };

        let mut end = VTime::ZERO;
        match slot {
            Slot::Unmaterialized | Slot::Hole => {
                // First write: compose zeros + updates on every live copy.
                // Unmaterialized slots consume their fallocate reservation;
                // hole writes allocate unreserved space (checked above).
                let consumes_reservation = matches!(slot, Slot::Unmaterialized);
                let data = compose(updates);
                let crc = compose_crc(updates);
                let c = mgr.new_chunk_id(live_homes.clone(), target, crc);
                for &home in &live_homes {
                    let home_node = mgr.benefactor(home).node;
                    let xfer = self.net.transfer_at(t, client_node, home_node, dirty_bytes);
                    self.bytes_from_clients.add(dirty_bytes);
                    let g = mgr.benefactor_mut(home).store_chunk(
                        xfer.arrived,
                        c,
                        data.clone(),
                        dirty_bytes,
                        consumes_reservation,
                    );
                    end = end.max(g.end);
                }
                mgr.set_slot(file, idx, Slot::Chunk(c));
            }
            Slot::Chunk(c) => {
                let new_crc = updated_crc(&mgr, c, &live_homes);
                if mgr.chunk_refcount(c) > 1 {
                    // COW: clone on each live copy's benefactor, then
                    // land the updates on the clones.
                    self.cow_clones.inc();
                    let c_new = mgr.new_chunk_id(live_homes.clone(), target, new_crc);
                    for &home in &live_homes {
                        let home_node = mgr.benefactor(home).node;
                        let xfer = self.net.transfer_at(t, client_node, home_node, dirty_bytes);
                        self.bytes_from_clients.add(dirty_bytes);
                        let g = mgr.benefactor_mut(home).clone_chunk(xfer.arrived, c, c_new);
                        let g2 = mgr.benefactor_mut(home).update_chunk(g.end, c_new, updates);
                        end = end.max(g2.end);
                    }
                    mgr.set_slot(file, idx, Slot::Chunk(c_new));
                    mgr.decref_chunk(c);
                } else {
                    mgr.set_chunk_crc(c, new_crc);
                    for &home in &live_homes {
                        let home_node = mgr.benefactor(home).node;
                        let xfer = self.net.transfer_at(t, client_node, home_node, dirty_bytes);
                        self.bytes_from_clients.add(dirty_bytes);
                        let g = mgr
                            .benefactor_mut(home)
                            .update_chunk(xfer.arrived, c, updates);
                        end = end.max(g.end);
                    }
                }
            }
        }
        Ok(end)
    }

    /// Bulk sequential write (checkpoint DRAM dumps, workload loads):
    /// splits `data` into per-chunk updates.
    pub fn write_span(
        &self,
        mut t: VTime,
        client_node: usize,
        file: FileId,
        offset: u64,
        data: &[u8],
    ) -> Result<VTime> {
        let size = self.file_size(file)?;
        if offset + data.len() as u64 > size {
            return Err(StoreError::OutOfBounds {
                file,
                offset,
                len: data.len() as u64,
                size,
            });
        }
        let cs = self.cfg.chunk_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let idx = (abs / cs) as usize;
            let within = abs % cs;
            let take = ((cs - within) as usize).min(data.len() - pos);
            t = self.write_pages(
                t,
                client_node,
                file,
                idx,
                &[(within, &data[pos..pos + take])],
            )?;
            pos += take;
        }
        Ok(t)
    }

    /// Bulk sequential read into `buf` (restart path).
    pub fn read_span(
        &self,
        mut t: VTime,
        client_node: usize,
        file: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<VTime> {
        let size = self.file_size(file)?;
        if offset + buf.len() as u64 > size {
            return Err(StoreError::OutOfBounds {
                file,
                offset,
                len: buf.len() as u64,
                size,
            });
        }
        let cs = self.cfg.chunk_size;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let idx = (abs / cs) as usize;
            let within = (abs % cs) as usize;
            let take = (cs as usize - within).min(buf.len() - pos);
            let (t2, payload) = self.fetch_chunk(t, client_node, file, idx)?;
            t = t2;
            match payload {
                ChunkPayload::Zeros => buf[pos..pos + take].fill(0),
                ChunkPayload::Data(chunk) => {
                    buf[pos..pos + take].copy_from_slice(&chunk[within..within + take])
                }
            }
            pos += take;
        }
        Ok(t)
    }

    // ----- administration ---------------------------------------------------

    /// Simulate a benefactor failure (or decommission/recovery). Revival
    /// reconciles the benefactor's disk against the metadata: chunks that
    /// were re-homed while it was down are stale there and get dropped.
    pub fn set_benefactor_alive(&self, id: BenefactorId, alive: bool) {
        let mut mgr = self.mgr.lock();
        if mgr.benefactor(id).is_alive() == alive {
            return;
        }
        mgr.set_alive(id, alive);
        // Liveness changes serviceability: invalidate location caches.
        mgr.bump_placement_epoch();
        if alive {
            mgr.reconcile_recovered(id);
            self.benefactor_recoveries.inc();
        } else {
            self.benefactor_crashes.inc();
        }
    }

    /// Simulate a placement-shard failure or recovery (DESIGN.md §12).
    /// A crash quarantines only the dead shard's keyspace: leases it
    /// granted stay valid, so leased clients keep answering placement
    /// locally, and every other shard is untouched. Recovery restarts
    /// the shard with a cold lease table — every delegation it granted
    /// before the crash is revoked and the placement epoch bumps, so no
    /// client can keep serving resolutions the reborn shard no longer
    /// vouches for. A no-op without an installed shard set.
    pub fn set_shard_alive(&self, shard: usize, alive: bool) {
        let mut guard = self.shards.lock();
        let Some(ss) = guard.as_mut() else { return };
        if ss.is_alive(shard) == alive {
            return;
        }
        ss.set_alive(shard, alive);
        drop(guard);
        if alive {
            self.revoke_shard_leases(shard);
        }
    }

    /// Revoke every lease `shard` has granted and bump the placement
    /// epoch. The pairing is load-bearing: the epoch bump is what makes
    /// revoked clients stop trusting their `LocationCache`, so no stale
    /// hit can survive a revoke (the `shardmgr_model` proptest pins
    /// this). Returns the number of leases revoked.
    pub fn revoke_shard_leases(&self, shard: usize) -> usize {
        let n = match self.shards.lock().as_mut() {
            Some(ss) => ss.revoke_shard(shard),
            None => return 0,
        };
        self.mgr.lock().bump_placement_epoch();
        n
    }

    /// One pass of the manager-side re-replication scanner: copy every
    /// under-replicated chunk from a surviving copy to a live benefactor
    /// that doesn't already hold one, restoring the replica degree after
    /// a crash. The sweep is sequential (donor SSD read → network copy →
    /// destination SSD write per chunk) so the returned completion time
    /// *is* the time-to-repair. Deterministic: chunks are visited in id
    /// order and the destination is the lowest-id eligible benefactor.
    pub fn repair_under_replicated(&self, t: VTime) -> (VTime, RepairReport) {
        self.poll_faults(t);
        let sp = self.trace.span(Layer::Store, "store.repair", t);
        let mut t = t;
        let mut report = RepairReport::default();
        let work = self.mgr.lock().under_replicated();
        for (c, _, missing) in work {
            for _ in 0..missing {
                let mut mgr = self.mgr.lock();
                // Re-read the home list: earlier copies in this sweep (or
                // a racing write) may have changed it.
                let homes: Vec<BenefactorId> = match mgr.chunk_homes(c) {
                    Some(h) => h.to_vec(),
                    None => break, // chunk deleted mid-sweep
                };
                // Donor: the first live copy — under `verify_reads`, the
                // first live copy whose bytes still match the recorded
                // digest, so a rotten donor never propagates its
                // corruption into a fresh replica. Mismatching candidates
                // are counted and quarantined like a failed read.
                let donor = {
                    let live: Vec<BenefactorId> = homes
                        .iter()
                        .copied()
                        .filter(|&h| mgr.benefactor(h).is_alive())
                        .collect();
                    if self.cfg.verify_reads {
                        let want = mgr.chunk_crc(c).expect("chunk without crc");
                        let mut pick = None;
                        for h in live {
                            let ok = mgr
                                .benefactor(h)
                                .peek_chunk(c)
                                .is_some_and(|b| crc64(b) == want);
                            if ok {
                                pick = Some(h);
                                break;
                            }
                            self.stats.counter("store.crc_mismatches").inc();
                            if mgr.chunk_homes(c).expect("chunk listed").len() > 1 {
                                mgr.remove_chunk_home(c, h);
                                mgr.benefactor_mut(h).drop_chunk(c);
                            }
                        }
                        pick
                    } else {
                        live.first().copied()
                    }
                };
                let Some(donor) = donor else {
                    report.chunks_unrepairable += 1;
                    break;
                };
                // Re-read again: donor vetting may have dropped copies.
                let homes: Vec<BenefactorId> = mgr.chunk_homes(c).expect("chunk listed").to_vec();
                let dest = (0..mgr.benefactor_count()).map(BenefactorId).find(|b| {
                    !homes.contains(b)
                        && mgr.benefactor(*b).is_placeable()
                        && mgr.benefactor(*b).can_allocate_chunk(false)
                });
                let dest = match dest {
                    Some(d) => d,
                    None => {
                        report.chunks_unrepairable += 1;
                        break;
                    }
                };
                let donor_node = mgr.benefactor(donor).node;
                let dest_node = mgr.benefactor(dest).node;
                let (g, data) = mgr.benefactor(donor).read_chunk(t, c);
                let xfer = self
                    .net
                    .transfer_at(g.end, donor_node, dest_node, self.cfg.chunk_size);
                let g2 = mgr.benefactor_mut(dest).store_chunk(
                    xfer.arrived,
                    c,
                    data,
                    self.cfg.chunk_size,
                    false,
                );
                mgr.add_chunk_home(c, dest);
                t = g2.end;
                report.chunks_repaired += 1;
                report.bytes_copied += self.cfg.chunk_size;
                self.repairs_chunks.inc();
                self.repairs_bytes.add(self.cfg.chunk_size);
            }
        }
        sp.arg("repaired", report.chunks_repaired)
            .arg("unrepairable", report.chunks_unrepairable);
        sp.finish(t);
        (t, report)
    }

    /// Per-benefactor SSD wear, for the lifetime-optimization analyses.
    pub fn wear_reports(&self) -> Vec<(usize, WearReport)> {
        let mgr = self.mgr.lock();
        (0..mgr.benefactor_count())
            .map(|i| {
                let b = mgr.benefactor(BenefactorId(i));
                (b.node, b.ssd().wear())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::{Ssd, INTEL_X25E};
    use netsim::NetConfig;
    use simcore::time::bytes::mib;

    const CHUNK: u64 = 256 * 1024;

    /// A 4-node store: manager on node 0, benefactors on nodes 1 and 2,
    /// client drives from node 3.
    fn store() -> (AggregateStore, StatsRegistry) {
        let stats = StatsRegistry::new();
        let net = Network::new(4, NetConfig::default(), &stats);
        let store = AggregateStore::new(StoreConfig::default(), net, &stats);
        for (i, node) in [1usize, 2].iter().enumerate() {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            store.add_benefactor(Benefactor::new(*node, ssd, mib(64), CHUNK));
        }
        (store, stats)
    }

    fn make_file(store: &AggregateStore, name: &str, size: u64) -> FileId {
        let (t, f) = store.create_file(VTime::ZERO, 3, name).unwrap();
        store
            .fallocate(
                t,
                3,
                f,
                size,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        f
    }

    #[test]
    fn hole_read_is_zeros_without_data_traffic() {
        let (store, stats) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let before = stats.get("net.bytes");
        let (_, payload) = store.fetch_chunk(VTime::ZERO, 3, f, 0).unwrap();
        assert_eq!(payload, ChunkPayload::Zeros);
        // Only RPC bytes moved (2 × 256).
        assert_eq!(stats.get("net.bytes") - before, 512);
        assert_eq!(stats.get("store.zero_fills"), 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let page = vec![7u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(8192, &page)])
            .unwrap();
        let (_, payload) = store.fetch_chunk(t, 3, f, 0).unwrap();
        match payload {
            ChunkPayload::Data(data) => {
                assert_eq!(data[8192], 7);
                assert_eq!(data[8192 + 4095], 7);
                assert_eq!(data[0], 0);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn remote_fetch_costs_network_plus_ssd() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        let t0 = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let (t1, _) = store.fetch_chunk(t0, 3, f, 0).unwrap();
        let elapsed = t1 - t0;
        // Lower bound: SSD latency + chunk/ssd_read_bw + chunk/net_bw.
        let ssd = VTime::from_micros(75) + simcore::Bandwidth::mb_per_sec(250.0).time_for(CHUNK);
        let net = simcore::Bandwidth::gbit_per_sec(2.0).time_for(CHUNK);
        assert!(elapsed >= ssd + net, "elapsed {elapsed}");
        // And not wildly more (RPCs and latencies only).
        assert!(
            elapsed < ssd + net + VTime::from_millis(2),
            "elapsed {elapsed}"
        );
    }

    #[test]
    fn write_span_and_read_span_roundtrip() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 3 * CHUNK);
        // Unaligned span crossing chunk boundaries.
        let data: Vec<u8> = (0..(CHUNK as usize + 9000))
            .map(|i| (i % 251) as u8)
            .collect();
        let t = store.write_span(VTime::ZERO, 3, f, 5000, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        store.read_span(t, 3, f, 5000, &mut out).unwrap();
        assert_eq!(out, data);
        // Outside the written span everything is still zero.
        let mut head = vec![0xAAu8; 5000];
        store.read_span(t, 3, f, 0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let err = store.fetch_chunk(VTime::ZERO, 3, f, 1).unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { .. }));
        let err = store
            .write_span(VTime::ZERO, 3, f, CHUNK - 1, &[0, 0])
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { .. }));
    }

    #[test]
    fn cow_preserves_checkpoint_content() {
        let (store, stats) = store();
        let f = make_file(&store, "/var", CHUNK);
        let page_a = vec![0xAu8; 4096];
        let mut t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page_a)])
            .unwrap();

        // Checkpoint: link the variable's chunks into /ckpt.
        let (t2, ckpt) = store.create_file(t, 3, "/ckpt").unwrap();
        t = store.link_file(t2, 3, ckpt, f).unwrap();

        // Modify the variable after the checkpoint.
        let page_b = vec![0xBu8; 4096];
        t = store.write_pages(t, 3, f, 0, &[(0, &page_b)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);

        // Variable sees new data; checkpoint still has the old bytes.
        let (_, var_data) = store.fetch_chunk(t, 3, f, 0).unwrap();
        let (_, ckpt_data) = store.fetch_chunk(t, 3, ckpt, 0).unwrap();
        match (var_data, ckpt_data) {
            (ChunkPayload::Data(v), ChunkPayload::Data(c)) => {
                assert_eq!(v[0], 0xB);
                assert_eq!(c[0], 0xA);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn second_write_after_cow_is_in_place() {
        let (store, stats) = store();
        let f = make_file(&store, "/var", CHUNK);
        let page = vec![1u8; 4096];
        let mut t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let (t2, ckpt) = store.create_file(t, 3, "/ckpt").unwrap();
        t = store.link_file(t2, 3, ckpt, f).unwrap();
        t = store.write_pages(t, 3, f, 0, &[(0, &page)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);
        // Refcount is back to 1: next write must not clone again.
        store.write_pages(t, 3, f, 0, &[(4096, &page)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);
    }

    #[test]
    fn dead_benefactor_fails_fetch() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let page = vec![1u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        store.set_benefactor_alive(BenefactorId(0), false);
        let err = store.fetch_chunk(t, 3, f, 0).unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(0)));
    }

    #[test]
    fn dirty_page_traffic_is_page_sized_not_chunk_sized() {
        let (store, stats) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        assert_eq!(stats.get("store.bytes_from_clients"), 4096);
    }

    /// `n` benefactors on nodes `1..=n`; the client drives from node `n+1`.
    fn store_n(n: usize) -> (AggregateStore, StatsRegistry) {
        let stats = StatsRegistry::new();
        let net = Network::new(n + 2, NetConfig::default(), &stats);
        let store = AggregateStore::new(StoreConfig::default(), net, &stats);
        for i in 0..n {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            store.add_benefactor(Benefactor::new(i + 1, ssd, mib(64), CHUNK));
        }
        (store, stats)
    }

    fn make_file_replicated(
        store: &AggregateStore,
        node: usize,
        name: &str,
        size: u64,
        k: usize,
    ) -> FileId {
        let (t, f) = store.create_file(VTime::ZERO, node, name).unwrap();
        store
            .fallocate(
                t,
                node,
                f,
                size,
                StripeSpec::all().with_replicas(k),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        f
    }

    #[test]
    fn replicated_write_lands_on_every_replica() {
        let (store, stats) = store_n(3);
        let client = 4;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 2);
        let page = vec![9u8; 4096];
        store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        // Dirty bytes shipped once per replica.
        assert_eq!(stats.get("store.bytes_from_clients"), 2 * 4096);
        let mgr = store.manager();
        let meta = mgr.file(f).unwrap();
        let c = match meta.slots[0] {
            Slot::Chunk(c) => c,
            _ => panic!("chunk not materialized"),
        };
        let homes = mgr.chunk_homes(c).unwrap().to_vec();
        assert_eq!(homes.len(), 2);
        assert_ne!(homes[0], homes[1], "replicas on distinct benefactors");
        for h in homes {
            assert!(mgr.benefactor(h).has_chunk(c));
        }
    }

    #[test]
    fn replication_needs_enough_benefactors() {
        let (store, _) = store_n(2);
        let (t, f) = store.create_file(VTime::ZERO, 3, "/m").unwrap();
        let err = store
            .fallocate(
                t,
                3,
                f,
                CHUNK,
                StripeSpec::all().with_replicas(3),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::NotEnoughBenefactors {
                requested: 3,
                alive: 2
            }
        ));
    }

    #[test]
    fn read_fails_over_to_surviving_replica() {
        let (store, stats) = store_n(2);
        let client = 3;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 2);
        let page = vec![7u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        store.set_benefactor_alive(BenefactorId(0), false);
        let (_, payload) = store.fetch_chunk(t, client, f, 0).unwrap();
        match payload {
            ChunkPayload::Data(data) => assert_eq!(data[0], 7),
            _ => panic!("expected data"),
        }
        assert_eq!(stats.get("store.failovers"), 1);
        assert_eq!(stats.get("store.degraded_reads"), 1);
    }

    #[test]
    fn write_during_outage_drops_dead_copy_and_recovery_reconciles() {
        let (store, _) = store_n(2);
        let client = 3;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 2);
        let page_a = vec![0xAu8; 4096];
        let mut t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page_a)])
            .unwrap();
        let c = match store.manager().file(f).unwrap().slots[0] {
            Slot::Chunk(c) => c,
            _ => unreachable!(),
        };
        // Primary dies; the next write lands only on the survivor and the
        // dead copy is dropped from the home list (it is stale now).
        store.set_benefactor_alive(BenefactorId(0), false);
        let page_b = vec![0xBu8; 4096];
        t = store.write_pages(t, client, f, 0, &[(0, &page_b)]).unwrap();
        assert_eq!(
            store.manager().chunk_homes(c).unwrap(),
            &[BenefactorId(1)],
            "dead copy dropped"
        );
        // Recovery reconciles: the stale physical copy is deleted, so no
        // read can ever observe the pre-outage bytes.
        store.set_benefactor_alive(BenefactorId(0), true);
        assert!(!store.manager().benefactor(BenefactorId(0)).has_chunk(c));
        let (_, payload) = store.fetch_chunk(t, client, f, 0).unwrap();
        match payload {
            ChunkPayload::Data(data) => assert_eq!(data[0], 0xB),
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn repair_restores_replica_degree() {
        let (store, stats) = store_n(3);
        let client = 4;
        let f = make_file_replicated(&store, client, "/m", 2 * CHUNK, 2);
        let page = vec![5u8; 4096];
        let mut t = VTime::ZERO;
        for idx in 0..2 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        // b1 hosts one copy of both chunks (slot 0 → {b0,b1}, slot 1 →
        // {b1,b2}); killing it degrades both.
        store.set_benefactor_alive(BenefactorId(1), false);
        // Touch the chunks so the dead copies are dropped from metadata.
        for idx in 0..2 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        assert_eq!(store.manager().under_replicated().len(), 2);

        let (t_done, report) = store.repair_under_replicated(t);
        assert_eq!(report.chunks_repaired, 2);
        assert_eq!(report.bytes_copied, 2 * CHUNK);
        assert_eq!(report.chunks_unrepairable, 0);
        assert!(t_done > t, "repair consumes virtual time");
        assert!(store.manager().under_replicated().is_empty());
        assert_eq!(stats.get("store.repairs_bytes"), 2 * CHUNK);
        // Every chunk is back on two live benefactors.
        let mgr = store.manager();
        for idx in 0..2 {
            let c = match mgr.file(f).unwrap().slots[idx] {
                Slot::Chunk(c) => c,
                _ => unreachable!(),
            };
            let homes = mgr.chunk_homes(c).unwrap();
            assert_eq!(homes.len(), 2);
            assert!(homes.iter().all(|&h| mgr.benefactor(h).is_alive()));
        }
    }

    #[test]
    fn fault_plan_crash_is_survived_with_replicas() {
        let (store, stats) = store_n(2);
        let client = 3;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 2);
        let page = vec![3u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        store.attach_faults(
            faults::FaultPlanBuilder::new(42)
                .crash(t + VTime::from_millis(1), 0)
                .build(),
        );
        // Before the scheduled crash: clean read from the primary.
        let (_, p1) = store.fetch_chunk(t, client, f, 0).unwrap();
        assert_eq!(stats.get("store.failovers"), 0);
        // After it: the poll applies the crash and the read fails over.
        let (_, p2) = store
            .fetch_chunk(t + VTime::from_millis(2), client, f, 0)
            .unwrap();
        assert_eq!(p1, p2, "failover returns identical bytes");
        assert_eq!(stats.get("store.benefactor_crashes"), 1);
        assert!(stats.get("store.failovers") > 0);
    }

    #[test]
    fn fetch_retry_waits_out_a_scheduled_recovery() {
        let (store, stats) = store_n(1);
        let client = 2;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 1);
        let page = vec![1u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        store.set_benefactor_alive(BenefactorId(0), false);
        // A recovery lands within the retry window (default 2 × 5 ms).
        store.attach_faults(
            faults::FaultPlanBuilder::new(7)
                .recover(t + VTime::from_millis(8), 0)
                .build(),
        );
        let (_, payload) = store.fetch_chunk(t, client, f, 0).unwrap();
        assert!(matches!(payload, ChunkPayload::Data(_)));
        assert_eq!(stats.get("store.benefactor_recoveries"), 1);
        assert!(stats.get("store.degraded_reads") > 0);
    }

    /// Like `store_n` but with read verification switched on.
    fn store_verify(n: usize) -> (AggregateStore, StatsRegistry) {
        let stats = StatsRegistry::new();
        let net = Network::new(n + 2, NetConfig::default(), &stats);
        let cfg = StoreConfig {
            verify_reads: true,
            ..StoreConfig::default()
        };
        let store = AggregateStore::new(cfg, net, &stats);
        for i in 0..n {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            store.add_benefactor(Benefactor::new(i + 1, ssd, mib(64), CHUNK));
        }
        (store, stats)
    }

    fn chunk_of(store: &AggregateStore, f: FileId, idx: usize) -> ChunkId {
        match store.manager().file(f).unwrap().slots[idx] {
            Slot::Chunk(c) => c,
            _ => panic!("slot {idx} not materialized"),
        }
    }

    #[test]
    fn verified_read_fails_over_on_corrupt_replica_and_repairs() {
        let (store, stats) = store_verify(3);
        let client = 4;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 2);
        let page = vec![7u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        let c = chunk_of(&store, f, 0);
        let primary = store.manager().chunk_homes(c).unwrap()[0];
        store.manager().benefactor_mut(primary).corrupt_chunk(c, 5);
        assert_eq!(store.count_corrupt_copies(), 1);

        // The read detects the rot, fails over to the replica and returns
        // the right bytes — never the corrupt ones.
        let (t2, payload) = store.fetch_chunk(t, client, f, 0).unwrap();
        match payload {
            ChunkPayload::Data(data) => {
                assert_eq!(data[0], 7);
                assert_eq!(data[5], 7, "served bytes are the intact copy's");
            }
            _ => panic!("expected data"),
        }
        assert_eq!(stats.get("store.crc_mismatches"), 1);
        assert_eq!(stats.get("store.degraded_reads"), 1);
        // The bad copy was quarantined: dropped from the home list and
        // reclaimed, leaving the chunk under-replicated for repair.
        let homes = store.manager().chunk_homes(c).unwrap().to_vec();
        assert_eq!(homes.len(), 1);
        assert!(!homes.contains(&primary));
        assert!(!store.manager().benefactor(primary).has_chunk(c));
        assert_eq!(store.manager().under_replicated().len(), 1);
        let (_, report) = store.repair_under_replicated(t2);
        assert_eq!(report.chunks_repaired, 1);
        assert_eq!(store.count_corrupt_copies(), 0);
        assert_eq!(store.manager().chunk_homes(c).unwrap().len(), 2);
    }

    #[test]
    fn corrupt_sole_copy_is_a_deterministic_error_not_wrong_data() {
        let (store, stats) = store_verify(1);
        let client = 2;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 1);
        let page = vec![9u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, client, f, 0, &[(0, &page)])
            .unwrap();
        let c = chunk_of(&store, f, 0);
        store
            .manager()
            .benefactor_mut(BenefactorId(0))
            .corrupt_chunk(c, 100);
        let err = store.fetch_chunk(t, client, f, 0).unwrap_err();
        assert_eq!(
            err,
            StoreError::ChunkCorrupt {
                chunk: c,
                benefactor: BenefactorId(0)
            }
        );
        // The bad copy is read (and counted) exactly once; retries skip it.
        assert_eq!(stats.get("store.crc_mismatches"), 1);
        // The sole copy stays listed: the metadata invariant holds and a
        // later restore-from-elsewhere can still find the slot.
        assert_eq!(store.manager().chunk_homes(c).unwrap(), &[BenefactorId(0)]);
        // Identical on retry: deterministic, never silent.
        let err2 = store.fetch_chunk(t, client, f, 0).unwrap_err();
        assert!(matches!(err2, StoreError::ChunkCorrupt { .. }));
    }

    #[test]
    fn torn_write_is_detected_by_verified_read() {
        let (store, _) = store_verify(1);
        let client = 2;
        let f = make_file_replicated(&store, client, "/m", CHUNK, 1);
        store.attach_faults(
            faults::FaultPlanBuilder::new(11)
                .torn_write(VTime::from_micros(1), 0)
                .build(),
        );
        // The write happens after the tear is armed: only the first half
        // of the chunk lands, but the manager recorded the intended CRC.
        let data = vec![3u8; CHUNK as usize];
        let t = store
            .write_span(VTime::from_micros(2), client, f, 0, &data)
            .unwrap();
        assert_eq!(store.count_corrupt_copies(), 1);
        let err = store.fetch_chunk(t, client, f, 0).unwrap_err();
        assert!(matches!(err, StoreError::ChunkCorrupt { .. }));
    }

    #[test]
    fn scrub_daemon_finds_and_repairs_bit_rot() {
        let (store, stats) = store_verify(3);
        let client = 4;
        let f = make_file_replicated(&store, client, "/m", 4 * CHUNK, 2);
        let page = vec![5u8; 4096];
        let mut t = VTime::ZERO;
        for idx in 0..4 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        // Rot every copy on benefactor 0 (rate 10000 bp = certain).
        store.attach_faults(
            faults::FaultPlanBuilder::new(21)
                .bit_rot(t + VTime::from_micros(1), 0, 10_000)
                .build(),
        );
        store.attach_scrub(
            ScrubConfig {
                interval: VTime::from_millis(1),
                chunks_per_pass: 16,
                ..ScrubConfig::default()
            },
            t + VTime::from_micros(2),
        );
        store.poll_faults(t + VTime::from_millis(1));
        assert!(stats.get("store.crc_mismatches") > 0, "rot detected");
        assert!(stats.get("store.scrub_repairs") > 0, "replicas restored");
        assert_eq!(stats.get("store.scrub_passes"), 1);
        assert_eq!(store.count_corrupt_copies(), 0, "no rot left behind");
        // Every chunk is back at full degree on intact copies.
        let mgr = store.manager();
        for idx in 0..4 {
            let c = match mgr.file(f).unwrap().slots[idx] {
                Slot::Chunk(c) => c,
                _ => unreachable!(),
            };
            assert_eq!(mgr.chunk_homes(c).unwrap().len(), 2);
        }
    }

    #[test]
    fn scrub_quarantines_rotten_benefactor_and_placement_avoids_it() {
        let (store, stats) = store_verify(3);
        let client = 4;
        // Benefactor 0's media corrupts every write it takes.
        store.attach_faults(
            faults::FaultPlanBuilder::new(31)
                .corruption_rate(VTime::from_micros(1), 0, 10_000)
                .build(),
        );
        let f = make_file_replicated(&store, client, "/m", 4 * CHUNK, 2);
        let page = vec![1u8; 4096];
        let mut t = VTime::from_micros(2);
        for idx in 0..4 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        store.attach_scrub(
            ScrubConfig {
                interval: VTime::from_millis(1),
                chunks_per_pass: 16,
                quarantine_rate: 0.5,
                quarantine_min_samples: 2,
            },
            t,
        );
        store.poll_faults(t + VTime::from_millis(1));
        assert!(
            store.manager().benefactor(BenefactorId(0)).is_quarantined(),
            "persistent corrupter crosses the quarantine threshold"
        );
        assert_eq!(stats.get("store.quarantined"), 1);
        assert!(store.manager().benefactor(BenefactorId(0)).is_alive());
        // New placements avoid it.
        let g = make_file_replicated(&store, client, "/n", 2 * CHUNK, 2);
        assert!(
            !store
                .manager()
                .file(g)
                .unwrap()
                .stripe
                .contains(&BenefactorId(0)),
            "quarantined benefactor excluded from new stripes"
        );
    }

    #[test]
    fn integrity_knobs_off_changes_nothing() {
        // Same workload, verification on vs off, no corruption anywhere:
        // identical virtual times, and the knobs-off run registers none
        // of the integrity counters (committed bench expectations must
        // not grow keys).
        let run = |verify: bool| -> (VTime, bool) {
            let stats = StatsRegistry::new();
            let net = Network::new(4, NetConfig::default(), &stats);
            let cfg = StoreConfig {
                verify_reads: verify,
                ..StoreConfig::default()
            };
            let store = AggregateStore::new(cfg, net, &stats);
            for (i, node) in [1usize, 2].iter().enumerate() {
                let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
                store.add_benefactor(Benefactor::new(*node, ssd, mib(64), CHUNK));
            }
            let f = make_file(&store, "/m", 4 * CHUNK);
            let data: Vec<u8> = (0..2 * CHUNK as usize + 777)
                .map(|i| (i % 249) as u8)
                .collect();
            let mut t = store.write_span(VTime::ZERO, 3, f, 100, &data).unwrap();
            let mut buf = vec![0u8; data.len()];
            t = store.read_span(t, 3, f, 100, &mut buf).unwrap();
            assert_eq!(buf, data);
            t = store.write_span(t, 3, f, 0, &data[..4096]).unwrap();
            let has_keys = stats.snapshot().values.contains_key("store.crc_mismatches");
            (t, has_keys)
        };
        let (t_off, keys_off) = run(false);
        let (t_on, keys_on) = run(true);
        assert_eq!(t_off, t_on, "verification is timing-neutral when clean");
        assert!(!keys_off, "knobs off: no integrity counters registered");
        assert!(keys_on, "verify on: integrity counters present");
    }

    // ----- sharded placement manager (DESIGN.md §12) ------------------------

    /// `n` benefactors on nodes `1..=n` with `shards` placement-shard
    /// ranks round-robin on those same nodes; client drives from `n+1`.
    fn store_sharded(n: usize, shards: usize) -> (AggregateStore, StatsRegistry) {
        let (store, stats) = store_n(n);
        let nodes: Vec<usize> = (0..shards).map(|k| (k % n) + 1).collect();
        store.install_shards(&nodes, 77);
        (store, stats)
    }

    #[test]
    fn per_op_rpc_counters_split_the_aggregate() {
        let (store, stats) = store();
        let f = make_file(&store, "/m", 2 * CHUNK); // create + fallocate
        let page = vec![8u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let (t, _) = store.fetch_chunk(t, 3, f, 0).unwrap();
        let (_, found) = store.open(t, 3, "/m").unwrap();
        assert_eq!(found, Some(f));
        assert_eq!(stats.get("store.mgr_rpc_place"), 3);
        assert_eq!(stats.get("store.mgr_rpc_write"), 1);
        assert_eq!(stats.get("store.mgr_rpc_fetch"), 1);
        assert_eq!(
            stats.get("store.mgr_rpc_fetch")
                + stats.get("store.mgr_rpc_write")
                + stats.get("store.mgr_rpc_place"),
            stats.get("store.mgr_rpcs"),
            "the per-op split always totals the aggregate"
        );
    }

    /// ISSUE 6 acceptance: with one shard co-located with the serial
    /// manager's node, a mixed workload (batched writes, batched + serial
    /// fetches through a `LocationCache`, namespace ops) is bit-identical
    /// to the serial manager — same per-op virtual times, same shared
    /// counters — and the lease counters only exist in shard mode.
    #[test]
    fn single_shard_matches_serial_manager_exactly() {
        const SHARED: &[&str] = &[
            "store.mgr_rpcs",
            "store.mgr_rpc_fetch",
            "store.mgr_rpc_write",
            "store.mgr_rpc_place",
            "store.loc_cache_hits",
            "store.loc_cache_misses",
            "store.loc_cache_invalidations",
            "store.chunk_fetches",
            "store.batched_fetches",
            "store.batched_writes",
            "store.zero_fills",
            "net.bytes",
            "net.messages",
        ];
        let run = |sharded: bool| -> (Vec<VTime>, Vec<u64>, bool) {
            let stats = StatsRegistry::new();
            let net = Network::new(4, NetConfig::default(), &stats);
            let store = AggregateStore::new(StoreConfig::default(), net, &stats);
            for (i, node) in [1usize, 2].iter().enumerate() {
                let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
                store.add_benefactor(Benefactor::new(*node, ssd, mib(64), CHUNK));
            }
            if sharded {
                store.install_shards(&[0], 77);
            }
            let cache = LocationCache::new(&stats);
            let (t, f) = store.create_file(VTime::ZERO, 3, "/m").unwrap();
            let t = store
                .fallocate(
                    t,
                    3,
                    f,
                    4 * CHUNK,
                    StripeSpec::all(),
                    PlacementPolicy::RoundRobin,
                )
                .unwrap();
            let page = vec![5u8; 4096];
            let upd = [(0u64, page.as_slice())];
            let batch = [
                BatchWrite {
                    file: f,
                    idx: 0,
                    updates: &upd,
                },
                BatchWrite {
                    file: f,
                    idx: 1,
                    updates: &upd,
                },
                BatchWrite {
                    file: f,
                    idx: 2,
                    updates: &upd,
                },
            ];
            let mut times = Vec::new();
            let ends = store.write_pages_batch(t, 3, &batch).unwrap();
            let mut t = ends.iter().copied().max().unwrap();
            times.extend(ends);
            // Cold cache: one resolution RPC, then benefactor chains.
            let r = store
                .fetch_chunks(t, 3, &[(f, 0), (f, 1), (f, 2), (f, 3)], Some(&cache))
                .unwrap();
            t = r.iter().map(|&(e, _)| e).max().unwrap();
            times.extend(r.iter().map(|&(e, _)| e));
            // Warm cache (and, in shard mode, a held lease): no RPC.
            let rpcs_before = stats.get("store.mgr_rpcs");
            let r = store
                .fetch_chunks(t, 3, &[(f, 0), (f, 2)], Some(&cache))
                .unwrap();
            assert_eq!(
                stats.get("store.mgr_rpcs"),
                rpcs_before,
                "hot path skips the manager"
            );
            t = r.iter().map(|&(e, _)| e).max().unwrap();
            times.extend(r.iter().map(|&(e, _)| e));
            // Serial data + control plane for good measure.
            let (t2, _) = store.fetch_chunk(t, 3, f, 1).unwrap();
            let t3 = store.write_pages(t2, 3, f, 3, &[(0, &page)]).unwrap();
            let (t4, found) = store.open(t3, 3, "/m").unwrap();
            assert!(found.is_some());
            times.extend([t2, t3, t4]);
            let snap = stats.snapshot().values;
            let shared: Vec<u64> = SHARED
                .iter()
                .map(|k| snap.get(*k).copied().unwrap_or(0))
                .collect();
            (times, shared, snap.contains_key("store.lease_grants"))
        };
        let (t_serial, c_serial, keys_serial) = run(false);
        let (t_sharded, c_sharded, keys_sharded) = run(true);
        assert_eq!(t_serial, t_sharded, "shards=1 is bit-identical");
        assert_eq!(c_serial, c_sharded, "shared counters agree");
        assert!(!keys_serial, "serial run registers no lease counters");
        assert!(keys_sharded, "shard run exposes the lease counters");
    }

    #[test]
    fn shard_rpcs_route_by_slot_owner_and_count_per_shard() {
        let (store, stats) = store_sharded(2, 2);
        let client = 3;
        let (t, f) = store.create_file(VTime::ZERO, client, "/m").unwrap();
        let mut t = store
            .fallocate(
                t,
                client,
                f,
                8 * CHUNK,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        // Namespace ops went to the root shard.
        assert_eq!(stats.get("store.shard_rpcs.s0"), 2);
        assert_eq!(stats.get("store.mgr_rpc_place"), 2);
        let before = [
            stats.get("store.shard_rpcs.s0"),
            stats.get("store.shard_rpcs.s1"),
        ];
        let mut expect = [0u64, 0u64];
        let page = vec![9u8; 4096];
        for idx in 0..8 {
            expect[store.shard_of_slot(f, idx).unwrap()] += 2; // write + fetch
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
            let (t2, _) = store.fetch_chunk(t, client, f, idx).unwrap();
            t = t2;
        }
        assert!(
            expect[0] > 0 && expect[1] > 0,
            "both shards own some of the keyspace"
        );
        assert_eq!(stats.get("store.shard_rpcs.s0") - before[0], expect[0]);
        assert_eq!(stats.get("store.shard_rpcs.s1") - before[1], expect[1]);
        assert_eq!(stats.get("store.mgr_rpc_fetch"), 8);
        assert_eq!(stats.get("store.mgr_rpc_write"), 8);
        assert_eq!(stats.get("store.mgr_rpcs"), 2 + 16);
    }

    #[test]
    fn shard_crash_quarantines_only_its_keyspace() {
        let (store, stats) = store_sharded(2, 2);
        let client = 3;
        let (t, f) = store.create_file(VTime::ZERO, client, "/m").unwrap();
        let mut t = store
            .fallocate(
                t,
                client,
                f,
                16 * CHUNK,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![2u8; 4096];
        for idx in 0..16 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        let owned_by = |s: usize| {
            (0..16)
                .find(|&i| store.shard_of_slot(f, i) == Some(s))
                .expect("shard owns a slot")
        };
        let dead_slot = owned_by(1);
        let live_slot = owned_by(0);
        store.set_shard_alive(1, false);
        // The dead shard's keyspace errors once the retry window runs out…
        let err = store.fetch_chunk(t, client, f, dead_slot).unwrap_err();
        assert_eq!(err, StoreError::ShardDown(1));
        let err = store
            .write_pages(t, client, f, dead_slot, &[(0, &page)])
            .unwrap_err();
        assert_eq!(err, StoreError::ShardDown(1));
        // …while the other shard and the namespace keep serving.
        let (t2, _) = store.fetch_chunk(t, client, f, live_slot).unwrap();
        let (t3, found) = store.open(t2, client, "/m").unwrap();
        assert_eq!(found, Some(f));
        // The crash alone revokes nothing: delegations ride through.
        assert_eq!(stats.get("store.lease_revokes"), 0);
        // Recovery restores service and revokes the shard's delegations.
        store.set_shard_alive(1, true);
        assert!(stats.get("store.lease_revokes") > 0);
        store.fetch_chunk(t3, client, f, dead_slot).unwrap();
    }

    #[test]
    fn leased_clients_ride_through_a_shard_crash() {
        let (store, stats) = store_sharded(2, 2);
        let client = 3;
        let (t, f) = store.create_file(VTime::ZERO, client, "/m").unwrap();
        let t = store
            .fallocate(
                t,
                client,
                f,
                8 * CHUNK,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let cache = LocationCache::new(&stats);
        let page = vec![4u8; 4096];
        let upd = [(0u64, page.as_slice())];
        let batch: Vec<BatchWrite> = (0..8)
            .map(|idx| BatchWrite {
                file: f,
                idx,
                updates: &upd,
            })
            .collect();
        let ends = store.write_pages_batch(t, client, &batch).unwrap();
        let t = ends.iter().copied().max().unwrap();
        let targets: Vec<(FileId, usize)> = (0..8).map(|i| (f, i)).collect();
        let r = store
            .fetch_chunks(t, client, &targets, Some(&cache))
            .unwrap();
        let t = r.iter().map(|&(e, _)| e).max().unwrap();
        // Both shards have delegated to this client.
        assert_eq!(store.shard_leases(0), 1);
        assert_eq!(store.shard_leases(1), 1);
        // Kill a shard. The leased client keeps resolving placement
        // locally: the same batch re-fetches without a single manager
        // round-trip, dead shard or not.
        store.set_shard_alive(1, false);
        let rpcs = stats.get("store.mgr_rpcs");
        let hits = stats.get("store.loc_cache_hits");
        let r = store
            .fetch_chunks(t, client, &targets, Some(&cache))
            .unwrap();
        let t = r.iter().map(|&(e, _)| e).max().unwrap();
        assert_eq!(
            stats.get("store.mgr_rpcs"),
            rpcs,
            "no RPC on the leased hot path"
        );
        assert_eq!(stats.get("store.loc_cache_hits"), hits + 8);
        // Recovery revokes: the epoch bump drops the cache, and the
        // re-resolution goes back to the (now live) shards.
        store.set_shard_alive(1, true);
        assert!(stats.get("store.lease_revokes") > 0);
        let inv = stats.get("store.loc_cache_invalidations");
        let r = store
            .fetch_chunks(t, client, &targets, Some(&cache))
            .unwrap();
        assert!(r.iter().all(|(_, p)| matches!(p, ChunkPayload::Data(_))));
        assert_eq!(stats.get("store.loc_cache_invalidations"), inv + 1);
        assert!(
            stats.get("store.mgr_rpcs") > rpcs,
            "revocation forces re-resolution"
        );
    }

    #[test]
    fn shard_down_retry_waits_out_a_scheduled_recovery() {
        let (store, stats) = store_sharded(2, 2);
        let client = 3;
        let (t, f) = store.create_file(VTime::ZERO, client, "/m").unwrap();
        let mut t = store
            .fallocate(
                t,
                client,
                f,
                8 * CHUNK,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![6u8; 4096];
        for idx in 0..8 {
            t = store.write_pages(t, client, f, idx, &[(0, &page)]).unwrap();
        }
        let slot = (0..8)
            .find(|&i| store.shard_of_slot(f, i) == Some(1))
            .expect("shard 1 owns a slot");
        store.set_shard_alive(1, false);
        store.attach_faults(
            faults::FaultPlanBuilder::new(7)
                .shard_recover(t + store.config().retry_backoff, 1)
                .build(),
        );
        let (t2, payload) = store.fetch_chunk(t, client, f, slot).unwrap();
        assert!(matches!(payload, ChunkPayload::Data(_)));
        assert!(
            t2 >= t + store.config().retry_backoff,
            "the read waited out the outage"
        );
        assert!(store.shard_alive(1));
        assert_eq!(
            stats.get("store.lease_revokes"),
            1,
            "recovery revoked the stale delegation"
        );
    }

    #[test]
    fn wear_reports_cover_benefactors() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let wear = store.wear_reports();
        assert_eq!(wear.len(), 2);
        let total: u64 = wear.iter().map(|(_, w)| w.bytes_written).sum();
        assert_eq!(total, 4096);
    }
}

//! The timed facade over the manager + benefactor fleet: every operation
//! takes the client's node and current virtual time, charges manager-RPC,
//! network and SSD costs, and returns the completion time.
//!
//! This is the interface the FUSE-like client layer (`fusemm`) talks to —
//! the simulated equivalent of the RPC protocol between a compute node and
//! the aggregate store.

use crate::benefactor::Benefactor;
use crate::error::{Result, StoreError};
use crate::ids::{BenefactorId, FileId};
use crate::manager::{Manager, PlacementPolicy, Slot, StripeSpec};
use devices::WearReport;
use netsim::Network;
use parking_lot::{Mutex, MutexGuard};
use simcore::{Counter, StatsRegistry, VTime};
use std::sync::Arc;

/// Aggregate store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Striping unit; the paper uses 256 KiB.
    pub chunk_size: u64,
    /// Dirty-tracking granularity; the paper uses the 4 KiB OS page.
    pub page_size: u64,
    /// Cluster node hosting the manager process.
    pub manager_node: usize,
    /// Size of a manager-RPC request/response message.
    pub rpc_bytes: u64,
    /// Manager CPU time per metadata operation.
    pub mgr_cpu: VTime,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_size: 256 * 1024,
            page_size: 4096,
            manager_node: 0,
            rpc_bytes: 256,
            mgr_cpu: VTime::from_micros(10),
        }
    }
}

/// What a chunk fetch returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPayload {
    /// The chunk was never written: the client materializes zeros locally
    /// (a file-hole read — no data crosses the network).
    Zeros,
    /// Chunk bytes shipped from its benefactor.
    Data(Box<[u8]>),
}

/// The aggregate NVM store, shared by every client on the cluster.
#[derive(Clone)]
pub struct AggregateStore {
    mgr: Arc<Mutex<Manager>>,
    net: Network,
    cfg: StoreConfig,
    mgr_rpcs: Counter,
    chunk_fetches: Counter,
    zero_fills: Counter,
    bytes_to_clients: Counter,
    bytes_from_clients: Counter,
    cow_clones: Counter,
}

impl AggregateStore {
    pub fn new(cfg: StoreConfig, net: Network, stats: &StatsRegistry) -> Self {
        AggregateStore {
            mgr: Arc::new(Mutex::new(Manager::new(cfg.chunk_size))),
            net,
            cfg,
            mgr_rpcs: stats.counter("store.mgr_rpcs"),
            chunk_fetches: stats.counter("store.chunk_fetches"),
            zero_fills: stats.counter("store.zero_fills"),
            bytes_to_clients: stats.counter("store.bytes_to_clients"),
            bytes_from_clients: stats.counter("store.bytes_from_clients"),
            cow_clones: stats.counter("store.cow_clones"),
        }
    }

    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Direct manager access for registration, administration and tests.
    pub fn manager(&self) -> MutexGuard<'_, Manager> {
        self.mgr.lock()
    }

    /// Register a benefactor contributing `capacity` bytes of `node`'s SSD.
    pub fn add_benefactor(&self, b: Benefactor) -> BenefactorId {
        self.mgr.lock().register_benefactor(b)
    }

    /// Charge one metadata round-trip to the manager.
    fn mgr_rpc(&self, t: VTime, client_node: usize) -> VTime {
        self.mgr_rpcs.inc();
        let req = self
            .net
            .transfer_at(t, client_node, self.cfg.manager_node, self.cfg.rpc_bytes);
        let done = req.arrived + self.cfg.mgr_cpu;
        let resp =
            self.net
                .transfer_at(done, self.cfg.manager_node, client_node, self.cfg.rpc_bytes);
        resp.arrived
    }

    // ----- control plane ---------------------------------------------------

    pub fn create_file(&self, t: VTime, client_node: usize, name: &str) -> Result<(VTime, FileId)> {
        let t = self.mgr_rpc(t, client_node);
        let id = self.mgr.lock().create_file(name)?;
        Ok((t, id))
    }

    pub fn fallocate(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        size: u64,
        spec: StripeSpec,
        placement: PlacementPolicy,
    ) -> Result<VTime> {
        let t = self.mgr_rpc(t, client_node);
        self.mgr.lock().fallocate(file, size, spec, placement)?;
        Ok(t)
    }

    pub fn open(&self, t: VTime, client_node: usize, name: &str) -> (VTime, Option<FileId>) {
        let t = self.mgr_rpc(t, client_node);
        (t, self.mgr.lock().lookup(name))
    }

    pub fn delete(&self, t: VTime, client_node: usize, file: FileId) -> Result<VTime> {
        let t = self.mgr_rpc(t, client_node);
        self.mgr.lock().delete_file(file)?;
        Ok(t)
    }

    /// Zero-copy checkpoint linking: append `src`'s chunks to `dst`.
    pub fn link_file(&self, t: VTime, client_node: usize, dst: FileId, src: FileId) -> Result<VTime> {
        let t = self.mgr_rpc(t, client_node);
        self.mgr.lock().link_file(dst, src)?;
        Ok(t)
    }

    /// Untimed metadata peek (clients cache sizes at open/malloc time).
    pub fn file_size(&self, file: FileId) -> Result<u64> {
        Ok(self.mgr.lock().file(file)?.size)
    }

    pub fn chunk_count(&self, file: FileId) -> Result<usize> {
        Ok(self.mgr.lock().file(file)?.slots.len())
    }

    // ----- data plane ------------------------------------------------------

    /// Fetch chunk `idx` of `file` to `client_node`.
    ///
    /// Cost model (paper §III-D): a manager RPC resolves the chunk to a
    /// benefactor, then the client pulls the chunk directly from that
    /// benefactor — request message, SSD read, data transfer back.
    pub fn fetch_chunk(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
    ) -> Result<(VTime, ChunkPayload)> {
        let t = self.mgr_rpc(t, client_node);
        self.chunk_fetches.inc();
        let (slot, home_node, home) = {
            let mgr = self.mgr.lock();
            let meta = mgr.file(file)?;
            if idx >= meta.slots.len() {
                return Err(StoreError::OutOfBounds {
                    file,
                    offset: idx as u64 * self.cfg.chunk_size,
                    len: self.cfg.chunk_size,
                    size: meta.size,
                });
            }
            match meta.slots[idx] {
                Slot::Unmaterialized | Slot::Hole => (None, 0, BenefactorId(0)),
                Slot::Chunk(c) => {
                    let home = mgr.chunk_home(c).expect("chunk without home");
                    if !mgr.benefactor(home).is_alive() {
                        return Err(StoreError::BenefactorDown(home));
                    }
                    (Some(c), mgr.benefactor(home).node, home)
                }
            }
        };

        match slot {
            None => {
                // Hole: the manager's reply says "no data"; zeros are
                // materialized client-side for free.
                self.zero_fills.inc();
                Ok((t, ChunkPayload::Zeros))
            }
            Some(c) => {
                // Request message to the benefactor…
                let req = self
                    .net
                    .transfer_at(t, client_node, home_node, self.cfg.rpc_bytes);
                // …SSD read at the benefactor…
                let (grant, data) = {
                    let mgr = self.mgr.lock();
                    mgr.benefactor(home).read_chunk(req.arrived, c)
                };
                // …chunk shipped back.
                let resp = self
                    .net
                    .transfer_at(grant.end, home_node, client_node, self.cfg.chunk_size);
                self.bytes_to_clients.add(self.cfg.chunk_size);
                Ok((resp.arrived, ChunkPayload::Data(data)))
            }
        }
    }

    /// Write back dirty pages of chunk `idx` (the FUSE eviction path).
    ///
    /// `updates` are `(offset_within_chunk, bytes)` runs. Handles all
    /// three slot states:
    ///
    /// * unmaterialized → materialize a fresh chunk (zeros + updates);
    /// * exclusive chunk → in-place page update;
    /// * shared chunk (checkpoint-linked) → copy-on-write: the benefactor
    ///   clones the chunk locally, the updates land on the clone, and the
    ///   file's slot is switched while the checkpoint keeps the original.
    pub fn write_pages(
        &self,
        t: VTime,
        client_node: usize,
        file: FileId,
        idx: usize,
        updates: &[(u64, &[u8])],
    ) -> Result<VTime> {
        let dirty_bytes: u64 = updates.iter().map(|(_, d)| d.len() as u64).sum();
        assert!(dirty_bytes > 0, "write_pages with no updates");
        for (off, data) in updates {
            assert!(
                off + data.len() as u64 <= self.cfg.chunk_size,
                "update outside chunk"
            );
        }

        let t = self.mgr_rpc(t, client_node);
        let mut mgr = self.mgr.lock();
        let meta = mgr.file(file)?;
        if idx >= meta.slots.len() {
            return Err(StoreError::OutOfBounds {
                file,
                offset: idx as u64 * self.cfg.chunk_size,
                len: self.cfg.chunk_size,
                size: meta.size,
            });
        }
        let slot = meta.slots[idx];
        // Holes (zero regions inside linked checkpoint files) carry no
        // reservation and may sit in a file with no stripe of its own;
        // writing one allocates fresh space wherever it fits.
        let home = match slot {
            Slot::Hole => {
                let alive = mgr.alive_benefactors();
                alive
                    .into_iter()
                    .find(|b| mgr.benefactor(*b).can_allocate_chunk(false))
                    .ok_or(StoreError::OutOfSpace {
                        requested: self.cfg.chunk_size,
                        available: 0,
                    })?
            }
            // A materialized chunk's authoritative home is the chunk map
            // (a linked slot's position in *this* file says nothing about
            // where the shared chunk actually lives).
            Slot::Chunk(c) => mgr.chunk_home(c).expect("chunk has a home"),
            Slot::Unmaterialized => meta.home_of_slot(idx),
        };
        let home_node = mgr.benefactor(home).node;
        if !mgr.benefactor(home).is_alive() {
            return Err(StoreError::BenefactorDown(home));
        }

        // Ship the dirty bytes to the benefactor.
        let xfer = self.net.transfer_at(t, client_node, home_node, dirty_bytes);
        self.bytes_from_clients.add(dirty_bytes);
        let t_arrive = xfer.arrived;

        let end = match slot {
            Slot::Unmaterialized => {
                // First write: compose zeros + updates, consume reservation.
                let mut data = vec![0u8; self.cfg.chunk_size as usize].into_boxed_slice();
                for (off, d) in updates {
                    data[*off as usize..*off as usize + d.len()].copy_from_slice(d);
                }
                let c = mgr.new_chunk_id(home);
                let g = mgr
                    .benefactor_mut(home)
                    .store_chunk(t_arrive, c, data, dirty_bytes, true);
                mgr.set_slot(file, idx, Slot::Chunk(c));
                g.end
            }
            Slot::Hole => {
                // Materialize the zero region as a fresh chunk (no
                // reservation to consume — space was checked above).
                let mut data = vec![0u8; self.cfg.chunk_size as usize].into_boxed_slice();
                for (off, d) in updates {
                    data[*off as usize..*off as usize + d.len()].copy_from_slice(d);
                }
                let c = mgr.new_chunk_id(home);
                let g = mgr
                    .benefactor_mut(home)
                    .store_chunk(t_arrive, c, data, dirty_bytes, false);
                mgr.set_slot(file, idx, Slot::Chunk(c));
                g.end
            }
            Slot::Chunk(c) => {
                if mgr.chunk_refcount(c) > 1 {
                    // COW: clone on the same benefactor, then update.
                    if !mgr.benefactor(home).can_allocate_chunk(false) {
                        return Err(StoreError::OutOfSpace {
                            requested: self.cfg.chunk_size,
                            available: mgr.benefactor(home).free(),
                        });
                    }
                    self.cow_clones.inc();
                    let c_new = mgr.new_chunk_id(home);
                    let g = mgr.benefactor_mut(home).clone_chunk(t_arrive, c, c_new);
                    let g2 = mgr.benefactor_mut(home).update_chunk(g.end, c_new, updates);
                    mgr.set_slot(file, idx, Slot::Chunk(c_new));
                    mgr.decref_chunk(c);
                    g2.end
                } else {
                    mgr.benefactor_mut(home).update_chunk(t_arrive, c, updates).end
                }
            }
        };
        Ok(end)
    }

    /// Bulk sequential write (checkpoint DRAM dumps, workload loads):
    /// splits `data` into per-chunk updates.
    pub fn write_span(
        &self,
        mut t: VTime,
        client_node: usize,
        file: FileId,
        offset: u64,
        data: &[u8],
    ) -> Result<VTime> {
        let size = self.file_size(file)?;
        if offset + data.len() as u64 > size {
            return Err(StoreError::OutOfBounds {
                file,
                offset,
                len: data.len() as u64,
                size,
            });
        }
        let cs = self.cfg.chunk_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let idx = (abs / cs) as usize;
            let within = abs % cs;
            let take = ((cs - within) as usize).min(data.len() - pos);
            t = self.write_pages(
                t,
                client_node,
                file,
                idx,
                &[(within, &data[pos..pos + take])],
            )?;
            pos += take;
        }
        Ok(t)
    }

    /// Bulk sequential read into `buf` (restart path).
    pub fn read_span(
        &self,
        mut t: VTime,
        client_node: usize,
        file: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<VTime> {
        let size = self.file_size(file)?;
        if offset + buf.len() as u64 > size {
            return Err(StoreError::OutOfBounds {
                file,
                offset,
                len: buf.len() as u64,
                size,
            });
        }
        let cs = self.cfg.chunk_size;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let idx = (abs / cs) as usize;
            let within = (abs % cs) as usize;
            let take = (cs as usize - within).min(buf.len() - pos);
            let (t2, payload) = self.fetch_chunk(t, client_node, file, idx)?;
            t = t2;
            match payload {
                ChunkPayload::Zeros => buf[pos..pos + take].fill(0),
                ChunkPayload::Data(chunk) => {
                    buf[pos..pos + take].copy_from_slice(&chunk[within..within + take])
                }
            }
            pos += take;
        }
        Ok(t)
    }

    // ----- administration ---------------------------------------------------

    /// Simulate a benefactor failure (or decommission).
    pub fn set_benefactor_alive(&self, id: BenefactorId, alive: bool) {
        self.mgr.lock().benefactor_mut(id).set_alive(alive);
    }

    /// Per-benefactor SSD wear, for the lifetime-optimization analyses.
    pub fn wear_reports(&self) -> Vec<(usize, WearReport)> {
        let mgr = self.mgr.lock();
        (0..mgr.benefactor_count())
            .map(|i| {
                let b = mgr.benefactor(BenefactorId(i));
                (b.node, b.ssd().wear())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::{Ssd, INTEL_X25E};
    use netsim::NetConfig;
    use simcore::time::bytes::mib;

    const CHUNK: u64 = 256 * 1024;

    /// A 4-node store: manager on node 0, benefactors on nodes 1 and 2,
    /// client drives from node 3.
    fn store() -> (AggregateStore, StatsRegistry) {
        let stats = StatsRegistry::new();
        let net = Network::new(4, NetConfig::default(), &stats);
        let store = AggregateStore::new(StoreConfig::default(), net, &stats);
        for (i, node) in [1usize, 2].iter().enumerate() {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            store.add_benefactor(Benefactor::new(*node, ssd, mib(64), CHUNK));
        }
        (store, stats)
    }

    fn make_file(store: &AggregateStore, name: &str, size: u64) -> FileId {
        let (t, f) = store.create_file(VTime::ZERO, 3, name).unwrap();
        store
            .fallocate(t, 3, f, size, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap();
        f
    }

    #[test]
    fn hole_read_is_zeros_without_data_traffic() {
        let (store, stats) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let before = stats.get("net.bytes");
        let (_, payload) = store.fetch_chunk(VTime::ZERO, 3, f, 0).unwrap();
        assert_eq!(payload, ChunkPayload::Zeros);
        // Only RPC bytes moved (2 × 256).
        assert_eq!(stats.get("net.bytes") - before, 512);
        assert_eq!(stats.get("store.zero_fills"), 1);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let page = vec![7u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(8192, &page)])
            .unwrap();
        let (_, payload) = store.fetch_chunk(t, 3, f, 0).unwrap();
        match payload {
            ChunkPayload::Data(data) => {
                assert_eq!(data[8192], 7);
                assert_eq!(data[8192 + 4095], 7);
                assert_eq!(data[0], 0);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn remote_fetch_costs_network_plus_ssd() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        let t0 = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let (t1, _) = store.fetch_chunk(t0, 3, f, 0).unwrap();
        let elapsed = t1 - t0;
        // Lower bound: SSD latency + chunk/ssd_read_bw + chunk/net_bw.
        let ssd = VTime::from_micros(75) + simcore::Bandwidth::mb_per_sec(250.0).time_for(CHUNK);
        let net = simcore::Bandwidth::gbit_per_sec(2.0).time_for(CHUNK);
        assert!(elapsed >= ssd + net, "elapsed {elapsed}");
        // And not wildly more (RPCs and latencies only).
        assert!(elapsed < ssd + net + VTime::from_millis(2), "elapsed {elapsed}");
    }

    #[test]
    fn write_span_and_read_span_roundtrip() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 3 * CHUNK);
        // Unaligned span crossing chunk boundaries.
        let data: Vec<u8> = (0..(CHUNK as usize + 9000)).map(|i| (i % 251) as u8).collect();
        let t = store.write_span(VTime::ZERO, 3, f, 5000, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        store.read_span(t, 3, f, 5000, &mut out).unwrap();
        assert_eq!(out, data);
        // Outside the written span everything is still zero.
        let mut head = vec![0xAAu8; 5000];
        store.read_span(t, 3, f, 0, &mut head).unwrap();
        assert!(head.iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let err = store.fetch_chunk(VTime::ZERO, 3, f, 1).unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { .. }));
        let err = store
            .write_span(VTime::ZERO, 3, f, CHUNK - 1, &[0, 0])
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfBounds { .. }));
    }

    #[test]
    fn cow_preserves_checkpoint_content() {
        let (store, stats) = store();
        let f = make_file(&store, "/var", CHUNK);
        let page_a = vec![0xAu8; 4096];
        let mut t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page_a)])
            .unwrap();

        // Checkpoint: link the variable's chunks into /ckpt.
        let (t2, ckpt) = store.create_file(t, 3, "/ckpt").unwrap();
        t = store.link_file(t2, 3, ckpt, f).unwrap();

        // Modify the variable after the checkpoint.
        let page_b = vec![0xBu8; 4096];
        t = store.write_pages(t, 3, f, 0, &[(0, &page_b)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);

        // Variable sees new data; checkpoint still has the old bytes.
        let (_, var_data) = store.fetch_chunk(t, 3, f, 0).unwrap();
        let (_, ckpt_data) = store.fetch_chunk(t, 3, ckpt, 0).unwrap();
        match (var_data, ckpt_data) {
            (ChunkPayload::Data(v), ChunkPayload::Data(c)) => {
                assert_eq!(v[0], 0xB);
                assert_eq!(c[0], 0xA);
            }
            _ => panic!("expected data"),
        }
    }

    #[test]
    fn second_write_after_cow_is_in_place() {
        let (store, stats) = store();
        let f = make_file(&store, "/var", CHUNK);
        let page = vec![1u8; 4096];
        let mut t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let (t2, ckpt) = store.create_file(t, 3, "/ckpt").unwrap();
        t = store.link_file(t2, 3, ckpt, f).unwrap();
        t = store.write_pages(t, 3, f, 0, &[(0, &page)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);
        // Refcount is back to 1: next write must not clone again.
        store.write_pages(t, 3, f, 0, &[(4096, &page)]).unwrap();
        assert_eq!(stats.get("store.cow_clones"), 1);
    }

    #[test]
    fn dead_benefactor_fails_fetch() {
        let (store, _) = store();
        let f = make_file(&store, "/m", 2 * CHUNK);
        let page = vec![1u8; 4096];
        let t = store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        store.set_benefactor_alive(BenefactorId(0), false);
        let err = store.fetch_chunk(t, 3, f, 0).unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(0)));
    }

    #[test]
    fn dirty_page_traffic_is_page_sized_not_chunk_sized() {
        let (store, stats) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        assert_eq!(stats.get("store.bytes_from_clients"), 4096);
    }

    #[test]
    fn wear_reports_cover_benefactors() {
        let (store, _) = store();
        let f = make_file(&store, "/m", CHUNK);
        let page = vec![1u8; 4096];
        store
            .write_pages(VTime::ZERO, 3, f, 0, &[(0, &page)])
            .unwrap();
        let wear = store.wear_reports();
        assert_eq!(wear.len(), 2);
        let total: u64 = wear.iter().map(|(_, w)| w.bytes_written).sum();
        assert_eq!(total, 4096);
    }
}

//! The store manager: metadata, space allocation, striping, chunk→
//! benefactor mapping, benefactor health, and the chunk-linking machinery
//! behind `ssdcheckpoint()`.
//!
//! The manager is a pure metadata service — it moves no data. All methods
//! here are untimed; [`crate::store::AggregateStore`] charges manager-RPC
//! and data-path costs around them.

use crate::benefactor::Benefactor;
use crate::error::{Result, StoreError};
use crate::ids::{BenefactorId, ChunkId, FileId};
use std::collections::HashMap;

/// How a file's benefactor list is chosen at `fallocate` time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StripeSpec {
    /// Use every alive benefactor.
    All,
    /// Pick `n` alive benefactors round-robin from the manager's rotating
    /// cursor (spreads files across the store).
    Count(usize),
    /// Use exactly these benefactors (the evaluation's `z` configurations
    /// pin specific nodes).
    Explicit(Vec<BenefactorId>),
}

/// Chunk placement within a file's benefactor list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// chunk `i` lives on `stripe[i % stripe.len()]` (the paper's layout).
    RoundRobin,
    /// chunk `i` lives on `stripe[perm[i % stripe.len()]]` with a seeded
    /// per-file permutation — the ablation alternative.
    RandomPermutation { seed: u64 },
}

/// One slot of a file's chunk list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Reserved by fallocate, never written: reads as zeros; owns one
    /// reserved chunk slot on its benefactor.
    Unmaterialized,
    /// Frozen zero region inside a linked checkpoint file (no space).
    Hole,
    /// A materialized chunk.
    Chunk(ChunkId),
}

/// Per-file metadata.
#[derive(Clone, Debug)]
pub struct FileMeta {
    pub name: String,
    pub size: u64,
    /// Benefactor list the file stripes over (empty until fallocate).
    pub stripe: Vec<BenefactorId>,
    pub slots: Vec<Slot>,
    pub placement: PlacementPolicy,
    /// Optional expiry: §III-C's "associating a lifetime with these
    /// memory-mapped variables, so that they are persistent beyond the
    /// application run" — and reclaimed once the workflow is done.
    pub expires_at: Option<simcore::VTime>,
}

impl FileMeta {
    /// The benefactor that owns slot `idx`.
    pub fn home_of_slot(&self, idx: usize) -> BenefactorId {
        assert!(!self.stripe.is_empty(), "file not fallocated");
        match self.placement {
            PlacementPolicy::RoundRobin => self.stripe[idx % self.stripe.len()],
            PlacementPolicy::RandomPermutation { seed } => {
                // Deterministic per-(file,index) pick via SplitMix.
                let h = simcore::rng::child_seed(seed, idx as u64);
                self.stripe[(h % self.stripe.len() as u64) as usize]
            }
        }
    }
}

/// The manager's whole state, including the benefactor fleet.
#[derive(Debug)]
pub struct Manager {
    chunk_size: u64,
    benefactors: Vec<Benefactor>,
    files: HashMap<FileId, FileMeta>,
    by_name: HashMap<String, FileId>,
    chunk_refs: HashMap<ChunkId, u32>,
    chunk_home: HashMap<ChunkId, BenefactorId>,
    next_file: u64,
    next_chunk: u64,
    stripe_cursor: usize,
}

impl Manager {
    pub fn new(chunk_size: u64) -> Self {
        assert!(chunk_size > 0 && chunk_size.is_power_of_two());
        Manager {
            chunk_size,
            benefactors: Vec::new(),
            files: HashMap::new(),
            by_name: HashMap::new(),
            chunk_refs: HashMap::new(),
            chunk_home: HashMap::new(),
            next_file: 0,
            next_chunk: 0,
            stripe_cursor: 0,
        }
    }

    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    // ----- benefactor fleet -------------------------------------------------

    pub fn register_benefactor(&mut self, b: Benefactor) -> BenefactorId {
        let id = BenefactorId(self.benefactors.len());
        self.benefactors.push(b);
        id
    }

    pub fn benefactor(&self, id: BenefactorId) -> &Benefactor {
        &self.benefactors[id.0]
    }

    pub fn benefactor_mut(&mut self, id: BenefactorId) -> &mut Benefactor {
        &mut self.benefactors[id.0]
    }

    pub fn benefactor_count(&self) -> usize {
        self.benefactors.len()
    }

    pub fn alive_benefactors(&self) -> Vec<BenefactorId> {
        self.benefactors
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_alive())
            .map(|(i, _)| BenefactorId(i))
            .collect()
    }

    /// Status-monitoring sweep: total/free space over alive benefactors.
    pub fn space(&self) -> (u64, u64) {
        let mut total = 0;
        let mut free = 0;
        for b in self.benefactors.iter().filter(|b| b.is_alive()) {
            total += b.capacity();
            free += b.free();
        }
        (total, free)
    }

    // ----- files ------------------------------------------------------------

    pub fn create_file(&mut self, name: &str) -> Result<FileId> {
        if self.by_name.contains_key(name) {
            return Err(StoreError::FileExists(name.to_string()));
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                name: name.to_string(),
                size: 0,
                stripe: Vec::new(),
                slots: Vec::new(),
                placement: PlacementPolicy::RoundRobin,
                expires_at: None,
            },
        );
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    pub fn file(&self, id: FileId) -> Result<&FileMeta> {
        self.files.get(&id).ok_or(StoreError::NoSuchFile)
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut FileMeta> {
        self.files.get_mut(&id).ok_or(StoreError::NoSuchFile)
    }

    /// `posix_fallocate`: fix the file size, pick the stripe and reserve
    /// one chunk slot per stripe position on the owning benefactors.
    pub fn fallocate(
        &mut self,
        id: FileId,
        size: u64,
        spec: StripeSpec,
        placement: PlacementPolicy,
    ) -> Result<()> {
        let chunk_size = self.chunk_size;
        let n_slots = size.div_ceil(chunk_size) as usize;
        let stripe = self.resolve_stripe(spec)?;

        // Count slots per benefactor under the chosen placement, then
        // check space before mutating anything.
        let meta_preview = FileMeta {
            name: String::new(),
            size,
            stripe: stripe.clone(),
            slots: vec![Slot::Unmaterialized; n_slots],
            placement,
            expires_at: None,
        };
        let mut per_bene: HashMap<BenefactorId, u64> = HashMap::new();
        for i in 0..n_slots {
            *per_bene.entry(meta_preview.home_of_slot(i)).or_insert(0) += 1;
        }
        for (&b, &slots) in &per_bene {
            let bene = &self.benefactors[b.0];
            if !bene.is_alive() {
                return Err(StoreError::BenefactorDown(b));
            }
            if bene.free() < slots * chunk_size {
                return Err(StoreError::OutOfSpace {
                    requested: slots * chunk_size,
                    available: bene.free(),
                });
            }
        }
        for (&b, &slots) in &per_bene {
            self.benefactors[b.0].reserve_slots(slots);
        }

        let meta = self.file_mut(id)?;
        assert!(
            meta.slots.is_empty() && meta.size == 0,
            "fallocate on an already-sized file"
        );
        meta.size = size;
        meta.stripe = stripe;
        meta.slots = vec![Slot::Unmaterialized; n_slots];
        meta.placement = placement;
        Ok(())
    }

    fn resolve_stripe(&mut self, spec: StripeSpec) -> Result<Vec<BenefactorId>> {
        let alive = self.alive_benefactors();
        if alive.is_empty() {
            return Err(StoreError::NoBenefactors);
        }
        match spec {
            StripeSpec::All => {
                // Rotate the list per file so concurrent writers of
                // equally-striped files do not hit the same benefactor in
                // lockstep (the manager's load balancing).
                let start = self.stripe_cursor % alive.len();
                self.stripe_cursor = self.stripe_cursor.wrapping_add(1);
                Ok((0..alive.len())
                    .map(|i| alive[(start + i) % alive.len()])
                    .collect())
            }
            StripeSpec::Count(n) => {
                if n == 0 || n > alive.len() {
                    return Err(StoreError::NotEnoughBenefactors {
                        requested: n,
                        alive: alive.len(),
                    });
                }
                let start = self.stripe_cursor % alive.len();
                self.stripe_cursor = self.stripe_cursor.wrapping_add(n);
                Ok((0..n).map(|i| alive[(start + i) % alive.len()]).collect())
            }
            StripeSpec::Explicit(list) => {
                for &b in &list {
                    if b.0 >= self.benefactors.len() {
                        return Err(StoreError::NoBenefactors);
                    }
                    if !self.benefactors[b.0].is_alive() {
                        return Err(StoreError::BenefactorDown(b));
                    }
                }
                if list.is_empty() {
                    return Err(StoreError::NoBenefactors);
                }
                Ok(list)
            }
        }
    }

    /// Delete a file: release reservations and drop chunk references.
    pub fn delete_file(&mut self, id: FileId) -> Result<()> {
        let meta = self.files.remove(&id).ok_or(StoreError::NoSuchFile)?;
        self.by_name.remove(&meta.name);
        for (i, slot) in meta.slots.iter().enumerate() {
            match slot {
                Slot::Unmaterialized => {
                    let home = meta.home_of_slot(i);
                    self.benefactors[home.0].release_slots(1);
                }
                Slot::Hole => {}
                Slot::Chunk(c) => self.decref_chunk(*c),
            }
        }
        Ok(())
    }

    // ----- chunk reference counting ------------------------------------------

    pub(crate) fn incref_chunk(&mut self, c: ChunkId) {
        *self.chunk_refs.get_mut(&c).expect("incref unknown chunk") += 1;
    }

    pub(crate) fn decref_chunk(&mut self, c: ChunkId) {
        let refs = self.chunk_refs.get_mut(&c).expect("decref unknown chunk");
        *refs -= 1;
        if *refs == 0 {
            self.chunk_refs.remove(&c);
            let home = self.chunk_home.remove(&c).expect("chunk without home");
            self.benefactors[home.0].drop_chunk(c);
        }
    }

    pub fn chunk_refcount(&self, c: ChunkId) -> u32 {
        self.chunk_refs.get(&c).copied().unwrap_or(0)
    }

    pub fn chunk_home(&self, c: ChunkId) -> Option<BenefactorId> {
        self.chunk_home.get(&c).copied()
    }

    pub(crate) fn new_chunk_id(&mut self, home: BenefactorId) -> ChunkId {
        let id = ChunkId(self.next_chunk);
        self.next_chunk += 1;
        self.chunk_refs.insert(id, 1);
        self.chunk_home.insert(id, home);
        id
    }

    /// Record that file `id` slot `idx` now holds `chunk` (refcount was
    /// already set up by the caller).
    pub(crate) fn set_slot(&mut self, id: FileId, idx: usize, slot: Slot) {
        let meta = self.files.get_mut(&id).expect("set_slot on missing file");
        meta.slots[idx] = slot;
    }

    /// Link every slot of `src` to the end of `dst` — the zero-copy
    /// checkpoint merge of §III-E. Materialized chunks are shared by
    /// reference (incref); unwritten regions freeze as holes.
    pub fn link_file(&mut self, dst: FileId, src: FileId) -> Result<()> {
        let src_meta = self.file(src)?.clone();
        let mut appended = Vec::with_capacity(src_meta.slots.len());
        for slot in &src_meta.slots {
            match slot {
                Slot::Unmaterialized | Slot::Hole => appended.push(Slot::Hole),
                Slot::Chunk(c) => {
                    self.incref_chunk(*c);
                    appended.push(Slot::Chunk(*c));
                }
            }
        }
        let chunk_size = self.chunk_size;
        let dst_meta = self.file_mut(dst)?;
        // A linked region is sized in whole chunks.
        dst_meta.size = dst_meta.slots.len() as u64 * chunk_size + src_meta.size;
        dst_meta.slots.extend(appended);
        Ok(())
    }

    /// Total bytes of distinct materialized chunks (deduplicated storage).
    pub fn physical_bytes(&self) -> u64 {
        self.chunk_refs.len() as u64 * self.chunk_size
    }

    /// Set (or clear) a file's lifetime.
    pub fn set_lifetime(&mut self, id: FileId, expires_at: Option<simcore::VTime>) -> Result<()> {
        self.file_mut(id)?.expires_at = expires_at;
        Ok(())
    }

    /// Reclaim every file whose lifetime has passed; returns how many
    /// were deleted. The manager's periodic housekeeping sweep.
    pub fn expire_files(&mut self, now: simcore::VTime) -> usize {
        let expired: Vec<FileId> = self
            .files
            .iter()
            .filter(|(_, m)| m.expires_at.is_some_and(|t| t <= now))
            .map(|(&id, _)| id)
            .collect();
        let n = expired.len();
        for id in expired {
            self.delete_file(id).expect("expired file exists");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::{Ssd, INTEL_X25E};
    use simcore::{StatsRegistry, VTime};

    const CHUNK: u64 = 256 * 1024;

    fn mgr(benefactors: usize, cap_chunks: u64) -> Manager {
        let stats = StatsRegistry::new();
        let mut m = Manager::new(CHUNK);
        for i in 0..benefactors {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            m.register_benefactor(Benefactor::new(i, ssd, cap_chunks * CHUNK, CHUNK));
        }
        m
    }

    fn materialize(m: &mut Manager, f: FileId, idx: usize) -> ChunkId {
        let home = m.file(f).unwrap().home_of_slot(idx);
        let c = m.new_chunk_id(home);
        m.benefactor_mut(home).store_chunk(
            VTime::ZERO,
            c,
            vec![0u8; CHUNK as usize].into_boxed_slice(),
            CHUNK,
            true,
        );
        m.set_slot(f, idx, Slot::Chunk(c));
        c
    }

    #[test]
    fn create_lookup_delete() {
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        assert_eq!(m.lookup("/x"), Some(f));
        assert_eq!(
            m.create_file("/x").unwrap_err(),
            StoreError::FileExists("/x".into())
        );
        m.delete_file(f).unwrap();
        assert_eq!(m.lookup("/x"), None);
        assert_eq!(m.delete_file(f).unwrap_err(), StoreError::NoSuchFile);
    }

    #[test]
    fn fallocate_reserves_striped_slots() {
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 4 * CHUNK, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap();
        // 4 slots over 2 benefactors: 2 each.
        assert_eq!(m.benefactor(BenefactorId(0)).used(), 2 * CHUNK);
        assert_eq!(m.benefactor(BenefactorId(1)).used(), 2 * CHUNK);
        let meta = m.file(f).unwrap();
        assert_eq!(meta.slots.len(), 4);
        assert_eq!(meta.home_of_slot(0), BenefactorId(0));
        assert_eq!(meta.home_of_slot(1), BenefactorId(1));
        assert_eq!(meta.home_of_slot(2), BenefactorId(0));
    }

    #[test]
    fn fallocate_partial_chunk_rounds_up() {
        let mut m = mgr(1, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, CHUNK + 1, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap();
        assert_eq!(m.file(f).unwrap().slots.len(), 2);
    }

    #[test]
    fn fallocate_out_of_space() {
        let mut m = mgr(1, 2);
        let f = m.create_file("/x").unwrap();
        let err = m
            .fallocate(f, 3 * CHUNK, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfSpace { .. }));
        // Nothing was reserved on failure.
        assert_eq!(m.benefactor(BenefactorId(0)).used(), 0);
    }

    #[test]
    fn stripe_count_selects_subset() {
        let mut m = mgr(4, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 8 * CHUNK, StripeSpec::Count(2), PlacementPolicy::RoundRobin)
            .unwrap();
        assert_eq!(m.file(f).unwrap().stripe.len(), 2);
        let y = m.create_file("/y").unwrap();
        let err = m
            .fallocate(y, CHUNK, StripeSpec::Count(9), PlacementPolicy::RoundRobin)
            .unwrap_err();
        assert!(matches!(err, StoreError::NotEnoughBenefactors { .. }));
    }

    #[test]
    fn explicit_stripe_respected() {
        let mut m = mgr(4, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            4 * CHUNK,
            StripeSpec::Explicit(vec![BenefactorId(3), BenefactorId(1)]),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
        let meta = m.file(f).unwrap();
        assert_eq!(meta.home_of_slot(0), BenefactorId(3));
        assert_eq!(meta.home_of_slot(1), BenefactorId(1));
    }

    #[test]
    fn dead_benefactor_rejected() {
        let mut m = mgr(2, 16);
        m.benefactor_mut(BenefactorId(1)).set_alive(false);
        let f = m.create_file("/x").unwrap();
        let err = m
            .fallocate(
                f,
                CHUNK,
                StripeSpec::Explicit(vec![BenefactorId(1)]),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(1)));
        // Count(n) only sees the alive one.
        assert_eq!(m.alive_benefactors(), vec![BenefactorId(0)]);
    }

    #[test]
    fn random_placement_is_deterministic() {
        let mut m = mgr(4, 64);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            32 * CHUNK,
            StripeSpec::All,
            PlacementPolicy::RandomPermutation { seed: 7 },
        )
        .unwrap();
        let meta = m.file(f).unwrap();
        let homes: Vec<_> = (0..32).map(|i| meta.home_of_slot(i)).collect();
        let homes2: Vec<_> = (0..32).map(|i| meta.home_of_slot(i)).collect();
        assert_eq!(homes, homes2);
        // Not all on one benefactor.
        assert!(homes.iter().any(|&h| h != homes[0]));
    }

    #[test]
    fn link_file_shares_chunks_and_freezes_holes() {
        let mut m = mgr(2, 16);
        let var = m.create_file("/var").unwrap();
        m.fallocate(var, 3 * CHUNK, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap();
        let c0 = materialize(&mut m, var, 0);
        // Slot 1 stays unmaterialized; slot 2 materialized.
        let c2 = materialize(&mut m, var, 2);

        let ckpt = m.create_file("/ckpt").unwrap();
        m.link_file(ckpt, var).unwrap();
        assert_eq!(m.chunk_refcount(c0), 2);
        assert_eq!(m.chunk_refcount(c2), 2);
        let meta = m.file(ckpt).unwrap();
        assert_eq!(meta.slots[0], Slot::Chunk(c0));
        assert_eq!(meta.slots[1], Slot::Hole);
        assert_eq!(meta.slots[2], Slot::Chunk(c2));

        // No extra physical space for shared chunks.
        assert_eq!(m.physical_bytes(), 2 * CHUNK);

        // Deleting the variable keeps the checkpoint intact.
        m.delete_file(var).unwrap();
        assert_eq!(m.chunk_refcount(c0), 1);
        assert!(m.benefactor(m.chunk_home(c0).unwrap()).has_chunk(c0));
        // Deleting the checkpoint frees everything.
        m.delete_file(ckpt).unwrap();
        assert_eq!(m.chunk_refcount(c0), 0);
        assert_eq!(m.physical_bytes(), 0);
    }

    #[test]
    fn space_report() {
        let mut m = mgr(2, 4);
        let (total, free) = m.space();
        assert_eq!(total, 8 * CHUNK);
        assert_eq!(free, 8 * CHUNK);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 2 * CHUNK, StripeSpec::All, PlacementPolicy::RoundRobin)
            .unwrap();
        assert_eq!(m.space().1, 6 * CHUNK);
    }
}

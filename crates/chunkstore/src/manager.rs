//! The store manager: metadata, space allocation, striping, chunk→
//! benefactor mapping, benefactor health, and the chunk-linking machinery
//! behind `ssdcheckpoint()`.
//!
//! The manager is a pure metadata service — it moves no data. All methods
//! here are untimed; [`crate::store::AggregateStore`] charges manager-RPC
//! and data-path costs around them.

use crate::benefactor::Benefactor;
use crate::error::{Result, StoreError};
use crate::ids::{BenefactorId, ChunkId, FileId};
use std::collections::HashMap;

/// How wide a file stripes: which benefactors end up in its stripe list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StripeWidth {
    /// Use every alive benefactor.
    All,
    /// Pick `n` alive benefactors round-robin from the manager's rotating
    /// cursor (spreads files across the store).
    Count(usize),
    /// Use exactly these benefactors (the evaluation's `z` configurations
    /// pin specific nodes).
    Explicit(Vec<BenefactorId>),
}

/// How a file's benefactor list is chosen at `fallocate` time, and how
/// many copies of each chunk the store keeps.
///
/// `replicas = 1` (the default) is the paper's unreplicated layout: a
/// benefactor failure makes its chunks unreachable. `replicas = k` places
/// every chunk on `k` *distinct* benefactors from the stripe, so reads
/// fail over and the repair scanner restores redundancy after a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StripeSpec {
    pub width: StripeWidth,
    pub replicas: usize,
}

impl StripeSpec {
    /// Stripe over every alive benefactor, unreplicated.
    pub fn all() -> Self {
        StripeSpec {
            width: StripeWidth::All,
            replicas: 1,
        }
    }

    /// Stripe over `n` cursor-picked benefactors, unreplicated.
    pub fn count(n: usize) -> Self {
        StripeSpec {
            width: StripeWidth::Count(n),
            replicas: 1,
        }
    }

    /// Stripe over exactly these benefactors, unreplicated.
    pub fn explicit(list: Vec<BenefactorId>) -> Self {
        StripeSpec {
            width: StripeWidth::Explicit(list),
            replicas: 1,
        }
    }

    /// Keep `k ≥ 1` copies of every chunk on distinct benefactors.
    pub fn with_replicas(mut self, k: usize) -> Self {
        assert!(k >= 1, "replica degree must be at least 1");
        self.replicas = k;
        self
    }
}

/// Chunk placement within a file's benefactor list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// chunk `i` lives on `stripe[i % stripe.len()]` (the paper's layout).
    RoundRobin,
    /// chunk `i` lives on `stripe[perm[i % stripe.len()]]` with a seeded
    /// per-file permutation — the ablation alternative.
    RandomPermutation { seed: u64 },
}

/// One slot of a file's chunk list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Reserved by fallocate, never written: reads as zeros; owns one
    /// reserved chunk slot on its benefactor.
    Unmaterialized,
    /// Frozen zero region inside a linked checkpoint file (no space).
    Hole,
    /// A materialized chunk.
    Chunk(ChunkId),
}

/// Per-file metadata.
#[derive(Clone, Debug)]
pub struct FileMeta {
    pub name: String,
    pub size: u64,
    /// Benefactor list the file stripes over (empty until fallocate).
    pub stripe: Vec<BenefactorId>,
    pub slots: Vec<Slot>,
    pub placement: PlacementPolicy,
    /// Copies kept of every chunk (≥ 1); replica `r` of slot `i` lives on
    /// the stripe position `r` places after the primary's.
    pub replicas: usize,
    /// Optional expiry: §III-C's "associating a lifetime with these
    /// memory-mapped variables, so that they are persistent beyond the
    /// application run" — and reclaimed once the workflow is done.
    pub expires_at: Option<simcore::VTime>,
}

/// Index into a stripe of length `stripe_len` of slot `idx`'s primary
/// copy under `placement`. Free function so fallocate can count slot
/// demand per benefactor before any `FileMeta` exists.
pub(crate) fn stripe_pos(placement: PlacementPolicy, stripe_len: usize, idx: usize) -> usize {
    assert!(stripe_len > 0, "file not fallocated");
    match placement {
        PlacementPolicy::RoundRobin => idx % stripe_len,
        PlacementPolicy::RandomPermutation { seed } => {
            // Deterministic per-(file,index) pick via SplitMix.
            let h = simcore::rng::child_seed(seed, idx as u64);
            (h % stripe_len as u64) as usize
        }
    }
}

impl FileMeta {
    /// Index into the stripe list of slot `idx`'s primary copy.
    fn stripe_pos_of_slot(&self, idx: usize) -> usize {
        stripe_pos(self.placement, self.stripe.len(), idx)
    }

    /// The benefactor that owns slot `idx`'s primary copy.
    pub fn home_of_slot(&self, idx: usize) -> BenefactorId {
        self.stripe[self.stripe_pos_of_slot(idx)]
    }

    /// All benefactors owning a copy of slot `idx`, allocation-free: the
    /// primary plus the next `replicas - 1` stripe positions. Distinct as
    /// long as `replicas <= stripe.len()` (enforced at fallocate).
    pub fn homes_iter(&self, idx: usize) -> impl Iterator<Item = BenefactorId> + '_ {
        let base = self.stripe_pos_of_slot(idx);
        (0..self.replicas.min(self.stripe.len()))
            .map(move |r| self.stripe[(base + r) % self.stripe.len()])
    }

    /// `homes_iter` collected (callers that need an owned list).
    pub fn homes_of_slot(&self, idx: usize) -> Vec<BenefactorId> {
        self.homes_iter(idx).collect()
    }
}

/// Manager-side record of one materialized chunk's placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkMeta {
    /// Benefactors currently holding an identical, authoritative copy.
    /// The first entry is the primary (preferred read source). Invariant:
    /// non-empty, entries distinct. A write that finds a dead home drops
    /// it from this list — the bytes left on the dead benefactor are
    /// stale and get reclaimed by `reconcile_recovered`.
    pub homes: Vec<BenefactorId>,
    /// Replica degree the chunk should have (its file's `replicas`).
    pub target: usize,
    /// CRC-64/XZ digest of the chunk's intended full content, recorded at
    /// every write *before* the bytes hit any benefactor — so a torn or
    /// bit-rotted copy disagrees with it (DESIGN.md §11).
    pub crc: u64,
}

/// The manager's whole state, including the benefactor fleet.
#[derive(Debug)]
pub struct Manager {
    chunk_size: u64,
    benefactors: Vec<Benefactor>,
    files: HashMap<FileId, FileMeta>,
    by_name: HashMap<String, FileId>,
    chunk_refs: HashMap<ChunkId, u32>,
    chunk_meta: HashMap<ChunkId, ChunkMeta>,
    next_file: u64,
    next_chunk: u64,
    stripe_cursor: usize,
    /// Alive benefactors, ascending id — maintained incrementally by
    /// `register_benefactor`/`set_alive` so status sweeps never rescan
    /// the fleet.
    alive: Vec<BenefactorId>,
    /// Alive and not quarantined (placement-eligible), ascending id.
    placeable: Vec<BenefactorId>,
    /// How many benefactors are currently quarantined.
    quarantined: usize,
    /// Bumped on every placement-affecting mutation (chunk materialized or
    /// re-homed, benefactor liveness change, repair, reconcile, file
    /// deletion/linking). Client-side location caches compare their stored
    /// epoch against this to decide whether a cached chunk → home mapping
    /// is still authoritative (see `crate::loc_cache::LocationCache`).
    placement_epoch: u64,
}

impl Manager {
    pub fn new(chunk_size: u64) -> Self {
        assert!(chunk_size > 0 && chunk_size.is_power_of_two());
        Manager {
            chunk_size,
            benefactors: Vec::new(),
            files: HashMap::new(),
            by_name: HashMap::new(),
            chunk_refs: HashMap::new(),
            chunk_meta: HashMap::new(),
            next_file: 0,
            next_chunk: 0,
            stripe_cursor: 0,
            alive: Vec::new(),
            placeable: Vec::new(),
            quarantined: 0,
            placement_epoch: 0,
        }
    }

    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    /// Current placement epoch (see the field doc).
    pub fn placement_epoch(&self) -> u64 {
        self.placement_epoch
    }

    /// Invalidate every client-side location cache: any event that can
    /// change where a chunk's authoritative copies live bumps this.
    pub(crate) fn bump_placement_epoch(&mut self) {
        self.placement_epoch += 1;
    }

    // ----- benefactor fleet -------------------------------------------------

    pub fn register_benefactor(&mut self, b: Benefactor) -> BenefactorId {
        let id = BenefactorId(self.benefactors.len());
        // Ids are handed out in ascending order, so pushing keeps the
        // incremental sets sorted.
        if b.is_alive() {
            self.alive.push(id);
        }
        if b.is_placeable() {
            self.placeable.push(id);
        }
        if b.is_quarantined() {
            self.quarantined += 1;
        }
        self.benefactors.push(b);
        id
    }

    /// Insert/remove `id` in a sorted membership Vec, keeping it sorted.
    fn set_membership(set: &mut Vec<BenefactorId>, id: BenefactorId, member: bool) {
        match (set.binary_search(&id), member) {
            (Err(at), true) => set.insert(at, id),
            (Ok(at), false) => {
                set.remove(at);
            }
            _ => {}
        }
    }

    /// Take a benefactor offline or bring it back, keeping the alive /
    /// placeable sets current. The single mutation point for liveness:
    /// callers outside the crate cannot reach `Benefactor::set_alive`.
    pub fn set_alive(&mut self, id: BenefactorId, alive: bool) {
        self.benefactors[id.0].set_alive(alive);
        Self::set_membership(&mut self.alive, id, alive);
        let placeable = self.benefactors[id.0].is_placeable();
        Self::set_membership(&mut self.placeable, id, placeable);
    }

    /// Quarantine a benefactor (or lift it), keeping the placeable set and
    /// the quarantine counter current.
    pub fn set_quarantined(&mut self, id: BenefactorId, quarantined: bool) {
        let b = &mut self.benefactors[id.0];
        if b.is_quarantined() != quarantined {
            self.quarantined = if quarantined {
                self.quarantined + 1
            } else {
                self.quarantined - 1
            };
        }
        b.set_quarantined(quarantined);
        let placeable = self.benefactors[id.0].is_placeable();
        Self::set_membership(&mut self.placeable, id, placeable);
    }

    pub fn benefactor(&self, id: BenefactorId) -> &Benefactor {
        &self.benefactors[id.0]
    }

    pub fn benefactor_mut(&mut self, id: BenefactorId) -> &mut Benefactor {
        &mut self.benefactors[id.0]
    }

    pub fn benefactor_count(&self) -> usize {
        self.benefactors.len()
    }

    /// Alive benefactors, ascending id. A borrow of the incrementally
    /// maintained set — no allocation, no fleet sweep.
    pub fn alive_benefactors(&self) -> &[BenefactorId] {
        &self.alive
    }

    /// Benefactors eligible for new chunk placement: alive and not
    /// quarantined by the scrub daemon. Reads and repairs-from still use
    /// the full alive set — quarantine only stops *new* bytes landing.
    /// Ascending id, allocation-free.
    pub fn placeable_benefactors(&self) -> &[BenefactorId] {
        &self.placeable
    }

    /// How many benefactors the scrub daemon has quarantined. O(1).
    pub fn quarantined_count(&self) -> usize {
        self.quarantined
    }

    /// Status-monitoring report: total/free space over alive benefactors.
    /// Walks only the alive set; each benefactor answers from its slot
    /// allocator's O(1) folded counter.
    pub fn space(&self) -> (u64, u64) {
        let mut total = 0;
        let mut free = 0;
        for &id in &self.alive {
            let b = &self.benefactors[id.0];
            total += b.capacity();
            free += b.free();
        }
        (total, free)
    }

    // ----- files ------------------------------------------------------------

    pub fn create_file(&mut self, name: &str) -> Result<FileId> {
        if self.by_name.contains_key(name) {
            return Err(StoreError::FileExists(name.to_string()));
        }
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id,
            FileMeta {
                name: name.to_string(),
                size: 0,
                stripe: Vec::new(),
                slots: Vec::new(),
                placement: PlacementPolicy::RoundRobin,
                replicas: 1,
                expires_at: None,
            },
        );
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    pub fn lookup(&self, name: &str) -> Option<FileId> {
        self.by_name.get(name).copied()
    }

    pub fn file(&self, id: FileId) -> Result<&FileMeta> {
        self.files.get(&id).ok_or(StoreError::NoSuchFile)
    }

    fn file_mut(&mut self, id: FileId) -> Result<&mut FileMeta> {
        self.files.get_mut(&id).ok_or(StoreError::NoSuchFile)
    }

    /// `posix_fallocate`: fix the file size, pick the stripe and reserve
    /// one chunk slot per replica per stripe position on the owning
    /// benefactors. With `spec.replicas = k`, every slot reserves `k`
    /// copies on `k` distinct benefactors — requires `k` not to exceed
    /// the resolved stripe width.
    pub fn fallocate(
        &mut self,
        id: FileId,
        size: u64,
        spec: StripeSpec,
        placement: PlacementPolicy,
    ) -> Result<()> {
        let chunk_size = self.chunk_size;
        let n_slots = size.div_ceil(chunk_size) as usize;
        let replicas = spec.replicas;
        let stripe = self.resolve_stripe(spec)?;
        if replicas > stripe.len() {
            return Err(StoreError::NotEnoughBenefactors {
                requested: replicas,
                alive: stripe.len(),
            });
        }

        // Count slots per benefactor under the chosen placement (flat
        // index-keyed counts, no map allocation churn), then check space
        // before mutating anything. Checked in ascending benefactor id,
        // so which violation reports first is deterministic.
        let mut per_bene = vec![0u64; self.benefactors.len()];
        let copies = replicas.min(stripe.len());
        for i in 0..n_slots {
            let base = stripe_pos(placement, stripe.len(), i);
            for r in 0..copies {
                per_bene[stripe[(base + r) % stripe.len()].0] += 1;
            }
        }
        for (bi, &slots) in per_bene.iter().enumerate() {
            if slots == 0 {
                continue;
            }
            let bene = &self.benefactors[bi];
            if !bene.is_alive() {
                return Err(StoreError::BenefactorDown(BenefactorId(bi)));
            }
            if bene.free() < slots * chunk_size {
                return Err(StoreError::OutOfSpace {
                    requested: slots * chunk_size,
                    available: bene.free(),
                });
            }
        }
        for (bi, &slots) in per_bene.iter().enumerate() {
            if slots > 0 {
                self.benefactors[bi].reserve_slots(slots);
            }
        }

        let meta = self.file_mut(id)?;
        assert!(
            meta.slots.is_empty() && meta.size == 0,
            "fallocate on an already-sized file"
        );
        meta.size = size;
        meta.stripe = stripe;
        meta.slots = vec![Slot::Unmaterialized; n_slots];
        meta.placement = placement;
        meta.replicas = replicas;
        Ok(())
    }

    /// Resolve a stripe spec to a concrete benefactor list.
    ///
    /// Error contract:
    /// * no benefactor alive at all, or an empty `Explicit` list →
    ///   [`StoreError::NoBenefactors`];
    /// * `Explicit` naming a benefactor that is dead **or was never
    ///   registered** → [`StoreError::BenefactorDown`] for that id (an
    ///   unknown id is indistinguishable from a permanently-dead one from
    ///   the caller's perspective, so both report the same way);
    /// * `Count(n)` with `n` zero or above the alive population →
    ///   [`StoreError::NotEnoughBenefactors`].
    fn resolve_stripe(&mut self, spec: StripeSpec) -> Result<Vec<BenefactorId>> {
        // All/Count pick from the placeable set so quarantined benefactors
        // stop receiving new files; Explicit lists are honored as long as
        // the named benefactors are alive (the caller pinned them). Both
        // pools are the incrementally maintained sorted sets — borrowed,
        // not rebuilt, so the cursor advances after the borrow ends.
        let pool: &[BenefactorId] = match spec.width {
            StripeWidth::Explicit(_) => &self.alive,
            _ => &self.placeable,
        };
        if pool.is_empty() {
            return Err(StoreError::NoBenefactors);
        }
        let cursor = self.stripe_cursor;
        let (stripe, advance) = match spec.width {
            StripeWidth::All => {
                // Rotate the list per file so concurrent writers of
                // equally-striped files do not hit the same benefactor in
                // lockstep (the manager's load balancing).
                let start = cursor % pool.len();
                let stripe = (0..pool.len())
                    .map(|i| pool[(start + i) % pool.len()])
                    .collect();
                (stripe, 1)
            }
            StripeWidth::Count(n) => {
                if n == 0 || n > pool.len() {
                    return Err(StoreError::NotEnoughBenefactors {
                        requested: n,
                        alive: pool.len(),
                    });
                }
                let start = cursor % pool.len();
                let stripe = (0..n).map(|i| pool[(start + i) % pool.len()]).collect();
                (stripe, n)
            }
            StripeWidth::Explicit(list) => {
                if list.is_empty() {
                    return Err(StoreError::NoBenefactors);
                }
                for &b in &list {
                    if b.0 >= self.benefactors.len() || !self.benefactors[b.0].is_alive() {
                        return Err(StoreError::BenefactorDown(b));
                    }
                }
                (list, 0)
            }
        };
        self.stripe_cursor = cursor.wrapping_add(advance);
        Ok(stripe)
    }

    /// Delete a file: release reservations and drop chunk references.
    pub fn delete_file(&mut self, id: FileId) -> Result<()> {
        let meta = self.files.remove(&id).ok_or(StoreError::NoSuchFile)?;
        self.by_name.remove(&meta.name);
        self.bump_placement_epoch();
        for (i, slot) in meta.slots.iter().enumerate() {
            match slot {
                Slot::Unmaterialized => {
                    for home in meta.homes_iter(i) {
                        self.benefactors[home.0].release_slots(1);
                    }
                }
                Slot::Hole => {}
                Slot::Chunk(c) => self.decref_chunk(*c),
            }
        }
        Ok(())
    }

    // ----- chunk reference counting ------------------------------------------

    pub(crate) fn incref_chunk(&mut self, c: ChunkId) {
        *self.chunk_refs.get_mut(&c).expect("incref unknown chunk") += 1;
    }

    pub(crate) fn decref_chunk(&mut self, c: ChunkId) {
        let refs = self.chunk_refs.get_mut(&c).expect("decref unknown chunk");
        *refs -= 1;
        if *refs == 0 {
            self.chunk_refs.remove(&c);
            let meta = self.chunk_meta.remove(&c).expect("chunk without home");
            for home in meta.homes {
                self.benefactors[home.0].drop_chunk(c);
            }
            self.bump_placement_epoch();
        }
    }

    pub fn chunk_refcount(&self, c: ChunkId) -> u32 {
        self.chunk_refs.get(&c).copied().unwrap_or(0)
    }

    /// The chunk's primary home (first live-listed copy).
    pub fn chunk_home(&self, c: ChunkId) -> Option<BenefactorId> {
        self.chunk_meta.get(&c).map(|m| m.homes[0])
    }

    /// Every benefactor holding an authoritative copy of `c`.
    pub fn chunk_homes(&self, c: ChunkId) -> Option<&[BenefactorId]> {
        self.chunk_meta.get(&c).map(|m| m.homes.as_slice())
    }

    /// The chunk's intended replica degree.
    pub fn chunk_target(&self, c: ChunkId) -> Option<usize> {
        self.chunk_meta.get(&c).map(|m| m.target)
    }

    pub(crate) fn new_chunk_id(
        &mut self,
        homes: Vec<BenefactorId>,
        target: usize,
        crc: u64,
    ) -> ChunkId {
        assert!(!homes.is_empty(), "chunk needs at least one home");
        let id = ChunkId(self.next_chunk);
        self.next_chunk += 1;
        self.chunk_refs.insert(id, 1);
        self.chunk_meta.insert(id, ChunkMeta { homes, target, crc });
        self.bump_placement_epoch();
        id
    }

    /// The digest every authoritative copy of `c` must match.
    pub fn chunk_crc(&self, c: ChunkId) -> Option<u64> {
        self.chunk_meta.get(&c).map(|m| m.crc)
    }

    /// Re-record `c`'s digest after an in-place page update.
    pub(crate) fn set_chunk_crc(&mut self, c: ChunkId, crc: u64) {
        self.chunk_meta.get_mut(&c).expect("unknown chunk").crc = crc;
    }

    /// Every materialized chunk id, sorted — the scrub daemon's walk order.
    pub fn chunk_ids_sorted(&self) -> Vec<ChunkId> {
        let mut ids: Vec<ChunkId> = self.chunk_meta.keys().copied().collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids
    }

    /// Drop `home` from `c`'s authoritative copy list (the copy there is
    /// dead or stale). The chunk must keep at least one home.
    pub(crate) fn remove_chunk_home(&mut self, c: ChunkId, home: BenefactorId) {
        let meta = self.chunk_meta.get_mut(&c).expect("unknown chunk");
        meta.homes.retain(|&h| h != home);
        assert!(!meta.homes.is_empty(), "chunk {c} lost its last home");
        self.bump_placement_epoch();
    }

    /// Record a freshly repaired copy of `c` on `home`.
    pub(crate) fn add_chunk_home(&mut self, c: ChunkId, home: BenefactorId) {
        let meta = self.chunk_meta.get_mut(&c).expect("unknown chunk");
        debug_assert!(!meta.homes.contains(&home), "duplicate home");
        meta.homes.push(home);
        self.bump_placement_epoch();
    }

    /// Chunks whose live copy count is below target, with a live donor.
    /// Returns `(chunk, donor, missing_copies)` triples.
    pub fn under_replicated(&self) -> Vec<(ChunkId, BenefactorId, usize)> {
        let mut out: Vec<(ChunkId, BenefactorId, usize)> = self
            .chunk_meta
            .iter()
            .filter_map(|(&c, m)| {
                // First live home is the donor; count the rest in place.
                let mut live = 0usize;
                let mut donor = None;
                for &h in &m.homes {
                    if self.benefactors[h.0].is_alive() {
                        live += 1;
                        donor.get_or_insert(h);
                    }
                }
                if live == 0 || live >= m.target {
                    return None;
                }
                Some((c, donor.unwrap(), m.target - live))
            })
            .collect();
        out.sort_by_key(|&(c, _, _)| c);
        out
    }

    /// Reconcile a benefactor that came back from the dead: physically
    /// drop every chunk it holds that the metadata no longer lists there
    /// (writes re-homed those chunks while it was down, so its copies are
    /// stale), and trim chunks the repair scanner re-replicated elsewhere
    /// in the meantime (the revived copy is the redundant one). Returns
    /// the number of chunk copies reclaimed.
    pub fn reconcile_recovered(&mut self, b: BenefactorId) -> usize {
        let stale: Vec<ChunkId> = self.benefactors[b.0]
            .chunk_ids()
            .into_iter()
            .filter(|c| self.chunk_meta.get(c).is_none_or(|m| !m.homes.contains(&b)))
            .collect();
        for &c in &stale {
            self.benefactors[b.0].drop_chunk(c);
        }
        let over: Vec<ChunkId> = self.benefactors[b.0]
            .chunk_ids()
            .into_iter()
            .filter(|c| {
                self.chunk_meta.get(c).is_some_and(|m| {
                    m.homes.contains(&b)
                        && m.homes
                            .iter()
                            .filter(|h| self.benefactors[h.0].is_alive())
                            .count()
                            > m.target
                })
            })
            .collect();
        for &c in &over {
            self.benefactors[b.0].drop_chunk(c);
            self.remove_chunk_home(c, b);
        }
        self.bump_placement_epoch();
        stale.len() + over.len()
    }

    /// Record that file `id` slot `idx` now holds `chunk` (refcount was
    /// already set up by the caller).
    pub(crate) fn set_slot(&mut self, id: FileId, idx: usize, slot: Slot) {
        let meta = self.files.get_mut(&id).expect("set_slot on missing file");
        meta.slots[idx] = slot;
        self.bump_placement_epoch();
    }

    /// Link every slot of `src` to the end of `dst` — the zero-copy
    /// checkpoint merge of §III-E. Materialized chunks are shared by
    /// reference (incref); unwritten regions freeze as holes.
    pub fn link_file(&mut self, dst: FileId, src: FileId) -> Result<()> {
        let src_meta = self.file(src)?.clone();
        let mut appended = Vec::with_capacity(src_meta.slots.len());
        for slot in &src_meta.slots {
            match slot {
                Slot::Unmaterialized | Slot::Hole => appended.push(Slot::Hole),
                Slot::Chunk(c) => {
                    self.incref_chunk(*c);
                    appended.push(Slot::Chunk(*c));
                }
            }
        }
        let chunk_size = self.chunk_size;
        let dst_meta = self.file_mut(dst)?;
        // A linked region is sized in whole chunks.
        dst_meta.size = dst_meta.slots.len() as u64 * chunk_size + src_meta.size;
        dst_meta.slots.extend(appended);
        self.bump_placement_epoch();
        Ok(())
    }

    /// Total bytes of distinct materialized chunks (deduplicated storage).
    pub fn physical_bytes(&self) -> u64 {
        self.chunk_refs.len() as u64 * self.chunk_size
    }

    /// Set (or clear) a file's lifetime.
    pub fn set_lifetime(&mut self, id: FileId, expires_at: Option<simcore::VTime>) -> Result<()> {
        self.file_mut(id)?.expires_at = expires_at;
        Ok(())
    }

    /// Reclaim every file whose lifetime has passed; returns how many
    /// were deleted. The manager's periodic housekeeping sweep.
    pub fn expire_files(&mut self, now: simcore::VTime) -> usize {
        let expired: Vec<FileId> = self
            .files
            .iter()
            .filter(|(_, m)| m.expires_at.is_some_and(|t| t <= now))
            .map(|(&id, _)| id)
            .collect();
        let n = expired.len();
        for id in expired {
            self.delete_file(id).expect("expired file exists");
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::{Ssd, INTEL_X25E};
    use simcore::{StatsRegistry, VTime};

    const CHUNK: u64 = 256 * 1024;

    fn mgr(benefactors: usize, cap_chunks: u64) -> Manager {
        let stats = StatsRegistry::new();
        let mut m = Manager::new(CHUNK);
        for i in 0..benefactors {
            let ssd = Ssd::new(&format!("b{i}.ssd"), INTEL_X25E, &stats);
            m.register_benefactor(Benefactor::new(i, ssd, cap_chunks * CHUNK, CHUNK));
        }
        m
    }

    fn materialize(m: &mut Manager, f: FileId, idx: usize) -> ChunkId {
        let home = m.file(f).unwrap().home_of_slot(idx);
        let data = vec![0u8; CHUNK as usize].into_boxed_slice();
        let c = m.new_chunk_id(vec![home], 1, crate::crc::crc64(&data));
        m.benefactor_mut(home)
            .store_chunk(VTime::ZERO, c, data, CHUNK, true);
        m.set_slot(f, idx, Slot::Chunk(c));
        c
    }

    #[test]
    fn create_lookup_delete() {
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        assert_eq!(m.lookup("/x"), Some(f));
        assert_eq!(
            m.create_file("/x").unwrap_err(),
            StoreError::FileExists("/x".into())
        );
        m.delete_file(f).unwrap();
        assert_eq!(m.lookup("/x"), None);
        assert_eq!(m.delete_file(f).unwrap_err(), StoreError::NoSuchFile);
    }

    #[test]
    fn fallocate_reserves_striped_slots() {
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 4 * CHUNK, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap();
        // 4 slots over 2 benefactors: 2 each.
        assert_eq!(m.benefactor(BenefactorId(0)).used(), 2 * CHUNK);
        assert_eq!(m.benefactor(BenefactorId(1)).used(), 2 * CHUNK);
        let meta = m.file(f).unwrap();
        assert_eq!(meta.slots.len(), 4);
        assert_eq!(meta.home_of_slot(0), BenefactorId(0));
        assert_eq!(meta.home_of_slot(1), BenefactorId(1));
        assert_eq!(meta.home_of_slot(2), BenefactorId(0));
    }

    #[test]
    fn fallocate_partial_chunk_rounds_up() {
        let mut m = mgr(1, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, CHUNK + 1, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap();
        assert_eq!(m.file(f).unwrap().slots.len(), 2);
    }

    #[test]
    fn fallocate_out_of_space() {
        let mut m = mgr(1, 2);
        let f = m.create_file("/x").unwrap();
        let err = m
            .fallocate(f, 3 * CHUNK, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap_err();
        assert!(matches!(err, StoreError::OutOfSpace { .. }));
        // Nothing was reserved on failure.
        assert_eq!(m.benefactor(BenefactorId(0)).used(), 0);
    }

    #[test]
    fn stripe_count_selects_subset() {
        let mut m = mgr(4, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            8 * CHUNK,
            StripeSpec::count(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
        assert_eq!(m.file(f).unwrap().stripe.len(), 2);
        let y = m.create_file("/y").unwrap();
        let err = m
            .fallocate(y, CHUNK, StripeSpec::count(9), PlacementPolicy::RoundRobin)
            .unwrap_err();
        assert!(matches!(err, StoreError::NotEnoughBenefactors { .. }));
    }

    #[test]
    fn explicit_stripe_respected() {
        let mut m = mgr(4, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            4 * CHUNK,
            StripeSpec::explicit(vec![BenefactorId(3), BenefactorId(1)]),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
        let meta = m.file(f).unwrap();
        assert_eq!(meta.home_of_slot(0), BenefactorId(3));
        assert_eq!(meta.home_of_slot(1), BenefactorId(1));
    }

    #[test]
    fn dead_benefactor_rejected() {
        let mut m = mgr(2, 16);
        m.set_alive(BenefactorId(1), false);
        let f = m.create_file("/x").unwrap();
        let err = m
            .fallocate(
                f,
                CHUNK,
                StripeSpec::explicit(vec![BenefactorId(1)]),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(1)));
        // Count(n) only sees the alive one.
        assert_eq!(m.alive_benefactors(), vec![BenefactorId(0)]);
    }

    #[test]
    fn explicit_stripe_error_contract() {
        // The documented resolve_stripe contract for Explicit lists: an
        // empty list is NoBenefactors; naming a dead OR never-registered
        // benefactor is BenefactorDown(the offending id) — one error for
        // "that benefactor cannot serve you", whatever the reason.
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        let err = m
            .fallocate(
                f,
                CHUNK,
                StripeSpec::explicit(vec![]),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert_eq!(err, StoreError::NoBenefactors);

        let err = m
            .fallocate(
                f,
                CHUNK,
                StripeSpec::explicit(vec![BenefactorId(0), BenefactorId(9)]),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(9)));

        m.set_alive(BenefactorId(1), false);
        let err = m
            .fallocate(
                f,
                CHUNK,
                StripeSpec::explicit(vec![BenefactorId(1)]),
                PlacementPolicy::RoundRobin,
            )
            .unwrap_err();
        assert_eq!(err, StoreError::BenefactorDown(BenefactorId(1)));
        // Nothing was reserved by the failed attempts.
        assert_eq!(m.benefactor(BenefactorId(0)).used(), 0);
    }

    #[test]
    fn replicated_fallocate_reserves_k_slots_per_chunk() {
        let mut m = mgr(3, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            3 * CHUNK,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
        // 3 slots × 2 replicas = 6 reservations, spread 2 per benefactor.
        let total: u64 = (0..3).map(|i| m.benefactor(BenefactorId(i)).used()).sum();
        assert_eq!(total, 6 * CHUNK);
        let meta = m.file(f).unwrap();
        assert_eq!(meta.replicas, 2);
        for idx in 0..3 {
            let homes = meta.homes_of_slot(idx);
            assert_eq!(homes.len(), 2);
            assert_ne!(homes[0], homes[1]);
        }
    }

    #[test]
    fn random_placement_is_deterministic() {
        let mut m = mgr(4, 64);
        let f = m.create_file("/x").unwrap();
        m.fallocate(
            f,
            32 * CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RandomPermutation { seed: 7 },
        )
        .unwrap();
        let meta = m.file(f).unwrap();
        let homes: Vec<_> = (0..32).map(|i| meta.home_of_slot(i)).collect();
        let homes2: Vec<_> = (0..32).map(|i| meta.home_of_slot(i)).collect();
        assert_eq!(homes, homes2);
        // Not all on one benefactor.
        assert!(homes.iter().any(|&h| h != homes[0]));
    }

    #[test]
    fn link_file_shares_chunks_and_freezes_holes() {
        let mut m = mgr(2, 16);
        let var = m.create_file("/var").unwrap();
        m.fallocate(
            var,
            3 * CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
        let c0 = materialize(&mut m, var, 0);
        // Slot 1 stays unmaterialized; slot 2 materialized.
        let c2 = materialize(&mut m, var, 2);

        let ckpt = m.create_file("/ckpt").unwrap();
        m.link_file(ckpt, var).unwrap();
        assert_eq!(m.chunk_refcount(c0), 2);
        assert_eq!(m.chunk_refcount(c2), 2);
        let meta = m.file(ckpt).unwrap();
        assert_eq!(meta.slots[0], Slot::Chunk(c0));
        assert_eq!(meta.slots[1], Slot::Hole);
        assert_eq!(meta.slots[2], Slot::Chunk(c2));

        // No extra physical space for shared chunks.
        assert_eq!(m.physical_bytes(), 2 * CHUNK);

        // Deleting the variable keeps the checkpoint intact.
        m.delete_file(var).unwrap();
        assert_eq!(m.chunk_refcount(c0), 1);
        assert!(m.benefactor(m.chunk_home(c0).unwrap()).has_chunk(c0));
        // Deleting the checkpoint frees everything.
        m.delete_file(ckpt).unwrap();
        assert_eq!(m.chunk_refcount(c0), 0);
        assert_eq!(m.physical_bytes(), 0);
    }

    #[test]
    fn quarantined_benefactor_excluded_from_new_stripes() {
        let mut m = mgr(3, 16);
        m.set_quarantined(BenefactorId(1), true);
        assert_eq!(
            m.placeable_benefactors(),
            vec![BenefactorId(0), BenefactorId(2)]
        );
        assert_eq!(m.quarantined_count(), 1);

        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 4 * CHUNK, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap();
        let stripe = &m.file(f).unwrap().stripe;
        assert!(
            !stripe.contains(&BenefactorId(1)),
            "All-stripe skips the quarantined benefactor"
        );

        // Explicit pins still work: quarantine is not death.
        let y = m.create_file("/y").unwrap();
        m.fallocate(
            y,
            CHUNK,
            StripeSpec::explicit(vec![BenefactorId(1)]),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();

        // Count cannot draw from the quarantined pool either.
        let z = m.create_file("/z").unwrap();
        let err = m
            .fallocate(z, CHUNK, StripeSpec::count(3), PlacementPolicy::RoundRobin)
            .unwrap_err();
        assert!(matches!(err, StoreError::NotEnoughBenefactors { .. }));
    }

    #[test]
    fn chunk_crc_recorded_and_updatable() {
        let mut m = mgr(2, 16);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, CHUNK, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap();
        let c = materialize(&mut m, f, 0);
        let zeros = vec![0u8; CHUNK as usize];
        assert_eq!(m.chunk_crc(c), Some(crate::crc::crc64(&zeros)));
        m.set_chunk_crc(c, 0xDEAD);
        assert_eq!(m.chunk_crc(c), Some(0xDEAD));
        assert_eq!(m.chunk_ids_sorted(), vec![c]);
    }

    #[test]
    fn space_report() {
        let mut m = mgr(2, 4);
        let (total, free) = m.space();
        assert_eq!(total, 8 * CHUNK);
        assert_eq!(free, 8 * CHUNK);
        let f = m.create_file("/x").unwrap();
        m.fallocate(f, 2 * CHUNK, StripeSpec::all(), PlacementPolicy::RoundRobin)
            .unwrap();
        assert_eq!(m.space().1, 6 * CHUNK);
    }
}

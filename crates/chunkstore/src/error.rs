//! Store error types.

use crate::ids::{BenefactorId, ChunkId, FileId};
use std::fmt;

/// Errors surfaced by the aggregate store.
///
/// Marked `#[non_exhaustive]` so downstream matchers must keep a wildcard
/// arm: the store grows failure modes (PR 1 added `BenefactorDown`, this
/// PR adds `ChunkCorrupt`) and mount-level callers should degrade to a
/// generic I/O error for variants they don't know, not fail to compile.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// Lookup of an unknown file id or name.
    NoSuchFile,
    /// A file with this name already exists.
    FileExists(String),
    /// The selected benefactors cannot hold the requested size.
    OutOfSpace { requested: u64, available: u64 },
    /// The benefactor holding the needed chunk is marked dead.
    BenefactorDown(BenefactorId),
    /// Access beyond the fallocated size of a file.
    OutOfBounds {
        file: FileId,
        offset: u64,
        len: u64,
        size: u64,
    },
    /// Operation needs benefactors but none are registered/alive.
    NoBenefactors,
    /// The caller asked for more benefactors than exist.
    NotEnoughBenefactors { requested: usize, alive: usize },
    /// Every reachable copy of the chunk failed CRC verification — the
    /// store refuses to return unverified bytes (DESIGN.md §11).
    /// `benefactor` is the copy whose mismatch was detected last.
    ChunkCorrupt {
        chunk: ChunkId,
        benefactor: BenefactorId,
    },
    /// The placement shard owning the requested keyspace is down and the
    /// retry window ran out (DESIGN.md §12). Only that shard's unleased
    /// keys are affected — leased clients and other shards keep working.
    ShardDown(usize),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchFile => write!(f, "no such file"),
            StoreError::FileExists(name) => write!(f, "file exists: {name}"),
            StoreError::OutOfSpace {
                requested,
                available,
            } => write!(
                f,
                "out of NVM space: requested {}, available {}",
                simcore::bytes::human(*requested),
                simcore::bytes::human(*available)
            ),
            StoreError::BenefactorDown(b) => write!(f, "{b} is down"),
            StoreError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "{file}: access [{offset}, {}) beyond size {size}",
                offset + len
            ),
            StoreError::NoBenefactors => write!(f, "no alive benefactors"),
            StoreError::NotEnoughBenefactors { requested, alive } => {
                write!(f, "requested {requested} benefactors, only {alive} alive")
            }
            StoreError::ChunkCorrupt { chunk, benefactor } => write!(
                f,
                "{chunk} failed CRC verification on every reachable copy (last bad: {benefactor})"
            ),
            StoreError::ShardDown(shard) => {
                write!(f, "placement shard#{shard} is down")
            }
        }
    }
}

impl std::error::Error for StoreError {}

pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parties_involved() {
        let e = StoreError::ChunkCorrupt {
            chunk: ChunkId(7),
            benefactor: BenefactorId(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("chunk#7"), "{msg}");
        assert!(msg.contains("benefactor#2"), "{msg}");

        let e = StoreError::BenefactorDown(BenefactorId(4));
        assert!(e.to_string().contains("benefactor#4"));

        let e = StoreError::OutOfBounds {
            file: FileId(3),
            offset: 10,
            len: 5,
            size: 12,
        };
        let msg = e.to_string();
        assert!(msg.contains("file#3"), "{msg}");
        assert!(msg.contains("[10, 15)"), "{msg}");

        let e = StoreError::ShardDown(2);
        assert!(e.to_string().contains("shard#2"), "{e}");
    }
}

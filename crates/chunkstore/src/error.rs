//! Store error types.

use crate::ids::{BenefactorId, FileId};
use std::fmt;

/// Errors surfaced by the aggregate store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Lookup of an unknown file id or name.
    NoSuchFile,
    /// A file with this name already exists.
    FileExists(String),
    /// The selected benefactors cannot hold the requested size.
    OutOfSpace { requested: u64, available: u64 },
    /// The benefactor holding the needed chunk is marked dead.
    BenefactorDown(BenefactorId),
    /// Access beyond the fallocated size of a file.
    OutOfBounds {
        file: FileId,
        offset: u64,
        len: u64,
        size: u64,
    },
    /// Operation needs benefactors but none are registered/alive.
    NoBenefactors,
    /// The caller asked for more benefactors than exist.
    NotEnoughBenefactors { requested: usize, alive: usize },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchFile => write!(f, "no such file"),
            StoreError::FileExists(name) => write!(f, "file exists: {name}"),
            StoreError::OutOfSpace {
                requested,
                available,
            } => write!(
                f,
                "out of NVM space: requested {}, available {}",
                simcore::bytes::human(*requested),
                simcore::bytes::human(*available)
            ),
            StoreError::BenefactorDown(b) => write!(f, "{b} is down"),
            StoreError::OutOfBounds {
                file,
                offset,
                len,
                size,
            } => write!(
                f,
                "{file}: access [{offset}, {}) beyond size {size}",
                offset + len
            ),
            StoreError::NoBenefactors => write!(f, "no alive benefactors"),
            StoreError::NotEnoughBenefactors { requested, alive } => {
                write!(f, "requested {requested} benefactors, only {alive} alive")
            }
        }
    }
}

impl std::error::Error for StoreError {}

pub type Result<T> = std::result::Result<T, StoreError>;

//! Bitmap-tree slot allocator (DESIGN.md §13).
//!
//! llfree-style two-level structure: a *child* bitmap with one bit per
//! chunk slot (64 slots per word, bit set = allocated) under a summary
//! tree in which a level-`k` bit is set iff the corresponding level-
//! `k-1` word is completely full. Find-first-free, alloc and free are
//! all O(tree depth) = O(log64 slots); the free count is folded into
//! the structure as a plain counter, so `free_count()` is an O(1) read.
//!
//! Crash-recoverable by construction: the only durable state is the
//! leaf bitmap itself. The summary levels and the counter are pure
//! functions of the leaf words and are rebuilt by [`BitAlloc::from_leaf`]
//! — there is no freelist, LRU chain or log whose loss could orphan a
//! slot. Padding bits past `len` are permanently set so the descent can
//! treat every word uniformly.

/// Multi-level bitmap allocator over `len` slots.
#[derive(Debug, Clone)]
pub struct BitAlloc {
    /// `levels[0]` is the leaf bitmap (bit set = slot allocated);
    /// `levels[k][i]` bit `j` is set iff child word
    /// `levels[k-1][i * 64 + j]` is completely full (or padding).
    levels: Vec<Vec<u64>>,
    len: usize,
    free: usize,
}

impl BitAlloc {
    /// An allocator over `len` slots, all free.
    pub fn new(len: usize) -> Self {
        let words = len.div_ceil(64).max(1);
        let mut leaf = vec![0u64; words];
        for i in len..words * 64 {
            leaf[i / 64] |= 1 << (i % 64);
        }
        Self::from_leaf(leaf, len)
    }

    /// Rebuild the summary tree and the free counter from a leaf bitmap
    /// alone — the crash-recovery path: the leaves are the only state
    /// that needs to survive.
    ///
    /// Padding bits (indices `>= len`) must be set.
    pub fn from_leaf(leaf: Vec<u64>, len: usize) -> Self {
        assert_eq!(leaf.len(), len.div_ceil(64).max(1), "leaf word count");
        let mut free = 0usize;
        for (w, &word) in leaf.iter().enumerate() {
            let in_range = len.saturating_sub(w * 64).min(64);
            if in_range < 64 {
                assert_eq!(
                    word >> in_range,
                    u64::MAX >> in_range,
                    "padding bits past len must be set"
                );
            }
            free += in_range - (word & in_range_mask(in_range)).count_ones() as usize;
        }
        let mut levels = vec![leaf];
        while levels.last().unwrap().len() > 1 {
            let child = levels.last().unwrap();
            let mut up = vec![0u64; child.len().div_ceil(64)];
            for (i, w) in up.iter_mut().enumerate() {
                for j in 0..64 {
                    let ci = i * 64 + j;
                    if ci >= child.len() || child[ci] == u64::MAX {
                        *w |= 1 << j;
                    }
                }
            }
            levels.push(up);
        }
        BitAlloc { levels, len, free }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slots exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots — O(1), the counter is folded in-place.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Allocated slots — O(1).
    pub fn allocated(&self) -> usize {
        self.len - self.free
    }

    /// Whether `slot` is currently allocated.
    pub fn is_allocated(&self, slot: usize) -> bool {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        self.levels[0][slot / 64] >> (slot % 64) & 1 == 1
    }

    /// The leaf bitmap (the only durable state).
    pub fn leaf_words(&self) -> &[u64] {
        &self.levels[0]
    }

    /// Allocate the lowest free slot: O(tree depth) descent choosing the
    /// first non-full child at every level, so the result is the
    /// deterministic find-first-free slot.
    pub fn alloc(&mut self) -> Option<usize> {
        if self.free == 0 {
            return None;
        }
        let mut wi = 0usize;
        for l in (1..self.levels.len()).rev() {
            let j = (!self.levels[l][wi]).trailing_zeros() as usize;
            debug_assert!(j < 64, "summary claims free space but word is full");
            wi = wi * 64 + j;
        }
        let j = (!self.levels[0][wi]).trailing_zeros() as usize;
        let slot = wi * 64 + j;
        debug_assert!(slot < self.len);
        self.free -= 1;
        let (mut wi, mut bit) = (wi, j);
        for l in 0..self.levels.len() {
            self.levels[l][wi] |= 1 << bit;
            if self.levels[l][wi] != u64::MAX || l + 1 == self.levels.len() {
                break;
            }
            // word became full: propagate the summary bit upward
            bit = wi % 64;
            wi /= 64;
        }
        Some(slot)
    }

    /// Free an allocated slot; panics on double free (allocation books
    /// out of balance are a logic error, not a recoverable condition).
    pub fn release(&mut self, slot: usize) {
        assert!(slot < self.len, "slot {slot} out of range {}", self.len);
        let (mut wi, mut bit) = (slot / 64, slot % 64);
        assert!(
            self.levels[0][wi] >> bit & 1 == 1,
            "double free of slot {slot}"
        );
        self.free += 1;
        for l in 0..self.levels.len() {
            let was_full = self.levels[l][wi] == u64::MAX;
            self.levels[l][wi] &= !(1 << bit);
            if !was_full || l + 1 == self.levels.len() {
                break;
            }
            // word was full: clear the summary bit upward
            bit = wi % 64;
            wi /= 64;
        }
    }

    /// Verify every summary bit against its child word and the folded
    /// counter against a leaf sweep. Test support for the consistency
    /// properties in `tests/bitalloc_model.rs`.
    #[doc(hidden)]
    pub fn assert_consistent(&self) {
        let mut free = 0usize;
        for slot in 0..self.len {
            if self.levels[0][slot / 64] >> (slot % 64) & 1 == 0 {
                free += 1;
            }
        }
        assert_eq!(free, self.free, "folded free counter out of sync");
        for l in 1..self.levels.len() {
            let (child, up) = {
                let (a, b) = self.levels.split_at(l);
                (&a[l - 1], &b[0])
            };
            for (i, &w) in up.iter().enumerate() {
                for j in 0..64 {
                    let ci = i * 64 + j;
                    let full = ci >= child.len() || child[ci] == u64::MAX;
                    assert_eq!(
                        w >> j & 1 == 1,
                        full,
                        "summary level {l} word {i} bit {j} out of sync"
                    );
                }
            }
        }
    }
}

fn in_range_mask(in_range: usize) -> u64 {
    if in_range == 64 {
        u64::MAX
    } else {
        (1u64 << in_range) - 1
    }
}

/// Flat growable bitmap set with an O(1) folded cardinality — the same
/// substrate as [`BitAlloc`] without the summary tree, for dense small-
/// integer sets (per-shard lease membership, DESIGN.md §13).
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    count: usize,
}

impl BitSet {
    /// An empty set; storage grows on insert.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (i % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.count += 1;
        true
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let w = i / 64;
        if w >= self.words.len() || self.words[w] & (1 << (i % 64)) == 0 {
            return false;
        }
        self.words[w] &= !(1 << (i % 64));
        self.count -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && self.words[w] >> (i % 64) & 1 == 1
    }

    /// Cardinality — O(1) folded counter.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Remove every member, returning how many there were.
    pub fn clear(&mut self) -> usize {
        let n = self.count;
        self.words.clear();
        self.count = 0;
        n
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let j = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(w * 64 + j)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_find_first_free() {
        let mut a = BitAlloc::new(200);
        for i in 0..200 {
            assert_eq!(a.alloc(), Some(i));
        }
        assert_eq!(a.alloc(), None);
        assert_eq!(a.free_count(), 0);
        a.release(77);
        a.release(3);
        a.release(130);
        assert_eq!(a.free_count(), 3);
        // always the lowest free slot, regardless of release order
        assert_eq!(a.alloc(), Some(3));
        assert_eq!(a.alloc(), Some(77));
        assert_eq!(a.alloc(), Some(130));
        assert_eq!(a.alloc(), None);
    }

    #[test]
    fn deep_tree_padding_is_respected() {
        // three levels: 64 * 64 < len <= 64^3
        let len = 64 * 64 * 3 + 17;
        let mut a = BitAlloc::new(len);
        assert_eq!(a.levels.len(), 3);
        for i in 0..len {
            assert_eq!(a.alloc(), Some(i), "padding bit leaked into allocation");
        }
        assert_eq!(a.alloc(), None);
        a.assert_consistent();
        a.release(len - 1);
        assert_eq!(a.alloc(), Some(len - 1));
    }

    #[test]
    fn zero_and_one_slot_edges() {
        let mut zero = BitAlloc::new(0);
        assert_eq!(zero.alloc(), None);
        assert_eq!(zero.free_count(), 0);
        let mut one = BitAlloc::new(1);
        assert_eq!(one.alloc(), Some(0));
        assert_eq!(one.alloc(), None);
        one.release(0);
        assert_eq!(one.alloc(), Some(0));
    }

    #[test]
    fn from_leaf_rebuilds_summaries_and_counter() {
        // crash-recovery claim: mutate, serialize the leaves, rebuild,
        // and the allocator must be indistinguishable from the original.
        let len = 64 * 64 + 9;
        let mut a = BitAlloc::new(len);
        for _ in 0..1000 {
            a.alloc();
        }
        for s in (0..1000).step_by(3) {
            a.release(s);
        }
        let rebuilt = BitAlloc::from_leaf(a.leaf_words().to_vec(), len);
        rebuilt.assert_consistent();
        assert_eq!(rebuilt.free_count(), a.free_count());
        let (mut x, mut y) = (a, rebuilt);
        loop {
            let (sa, sb) = (x.alloc(), y.alloc());
            assert_eq!(sa, sb);
            if sa.is_none() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BitAlloc::new(10);
        let s = a.alloc().unwrap();
        a.release(s);
        a.release(s);
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(s.insert(200));
        assert!(!s.insert(5));
        assert!(s.contains(5) && s.contains(200) && !s.contains(6));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 200]);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.count(), 1);
        assert_eq!(s.clear(), 1);
        assert!(s.is_empty() && !s.contains(200));
    }
}

//! # chunkstore — the aggregate NVM store
//!
//! The distributed storage substrate of the paper (§II, "Background:
//! Aggregate NVM Store"): compute nodes run *benefactor* processes that
//! contribute their node-local SSDs to a *manager*, which presents a
//! unified, striped chunk store. Files are split into 256 KiB chunks,
//! placed round-robin over a per-file benefactor list; `posix_fallocate`
//! reserves space without moving data; chunks are reference-counted so
//! `ssdcheckpoint()` can *link* a variable's chunks into a restart file
//! and later writes copy-on-write.
//!
//! * [`ids`] — typed file/chunk/benefactor identifiers;
//! * [`bitalloc`] — llfree-style bitmap-tree slot allocator backing the
//!   benefactor/manager allocation path (DESIGN.md §13);
//! * [`benefactor`] — the SSD-backed chunk server;
//! * [`manager`] — metadata: allocation, striping, health, linking;
//! * [`store`] — the timed client-facing facade charging RPC, network and
//!   SSD costs;
//! * [`loc_cache`] — client-side chunk-location cache (epoch-invalidated)
//!   feeding the batched, pipelined data path;
//! * [`crc`] — CRC-64/XZ chunk digests backing verified reads and the
//!   scrub daemon (DESIGN.md §11);
//! * [`shardmgr`] — the sharded placement manager (DESIGN.md §12):
//!   consistent-hash ring over placement keys plus lease-based client
//!   delegation, so hot paths skip the manager entirely.

pub mod benefactor;
pub mod bitalloc;
pub mod crc;
pub mod error;
pub mod ids;
pub mod loc_cache;
pub mod manager;
pub mod shardmgr;
pub mod store;

pub use benefactor::Benefactor;
pub use bitalloc::{BitAlloc, BitSet};
pub use crc::crc64;
pub use error::{Result, StoreError};
pub use ids::{BenefactorId, ChunkId, FileId};
pub use loc_cache::LocationCache;
pub use manager::{ChunkMeta, FileMeta, Manager, PlacementPolicy, Slot, StripeSpec, StripeWidth};
pub use shardmgr::{HashRing, ShardSet, DEFAULT_RING_SEED};
pub use store::{AggregateStore, BatchWrite, ChunkPayload, RepairReport, ScrubConfig, StoreConfig};

//! CRC64 checksums for chunk integrity (DESIGN.md §11, §13).
//!
//! Every materialized chunk's full 256 KiB content is summarized by a
//! CRC-64/XZ digest kept in the manager's chunk metadata. The reflected
//! ECMA-182 polynomial is the same one `xz` and the Linux kernel use, so
//! digests computed here are directly comparable with standard tooling.
//!
//! The implementation is table-driven slice-by-8 with tables generated at
//! compile time — the store checksums whole chunks on every write-back, so
//! this sits on the data path and needs to run at memory-ish speed without
//! pulling in an external crate.
//!
//! ## Incremental updates
//!
//! CRC is linear over GF(2): for equal-length messages,
//! `crc(M ⊕ D) = crc(M) ⊕ raw(D)` where `raw` is the init-free,
//! xorout-free register. A partial overwrite of a chunk is the XOR of a
//! delta that is zero outside the dirty run, and leading zero bytes do
//! not move a zero raw register, so the whole-chunk digest can be
//! updated from just the dirty bytes: absorb `old ⊕ new` into a zero
//! register, advance it over the trailing zero bytes in O(log n) via
//! precomputed GF(2) shift operators ([`crc64_splice`]), and XOR into
//! the recorded digest. This turns the per-page write-back digest from
//! O(chunk) to O(dirty bytes) — the dominant host-time cost of the
//! simulator's write path (EXPERIMENTS.md, host-speed table).

/// Reflected ECMA-182 polynomial (CRC-64/XZ).
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn make_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u64; 256]; 8] = make_tables();

/// CRC-64/XZ digest of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    !crc64_absorb_raw(!0u64, data)
}

/// Absorb `data` into a raw CRC register (no init inversion, no final
/// xor). `crc64(data) == !crc64_absorb_raw(!0, data)`.
pub fn crc64_absorb_raw(mut crc: u64, data: &[u8]) -> u64 {
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        crc ^= u64::from_le_bytes(w.try_into().expect("8-byte window"));
        crc = fold8(crc);
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Absorb the byte-wise XOR of two equal-length slices into a raw CRC
/// register without materializing the XOR-ed buffer.
pub fn crc64_absorb_raw_xor(mut crc: u64, a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "xor absorb needs equal lengths");
    let mut aw = a.chunks_exact(8);
    let mut bw = b.chunks_exact(8);
    for (x, y) in (&mut aw).zip(&mut bw) {
        crc ^= u64::from_le_bytes(x.try_into().expect("8-byte window"))
            ^ u64::from_le_bytes(y.try_into().expect("8-byte window"));
        crc = fold8(crc);
    }
    for (&x, &y) in aw.remainder().iter().zip(bw.remainder()) {
        crc = TABLES[0][((crc ^ (x ^ y) as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

#[inline]
fn fold8(crc: u64) -> u64 {
    TABLES[7][(crc & 0xFF) as usize]
        ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
        ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
        ^ TABLES[4][((crc >> 24) & 0xFF) as usize]
        ^ TABLES[3][((crc >> 32) & 0xFF) as usize]
        ^ TABLES[2][((crc >> 40) & 0xFF) as usize]
        ^ TABLES[1][((crc >> 48) & 0xFF) as usize]
        ^ TABLES[0][(crc >> 56) as usize]
}

/// GF(2) operator matrices: `ZERO_OPS[i]` maps a raw CRC register across
/// `2^i` zero bytes (column k is the image of register bit k). Built
/// once by squaring the one-byte step, zlib `crc_combine` style.
fn zero_ops() -> &'static [[u64; 64]; 64] {
    use std::sync::OnceLock;
    static OPS: OnceLock<Box<[[u64; 64]; 64]>> = OnceLock::new();
    OPS.get_or_init(|| {
        let mut step = [0u64; 64];
        // absorbing one zero byte: crc = T0[crc & 0xFF] ^ (crc >> 8)
        for (k, col) in step.iter_mut().enumerate() {
            *col = if k < 8 {
                TABLES[0][1usize << k]
            } else {
                1u64 << (k - 8)
            };
        }
        let mut ops = Box::new([[0u64; 64]; 64]);
        ops[0] = step;
        for i in 1..64 {
            let prev = ops[i - 1];
            for k in 0..64 {
                ops[i][k] = mat_vec(&prev, prev[k]);
            }
        }
        ops
    })
}

#[inline]
fn mat_vec(m: &[u64; 64], mut v: u64) -> u64 {
    let mut out = 0u64;
    let mut k = 0;
    while v != 0 {
        if v & 1 != 0 {
            out ^= m[k];
        }
        v >>= 1;
        k += 1;
    }
    out
}

/// Advance a raw CRC register across `n` zero bytes in O(log n).
pub fn crc64_advance_zeros(mut crc: u64, mut n: u64) -> u64 {
    let ops = zero_ops();
    let mut i = 0;
    while n != 0 {
        if n & 1 != 0 {
            crc = mat_vec(&ops[i], crc);
        }
        n >>= 1;
        i += 1;
    }
    crc
}

/// CRC-64/XZ of `n` zero bytes, in O(log n).
pub fn crc64_zeros(n: u64) -> u64 {
    !crc64_advance_zeros(!0u64, n)
}

/// Update the digest of a `len`-byte buffer after the bytes at
/// `[off, off + new.len())` change from `old_bytes` to `new_bytes`:
/// O(dirty + log len) instead of re-scanning the buffer. `old` must be
/// the digest of the buffer *with* `old_bytes` in place.
pub fn crc64_splice(old: u64, len: u64, off: u64, old_bytes: &[u8], new_bytes: &[u8]) -> u64 {
    assert_eq!(old_bytes.len(), new_bytes.len(), "splice run lengths");
    assert!(
        off + new_bytes.len() as u64 <= len,
        "splice run out of range"
    );
    let delta = crc64_absorb_raw_xor(0, old_bytes, new_bytes);
    old ^ crc64_advance_zeros(delta, len - off - new_bytes.len() as u64)
}

/// [`crc64_splice`] for the case where the old bytes are all zero
/// (freshly composed chunks): skips the XOR stream.
pub fn crc64_splice_fresh(old: u64, len: u64, off: u64, new_bytes: &[u8]) -> u64 {
    assert!(
        off + new_bytes.len() as u64 <= len,
        "splice run out of range"
    );
    let delta = crc64_absorb_raw(0, new_bytes);
    old ^ crc64_advance_zeros(delta, len - off - new_bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitwise reference implementation, for cross-checking the tables.
    fn crc64_bitwise(data: &[u8]) -> u64 {
        let mut crc = !0u64;
        for &b in data {
            crc ^= b as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    fn pattern(len: usize, seed: u32) -> Vec<u8> {
        (0..len as u32)
            .map(|i| (i.wrapping_mul(131).wrapping_add(seed) % 251) as u8)
            .collect()
    }

    #[test]
    fn known_answer_vectors() {
        // CRC-64/XZ check value from the standard catalogue.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference() {
        // Cover every alignment of head/tail around the 8-byte windows.
        let data: Vec<u8> = pattern(1021, 0);
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            assert_eq!(
                crc64(&data[..len]),
                crc64_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 256 * 1024];
        let clean = crc64(&data);
        for pos in [0usize, 1, 4095, 131072, 256 * 1024 - 1] {
            data[pos] ^= 0x01;
            assert_ne!(crc64(&data), clean, "flip at {pos} undetected");
            data[pos] ^= 0x01;
        }
        assert_eq!(crc64(&data), clean);
    }

    #[test]
    fn zeros_matches_direct_scan() {
        for n in [0u64, 1, 7, 8, 9, 63, 64, 255, 256, 4096, 262_144, 1 << 20] {
            assert_eq!(crc64_zeros(n), crc64(&vec![0u8; n as usize]), "n {n}");
        }
    }

    #[test]
    fn advance_zeros_matches_absorbing_zero_bytes() {
        let data = pattern(123, 7);
        let raw = crc64_absorb_raw(0, &data);
        for n in [0usize, 1, 5, 64, 1000, 65536] {
            assert_eq!(
                crc64_advance_zeros(raw, n as u64),
                crc64_absorb_raw(raw, &vec![0u8; n]),
                "n {n}"
            );
        }
    }

    #[test]
    fn splice_matches_full_recompute() {
        let len = 8192usize;
        let mut buf = pattern(len, 3);
        let mut digest = crc64(&buf);
        // a spread of offsets/lengths incl. unaligned and boundary runs
        for (off, run) in [
            (0usize, 100usize),
            (1, 7),
            (4000, 4096),
            (8191, 1),
            (0, 8192),
        ] {
            let new_bytes = pattern(run, off as u32 + 11);
            digest = crc64_splice(
                digest,
                len as u64,
                off as u64,
                &buf[off..off + run],
                &new_bytes,
            );
            buf[off..off + run].copy_from_slice(&new_bytes);
            assert_eq!(digest, crc64(&buf), "off {off} run {run}");
        }
    }

    #[test]
    fn splice_fresh_composes_zero_based_chunks() {
        let len = 16384usize;
        let mut buf = vec![0u8; len];
        let mut digest = crc64_zeros(len as u64);
        for (off, run) in [(512usize, 1000usize), (9000, 4096), (16000, 384)] {
            let new_bytes = pattern(run, off as u32);
            digest = crc64_splice_fresh(digest, len as u64, off as u64, &new_bytes);
            buf[off..off + run].copy_from_slice(&new_bytes);
        }
        assert_eq!(digest, crc64(&buf));
    }
}

//! CRC64 checksums for chunk integrity (DESIGN.md §11).
//!
//! Every materialized chunk's full 256 KiB content is summarized by a
//! CRC-64/XZ digest kept in the manager's chunk metadata. The reflected
//! ECMA-182 polynomial is the same one `xz` and the Linux kernel use, so
//! digests computed here are directly comparable with standard tooling.
//!
//! The implementation is table-driven slice-by-8 with tables generated at
//! compile time — the store checksums whole chunks on every write-back, so
//! this sits on the data path and needs to run at memory-ish speed without
//! pulling in an external crate.

/// Reflected ECMA-182 polynomial (CRC-64/XZ).
const POLY: u64 = 0xC96C_5795_D787_0F42;

const fn make_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u64; 256]; 8] = make_tables();

/// CRC-64/XZ digest of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = !0u64;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        crc ^= u64::from_le_bytes(w.try_into().expect("8-byte window"));
        crc = TABLES[7][(crc & 0xFF) as usize]
            ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
            ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
            ^ TABLES[4][((crc >> 24) & 0xFF) as usize]
            ^ TABLES[3][((crc >> 32) & 0xFF) as usize]
            ^ TABLES[2][((crc >> 40) & 0xFF) as usize]
            ^ TABLES[1][((crc >> 48) & 0xFF) as usize]
            ^ TABLES[0][(crc >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bitwise reference implementation, for cross-checking the tables.
    fn crc64_bitwise(data: &[u8]) -> u64 {
        let mut crc = !0u64;
        for &b in data {
            crc ^= b as u64;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_answer_vectors() {
        // CRC-64/XZ check value from the standard catalogue.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference() {
        // Cover every alignment of head/tail around the 8-byte windows.
        let data: Vec<u8> = (0..1021u32).map(|i| (i * 131 % 251) as u8).collect();
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1021] {
            assert_eq!(
                crc64(&data[..len]),
                crc64_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 256 * 1024];
        let clean = crc64(&data);
        for pos in [0usize, 1, 4095, 131072, 256 * 1024 - 1] {
            data[pos] ^= 0x01;
            assert_ne!(crc64(&data), clean, "flip at {pos} undetected");
            data[pos] ^= 0x01;
        }
        assert_eq!(crc64(&data), clean);
    }
}

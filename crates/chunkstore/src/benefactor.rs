//! The benefactor process: contributes a node-local SSD (or a partition of
//! it) to the aggregate store and serves chunk reads/writes from it.
//!
//! Benefactors store every chunk as an individual object ("benefactors
//! store chunks as individual files", §III-D). Space accounting follows
//! the manager's reservation protocol: a `posix_fallocate` on a striped
//! file reserves whole chunk slots here before any data moves.

use crate::ids::ChunkId;
use devices::Ssd;
use simcore::{Grant, VTime};
use std::collections::HashMap;

/// One benefactor's state: its SSD, its chunk objects and its space books.
#[derive(Debug)]
pub struct Benefactor {
    /// Cluster node hosting this benefactor (for network routing).
    pub node: usize,
    /// The contributed device.
    ssd: Ssd,
    /// Contributed capacity in bytes (≤ the SSD's size).
    capacity: u64,
    /// Chunk slots reserved by fallocate but not yet materialized.
    reserved_slots: u64,
    /// Materialized chunks currently stored.
    chunks: HashMap<ChunkId, Box<[u8]>>,
    alive: bool,
    chunk_size: u64,
}

impl Benefactor {
    pub fn new(node: usize, ssd: Ssd, capacity: u64, chunk_size: u64) -> Self {
        Benefactor {
            node,
            ssd,
            capacity,
            reserved_slots: 0,
            chunks: HashMap::new(),
            alive: true,
            chunk_size,
        }
    }

    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Take the benefactor offline (simulated failure / decommission).
    pub fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of capacity consumed by reservations + materialized chunks.
    pub fn used(&self) -> u64 {
        (self.reserved_slots + self.chunks.len() as u64) * self.chunk_size
    }

    pub fn free(&self) -> u64 {
        self.capacity - self.used().min(self.capacity)
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Reserve `slots` chunk slots; the manager has already verified space.
    pub(crate) fn reserve_slots(&mut self, slots: u64) {
        self.reserved_slots += slots;
        debug_assert!(self.used() <= self.capacity);
    }

    pub(crate) fn release_slots(&mut self, slots: u64) {
        assert!(self.reserved_slots >= slots, "slot accounting underflow");
        self.reserved_slots -= slots;
    }

    /// Whether a chunk slot can be converted or newly allocated right now.
    pub(crate) fn can_allocate_chunk(&self, consumes_reservation: bool) -> bool {
        if consumes_reservation {
            self.reserved_slots > 0
        } else {
            self.used() + self.chunk_size <= self.capacity
        }
    }

    /// Materialize a chunk, charging the SSD for writing `payload_bytes`
    /// (which may be less than a full chunk when only dirty pages arrive).
    pub(crate) fn store_chunk(
        &mut self,
        t: VTime,
        id: ChunkId,
        data: Box<[u8]>,
        payload_bytes: u64,
        consumes_reservation: bool,
    ) -> Grant {
        debug_assert_eq!(data.len() as u64, self.chunk_size);
        if consumes_reservation {
            self.release_slots(1);
        }
        let prev = self.chunks.insert(id, data);
        assert!(prev.is_none(), "chunk {id} stored twice");
        self.ssd.write_at(t, payload_bytes)
    }

    /// Overwrite pages of an existing chunk, charging only the dirty bytes.
    pub(crate) fn update_chunk(
        &mut self,
        t: VTime,
        id: ChunkId,
        updates: &[(u64, &[u8])],
    ) -> Grant {
        let chunk = self.chunks.get_mut(&id).expect("update of missing chunk");
        let mut bytes = 0u64;
        for (off, data) in updates {
            let off = *off as usize;
            chunk[off..off + data.len()].copy_from_slice(data);
            bytes += data.len() as u64;
        }
        self.ssd.write_at(t, bytes)
    }

    /// Read a whole chunk, charging the SSD.
    pub(crate) fn read_chunk(&self, t: VTime, id: ChunkId) -> (Grant, Box<[u8]>) {
        let data = self.chunks.get(&id).expect("read of missing chunk").clone();
        let g = self.ssd.read_at(t, self.chunk_size);
        (g, data)
    }

    /// Read a chunk without charging time (debugging/inspection).
    pub fn peek_chunk(&self, id: ChunkId) -> Option<&[u8]> {
        self.chunks.get(&id).map(|b| &b[..])
    }

    /// Drop a chunk and free its space.
    pub(crate) fn drop_chunk(&mut self, id: ChunkId) {
        let prev = self.chunks.remove(&id);
        assert!(prev.is_some(), "dropping missing chunk {id}");
    }

    /// Whether this benefactor currently stores `id`.
    pub fn has_chunk(&self, id: ChunkId) -> bool {
        self.chunks.contains_key(&id)
    }

    /// Every chunk physically present on this benefactor, sorted (for
    /// deterministic reconcile/repair sweeps).
    pub fn chunk_ids(&self) -> Vec<ChunkId> {
        let mut ids: Vec<ChunkId> = self.chunks.keys().copied().collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids
    }

    /// Duplicate a chunk's bytes into a new chunk id on this benefactor,
    /// charging a local SSD read + write (the server-side COW path used
    /// when a shared chunk is modified without the client holding all of
    /// its clean bytes).
    pub(crate) fn clone_chunk(&mut self, t: VTime, src: ChunkId, dst: ChunkId) -> Grant {
        let data = self
            .chunks
            .get(&src)
            .expect("clone of missing chunk")
            .clone();
        let g_read = self.ssd.read_at(t, self.chunk_size);
        let prev = self.chunks.insert(dst, data);
        assert!(prev.is_none(), "clone target {dst} exists");
        self.ssd.write_at(g_read.end, self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::INTEL_X25E;
    use simcore::StatsRegistry;

    const CHUNK: u64 = 256 * 1024;

    fn bene(cap_chunks: u64) -> Benefactor {
        let ssd = Ssd::new("b0.ssd", INTEL_X25E, &StatsRegistry::new());
        Benefactor::new(0, ssd, cap_chunks * CHUNK, CHUNK)
    }

    fn zero_chunk() -> Box<[u8]> {
        vec![0u8; CHUNK as usize].into_boxed_slice()
    }

    #[test]
    fn space_accounting_reserve_then_materialize() {
        let mut b = bene(4);
        b.reserve_slots(2);
        assert_eq!(b.used(), 2 * CHUNK);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        assert_eq!(b.used(), 2 * CHUNK, "materialization keeps the slot");
        assert_eq!(b.chunk_count(), 1);
        assert_eq!(b.free(), 2 * CHUNK);
    }

    #[test]
    fn store_and_read_roundtrip() {
        let mut b = bene(4);
        b.reserve_slots(1);
        let mut data = zero_chunk();
        data[7] = 42;
        b.store_chunk(VTime::ZERO, ChunkId(9), data, CHUNK, true);
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(9));
        assert_eq!(read[7], 42);
    }

    #[test]
    fn update_charges_only_dirty_bytes() {
        let mut b = bene(4);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        let before = b.ssd().bytes_written();
        let page = vec![1u8; 4096];
        b.update_chunk(VTime::ZERO, ChunkId(1), &[(4096, &page)]);
        assert_eq!(b.ssd().bytes_written() - before, 4096);
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(1));
        assert_eq!(read[4096], 1);
        assert_eq!(read[0], 0);
        assert_eq!(read[8192], 0);
    }

    #[test]
    fn clone_chunk_copies_data() {
        let mut b = bene(4);
        b.reserve_slots(1);
        let mut data = zero_chunk();
        data[100] = 5;
        b.store_chunk(VTime::ZERO, ChunkId(1), data, CHUNK, true);
        b.clone_chunk(VTime::ZERO, ChunkId(1), ChunkId(2));
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(2));
        assert_eq!(read[100], 5);
        assert!(b.has_chunk(ChunkId(1)));
        assert_eq!(b.chunk_count(), 2);
    }

    #[test]
    fn drop_chunk_frees_space() {
        let mut b = bene(2);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        assert_eq!(b.used(), CHUNK);
        b.drop_chunk(ChunkId(1));
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn can_allocate_checks() {
        let mut b = bene(1);
        assert!(b.can_allocate_chunk(false));
        assert!(!b.can_allocate_chunk(true), "no reservation yet");
        b.reserve_slots(1);
        assert!(b.can_allocate_chunk(true));
        assert!(!b.can_allocate_chunk(false), "capacity exhausted");
    }

    #[test]
    fn alive_flag() {
        let mut b = bene(1);
        assert!(b.is_alive());
        b.set_alive(false);
        assert!(!b.is_alive());
    }
}

//! The benefactor process: contributes a node-local SSD (or a partition of
//! it) to the aggregate store and serves chunk reads/writes from it.
//!
//! Benefactors store every chunk as an individual object ("benefactors
//! store chunks as individual files", §III-D). Space accounting follows
//! the manager's reservation protocol: a `posix_fallocate` on a striped
//! file reserves whole chunk slots here before any data moves.

use crate::bitalloc::BitAlloc;
use crate::ids::ChunkId;
use devices::Ssd;
use simcore::rng::child_seed;
use simcore::{Grant, VTime};
use std::collections::HashMap;

/// One benefactor's state: its SSD, its chunk objects and its space books.
///
/// Space accounting is a two-level bitmap tree ([`BitAlloc`]) over the
/// benefactor's chunk slots: every reservation and every materialized
/// chunk owns exactly one slot bit. Free space is the allocator's O(1)
/// folded counter, and the whole allocation state is recoverable from
/// the leaf bitmap alone (DESIGN.md §13).
#[derive(Debug)]
pub struct Benefactor {
    /// Cluster node hosting this benefactor (for network routing).
    pub node: usize,
    /// The contributed device.
    ssd: Ssd,
    /// Contributed capacity in bytes (≤ the SSD's size).
    capacity: u64,
    /// Slot allocator: one bit per chunk-sized slot of `capacity`.
    slots: BitAlloc,
    /// Slots reserved by fallocate but not yet materialized (LIFO).
    reserved: Vec<usize>,
    /// Materialized chunks currently stored, each bound to its slot.
    chunks: HashMap<ChunkId, (usize, Box<[u8]>)>,
    alive: bool,
    /// Excluded from placement by the scrub daemon (DESIGN.md §11):
    /// existing copies stay readable and repairable-from, but no new
    /// chunk lands here.
    quarantined: bool,
    /// One-shot torn-write arm: the next chunk write persists only the
    /// first half of each dirty run (fault injection).
    torn_armed: bool,
    /// Persistent media degradation: probability (basis points) that a
    /// chunk write flips a stored byte, with its seed-stable draw stream.
    corrupt_rate_bp: u32,
    corrupt_seed: u64,
    corrupt_stream: u64,
    chunk_size: u64,
}

impl Benefactor {
    pub fn new(node: usize, ssd: Ssd, capacity: u64, chunk_size: u64) -> Self {
        Benefactor {
            node,
            ssd,
            capacity,
            slots: BitAlloc::new((capacity / chunk_size) as usize),
            reserved: Vec::new(),
            chunks: HashMap::new(),
            alive: true,
            quarantined: false,
            torn_armed: false,
            corrupt_rate_bp: 0,
            corrupt_seed: 0,
            corrupt_stream: 0,
            chunk_size,
        }
    }

    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Take the benefactor offline (simulated failure / decommission).
    ///
    /// Crate-internal: external callers go through `Manager::set_alive`,
    /// which also maintains the incremental alive/placeable sets.
    pub(crate) fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    /// Whether the scrub daemon has excluded this benefactor from placement.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Crate-internal: external callers go through `Manager::set_quarantined`.
    pub(crate) fn set_quarantined(&mut self, quarantined: bool) {
        self.quarantined = quarantined;
    }

    /// Eligible to receive new chunks: online and not quarantined.
    pub fn is_placeable(&self) -> bool {
        self.alive && !self.quarantined
    }

    /// Arm a one-shot torn write: the next chunk write on this benefactor
    /// persists only the first half of each dirty run.
    pub fn arm_torn_write(&mut self) {
        self.torn_armed = true;
    }

    /// Install a persistent per-write corruption rate (basis points). Each
    /// subsequent chunk write draws from a seed-stable stream and, when the
    /// draw lands under the rate, flips one stored byte.
    pub fn set_corruption_rate(&mut self, rate_bp: u32, seed: u64) {
        self.corrupt_rate_bp = rate_bp;
        self.corrupt_seed = seed;
        self.corrupt_stream = 0;
    }

    /// Flip one stored byte of `id` (XOR 0xFF at `offset` mod chunk size).
    /// Returns false when the chunk is not present here. Data-only: no
    /// virtual time is charged — silent corruption is free by definition.
    pub fn corrupt_chunk(&mut self, id: ChunkId, offset: u64) -> bool {
        match self.chunks.get_mut(&id) {
            Some((_, data)) => {
                let at = (offset % self.chunk_size) as usize;
                data[at] ^= 0xFF;
                true
            }
            None => false,
        }
    }

    /// Apply the persistent corruption-rate draw after a chunk write.
    fn degrade_after_write(&mut self, id: ChunkId) {
        if self.corrupt_rate_bp == 0 {
            return;
        }
        let draw = child_seed(self.corrupt_seed, self.corrupt_stream);
        self.corrupt_stream += 1;
        if draw % 10_000 < self.corrupt_rate_bp as u64 {
            let off = child_seed(self.corrupt_seed, self.corrupt_stream);
            self.corrupt_stream += 1;
            self.corrupt_chunk(id, off % self.chunk_size);
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes of capacity consumed by reservations + materialized chunks.
    /// O(1): the allocator's folded counter.
    pub fn used(&self) -> u64 {
        self.slots.allocated() as u64 * self.chunk_size
    }

    /// O(1): free slots × chunk size.
    pub fn free(&self) -> u64 {
        self.slots.free_count() as u64 * self.chunk_size
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The slot allocator itself (read-only; for consistency checks).
    pub fn slot_allocator(&self) -> &BitAlloc {
        &self.slots
    }

    /// Reserve `slots` chunk slots; the manager has already verified space.
    pub(crate) fn reserve_slots(&mut self, slots: u64) {
        for _ in 0..slots {
            let s = self.slots.alloc().expect("reservation beyond capacity");
            self.reserved.push(s);
        }
    }

    pub(crate) fn release_slots(&mut self, slots: u64) {
        assert!(
            self.reserved.len() as u64 >= slots,
            "slot accounting underflow"
        );
        for _ in 0..slots {
            let s = self.reserved.pop().unwrap();
            self.slots.release(s);
        }
    }

    /// Whether a chunk slot can be converted or newly allocated right now.
    pub(crate) fn can_allocate_chunk(&self, consumes_reservation: bool) -> bool {
        if consumes_reservation {
            !self.reserved.is_empty()
        } else {
            self.slots.free_count() > 0
        }
    }

    /// Materialize a chunk, charging the SSD for writing `payload_bytes`
    /// (which may be less than a full chunk when only dirty pages arrive).
    pub(crate) fn store_chunk(
        &mut self,
        t: VTime,
        id: ChunkId,
        mut data: Box<[u8]>,
        payload_bytes: u64,
        consumes_reservation: bool,
    ) -> Grant {
        debug_assert_eq!(data.len() as u64, self.chunk_size);
        // A materialized chunk owns one slot bit: either the reservation's
        // (handed over here) or a freshly allocated one.
        let slot = if consumes_reservation {
            self.reserved.pop().expect("slot accounting underflow")
        } else {
            self.slots.alloc().expect("chunk store over capacity")
        };
        if self.torn_armed {
            // Torn write on a fresh materialization: the tail of the chunk
            // never reaches the media, leaving the pre-image (zeros).
            self.torn_armed = false;
            let half = data.len() / 2;
            data[half..].fill(0);
        }
        let prev = self.chunks.insert(id, (slot, data));
        assert!(prev.is_none(), "chunk {id} stored twice");
        self.degrade_after_write(id);
        self.ssd.write_at(t, payload_bytes)
    }

    /// Overwrite pages of an existing chunk, charging only the dirty bytes.
    pub(crate) fn update_chunk(
        &mut self,
        t: VTime,
        id: ChunkId,
        updates: &[(u64, &[u8])],
    ) -> Grant {
        let torn = self.torn_armed;
        self.torn_armed = false;
        let (_, chunk) = self.chunks.get_mut(&id).expect("update of missing chunk");
        let mut bytes = 0u64;
        for (off, data) in updates {
            let off = *off as usize;
            // Torn write: only the first half of each dirty run reaches the
            // media; the tail keeps the old bytes. The SSD is still charged
            // for the intended write — the failure is in durability, not time.
            let persisted = if torn { data.len() / 2 } else { data.len() };
            chunk[off..off + persisted].copy_from_slice(&data[..persisted]);
            bytes += data.len() as u64;
        }
        self.degrade_after_write(id);
        self.ssd.write_at(t, bytes)
    }

    /// Read a whole chunk, charging the SSD.
    pub(crate) fn read_chunk(&self, t: VTime, id: ChunkId) -> (Grant, Box<[u8]>) {
        let (_, data) = self.chunks.get(&id).expect("read of missing chunk");
        let data = data.clone();
        let g = self.ssd.read_at(t, self.chunk_size);
        (g, data)
    }

    /// Read a chunk without charging time (debugging/inspection).
    pub fn peek_chunk(&self, id: ChunkId) -> Option<&[u8]> {
        self.chunks.get(&id).map(|(_, b)| &b[..])
    }

    /// Drop a chunk and free its slot.
    pub(crate) fn drop_chunk(&mut self, id: ChunkId) {
        let (slot, _) = self.chunks.remove(&id).expect("dropping missing chunk");
        self.slots.release(slot);
    }

    /// Whether this benefactor currently stores `id`.
    pub fn has_chunk(&self, id: ChunkId) -> bool {
        self.chunks.contains_key(&id)
    }

    /// Every chunk physically present on this benefactor, sorted (for
    /// deterministic reconcile/repair sweeps).
    pub fn chunk_ids(&self) -> Vec<ChunkId> {
        let mut ids: Vec<ChunkId> = self.chunks.keys().copied().collect();
        ids.sort_unstable_by_key(|c| c.0);
        ids
    }

    /// Duplicate a chunk's bytes into a new chunk id on this benefactor,
    /// charging a local SSD read + write (the server-side COW path used
    /// when a shared chunk is modified without the client holding all of
    /// its clean bytes).
    pub(crate) fn clone_chunk(&mut self, t: VTime, src: ChunkId, dst: ChunkId) -> Grant {
        let (_, data) = self.chunks.get(&src).expect("clone of missing chunk");
        let data = data.clone();
        let slot = self.slots.alloc().expect("chunk store over capacity");
        let g_read = self.ssd.read_at(t, self.chunk_size);
        let prev = self.chunks.insert(dst, (slot, data));
        assert!(prev.is_none(), "clone target {dst} exists");
        self.ssd.write_at(g_read.end, self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devices::INTEL_X25E;
    use simcore::StatsRegistry;

    const CHUNK: u64 = 256 * 1024;

    fn bene(cap_chunks: u64) -> Benefactor {
        let ssd = Ssd::new("b0.ssd", INTEL_X25E, &StatsRegistry::new());
        Benefactor::new(0, ssd, cap_chunks * CHUNK, CHUNK)
    }

    fn zero_chunk() -> Box<[u8]> {
        vec![0u8; CHUNK as usize].into_boxed_slice()
    }

    #[test]
    fn space_accounting_reserve_then_materialize() {
        let mut b = bene(4);
        b.reserve_slots(2);
        assert_eq!(b.used(), 2 * CHUNK);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        assert_eq!(b.used(), 2 * CHUNK, "materialization keeps the slot");
        assert_eq!(b.chunk_count(), 1);
        assert_eq!(b.free(), 2 * CHUNK);
    }

    #[test]
    fn store_and_read_roundtrip() {
        let mut b = bene(4);
        b.reserve_slots(1);
        let mut data = zero_chunk();
        data[7] = 42;
        b.store_chunk(VTime::ZERO, ChunkId(9), data, CHUNK, true);
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(9));
        assert_eq!(read[7], 42);
    }

    #[test]
    fn update_charges_only_dirty_bytes() {
        let mut b = bene(4);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        let before = b.ssd().bytes_written();
        let page = vec![1u8; 4096];
        b.update_chunk(VTime::ZERO, ChunkId(1), &[(4096, &page)]);
        assert_eq!(b.ssd().bytes_written() - before, 4096);
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(1));
        assert_eq!(read[4096], 1);
        assert_eq!(read[0], 0);
        assert_eq!(read[8192], 0);
    }

    #[test]
    fn clone_chunk_copies_data() {
        let mut b = bene(4);
        b.reserve_slots(1);
        let mut data = zero_chunk();
        data[100] = 5;
        b.store_chunk(VTime::ZERO, ChunkId(1), data, CHUNK, true);
        b.clone_chunk(VTime::ZERO, ChunkId(1), ChunkId(2));
        let (_, read) = b.read_chunk(VTime::ZERO, ChunkId(2));
        assert_eq!(read[100], 5);
        assert!(b.has_chunk(ChunkId(1)));
        assert_eq!(b.chunk_count(), 2);
    }

    #[test]
    fn drop_chunk_frees_space() {
        let mut b = bene(2);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        assert_eq!(b.used(), CHUNK);
        b.drop_chunk(ChunkId(1));
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn slot_state_recoverable_from_leaf_bitmap() {
        // Crash-recovery claim (DESIGN.md §13): the leaf bitmap alone is
        // the allocation state — summaries and counters rebuild from it.
        let mut b = bene(8);
        b.reserve_slots(3);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        b.store_chunk(VTime::ZERO, ChunkId(2), zero_chunk(), CHUNK, false);
        b.drop_chunk(ChunkId(1));
        b.release_slots(1);
        let live = b.slot_allocator();
        let rebuilt = BitAlloc::from_leaf(live.leaf_words().to_vec(), live.len());
        assert_eq!(rebuilt.free_count(), live.free_count());
        assert_eq!(rebuilt.allocated(), live.allocated());
        for s in 0..live.len() {
            assert_eq!(rebuilt.is_allocated(s), live.is_allocated(s));
        }
        rebuilt.assert_consistent();
    }

    #[test]
    fn can_allocate_checks() {
        let mut b = bene(1);
        assert!(b.can_allocate_chunk(false));
        assert!(!b.can_allocate_chunk(true), "no reservation yet");
        b.reserve_slots(1);
        assert!(b.can_allocate_chunk(true));
        assert!(!b.can_allocate_chunk(false), "capacity exhausted");
    }

    #[test]
    fn alive_flag() {
        let mut b = bene(1);
        assert!(b.is_alive());
        b.set_alive(false);
        assert!(!b.is_alive());
    }

    #[test]
    fn quarantine_blocks_placement_eligibility() {
        let mut b = bene(2);
        assert!(b.is_placeable());
        b.set_quarantined(true);
        assert!(b.is_quarantined());
        assert!(!b.is_placeable(), "quarantined benefactor is not placeable");
        assert!(b.is_alive(), "quarantine is not death");
        b.set_quarantined(false);
        assert!(b.is_placeable());
    }

    #[test]
    fn corrupt_chunk_flips_one_byte() {
        let mut b = bene(2);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        assert!(b.corrupt_chunk(ChunkId(1), 4096));
        let data = b.peek_chunk(ChunkId(1)).unwrap();
        assert_eq!(data[4096], 0xFF);
        assert_eq!(data[4095], 0);
        assert_eq!(data[4097], 0);
        assert!(!b.corrupt_chunk(ChunkId(99), 0), "missing chunk untouched");
    }

    #[test]
    fn torn_store_drops_the_tail() {
        let mut b = bene(2);
        b.reserve_slots(1);
        b.arm_torn_write();
        let data = vec![7u8; CHUNK as usize].into_boxed_slice();
        b.store_chunk(VTime::ZERO, ChunkId(1), data, CHUNK, true);
        let stored = b.peek_chunk(ChunkId(1)).unwrap();
        let half = CHUNK as usize / 2;
        assert_eq!(stored[half - 1], 7, "head persisted");
        assert_eq!(stored[half], 0, "tail torn back to the pre-image");
        assert_eq!(stored[CHUNK as usize - 1], 0);
        // One-shot: the next write is whole.
        b.reserve_slots(1);
        let data = vec![9u8; CHUNK as usize].into_boxed_slice();
        b.store_chunk(VTime::ZERO, ChunkId(2), data, CHUNK, true);
        assert_eq!(b.peek_chunk(ChunkId(2)).unwrap()[CHUNK as usize - 1], 9);
    }

    #[test]
    fn torn_update_keeps_old_tail_but_charges_full_write() {
        let mut b = bene(2);
        b.reserve_slots(1);
        b.store_chunk(VTime::ZERO, ChunkId(1), zero_chunk(), CHUNK, true);
        b.arm_torn_write();
        let before = b.ssd().bytes_written();
        let run = vec![3u8; 8192];
        b.update_chunk(VTime::ZERO, ChunkId(1), &[(0, &run)]);
        assert_eq!(
            b.ssd().bytes_written() - before,
            8192,
            "timing/wear charge is for the intended write"
        );
        let data = b.peek_chunk(ChunkId(1)).unwrap();
        assert_eq!(data[4095], 3, "first half of the run landed");
        assert_eq!(data[4096], 0, "second half kept the old bytes");
    }

    #[test]
    fn corruption_rate_is_seed_stable() {
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let mut b = bene(8);
            b.set_corruption_rate(5_000, seed);
            (0..6)
                .map(|i| {
                    b.reserve_slots(1);
                    b.store_chunk(VTime::ZERO, ChunkId(i), zero_chunk(), CHUNK, true);
                    b.peek_chunk(ChunkId(i)).unwrap().to_vec()
                })
                .collect()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same corruption");
        let corrupted = a.iter().filter(|c| c.iter().any(|&x| x != 0)).count();
        assert!(corrupted > 0, "a 50% rate corrupts some of six writes");
        assert!(corrupted < 6, "…but not every write");
    }
}

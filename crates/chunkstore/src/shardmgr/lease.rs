//! Per-shard runtime state: the shard's CPU, liveness, and the lease
//! table backing client-side placement delegation.
//!
//! A **lease** is delegation authority: while client node `c` holds an
//! unexpired lease from shard `k`, it may answer placement questions for
//! `k`'s keyspace from its local `LocationCache` without a manager
//! round-trip. Leases are granted (and renewed) piggybacked on every
//! shard RPC response — no separate lease traffic — with a seed-stable
//! jittered expiry in virtual time so a fleet of clients does not renew
//! in lockstep yet identical runs expire identical leases.
//!
//! Revocation (`revoke_shard`) clears every lease the shard granted; the
//! store pairs it with a global placement-epoch bump, so no stale
//! `LocationCache` hit can survive a revoke (the `shardmgr_model`
//! proptest pins this). A shard *crash* deliberately does **not** revoke:
//! leased clients keep serving their cached resolutions for data that
//! lives on healthy benefactors, which is what confines the outage to
//! the dead shard's unleased keyspace.

use super::ring::HashRing;
use crate::bitalloc::BitSet;
use simcore::rng::child_seed;
use simcore::{Counter, Resource, VTime};

/// Lease bookkeeping counters, registered lazily by the store when the
/// sharded manager is installed (knobs-off snapshots must not grow keys).
#[derive(Clone, Debug)]
pub struct LeaseCounters {
    pub grants: Counter,
    pub renewals: Counter,
    pub revokes: Counter,
    pub expiries: Counter,
}

/// One placement-manager shard rank.
#[derive(Debug)]
struct ShardState {
    /// Cluster node the shard rank runs on.
    node: usize,
    /// The shard's metadata CPU: RPCs queue FIFO here, which is where
    /// fan-in contention lives and what extra shards relieve.
    cpu: Resource,
    alive: bool,
    /// Clients holding a delegation: one bit per client node, with O(1)
    /// cardinality (same substrate as the slot allocator, DESIGN.md §13).
    held: BitSet,
    /// Client `c`'s lease expiry lives at `expiry[c]`, meaningful only
    /// while bit `c` is set in `held`. Flat and index-keyed: client ids
    /// are dense cluster node numbers.
    expiry: Vec<VTime>,
}

/// The installed shard fleet: ring + per-shard state + lease policy.
#[derive(Debug)]
pub struct ShardSet {
    ring: HashRing,
    shards: Vec<ShardState>,
    lease_ttl: VTime,
    seed: u64,
    counters: LeaseCounters,
    /// `store.shard_rpcs.s{k}` — per-shard RPC attribution.
    per_shard_rpcs: Vec<Counter>,
}

impl ShardSet {
    pub fn new(
        ring: HashRing,
        nodes: &[usize],
        lease_ttl: VTime,
        seed: u64,
        counters: LeaseCounters,
        per_shard_rpcs: Vec<Counter>,
    ) -> Self {
        assert_eq!(ring.shards(), nodes.len(), "one node per ring shard");
        assert_eq!(nodes.len(), per_shard_rpcs.len(), "one counter per shard");
        assert!(lease_ttl > VTime::ZERO, "leases must have a duration");
        ShardSet {
            ring,
            shards: nodes
                .iter()
                .enumerate()
                .map(|(k, &node)| ShardState {
                    node,
                    cpu: Resource::new(format!("shardmgr.s{k}.cpu")),
                    alive: true,
                    held: BitSet::new(),
                    expiry: Vec::new(),
                })
                .collect(),
            lease_ttl,
            seed,
            counters,
            per_shard_rpcs,
        }
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    pub fn node(&self, shard: usize) -> usize {
        self.shards[shard].node
    }

    pub fn is_alive(&self, shard: usize) -> bool {
        self.shards[shard].alive
    }

    pub fn set_alive(&mut self, shard: usize, alive: bool) {
        self.shards[shard].alive = alive;
    }

    /// Occupy the shard's CPU for one metadata operation arriving at
    /// `t_req`; returns when the operation's result is ready.
    pub fn cpu_done(&self, shard: usize, t_req: VTime, busy: VTime) -> VTime {
        self.shards[shard].cpu.acquire_at(t_req, busy).end
    }

    pub fn count_rpc(&self, shard: usize) {
        self.per_shard_rpcs[shard].inc();
    }

    /// Does `client` hold an unexpired lease from `shard` at `now`?
    /// Expired leases are reaped (and counted) on consultation.
    pub fn check_lease(&mut self, shard: usize, client: usize, now: VTime) -> bool {
        let s = &mut self.shards[shard];
        if !s.held.contains(client) {
            return false;
        }
        if s.expiry[client] > now {
            true
        } else {
            s.held.remove(client);
            self.counters.expiries.inc();
            false
        }
    }

    /// Grant (or renew) `client`'s delegation from `shard` at `now` —
    /// piggybacked on the shard's RPC response. Expiry is `now + ttl`
    /// plus a seed-stable per-(shard, client) jitter of up to ttl/8, so
    /// renewals de-synchronize across the fleet without host randomness.
    pub fn grant_lease(&mut self, shard: usize, client: usize, now: VTime) {
        let jitter_span = (self.lease_ttl.as_nanos() / 8).max(1);
        let jitter = child_seed(child_seed(self.seed, shard as u64), client as u64) % jitter_span;
        let s = &mut self.shards[shard];
        let renewal = s.held.contains(client) && s.expiry[client] > now;
        if renewal {
            self.counters.renewals.inc();
        } else {
            self.counters.grants.inc();
        }
        if s.expiry.len() <= client {
            s.expiry.resize(client + 1, VTime::ZERO);
        }
        s.held.insert(client);
        s.expiry[client] = now + self.lease_ttl + VTime::from_nanos(jitter);
    }

    /// Revoke every lease `shard` has granted, returning how many fell.
    /// The caller (the store) pairs this with a placement-epoch bump so
    /// revoked clients cannot keep serving stale cached resolutions.
    pub fn revoke_shard(&mut self, shard: usize) -> usize {
        let n = self.shards[shard].held.clear();
        self.counters.revokes.add(n as u64);
        n
    }

    /// Leases currently on `shard`'s books — O(1) (expired-but-unreaped
    /// entries count until a `check_lease` consults them, exactly as the
    /// map-backed table behaved).
    pub fn leases_held(&self, shard: usize) -> usize {
        self.shards[shard].held.count()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ring::DEFAULT_VNODES;
    use super::*;
    use simcore::StatsRegistry;

    fn set(shards: usize, ttl: VTime) -> (ShardSet, StatsRegistry) {
        let stats = StatsRegistry::new();
        let counters = LeaseCounters {
            grants: stats.counter("store.lease_grants"),
            renewals: stats.counter("store.lease_renewals"),
            revokes: stats.counter("store.lease_revokes"),
            expiries: stats.counter("store.lease_expiries"),
        };
        let rpcs = (0..shards)
            .map(|k| stats.counter(&format!("store.shard_rpcs.s{k}")))
            .collect();
        let ring = HashRing::new(shards, DEFAULT_VNODES, 5);
        let nodes: Vec<usize> = (0..shards).collect();
        (ShardSet::new(ring, &nodes, ttl, 5, counters, rpcs), stats)
    }

    #[test]
    fn lease_lifecycle_grant_renew_expire() {
        let ttl = VTime::from_secs(1);
        let (mut s, stats) = set(2, ttl);
        let t = VTime::from_millis(3);
        assert!(!s.check_lease(0, 9, t), "no lease yet");
        s.grant_lease(0, 9, t);
        assert_eq!(stats.get("store.lease_grants"), 1);
        assert!(s.check_lease(0, 9, t + VTime::from_millis(500)));
        assert!(!s.check_lease(1, 9, t), "leases are per shard");
        // A re-grant while valid is a renewal and pushes expiry out.
        s.grant_lease(0, 9, t + VTime::from_millis(500));
        assert_eq!(stats.get("store.lease_renewals"), 1);
        assert!(s.check_lease(0, 9, t + ttl + VTime::from_millis(400)));
        // Far future: expired, reaped, counted.
        assert!(!s.check_lease(0, 9, t + VTime::from_secs(10)));
        assert_eq!(stats.get("store.lease_expiries"), 1);
        assert_eq!(s.leases_held(0), 0);
    }

    #[test]
    fn expiry_jitter_is_seed_stable_and_bounded() {
        let ttl = VTime::from_secs(1);
        let (mut a, _) = set(4, ttl);
        let (mut b, _) = set(4, ttl);
        let t = VTime::ZERO;
        for client in 0..16 {
            a.grant_lease(2, client, t);
            b.grant_lease(2, client, t);
        }
        // Jitter is bounded below: every lease is still valid just short
        // of the base ttl. (Checked first — an expiry check *reaps* the
        // lease, so probe the early edge before the far horizon.)
        for client in 0..16 {
            assert!(b.check_lease(2, client, t + ttl - VTime::from_nanos(1)));
        }
        // Identical construction → identical expiry map: the lease edge
        // lands at the same virtual instant on every run, and everything
        // is dead past ttl + ttl/8.
        let near = t + ttl + VTime::from_nanos(ttl.as_nanos() / 16);
        let far = t + ttl + VTime::from_nanos(ttl.as_nanos() / 8);
        for client in 0..16 {
            assert_eq!(
                a.check_lease(2, client, near),
                b.check_lease(2, client, near)
            );
            assert!(!a.check_lease(2, client, far));
        }
    }

    #[test]
    fn revoke_clears_only_that_shard() {
        let (mut s, stats) = set(3, VTime::from_secs(5));
        let t = VTime::ZERO;
        s.grant_lease(0, 7, t);
        s.grant_lease(0, 8, t);
        s.grant_lease(1, 7, t);
        assert_eq!(s.revoke_shard(0), 2);
        assert_eq!(stats.get("store.lease_revokes"), 2);
        assert!(!s.check_lease(0, 7, t + VTime::from_millis(1)));
        assert!(
            s.check_lease(1, 7, t + VTime::from_millis(1)),
            "other shards' delegations survive"
        );
    }

    #[test]
    fn cpu_queues_fifo() {
        let (s, _) = set(1, VTime::from_secs(1));
        let busy = VTime::from_micros(10);
        let a = s.cpu_done(0, VTime::ZERO, busy);
        let b = s.cpu_done(0, VTime::ZERO, busy);
        assert_eq!(a, busy);
        assert_eq!(b, busy * 2, "second op waits behind the first");
    }
}

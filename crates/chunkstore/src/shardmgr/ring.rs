//! Deterministic consistent-hash ring over placement keys.
//!
//! The ring partitions placement metadata across N manager shards. Each
//! shard contributes `vnodes` points on a 64-bit circle; a key is owned
//! by the shard whose point is the key's clockwise successor. Two
//! properties matter here:
//!
//! * **Determinism** — every point derives from the ring seed through
//!   `simcore::rng::child_seed`, never host randomness, so the same
//!   `(seed, shards, vnodes)` triple yields the same ownership map on
//!   every run (the project's bit-identical-replay discipline).
//! * **Stability under growth** — shard `k`'s points depend only on
//!   `(seed, k, vnode)`, *not* on the total shard count. Growing an
//!   N-shard ring to N+1 only adds the new shard's points, so a key
//!   either keeps its owner or moves to the new shard: in expectation
//!   only `1/(N+1)` of the keyspace remaps (the classic consistent-
//!   hashing bound, asserted by the `shardmgr_model` proptests).
//!
//! Clients route two key families through the ring: chunk-addressed
//! operations hash the `ChunkId`, and slot-addressed resolution
//! (`fetch_chunks` / `write_pages_batch`, which run *before* the client
//! knows the chunk id) hashes `(FileId, slot index)`. Both are pure
//! client-side computations — owner lookup costs no RPC.

use crate::ids::{ChunkId, FileId};
use simcore::rng::child_seed;

/// Virtual nodes per shard: enough to keep per-shard keyspace shares
/// within a few percent of uniform without bloating the point list
/// (share deviation scales like `1/sqrt(vnodes)`; at 256 the worst
/// shard's queue in the fan-in bench stays close to its fair share).
pub const DEFAULT_VNODES: usize = 256;

/// Hash-family tags keeping chunk- and slot-keyed lookups independent of
/// each other and of the vnode point stream.
const CHUNK_KEYS: u64 = 0xC1A5_517E_0000_0001;
const SLOT_KEYS: u64 = 0xC1A5_517E_0000_0002;

/// A deterministic consistent-hash ring mapping 64-bit keys to shards.
#[derive(Clone, Debug)]
pub struct HashRing {
    shards: usize,
    /// Sorted `(point, shard)` pairs; ties break to the lowest shard id
    /// so duplicate points cannot make ownership order-dependent.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> Self {
        assert!(shards >= 1, "a ring needs at least one shard");
        assert!(vnodes >= 1, "a shard needs at least one point");
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| {
                let shard_stream = child_seed(seed, s as u64);
                (0..vnodes).map(move |v| (child_seed(shard_stream, v as u64), s))
            })
            .collect();
        points.sort_unstable();
        HashRing { shards, points }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning a raw 64-bit key: its clockwise successor point.
    pub fn owner_of_point(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[i % self.points.len()].1
    }

    /// Owner of a chunk-addressed key.
    pub fn owner_of_chunk(&self, c: ChunkId) -> usize {
        self.owner_of_point(child_seed(CHUNK_KEYS, c.0))
    }

    /// Owner of a slot-addressed key (`fetch_chunks` / write resolution,
    /// where the client knows `(file, idx)` but not yet the chunk id).
    pub fn owner_of_slot(&self, file: FileId, idx: usize) -> usize {
        self.owner_of_point(child_seed(child_seed(SLOT_KEYS, file.0), idx as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_total() {
        let a = HashRing::new(4, DEFAULT_VNODES, 7);
        let b = HashRing::new(4, DEFAULT_VNODES, 7);
        let mut seen = [false; 4];
        for i in 0..4096u64 {
            let c = ChunkId(i);
            let owner = a.owner_of_chunk(c);
            assert_eq!(owner, b.owner_of_chunk(c), "same seed, same owner");
            assert!(owner < 4);
            seen[owner] = true;
        }
        assert!(seen.iter().all(|&s| s), "every shard owns some keys");
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(1, DEFAULT_VNODES, 42);
        for i in 0..512u64 {
            assert_eq!(ring.owner_of_chunk(ChunkId(i)), 0);
            assert_eq!(ring.owner_of_slot(FileId(i), i as usize), 0);
        }
    }

    #[test]
    fn growth_moves_keys_only_to_the_new_shard() {
        let old = HashRing::new(3, DEFAULT_VNODES, 9);
        let new = HashRing::new(4, DEFAULT_VNODES, 9);
        for i in 0..4096u64 {
            let c = ChunkId(i);
            let (a, b) = (old.owner_of_chunk(c), new.owner_of_chunk(c));
            assert!(a == b || b == 3, "chunk#{i} moved {a}→{b}, not to shard 3");
        }
    }

    #[test]
    fn slot_and_chunk_keys_hash_independently() {
        let ring = HashRing::new(8, DEFAULT_VNODES, 1);
        // Same numeric key through the two families must not always land
        // on the same shard (they are distinct hash streams).
        let diverges = (0..256u64)
            .any(|i| ring.owner_of_chunk(ChunkId(i)) != ring.owner_of_slot(FileId(i), 0));
        assert!(diverges);
    }
}

//! # shardmgr — the sharded placement manager
//!
//! The paper funnels every placement lookup through one metadata manager;
//! after the batched data path (DESIGN.md §8) that RPC is the last serial
//! choke point between a large client fleet and the store. This subsystem
//! partitions placement metadata across N manager *shard ranks*
//! (DESIGN.md §12):
//!
//! * [`ring`] — a deterministic consistent-hash ring mapping chunk- and
//!   slot-addressed keys to shards; clients compute owners locally and
//!   route `fetch_chunks` / `write_pages_batch` resolution directly to
//!   the owning shard's RPC endpoint (registered with `netsim`).
//! * [`lease`] — per-shard CPU + liveness + the lease table: TTL-bounded
//!   delegation letting a leased client answer placement from its
//!   `LocationCache` without any manager round-trip; grants/renewals
//!   piggyback on RPC responses, revocation bumps the placement epoch.
//!
//! Everything defaults **off**: with `StoreConfig::manager_shards == 0`
//! the store keeps its serial single-manager path, byte-identical to the
//! pre-shard build. With one shard installed, a serial workload is still
//! bit-identical to the serial manager (the `bench fan_in` smoke gate
//! diffs exactly this); extra shards split the keyspace and the RPC
//! fan-in near-linearly.

pub mod lease;
pub mod ring;

pub use lease::{LeaseCounters, ShardSet};
pub use ring::{HashRing, DEFAULT_VNODES};

/// Ring seed used by cluster builds. Fixed (not wall-clock, not host
/// randomness): ownership maps must be identical across runs and across
/// machines for committed bench expectations to diff clean.
pub const DEFAULT_RING_SEED: u64 = 0x5EED_0F1E_A5E5;

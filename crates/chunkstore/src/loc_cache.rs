//! Client-side chunk-location cache.
//!
//! A serial `fetch_chunk` pays a manager RPC per chunk just to learn where
//! the chunk lives. Placement is almost always stable in steady state, so
//! a client can remember the resolution — `(file, chunk index)` → slot
//! state + home list — and skip the RPC on later fetches.
//!
//! Coherence rule (DESIGN.md §8): every cached resolution is stamped with
//! the manager's *placement epoch* at resolution time. The manager bumps
//! that epoch on any event that can change where authoritative copies
//! live — chunk materialization/COW, crash/recovery liveness flips,
//! failover re-homing, repair, reconcile, file deletion/linking. A lookup
//! whose stamp is older than the current epoch misses, and the next
//! batched resolution refreshes it. This models lease/epoch invalidation
//! piggybacked on the manager's heartbeat, which is why checking the
//! epoch itself is not charged as an RPC.

use crate::ids::{BenefactorId, ChunkId, FileId};
use parking_lot::Mutex;
use simcore::{Counter, StatsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// A cached resolution for one `(file, chunk index)` target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum CachedLoc {
    /// The slot was a hole / unmaterialized: reads materialize zeros.
    Zeros,
    /// A materialized chunk and its authoritative home list (benefactor
    /// id + cluster node), in manager preference order.
    Chunk {
        chunk: ChunkId,
        homes: Vec<(BenefactorId, usize)>,
    },
}

#[derive(Debug)]
struct Inner {
    map: HashMap<(FileId, usize), (u64, CachedLoc)>,
    /// Epoch the whole cache was last validated against; entries stamped
    /// older than the manager's current epoch are dropped on access.
    epoch: u64,
}

/// A per-client chunk-location cache (cheap to clone, shared state).
#[derive(Clone)]
pub struct LocationCache {
    inner: Arc<Mutex<Inner>>,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
}

impl LocationCache {
    pub fn new(stats: &StatsRegistry) -> Self {
        LocationCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                epoch: 0,
            })),
            hits: stats.counter("store.loc_cache_hits"),
            misses: stats.counter("store.loc_cache_misses"),
            invalidations: stats.counter("store.loc_cache_invalidations"),
        }
    }

    /// Look up a target under the manager's current epoch. A stale stamp
    /// (any placement change since resolution) drops the whole cache —
    /// coarse, but epoch bumps are rare and correctness is trivial to
    /// argue: a hit implies *nothing* placement-affecting happened since
    /// the entry was written.
    pub(crate) fn lookup(&self, current_epoch: u64, key: (FileId, usize)) -> Option<CachedLoc> {
        let mut inner = self.inner.lock();
        if inner.epoch != current_epoch {
            if !inner.map.is_empty() {
                self.invalidations.inc();
            }
            inner.map.clear();
            inner.epoch = current_epoch;
        }
        match inner.map.get(&key) {
            Some((_, loc)) => {
                self.hits.inc();
                Some(loc.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// The sharded manager's lease gate (DESIGN.md §12): the client has
    /// no delegation authority from the owning shard, so a cached entry
    /// — even a fresh one — may not be used and the target must go to
    /// the shard. Replays `lookup`'s epoch-transition bookkeeping
    /// (invalidation counting + clear) and counts the forced miss, then
    /// drops the unusable entry so the shard's answer replaces it. With
    /// one shard and a held lease this path never runs, keeping counters
    /// bit-identical to the serial manager.
    pub(crate) fn note_unleased_miss(&self, current_epoch: u64, key: (FileId, usize)) {
        let mut inner = self.inner.lock();
        if inner.epoch != current_epoch {
            if !inner.map.is_empty() {
                self.invalidations.inc();
            }
            inner.map.clear();
            inner.epoch = current_epoch;
        }
        inner.map.remove(&key);
        self.misses.inc();
    }

    /// Record a fresh resolution made at `epoch`.
    pub(crate) fn insert(&self, epoch: u64, key: (FileId, usize), loc: CachedLoc) {
        let mut inner = self.inner.lock();
        if inner.epoch != epoch {
            inner.map.clear();
            inner.epoch = epoch;
        }
        inner.map.insert(key, (epoch, loc));
    }

    /// Number of live entries (tests).
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

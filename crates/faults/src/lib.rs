//! # faults — deterministic fault injection
//!
//! The paper's aggregate store must "survive benefactor failures": a
//! compute node's SSD partition disappears mid-run and the store either
//! fails the job cleanly (unreplicated data) or degrades and repairs
//! (replicated data). This crate describes *when and what* fails, as a
//! [`FaultPlan`]: a time-sorted list of events on the simulation's
//! virtual clock.
//!
//! Plans are **seed-stable**: randomized plans derive every choice from
//! an explicit seed through `simcore::rng::child_seed`, never from host
//! randomness, so the same seed reproduces the same crash schedule — and
//! therefore bit-identical virtual-time results — on every run.
//!
//! The plan itself is pure data. The aggregate store polls it at the top
//! of each timed operation (`AggregateStore::poll_faults`) and applies
//! due events to the fleet: benefactor liveness, `netsim` link faults,
//! and `devices` SSD derating.

use simcore::rng::child_seed;
use simcore::VTime;

/// One thing that goes wrong (or recovers) in the cluster.
///
/// Benefactors are addressed by their registration index (the store's
/// `BenefactorId` order); link and SSD faults by cluster node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Benefactor process dies: its chunks become unreachable.
    BenefactorCrash { benefactor: usize },
    /// The benefactor comes back with its SSD contents intact; the store
    /// reconciles any chunks that were re-homed while it was down.
    BenefactorRecover { benefactor: usize },
    /// Derate a node's network attachment.
    LinkDegrade {
        node: usize,
        bw_divisor: f64,
        extra_latency: VTime,
    },
    /// Restore a node's network attachment to nominal.
    LinkRestore { node: usize },
    /// Cut a node off the fabric entirely.
    Partition { node: usize },
    /// Reconnect a partitioned node.
    Heal { node: usize },
    /// A node's SSD serves `factor`× slower (write-amplification storms,
    /// background GC, failing media).
    SsdSlowdown { node: usize, factor: f64 },
    /// The node's SSD returns to nominal speed.
    SsdRestore { node: usize },
    /// Silent bit-rot on a benefactor: each chunk stored there flips a
    /// byte with probability `rate_bp` basis points (1/10000), scaled up
    /// by the device's accumulated wear (worn flash rots faster — the
    /// store reads `life_consumed` from the SSD's wear report and derates
    /// accordingly). Per-chunk decisions and flip offsets derive from
    /// `seed` through `child_seed`, so the same plan corrupts the same
    /// bytes on every run.
    BitRot {
        benefactor: usize,
        rate_bp: u32,
        seed: u64,
    },
    /// A crash in the middle of the benefactor's next chunk write: only
    /// the first half of each dirty run reaches the media, leaving the
    /// chunk half-new/half-old while the manager records the checksum of
    /// the intended content. One-shot — the write after next is clean.
    TornWrite { benefactor: usize },
    /// Persistent media degradation: from now on, every chunk write on
    /// this benefactor flips a stored byte with probability `rate_bp`
    /// basis points, drawn seed-stably per write. `rate_bp = 0` restores
    /// healthy behaviour.
    CorruptionRate {
        benefactor: usize,
        rate_bp: u32,
        seed: u64,
    },
    /// A placement-manager shard rank dies (DESIGN.md §12). Only that
    /// shard's keyspace is quarantined: unleased lookups routed to it
    /// fail after retries, while leases it already granted stay valid
    /// and every other shard keeps serving.
    ShardCrash { shard: usize },
    /// The shard rank comes back with a cold lease table: every lease it
    /// granted before the crash is revoked and the placement epoch
    /// bumps, so no stale client-side resolution survives.
    ShardRecover { shard: usize },
}

impl FaultEvent {
    /// Short human-readable label, used for trace instants and logs.
    pub fn describe(&self) -> String {
        match self {
            FaultEvent::BenefactorCrash { benefactor } => {
                format!("fault.benefactor_crash b={benefactor}")
            }
            FaultEvent::BenefactorRecover { benefactor } => {
                format!("fault.benefactor_recover b={benefactor}")
            }
            FaultEvent::LinkDegrade {
                node, bw_divisor, ..
            } => format!("fault.link_degrade node={node} /{bw_divisor}"),
            FaultEvent::LinkRestore { node } => format!("fault.link_restore node={node}"),
            FaultEvent::Partition { node } => format!("fault.partition node={node}"),
            FaultEvent::Heal { node } => format!("fault.heal node={node}"),
            FaultEvent::SsdSlowdown { node, factor } => {
                format!("fault.ssd_slowdown node={node} x{factor}")
            }
            FaultEvent::SsdRestore { node } => format!("fault.ssd_restore node={node}"),
            FaultEvent::BitRot {
                benefactor,
                rate_bp,
                ..
            } => format!("fault.bit_rot b={benefactor} rate={rate_bp}bp"),
            FaultEvent::TornWrite { benefactor } => {
                format!("fault.torn_write b={benefactor}")
            }
            FaultEvent::CorruptionRate {
                benefactor,
                rate_bp,
                ..
            } => format!("fault.corruption_rate b={benefactor} rate={rate_bp}bp"),
            FaultEvent::ShardCrash { shard } => format!("fault.shard_crash s={shard}"),
            FaultEvent::ShardRecover { shard } => format!("fault.shard_recover s={shard}"),
        }
    }
}

/// A [`FaultEvent`] scheduled at a virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    pub at: VTime,
    pub event: FaultEvent,
}

/// A time-sorted schedule of faults, consumed front to back.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
    cursor: usize,
}

impl FaultPlan {
    /// Build a plan from events in any order (stable-sorted by time, so
    /// same-instant events keep their insertion order).
    pub fn new(mut events: Vec<TimedFault>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// Remove and return every event due at or before `now`, in order.
    pub fn due(&mut self, now: VTime) -> Vec<TimedFault> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// When the next pending event fires, if any.
    pub fn next_at(&self) -> Option<VTime> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// The full schedule (delivered and pending), for reports.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Builder for fault plans, including seed-stable randomized schedules.
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    streams: u64,
    events: Vec<TimedFault>,
}

impl FaultPlanBuilder {
    pub fn new(seed: u64) -> Self {
        FaultPlanBuilder {
            seed,
            streams: 0,
            events: Vec::new(),
        }
    }

    /// Next value from the builder's deterministic choice stream.
    fn draw(&mut self) -> u64 {
        let v = child_seed(self.seed, self.streams);
        self.streams += 1;
        v
    }

    pub fn at(mut self, at: VTime, event: FaultEvent) -> Self {
        self.events.push(TimedFault { at, event });
        self
    }

    pub fn crash(self, at: VTime, benefactor: usize) -> Self {
        self.at(at, FaultEvent::BenefactorCrash { benefactor })
    }

    pub fn recover(self, at: VTime, benefactor: usize) -> Self {
        self.at(at, FaultEvent::BenefactorRecover { benefactor })
    }

    pub fn degrade_link(
        self,
        at: VTime,
        node: usize,
        bw_divisor: f64,
        extra_latency: VTime,
    ) -> Self {
        self.at(
            at,
            FaultEvent::LinkDegrade {
                node,
                bw_divisor,
                extra_latency,
            },
        )
    }

    pub fn restore_link(self, at: VTime, node: usize) -> Self {
        self.at(at, FaultEvent::LinkRestore { node })
    }

    pub fn partition(self, at: VTime, node: usize) -> Self {
        self.at(at, FaultEvent::Partition { node })
    }

    pub fn heal(self, at: VTime, node: usize) -> Self {
        self.at(at, FaultEvent::Heal { node })
    }

    pub fn slow_ssd(self, at: VTime, node: usize, factor: f64) -> Self {
        self.at(at, FaultEvent::SsdSlowdown { node, factor })
    }

    pub fn restore_ssd(self, at: VTime, node: usize) -> Self {
        self.at(at, FaultEvent::SsdRestore { node })
    }

    /// Schedule a bit-rot event: at `at`, every chunk on `benefactor`
    /// flips a byte with probability `rate_bp` basis points (wear-scaled
    /// when applied). The corruption pattern seed comes from the
    /// builder's deterministic choice stream.
    pub fn bit_rot(mut self, at: VTime, benefactor: usize, rate_bp: u32) -> Self {
        let seed = self.draw();
        self.at(
            at,
            FaultEvent::BitRot {
                benefactor,
                rate_bp,
                seed,
            },
        )
    }

    /// Arm a one-shot torn write on `benefactor` at `at`.
    pub fn torn_write(self, at: VTime, benefactor: usize) -> Self {
        self.at(at, FaultEvent::TornWrite { benefactor })
    }

    /// Kill placement shard `shard` at `at` (see [`FaultEvent::ShardCrash`]).
    pub fn shard_crash(self, at: VTime, shard: usize) -> Self {
        self.at(at, FaultEvent::ShardCrash { shard })
    }

    /// Revive placement shard `shard` at `at`, revoking its leases.
    pub fn shard_recover(self, at: VTime, shard: usize) -> Self {
        self.at(at, FaultEvent::ShardRecover { shard })
    }

    /// Persistently degrade `benefactor` from `at`: each later chunk
    /// write there corrupts a stored byte with probability `rate_bp`
    /// basis points (0 restores healthy media).
    pub fn corruption_rate(mut self, at: VTime, benefactor: usize, rate_bp: u32) -> Self {
        let seed = self.draw();
        self.at(
            at,
            FaultEvent::CorruptionRate {
                benefactor,
                rate_bp,
                seed,
            },
        )
    }

    /// Schedule `count` benefactor crashes at seed-derived times inside
    /// `[window_start, window_end)`, each hitting a seed-derived victim
    /// out of `benefactors`. With `mttr` set, every victim recovers that
    /// long after its crash. Victims are drawn without replacement until
    /// the pool runs out (`count` is capped at `benefactors`).
    pub fn random_crashes(
        mut self,
        count: usize,
        benefactors: usize,
        window_start: VTime,
        window_end: VTime,
        mttr: Option<VTime>,
    ) -> Self {
        assert!(window_end > window_start, "empty crash window");
        assert!(benefactors > 0, "no benefactors to crash");
        let span = (window_end - window_start).as_nanos();
        let mut pool: Vec<usize> = (0..benefactors).collect();
        for _ in 0..count.min(benefactors) {
            let victim = pool.remove((self.draw() % pool.len() as u64) as usize);
            let at = window_start + VTime::from_nanos(self.draw() % span);
            self = self.crash(at, victim);
            if let Some(mttr) = mttr {
                self = self.recover(at + mttr, victim);
            }
        }
        self
    }

    pub fn build(self) -> FaultPlan {
        FaultPlan::new(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_drains_in_order() {
        let mut plan = FaultPlanBuilder::new(1)
            .crash(VTime::from_secs(2), 0)
            .recover(VTime::from_secs(5), 0)
            .crash(VTime::from_secs(1), 1)
            .build();
        assert_eq!(plan.remaining(), 3);
        assert_eq!(plan.next_at(), Some(VTime::from_secs(1)));
        let due = plan.due(VTime::from_secs(2));
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].event, FaultEvent::BenefactorCrash { benefactor: 1 });
        assert_eq!(due[1].event, FaultEvent::BenefactorCrash { benefactor: 0 });
        assert!(plan.due(VTime::from_secs(2)).is_empty(), "no redelivery");
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.due(VTime::from_secs(10)).len(), 1);
        assert_eq!(plan.next_at(), None);
    }

    #[test]
    fn shard_events_schedule_and_describe() {
        let mut plan = FaultPlanBuilder::new(3)
            .shard_crash(VTime::from_secs(1), 2)
            .shard_recover(VTime::from_secs(4), 2)
            .build();
        let due = plan.due(VTime::from_secs(5));
        assert_eq!(due[0].event, FaultEvent::ShardCrash { shard: 2 });
        assert_eq!(due[1].event, FaultEvent::ShardRecover { shard: 2 });
        assert_eq!(due[0].event.describe(), "fault.shard_crash s=2");
        assert_eq!(due[1].event.describe(), "fault.shard_recover s=2");
    }

    #[test]
    fn same_instant_events_keep_insertion_order() {
        let t = VTime::from_secs(1);
        let mut plan = FaultPlanBuilder::new(0).crash(t, 3).recover(t, 3).build();
        let due = plan.due(t);
        assert_eq!(due[0].event, FaultEvent::BenefactorCrash { benefactor: 3 });
        assert_eq!(
            due[1].event,
            FaultEvent::BenefactorRecover { benefactor: 3 }
        );
    }

    #[test]
    fn corruption_events_are_seed_stable() {
        let mk = |seed| {
            FaultPlanBuilder::new(seed)
                .bit_rot(VTime::from_secs(1), 2, 500)
                .torn_write(VTime::from_secs(2), 1)
                .corruption_rate(VTime::from_secs(3), 0, 50)
                .build()
        };
        let a = mk(9);
        assert_eq!(a.events(), mk(9).events(), "same seed, same pattern");
        // The embedded corruption seeds come from the builder stream, so
        // a different builder seed changes them.
        assert_ne!(a.events(), mk(10).events());
        match a.events()[0].event {
            FaultEvent::BitRot {
                benefactor,
                rate_bp,
                seed,
            } => {
                assert_eq!((benefactor, rate_bp), (2, 500));
                assert_ne!(seed, 0, "pattern seed drawn from the stream");
            }
            _ => panic!("bit-rot first"),
        }
        assert!(a.events()[1].event.describe().contains("torn_write"));
        assert!(a.events()[2].event.describe().contains("corruption_rate"));
    }

    #[test]
    fn random_crashes_are_seed_stable_and_distinct() {
        let mk = |seed| {
            FaultPlanBuilder::new(seed)
                .random_crashes(
                    3,
                    8,
                    VTime::from_secs(1),
                    VTime::from_secs(9),
                    Some(VTime::from_secs(2)),
                )
                .build()
        };
        let a = mk(42);
        let b = mk(42);
        assert_eq!(a.events(), b.events(), "same seed, same plan");
        let c = mk(43);
        assert_ne!(a.events(), c.events(), "different seed, different plan");

        let victims: Vec<usize> = a
            .events()
            .iter()
            .filter_map(|e| match e.event {
                FaultEvent::BenefactorCrash { benefactor } => Some(benefactor),
                _ => None,
            })
            .collect();
        assert_eq!(victims.len(), 3);
        let mut dedup = victims.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "victims drawn without replacement");
        // Each crash has a matching recovery 2 s later.
        let recoveries = a
            .events()
            .iter()
            .filter(|e| matches!(e.event, FaultEvent::BenefactorRecover { .. }))
            .count();
        assert_eq!(recoveries, 3);
    }
}

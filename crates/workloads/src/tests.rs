//! Workload correctness tests (small problem sizes — these run in debug
//! builds; the bench harness runs the paper-scaled sizes in release).

use crate::matmul::{run_mm, AccessOrder, BPlacement, MmConfig};
use crate::qsort::{run_sort_dram_two_pass, run_sort_hybrid, SortConfig};
use crate::randwrite::{run_randwrite, RandWriteConfig};
use crate::stream::{
    run_stream, run_stream_raw_ssd, ArrayPlace, RawMmapConfig, StreamConfig, StreamKernel,
};
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;

fn cluster_for(cfg: &JobConfig, scale: u64) -> Cluster {
    Cluster::new(ClusterSpec::hal().scaled(scale), &cfg.benefactor_nodes())
}

fn small_fuse(scale: u64) -> FuseConfig {
    FuseConfig {
        cache_bytes: (64 * 1024 * 1024 / scale).max(512 * 1024),
        ..FuseConfig::default()
    }
}

// ---------- STREAM -----------------------------------------------------------

#[test]
fn stream_triad_dram_only() {
    let cfg = JobConfig::dram_only(4, 1);
    let cluster = cluster_for(&cfg, 256);
    let scfg =
        StreamConfig::new(64 * 1024).place(ArrayPlace::Dram, ArrayPlace::Dram, ArrayPlace::Dram);
    let r = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(r.verified);
    assert!(r.bandwidth_mb_s > 0.0);
}

#[test]
fn stream_triad_nvm_much_slower_than_dram() {
    let elems = 256 * 1024; // 2 MiB arrays
    let dram_cfg = JobConfig::dram_only(4, 1);
    let dram_cluster = cluster_for(&dram_cfg, 256);
    let scfg = StreamConfig::new(elems);
    let dram = run_stream(
        &dram_cluster,
        &dram_cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );

    let nvm_cfg = JobConfig::local(4, 1, 1);
    let nvm_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &nvm_cfg.benefactor_nodes(),
        small_fuse(256),
    );
    let all = StreamConfig::new(elems).place(ArrayPlace::Nvm, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let nvm = run_stream(
        &nvm_cluster,
        &nvm_cfg,
        Calibration::default(),
        &all,
        StreamKernel::Triad,
    );

    assert!(dram.verified && nvm.verified);
    let slowdown = dram.bandwidth_mb_s / nvm.bandwidth_mb_s;
    assert!(
        slowdown > 10.0,
        "NVM placement should be an order of magnitude slower, got {slowdown:.1}x"
    );
}

#[test]
fn stream_remote_slower_than_local() {
    let elems = 128 * 1024;
    let scfg = StreamConfig::new(elems).place(ArrayPlace::Dram, ArrayPlace::Dram, ArrayPlace::Nvm);

    let local_cfg = JobConfig::local(4, 1, 1);
    let local_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &local_cfg.benefactor_nodes(),
        small_fuse(256),
    );
    let local = run_stream(
        &local_cluster,
        &local_cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );

    let remote_cfg = JobConfig::remote(4, 1, 1);
    let remote_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &remote_cfg.benefactor_nodes(),
        small_fuse(256),
    );
    let remote = run_stream(
        &remote_cluster,
        &remote_cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );

    assert!(local.verified && remote.verified);
    assert!(
        remote.time > local.time,
        "remote {} vs local {}",
        remote.time,
        local.time
    );
}

#[test]
fn stream_raw_ssd_slower_than_nvmalloc() {
    // Table III's claim: NVMalloc's chunk caching beats raw mmap for the
    // sequential STREAM access.
    let elems = 128 * 1024;
    let scfg = StreamConfig::new(elems).place(ArrayPlace::Dram, ArrayPlace::Dram, ArrayPlace::Nvm);
    let cfg = JobConfig::local(4, 1, 1);
    // Cache sized like the paper's relative to the thread count: room for
    // each thread's stream plus read-ahead.
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 4 * 1024 * 1024,
            ..FuseConfig::default()
        },
    );
    let with_nvmalloc = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );

    let raw_cfg = JobConfig::dram_only(4, 1);
    let raw_cluster = cluster_for(&raw_cfg, 256);
    let raw = run_stream_raw_ssd(
        &raw_cluster,
        &raw_cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
        RawMmapConfig::default(),
    );
    assert!(with_nvmalloc.verified && raw.verified);
    assert!(
        with_nvmalloc.bandwidth_mb_s > raw.bandwidth_mb_s,
        "NVMalloc {:.1} MB/s vs raw {:.1} MB/s",
        with_nvmalloc.bandwidth_mb_s,
        raw.bandwidth_mb_s
    );
}

#[test]
fn stream_all_kernels_verify() {
    let cfg = JobConfig::local(2, 1, 1);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(256),
        &cfg.benefactor_nodes(),
        small_fuse(256),
    );
    for kernel in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        let scfg = StreamConfig {
            iters: 2,
            ..StreamConfig::new(16 * 1024).place(
                ArrayPlace::Dram,
                ArrayPlace::Dram,
                ArrayPlace::Nvm,
            )
        };
        let r = run_stream(&cluster, &cfg, Calibration::default(), &scfg, kernel);
        assert!(r.verified, "{} failed verification", kernel.name());
    }
}

// ---------- Matrix multiplication ---------------------------------------------

fn mm_cfg(n: usize) -> MmConfig {
    MmConfig {
        verify: true,
        ..MmConfig::paper_2gb(n)
    }
}

#[test]
fn mm_dram_verifies() {
    let cfg = JobConfig::dram_only(2, 2);
    let cluster = cluster_for(&cfg, 1024);
    let mm = MmConfig {
        b_place: BPlacement::Dram,
        ..mm_cfg(64)
    };
    let r = run_mm(&cluster, &cfg, &mm).unwrap();
    assert_eq!(r.verified, Some(true));
    assert!(r.stages.computing > simcore::VTime::ZERO);
}

#[test]
fn mm_nvm_shared_verifies() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        small_fuse(1024),
    );
    let r = run_mm(&cluster, &cfg, &mm_cfg(64)).unwrap();
    assert_eq!(r.verified, Some(true));
    assert!(
        r.traffic.app_b_bytes > 0,
        "B accesses must route through NVM"
    );
}

#[test]
fn mm_nvm_individual_verifies_and_costs_more_store_traffic() {
    let scale = 1024;
    let cfg = JobConfig::local(2, 2, 2);
    let shared_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        small_fuse(scale),
    );
    let shared = run_mm(&shared_cluster, &cfg, &mm_cfg(64)).unwrap();

    let indiv_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        small_fuse(scale),
    );
    let mm = MmConfig {
        b_place: BPlacement::NvmIndividual,
        ..mm_cfg(64)
    };
    let indiv = run_mm(&indiv_cluster, &cfg, &mm).unwrap();

    assert_eq!(shared.verified, Some(true));
    assert_eq!(indiv.verified, Some(true));
    let shared_ssd = shared_cluster.total_ssd_bytes_written();
    let indiv_ssd = indiv_cluster.total_ssd_bytes_written();
    assert!(
        indiv_ssd > shared_ssd,
        "individual files must write more to SSD ({indiv_ssd} vs {shared_ssd})"
    );
    assert!(indiv.stages.total() >= shared.stages.total());
}

#[test]
fn mm_col_major_slower_than_row_major() {
    // B must span many chunks (n=512 → 2 MiB = 8 chunks) with a cache far
    // smaller than B, so the strip traversal's chunk re-fetches show.
    let scale = 1024;
    let cfg = JobConfig::local(2, 2, 2);
    let mk = || {
        Cluster::with_fuse(
            ClusterSpec::hal().scaled(scale),
            &cfg.benefactor_nodes(),
            FuseConfig {
                cache_bytes: 512 * 1024, // 2 chunks: tiny vs the 2 MiB B
                ..FuseConfig::default()
            },
        )
    };
    let row_mm = MmConfig {
        tile: 4,
        ..mm_cfg(512)
    };
    let row = run_mm(&mk(), &cfg, &row_mm).unwrap();
    let col_mm = MmConfig {
        order: AccessOrder::ColMajor,
        tile: 4,
        ..mm_cfg(512)
    };
    let col = run_mm(&mk(), &cfg, &col_mm).unwrap();
    assert_eq!(row.verified, Some(true));
    assert_eq!(col.verified, Some(true));
    assert!(
        col.stages.computing > row.stages.computing,
        "col-major {} must exceed row-major {}",
        col.stages.computing,
        row.stages.computing
    );
    assert!(
        col.traffic.ssd_req_bytes > row.traffic.ssd_req_bytes,
        "col-major must refetch chunks"
    );
}

#[test]
fn mm_infeasible_when_dram_too_small() {
    // 8 processes per node with B replicated in DRAM cannot fit.
    let cfg = JobConfig::dram_only(8, 2);
    let cluster = cluster_for(&cfg, 1024);
    let mm = MmConfig {
        b_place: BPlacement::Dram,
        ..mm_cfg(512)
    };
    let err = run_mm(&cluster, &cfg, &mm).unwrap_err();
    assert!(err.per_node_needed > err.per_node_available);
}

#[test]
fn mm_stage_times_are_complete() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        small_fuse(1024),
    );
    let r = run_mm(&cluster, &cfg, &mm_cfg(64)).unwrap();
    let s = r.stages;
    assert!(s.input_split_a > simcore::VTime::ZERO);
    assert!(s.input_b > simcore::VTime::ZERO);
    assert!(s.broadcast_b > simcore::VTime::ZERO);
    assert!(s.computing > simcore::VTime::ZERO);
    assert!(s.collect_output_c > simcore::VTime::ZERO);
    assert_eq!(
        s.total(),
        s.input_split_a + s.input_b + s.broadcast_b + s.computing + s.collect_output_c
    );
}

// ---------- Sorting ------------------------------------------------------------

#[test]
fn sort_hybrid_verifies() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        small_fuse(1024),
    );
    let scfg = SortConfig {
        window_elems: 8 * 1024,
        ..SortConfig::new(64 * 1024)
    };
    let r = run_sort_hybrid(&cluster, &cfg, &scfg);
    assert!(r.verified, "hybrid sort must produce a sorted permutation");
    assert_eq!(r.passes, 1);
}

#[test]
fn sort_two_pass_verifies() {
    let cfg = JobConfig::dram_only(2, 2);
    let cluster = cluster_for(&cfg, 1024);
    let scfg = SortConfig::new(64 * 1024);
    let r = run_sort_dram_two_pass(&cluster, &cfg, &scfg);
    assert!(
        r.verified,
        "two-pass sort must produce a sorted permutation"
    );
    assert_eq!(r.passes, 2);
}

#[test]
fn sort_hybrid_beats_two_pass() {
    let elems = 128 * 1024;
    let hybrid_cfg = JobConfig::local(2, 2, 2);
    let hybrid_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &hybrid_cfg.benefactor_nodes(),
        small_fuse(1024),
    );
    let hybrid = run_sort_hybrid(&hybrid_cluster, &hybrid_cfg, &SortConfig::new(elems));

    let dram_cfg = JobConfig::dram_only(2, 2);
    let dram_cluster = cluster_for(&dram_cfg, 1024);
    let two_pass = run_sort_dram_two_pass(&dram_cluster, &dram_cfg, &SortConfig::new(elems));

    assert!(hybrid.verified && two_pass.verified);
    assert!(
        two_pass.time > hybrid.time,
        "two-pass {} must exceed hybrid {}",
        two_pass.time,
        hybrid.time
    );
}

// ---------- Random writes -------------------------------------------------------

#[test]
fn randwrite_optimization_cuts_ssd_volume() {
    let region = 4 * 1024 * 1024u64; // 16 chunks
    let writes = 512;
    let cfg = JobConfig::local(1, 1, 1);

    let opt_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 1024 * 1024, // 4 chunks: forces evictions
            ..FuseConfig::default()
        },
    );
    let rw = RandWriteConfig {
        region_bytes: region,
        writes,
        seed: 3,
    };
    let opt = run_randwrite(&opt_cluster, &cfg, &rw, true);

    let raw_cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 1024 * 1024,
            dirty_page_writeback: false,
            ..FuseConfig::default()
        },
    );
    let unopt = run_randwrite(&raw_cluster, &cfg, &rw, false);

    assert!(opt.verified && unopt.verified);
    // To-FUSE volume is placement-independent; to-SSD volume collapses
    // with the optimization (Table VII's 19.3 GB → 504 MB effect).
    assert_eq!(opt.data_to_fuse, unopt.data_to_fuse);
    assert!(
        unopt.data_to_ssd > 10 * opt.data_to_ssd,
        "whole-chunk writeback {} must dwarf dirty-page writeback {}",
        unopt.data_to_ssd,
        opt.data_to_ssd
    );
    assert!(unopt.time > opt.time);
}

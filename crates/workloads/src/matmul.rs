//! MPI dense matrix multiplication (§IV-B-2): `C = A × B` with loop
//! tiling, BLOCK row distribution of A and C, and B fully replicated —
//! in DRAM, in per-node *shared* NVM mmap files, or in per-process
//! *individual* NVM files.
//!
//! Execution follows the paper's five timed stages:
//!   (i) master reads A from the PFS and scatters row blocks;
//!  (ii) master reads B from the PFS;
//! (iii) B is broadcast (and, in NVM modes, stored into the mapped files);
//!  (iv) every process computes its C rows with loop tiling;
//!   (v) master gathers C and writes it to the PFS.

use cluster::{run_job, Calibration, Cluster, Comm, JobConfig, JobEnv};
use nvmalloc::NvmVec;
use simcore::{ProcCtx, Snapshot, VTime};
use std::sync::Arc;

/// Where matrix B lives during the computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BPlacement {
    /// Fully replicated in every process's DRAM (the baseline).
    Dram,
    /// One NVM mmap file per *node*, shared by its processes (`-SSD-S`).
    NvmShared,
    /// One NVM mmap file per *process* (`-SSD-I`).
    NvmIndividual,
}

/// Traversal order over B in the inner loops (Fig. 5, Table V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOrder {
    RowMajor,
    ColMajor,
}

/// Problem + algorithm parameters.
#[derive(Clone, Copy, Debug)]
pub struct MmConfig {
    /// Scaled matrix dimension (elements per side).
    pub n: usize,
    /// Paper-scale dimension this run stands for (16384 for the 2 GB
    /// matrices); sets the compute-time multiplier `full_n / n` that
    /// restores the paper's compute-to-I/O ratio (see DESIGN.md).
    pub full_n: usize,
    /// Tile size in *scaled* rows/columns.
    pub tile: usize,
    pub order: AccessOrder,
    pub b_place: BPlacement,
    /// Verify C against a reference product (only for small `n`).
    pub verify: bool,
    pub seed: u64,
}

impl MmConfig {
    /// A scaled stand-in for the paper's 2 GB/matrix problem.
    pub fn paper_2gb(n: usize) -> Self {
        MmConfig {
            n,
            full_n: 16384, // 16384² × 8 B = 2 GiB
            tile: (128 * n / 16384).max(1),
            order: AccessOrder::RowMajor,
            b_place: BPlacement::NvmShared,
            verify: false,
            seed: 42,
        }
    }

    /// A scaled stand-in for the 8 GB/matrix problem (Fig. 6).
    pub fn paper_8gb(n: usize) -> Self {
        MmConfig {
            full_n: 32768, // 32768² × 8 B = 8 GiB
            tile: (128 * n / 32768).max(1),
            ..Self::paper_2gb(n)
        }
    }

    pub fn matrix_bytes(&self) -> u64 {
        (self.n * self.n * 8) as u64
    }

    pub fn multiplier(&self) -> f64 {
        self.full_n as f64 / self.n as f64
    }
}

/// Durations of the five stages (the Fig. 3 stacked bars).
#[derive(Clone, Copy, Debug, Default)]
pub struct MmStages {
    pub input_split_a: VTime,
    pub input_b: VTime,
    pub broadcast_b: VTime,
    pub computing: VTime,
    pub collect_output_c: VTime,
}

impl MmStages {
    pub fn total(&self) -> VTime {
        self.input_split_a
            + self.input_b
            + self.broadcast_b
            + self.computing
            + self.collect_output_c
    }
}

/// Traffic observed during the computing stage (Table IV).
#[derive(Clone, Copy, Debug, Default)]
pub struct ComputeTraffic {
    /// Application-level bytes read from B (aggregated accesses).
    pub app_b_bytes: u64,
    /// Page-granular request bytes reaching the FUSE layer.
    pub fuse_req_bytes: u64,
    /// Chunk bytes requested from the SSD store.
    pub ssd_req_bytes: u64,
}

/// Result of one matrix-multiply run.
#[derive(Clone, Debug)]
pub struct MmReport {
    pub label: String,
    pub stages: MmStages,
    pub traffic: ComputeTraffic,
    pub verified: Option<bool>,
}

/// Run failure: the configuration does not fit in node DRAM (this is the
/// paper's reason the DRAM-only baseline runs only 2 processes per node).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmInfeasible {
    pub per_node_needed: u64,
    pub per_node_available: u64,
}

impl std::fmt::Display for MmInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MM configuration needs {} of DRAM per node, only {} installed",
            simcore::bytes::human(self.per_node_needed),
            simcore::bytes::human(self.per_node_available)
        )
    }
}

#[allow(clippy::large_enum_variant)]
enum BSource {
    Dram(Arc<Vec<f64>>),
    Nvm(NvmVec<f64>),
}

impl BSource {
    /// Read `rows` full rows of B starting at row `k0` into `out`.
    fn read_rows(
        &self,
        ctx: &mut ProcCtx,
        env: &JobEnv,
        n: usize,
        k0: usize,
        rows: usize,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), rows * n);
        match self {
            BSource::Dram(b) => {
                env.dram_io(ctx, (rows * n * 8) as u64);
                out.copy_from_slice(&b[k0 * n..(k0 + rows) * n]);
            }
            BSource::Nvm(v) => v.read_slice(ctx, k0 * n, out).expect("B row read"),
        }
    }

    /// Read the tile `B[k0..k0+rows][j0..j0+cols]` (strided) into `out`.
    #[allow(clippy::too_many_arguments)]
    fn read_tile(
        &self,
        ctx: &mut ProcCtx,
        env: &JobEnv,
        n: usize,
        k0: usize,
        rows: usize,
        j0: usize,
        cols: usize,
        out: &mut [f64],
    ) {
        debug_assert_eq!(out.len(), rows * cols);
        match self {
            BSource::Dram(b) => {
                // Strided traversal defeats the hardware prefetcher; charge
                // an effective-bandwidth penalty (×3) for the short runs.
                env.dram_io(ctx, (rows * cols * 8 * 3) as u64);
                for (r, chunk) in out.chunks_exact_mut(cols).enumerate() {
                    let row = k0 + r;
                    chunk.copy_from_slice(&b[row * n + j0..row * n + j0 + cols]);
                }
            }
            BSource::Nvm(v) => v
                .read_strided(ctx, k0 * n + j0, cols, n, rows, out)
                .expect("B tile read"),
        }
    }
}

fn gen_matrix(seed: u64, which: u64, n: usize) -> Arc<Vec<f64>> {
    use rand::Rng;
    let mut rng = simcore::rng::stream_rng(seed, which);
    Arc::new((0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// Run the matrix multiplication on `cluster` under job configuration
/// `cfg`. Fails fast when the placement does not fit in DRAM.
pub fn run_mm(cluster: &Cluster, cfg: &JobConfig, mm: &MmConfig) -> Result<MmReport, MmInfeasible> {
    let p = cfg.ranks();
    let n = mm.n;
    assert!(
        n.is_multiple_of(p),
        "matrix rows must divide over {p} ranks"
    );
    let rows_local = n / p;

    // Feasibility: A_local + C_local everywhere, plus B when DRAM-placed.
    let per_rank = (2 * rows_local * n * 8) as u64
        + if mm.b_place == BPlacement::Dram {
            mm.matrix_bytes()
        } else {
            0
        };
    let per_node = per_rank * cfg.procs_per_node as u64;
    if per_node > cluster.spec.dram_per_node {
        return Err(MmInfeasible {
            per_node_needed: per_node,
            per_node_available: cluster.spec.dram_per_node,
        });
    }

    let calib = Calibration::default().with_multiplier(mm.multiplier());
    // Sub-communicator of node leaders for the shared-B distribution.
    let leader_nodes: Vec<usize> = (0..cfg.compute_nodes).collect();
    let leader_comm = Comm::new(cluster.net.clone(), leader_nodes, calib);

    let result = run_job(cluster, cfg, calib, |ctx, env| {
        run_rank(ctx, env, cluster, cfg, mm, &leader_comm, rows_local)
    });

    // Rank 0 carries the stage times and traffic snapshot deltas.
    let (stages, traffic, verified) = result.outputs.into_iter().next().expect("rank 0");
    Ok(MmReport {
        label: cfg.label(),
        stages,
        traffic,
        verified,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    ctx: &mut ProcCtx,
    env: &JobEnv,
    cluster: &Cluster,
    cfg: &JobConfig,
    mm: &MmConfig,
    leader_comm: &Comm,
    rows_local: usize,
) -> (MmStages, ComputeTraffic, Option<bool>) {
    let n = mm.n;
    let p = env.size;
    let rank = env.rank;
    let master = rank == 0;
    let is_leader = rank.is_multiple_of(cfg.procs_per_node);
    let leader_index = rank / cfg.procs_per_node;

    env.reserve_dram((2 * rows_local * n * 8) as u64)
        .expect("pre-checked");
    if mm.b_place == BPlacement::Dram {
        env.reserve_dram(mm.matrix_bytes()).expect("pre-checked");
    }

    let mut stages = MmStages::default();
    let mut stamp = ctx.now();
    let mut mark = |ctx: &mut ProcCtx, env: &JobEnv, slot: &mut VTime| {
        env.comm.barrier(ctx, rank);
        *slot = ctx.now() - stamp;
        stamp = ctx.now();
    };

    // ---- (i) Input & split A -------------------------------------------------
    let a_full = master.then(|| gen_matrix(mm.seed, 0, n));
    if master {
        env.pfs_read(ctx, mm.matrix_bytes());
    }
    let parts = a_full.as_ref().map(|a| {
        (0..p)
            .map(|r| a[r * rows_local * n..(r + 1) * rows_local * n].to_vec())
            .collect::<Vec<_>>()
    });
    let a_local: Vec<f64> = env.comm.scatter(ctx, rank, 0, parts);
    mark(ctx, env, &mut stages.input_split_a);

    // ---- (ii) Input B --------------------------------------------------------
    let b_full = master.then(|| {
        env.pfs_read(ctx, mm.matrix_bytes());
        gen_matrix(mm.seed, 1, n)
    });
    mark(ctx, env, &mut stages.input_b);

    // ---- (iii) Broadcast B ---------------------------------------------------
    let b_source: BSource = match mm.b_place {
        BPlacement::Dram => {
            let b: Arc<Vec<f64>> = env.comm.bcast(ctx, rank, 0, b_full.clone());
            BSource::Dram(b)
        }
        BPlacement::NvmShared => {
            // Leaders receive B over the wire and store it into the
            // node-shared mmap file; other ranks just map it.
            let key = format!("mm.B.node{}", env.node);
            let v = env
                .client
                .ssdmalloc_shared::<f64>(ctx, &key, n * n)
                .expect("ssdmalloc B");
            if is_leader {
                let b: Arc<Vec<f64>> = leader_comm.bcast(ctx, leader_index, 0, b_full.clone());
                v.write_slice(ctx, 0, &b).expect("store B");
                v.flush(ctx).expect("flush B");
            }
            BSource::Nvm(v)
        }
        BPlacement::NvmIndividual => {
            let b: Arc<Vec<f64>> = env.comm.bcast(ctx, rank, 0, b_full.clone());
            let v = env
                .client
                .ssdmalloc::<f64>(ctx, n * n)
                .expect("ssdmalloc B");
            v.write_slice(ctx, 0, &b).expect("store B");
            v.flush(ctx).expect("flush B");
            BSource::Nvm(v)
        }
    };
    mark(ctx, env, &mut stages.broadcast_b);

    // ---- (iv) Computing --------------------------------------------------
    let snap_before = master.then(|| cluster.stats.snapshot());
    let mut c_local = vec![0f64; rows_local * n];
    compute_tiles(ctx, env, mm, &a_local, &b_source, &mut c_local, rows_local);
    mark(ctx, env, &mut stages.computing);
    let traffic = match (master, snap_before) {
        (true, Some(before)) => {
            let after = cluster.stats.snapshot();
            traffic_delta(&after, &before, cluster.store.config().chunk_size)
        }
        _ => ComputeTraffic::default(),
    };

    // ---- (v) Collect & output C ------------------------------------------
    let gathered = env.comm.gather(ctx, rank, 0, c_local);
    if master {
        env.pfs_write(ctx, mm.matrix_bytes());
    }
    mark(ctx, env, &mut stages.collect_output_c);

    // Verification (master only, small n).
    let verified = if mm.verify && master {
        let a = a_full.expect("master has A");
        let b = b_full.expect("master has B");
        let c: Vec<f64> = gathered.expect("master gathers").concat();
        Some(verify_product(&a, &b, &c, n))
    } else {
        None
    };

    // Teardown.
    match b_source {
        BSource::Dram(b) => {
            env.release_dram((b.len() * 8) as u64);
        }
        BSource::Nvm(v) => {
            let shared = v.is_shared();
            let key = format!("mm.B.node{}", env.node);
            env.client.ssdfree(ctx, v).expect("free B");
            if shared && is_leader {
                env.client.unlink_shared(ctx, &key).expect("unlink B");
            }
        }
    }
    env.release_dram((2 * rows_local * n * 8) as u64);
    env.comm.barrier(ctx, rank);

    (stages, traffic, verified)
}

fn traffic_delta(after: &Snapshot, before: &Snapshot, chunk_size: u64) -> ComputeTraffic {
    let d = after.delta_since(before);
    ComputeTraffic {
        app_b_bytes: d.get("nvm.app_read_bytes"),
        fuse_req_bytes: d.get("fuse.read_req_bytes"),
        ssd_req_bytes: d.get("store.bytes_to_clients") + d.get("store.zero_fills") * chunk_size,
    }
}

/// The tiled kernel. Row-major order streams whole row blocks of B;
/// column-major order walks B in `tile`-wide column strips of strided
/// tiles, touching every chunk of B once per strip — the locality
/// difference behind Fig. 5 and Table V.
fn compute_tiles(
    ctx: &mut ProcCtx,
    env: &JobEnv,
    mm: &MmConfig,
    a_local: &[f64],
    b: &BSource,
    c_local: &mut [f64],
    rows_local: usize,
) {
    let n = mm.n;
    let tile = mm.tile.clamp(1, n);
    let itile = tile.min(rows_local);

    match mm.order {
        AccessOrder::RowMajor => {
            let mut bbuf = vec![0f64; tile * n];
            for i0 in (0..rows_local).step_by(itile) {
                let ilen = itile.min(rows_local - i0);
                for k0 in (0..n).step_by(tile) {
                    let klen = tile.min(n - k0);
                    b.read_rows(ctx, env, n, k0, klen, &mut bbuf[..klen * n]);
                    // A block in, C block in+out over the DRAM bus.
                    env.dram_io(ctx, ((ilen * klen + 2 * ilen * n) * 8) as u64);
                    env.compute(ctx, 2.0 * (ilen * klen * n) as f64);
                    for i in 0..ilen {
                        let arow = &a_local[(i0 + i) * n..];
                        let crow = &mut c_local[(i0 + i) * n..(i0 + i + 1) * n];
                        for (k, brow) in bbuf[..klen * n].chunks_exact(n).enumerate() {
                            let aik = arow[k0 + k];
                            for (cj, bj) in crow.iter_mut().zip(brow) {
                                *cj += aik * bj;
                            }
                        }
                    }
                }
            }
        }
        AccessOrder::ColMajor => {
            // Coarse k-blocking bounds the number of timed operations; the
            // strip count n/tile is what drives chunk re-fetch traffic.
            let kblk = 256.min(n);
            let mut bbuf = vec![0f64; kblk * tile];
            for i0 in (0..rows_local).step_by(itile) {
                let ilen = itile.min(rows_local - i0);
                for j0 in (0..n).step_by(tile) {
                    let jlen = tile.min(n - j0);
                    for k0 in (0..n).step_by(kblk) {
                        let klen = kblk.min(n - k0);
                        b.read_tile(ctx, env, n, k0, klen, j0, jlen, &mut bbuf[..klen * jlen]);
                        env.dram_io(ctx, ((ilen * klen + 2 * ilen * jlen) * 8) as u64);
                        env.compute(ctx, 2.0 * (ilen * klen * jlen) as f64);
                        for i in 0..ilen {
                            let arow = &a_local[(i0 + i) * n..];
                            let crow = &mut c_local[(i0 + i) * n + j0..(i0 + i) * n + j0 + jlen];
                            for (k, btile_row) in bbuf[..klen * jlen].chunks_exact(jlen).enumerate()
                            {
                                let aik = arow[k0 + k];
                                for (cj, bj) in crow.iter_mut().zip(btile_row) {
                                    *cj += aik * bj;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

fn verify_product(a: &[f64], b: &[f64], c: &[f64], n: usize) -> bool {
    // Reference product with identical summation order (k-outer), so the
    // floating-point results match bit for bit.
    let mut reference = vec![0f64; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let (rrow, brow) = (&mut reference[i * n..(i + 1) * n], &b[k * n..(k + 1) * n]);
            for (r, bv) in rrow.iter_mut().zip(brow) {
                *r += aik * bv;
            }
        }
    }
    c.iter()
        .zip(&reference)
        .all(|(x, y)| (x - y).abs() <= 1e-9 * y.abs().max(1.0))
}

//! Parallel sorting (§IV-B-3, Table VI): a 200 GB list sorted under three
//! configurations —
//!
//! * `DRAM(8:16:0)`  — the dataset exceeds total DRAM, so the original
//!   program is split into **two passes** whose interim sorted runs are
//!   exchanged through the PFS;
//! * `L-SSD(8:16:16)` — hybrid: half the data in DRAM, half in NVMalloc
//!   variables on local SSDs, single pass;
//! * `R-SSD(8:8:8)`  — hybrid on half the nodes: a quarter in DRAM, the
//!   rest on remote SSDs, single pass.
//!
//! The parallel algorithm is a textbook sample sort (the recursive
//! partitioning of quicksort, distributed): local sort → splitter
//! selection → all-to-all exchange → local merge. The NVM-resident part
//! is sorted out-of-core (run formation + merge), which is exactly the
//! access pattern NVMalloc's chunk cache is built for.

use cluster::{run_job, Calibration, Cluster, JobConfig, JobEnv};
use nvmalloc::NvmVec;
use rand::Rng;
use simcore::{ProcCtx, VTime};

/// Sorting-cost constant: charged flops per element·log2(element) of
/// comparison sorting (comparisons + moves).
const SORT_OPS_PER_ELEM_LOG: f64 = 4.0;

/// Problem description.
#[derive(Clone, Copy, Debug)]
pub struct SortConfig {
    /// Total list length (u64 elements) across all ranks.
    pub total_elems: usize,
    /// Fraction of the dataset resident in DRAM, as (numerator, denom):
    /// the paper's L-SSD case is (1,2) — 100 GB of 200 GB — and the
    /// R-SSD case is (1,4).
    pub dram_part: (usize, usize),
    /// Out-of-core run-formation window (elements per rank).
    pub window_elems: usize,
    pub seed: u64,
    pub verify: bool,
}

impl SortConfig {
    pub fn new(total_elems: usize) -> Self {
        SortConfig {
            total_elems,
            dram_part: (1, 2),
            window_elems: 64 * 1024,
            seed: 7,
            verify: true,
        }
    }

    pub fn dram_elems(&self) -> usize {
        self.total_elems * self.dram_part.0 / self.dram_part.1
    }
}

/// Outcome of a sort run.
#[derive(Clone, Debug)]
pub struct SortReport {
    pub label: String,
    pub time: VTime,
    /// Number of passes over the dataset the configuration required
    /// (Table VI's "Pass (#)" row).
    pub passes: u32,
    pub verified: bool,
}

fn charge_sort(ctx: &mut ProcCtx, env: &JobEnv, elems: usize) {
    if elems > 1 {
        env.compute(
            ctx,
            SORT_OPS_PER_ELEM_LOG * elems as f64 * (elems as f64).log2(),
        );
    }
}

fn gen_data(seed: u64, rank: usize, elems: usize) -> Vec<u64> {
    let mut rng = simcore::rng::stream_rng(seed, rank as u64);
    (0..elems).map(|_| rng.gen::<u64>()).collect()
}

/// Derive `p-1` global splitters from regular samples of every rank's
/// sorted local data (gather at root, broadcast back).
fn compute_splitters(
    ctx: &mut ProcCtx,
    env: &JobEnv,
    sorted: &[u64],
    oversample: usize,
) -> Vec<u64> {
    let p = env.size;
    let rank = env.rank;
    let samples: Vec<u64> = (0..oversample)
        .map(|i| {
            let idx = (i + 1) * sorted.len() / (oversample + 1);
            sorted[idx.min(sorted.len().saturating_sub(1))]
        })
        .collect();
    let all_samples = env.comm.gather(ctx, rank, 0, samples);
    env.comm.bcast(
        ctx,
        rank,
        0,
        all_samples.map(|s| {
            let mut flat: Vec<u64> = s.into_iter().flatten().collect();
            flat.sort_unstable();
            (1..p)
                .map(|i| flat[i * flat.len() / p])
                .collect::<Vec<u64>>()
        }),
    )
}

/// Partition sorted local data by `splitters` and redistribute; returns
/// this rank's merged partition. Charges the all-to-all + merge.
fn exchange_with_splitters(
    ctx: &mut ProcCtx,
    env: &JobEnv,
    sorted: Vec<u64>,
    splitters: &[u64],
) -> Vec<u64> {
    let p = env.size;
    debug_assert_eq!(splitters.len(), p - 1);
    let mut buckets: Vec<Vec<u64>> = Vec::with_capacity(p);
    let mut start = 0usize;
    for s in splitters {
        let end = start + sorted[start..].partition_point(|x| x <= s);
        buckets.push(sorted[start..end].to_vec());
        start = end;
    }
    buckets.push(sorted[start..].to_vec());

    let received = env.comm.all_to_all(ctx, env.rank, buckets);
    // p-way merge of sorted runs: charge m·log2(p).
    let total: usize = received.iter().map(Vec::len).sum();
    if total > 0 {
        env.compute(
            ctx,
            SORT_OPS_PER_ELEM_LOG * total as f64 * (p as f64).log2(),
        );
    }
    let mut merged: Vec<u64> = received.into_iter().flatten().collect();
    merged.sort_unstable(); // host-side; virtual cost charged above
    merged
}

/// Sample-sort exchange with fresh splitters.
fn exchange_sorted(
    ctx: &mut ProcCtx,
    env: &JobEnv,
    sorted: Vec<u64>,
    oversample: usize,
) -> Vec<u64> {
    if env.size == 1 {
        return sorted;
    }
    let splitters = compute_splitters(ctx, env, &sorted, oversample);
    exchange_with_splitters(ctx, env, sorted, &splitters)
}

fn verify_global(ctx: &mut ProcCtx, env: &JobEnv, part: &[u64], checksum: u64) -> bool {
    let sorted_locally = part.windows(2).all(|w| w[0] <= w[1]);
    let lo = part.first().copied().unwrap_or(u64::MIN);
    let hi = part.last().copied().unwrap_or(u64::MAX);
    let my_sum: u64 = part
        .iter()
        .fold(0u64, |acc, &x| acc.wrapping_add(x))
        .wrapping_sub(checksum);
    // Gather (lo, hi, len, sum-delta) at root and check the global order.
    let stats = env.comm.gather(
        ctx,
        rank_of(env),
        0,
        vec![lo, hi, part.len() as u64, my_sum],
    );
    let ok_root = stats.map(|rows| {
        let mut ok = true;
        let mut prev_hi = 0u64;
        let mut first = true;
        let mut sum_delta = 0u64;
        for row in &rows {
            let (lo, hi, len, d) = (row[0], row[1], row[2], row[3]);
            if len > 0 {
                if !first && lo < prev_hi {
                    ok = false;
                }
                prev_hi = hi;
                first = false;
            }
            sum_delta = sum_delta.wrapping_add(d);
        }
        ok && sum_delta == 0
    });
    let ok_global = env
        .comm
        .bcast(ctx, rank_of(env), 0, ok_root.map(|b| vec![b as u64]));
    sorted_locally && ok_global[0] == 1
}

fn rank_of(env: &JobEnv) -> usize {
    env.rank
}

/// Hybrid DRAM+NVM sort (the L-SSD / R-SSD rows of Table VI).
pub fn run_sort_hybrid(cluster: &Cluster, cfg: &JobConfig, scfg: &SortConfig) -> SortReport {
    let p = cfg.ranks();
    assert_eq!(scfg.total_elems % p, 0, "list must divide across ranks");
    let result = run_job(cluster, cfg, Calibration::default(), |ctx, env| {
        let my_total = scfg.total_elems / p;
        let my_dram = scfg.dram_elems() / p;
        let my_nvm = my_total - my_dram;

        // ---- Load from the PFS ------------------------------------------
        env.pfs_read(ctx, (my_total * 8) as u64);
        let data = gen_data(scfg.seed, env.rank, my_total);
        let checksum = data.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        env.reserve_dram((my_dram * 8) as u64)
            .expect("DRAM part fits");
        let mut dram_part = data[..my_dram].to_vec();
        let nvm_var: Option<NvmVec<u64>> = if my_nvm > 0 {
            let v = env.client.ssdmalloc::<u64>(ctx, my_nvm).expect("ssdmalloc");
            v.write_slice(ctx, 0, &data[my_dram..])
                .expect("load NVM part");
            v.flush(ctx).expect("flush");
            Some(v)
        } else {
            None
        };
        drop(data);
        env.comm.barrier(ctx, env.rank);
        let t0 = ctx.now();

        // ---- Local sort ---------------------------------------------------
        charge_sort(ctx, env, my_dram);
        env.dram_io(ctx, (my_dram * 8 * 2) as u64);
        dram_part.sort_unstable();

        // Out-of-core sort of the NVM part: run formation + merge.
        let mut nvm_sorted: Vec<u64> = Vec::with_capacity(my_nvm);
        if let Some(v) = &nvm_var {
            let w = scfg.window_elems.min(my_nvm).max(1);
            let mut buf = vec![0u64; w];
            // Run formation: read a window, sort it, write it back.
            let mut off = 0;
            while off < my_nvm {
                let len = w.min(my_nvm - off);
                v.read_slice(ctx, off, &mut buf[..len]).expect("run read");
                charge_sort(ctx, env, len);
                buf[..len].sort_unstable();
                v.write_slice(ctx, off, &buf[..len]).expect("run write");
                off += len;
            }
            // Merge pass: stream every run back and k-way merge.
            let runs = my_nvm.div_ceil(w);
            let mut all = vec![0u64; my_nvm];
            v.read_slice(ctx, 0, &mut all).expect("merge read");
            env.compute(
                ctx,
                SORT_OPS_PER_ELEM_LOG * my_nvm as f64 * (runs.max(2) as f64).log2(),
            );
            all.sort_unstable();
            v.write_slice(ctx, 0, &all).expect("merge write");
            v.flush(ctx).expect("flush sorted");
            nvm_sorted = all;
        }

        // Merge DRAM and NVM parts into one locally sorted sequence.
        env.compute(ctx, SORT_OPS_PER_ELEM_LOG * my_total as f64);
        let mut local: Vec<u64> = Vec::with_capacity(my_total);
        local.extend_from_slice(&dram_part);
        local.extend_from_slice(&nvm_sorted);
        local.sort_unstable();
        drop(nvm_sorted);
        drop(dram_part);

        // ---- Global exchange ---------------------------------------------
        let part = exchange_sorted(ctx, env, local, 4 * p);

        // Store the result back in the same DRAM/NVM split.
        let keep_dram = part.len().min(my_dram);
        if part.len() > keep_dram {
            if let Some(v) = &nvm_var {
                let spill = (part.len() - keep_dram).min(v.len());
                v.write_slice(ctx, 0, &part[keep_dram..keep_dram + spill])
                    .expect("store sorted");
                v.flush(ctx).expect("flush");
            }
        }
        env.comm.barrier(ctx, env.rank);
        let elapsed = ctx.now() - t0;

        let ok = if scfg.verify {
            verify_global(ctx, env, &part, checksum)
        } else {
            true
        };

        if let Some(v) = nvm_var {
            env.client.ssdfree(ctx, v).expect("free");
        }
        env.release_dram((my_dram * 8) as u64);
        (elapsed, ok)
    });

    let time = result.outputs.iter().map(|(t, _)| *t).max().expect("ranks");
    SortReport {
        label: cfg.label(),
        time,
        passes: 1,
        verified: result.outputs.iter().all(|(_, ok)| *ok),
    }
}

/// The DRAM-only two-pass baseline: sort each half separately (interim
/// results staged on the PFS), then merge the halves through the PFS.
pub fn run_sort_dram_two_pass(cluster: &Cluster, cfg: &JobConfig, scfg: &SortConfig) -> SortReport {
    let p = cfg.ranks();
    assert_eq!(scfg.total_elems % (2 * p), 0);
    let result = run_job(cluster, cfg, Calibration::default(), |ctx, env| {
        let my_total = scfg.total_elems / p;
        let my_half = my_total / 2;
        env.reserve_dram((my_half * 8) as u64).expect("half fits");

        let data = gen_data(scfg.seed, env.rank, my_total);
        let checksum = data.iter().fold(0u64, |a, &x| a.wrapping_add(x));
        env.comm.barrier(ctx, env.rank);
        let t0 = ctx.now();

        // Pass 1 and 2: load a half from the PFS, sort, exchange, write
        // the sorted half back to the PFS. Both passes partition by the
        // SAME splitters so the per-rank key ranges line up and the final
        // merge is a local streaming operation.
        let mut halves: Vec<Vec<u64>> = Vec::with_capacity(2);
        let mut splitters: Option<Vec<u64>> = None;
        for h in 0..2 {
            env.pfs_read(ctx, (my_half * 8) as u64);
            let mut part = data[h * my_half..(h + 1) * my_half].to_vec();
            charge_sort(ctx, env, my_half);
            env.dram_io(ctx, (my_half * 8 * 2) as u64);
            part.sort_unstable();
            let sorted = if p == 1 {
                part
            } else {
                let sp = match &splitters {
                    Some(sp) => sp.clone(),
                    None => {
                        let sp = compute_splitters(ctx, env, &part, 4 * p);
                        splitters = Some(sp.clone());
                        sp
                    }
                };
                exchange_with_splitters(ctx, env, part, &sp)
            };
            env.pfs_write(ctx, (sorted.len() * 8) as u64);
            halves.push(sorted);
        }

        // Merge pass: stream both sorted halves back from the PFS, merge,
        // and write the final output.
        env.pfs_read(ctx, ((halves[0].len() + halves[1].len()) * 8) as u64);
        env.compute(
            ctx,
            SORT_OPS_PER_ELEM_LOG * (halves[0].len() + halves[1].len()) as f64,
        );
        let mut merged: Vec<u64> = Vec::with_capacity(halves[0].len() + halves[1].len());
        merged.extend_from_slice(&halves[0]);
        merged.extend_from_slice(&halves[1]);
        merged.sort_unstable();
        env.pfs_write(ctx, (merged.len() * 8) as u64);
        env.comm.barrier(ctx, env.rank);
        let elapsed = ctx.now() - t0;

        let ok = if scfg.verify {
            verify_global(ctx, env, &merged, checksum)
        } else {
            true
        };
        env.release_dram((my_half * 8) as u64);
        (elapsed, ok)
    });

    let time = result.outputs.iter().map(|(t, _)| *t).max().expect("ranks");
    SortReport {
        label: cfg.label(),
        time,
        passes: 2,
        verified: result.outputs.iter().all(|(_, ok)| *ok),
    }
}

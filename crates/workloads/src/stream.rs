//! STREAM (§IV-B-1): sustained-bandwidth vector kernels with configurable
//! array placement — any subset of the three arrays can live on the NVM
//! store instead of DRAM (Fig. 2), and a raw-mmap baseline without the
//! NVMalloc cache layer reproduces Table III.
//!
//! The paper's TRIAD kernel is `A[i] = B[i] + 3*C[i]`, run with 8 threads
//! on one node over 2 GB arrays for 10 iterations.

use cluster::{run_job, Calibration, Cluster, JobConfig};
use devices::Ssd;
use nvmalloc::NvmVec;
use simcore::{ProcCtx, VTime};

/// Where one STREAM array lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayPlace {
    Dram,
    Nvm,
}

/// Which kernel to run (Table III covers all four).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKernel {
    /// `A[i] = C[i]`
    Copy,
    /// `A[i] = 3*C[i]`
    Scale,
    /// `A[i] = B[i] + C[i]`
    Add,
    /// `A[i] = B[i] + 3*C[i]`
    Triad,
}

impl StreamKernel {
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "COPY",
            StreamKernel::Scale => "SCALE",
            StreamKernel::Add => "ADD",
            StreamKernel::Triad => "TRIAD",
        }
    }

    /// Arrays moved per element: (uses B?, flops per element).
    fn shape(self) -> (bool, f64) {
        match self {
            StreamKernel::Copy => (false, 0.0),
            StreamKernel::Scale => (false, 1.0),
            StreamKernel::Add => (true, 1.0),
            StreamKernel::Triad => (true, 2.0),
        }
    }

    /// Bytes moved per element (for the bandwidth figure).
    pub fn bytes_per_elem(self) -> u64 {
        let (uses_b, _) = self.shape();
        if uses_b {
            24
        } else {
            16
        }
    }

    fn expected(self, b: f64, c: f64) -> f64 {
        match self {
            StreamKernel::Copy => c,
            StreamKernel::Scale => 3.0 * c,
            StreamKernel::Add => b + c,
            StreamKernel::Triad => b + 3.0 * c,
        }
    }
}

/// STREAM configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Elements per array (each element is one f64).
    pub elems: usize,
    /// Kernel repetitions (the paper uses 10).
    pub iters: usize,
    /// Placement of arrays A, B, C.
    pub placement: [ArrayPlace; 3],
    /// Access granularity in elements (one FUSE/DRAM request per block).
    pub block_elems: usize,
}

impl StreamConfig {
    pub fn new(elems: usize) -> Self {
        StreamConfig {
            elems,
            iters: 10,
            placement: [ArrayPlace::Dram; 3],
            block_elems: 32 * 1024 / 8, // 32 KiB requests
        }
    }

    pub fn place(mut self, a: ArrayPlace, b: ArrayPlace, c: ArrayPlace) -> Self {
        self.placement = [a, b, c];
        self
    }

    /// The Fig. 2 x-axis label for this placement ("None", "A", "B&C"…).
    pub fn placement_label(&self) -> String {
        let names = ["A", "B", "C"];
        let on: Vec<&str> = self
            .placement
            .iter()
            .zip(names)
            .filter(|(p, _)| **p == ArrayPlace::Nvm)
            .map(|(_, n)| n)
            .collect();
        if on.is_empty() {
            "None".to_string()
        } else {
            on.join("&")
        }
    }
}

/// Measured result.
#[derive(Clone, Debug)]
pub struct StreamReport {
    pub kernel: StreamKernel,
    pub time: VTime,
    /// Sustained bandwidth in MB/s (10^6), STREAM's native unit.
    pub bandwidth_mb_s: f64,
    pub verified: bool,
}

/// One array as seen by one thread: either a DRAM-resident slice (host
/// data + DRAM-bus charging) or a slice window of a shared NVM variable.
#[allow(clippy::large_enum_variant)]
enum StreamArray {
    Dram(Vec<f64>),
    Nvm(NvmVec<f64>),
}

fn init_value(which: usize, i: usize) -> f64 {
    // Deterministic per-array contents so the kernel can be verified.
    match which {
        1 => i as f64 * 0.5,          // B
        2 => (i % 1024) as f64 + 1.0, // C
        _ => 0.0,                     // A
    }
}

/// Run one STREAM kernel on the cluster under `cfg` (expected: x threads
/// on 1 compute node, benefactors per the placement being studied).
pub fn run_stream(
    cluster: &Cluster,
    cfg: &JobConfig,
    calib: Calibration,
    scfg: &StreamConfig,
    kernel: StreamKernel,
) -> StreamReport {
    let threads = cfg.ranks();
    assert_eq!(
        scfg.elems % threads,
        0,
        "array length must divide across threads"
    );
    let result = run_job(cluster, cfg, calib, |ctx, env| {
        let my = scfg.elems / threads;
        let base = env.rank * my;
        let (uses_b, flops_per_elem) = kernel.shape();

        // Allocate and initialize the three arrays (thread-local slices of
        // the logical arrays; NVM arrays are shared files).
        let mut arrays: Vec<StreamArray> = Vec::with_capacity(3);
        for (which, place) in scfg.placement.iter().enumerate() {
            let name = ["A", "B", "C"][which];
            match place {
                ArrayPlace::Dram => {
                    env.reserve_dram(8 * my as u64)
                        .expect("DRAM exhausted for STREAM array");
                    let data: Vec<f64> = (0..my).map(|i| init_value(which, base + i)).collect();
                    arrays.push(StreamArray::Dram(data));
                }
                ArrayPlace::Nvm => {
                    let v = env
                        .client
                        .ssdmalloc_shared::<f64>(ctx, &format!("stream.{name}"), scfg.elems)
                        .expect("ssdmalloc failed for STREAM array");
                    // Each thread initializes its own slice.
                    let init: Vec<f64> = (0..my).map(|i| init_value(which, base + i)).collect();
                    v.write_slice(ctx, base, &init).expect("init write");
                    v.flush(ctx).expect("init flush");
                    arrays.push(StreamArray::Nvm(v));
                }
            }
        }
        env.comm.barrier(ctx, env.rank);
        let t0 = ctx.now();

        let mut a_block = vec![0f64; scfg.block_elems];
        let mut b_block = vec![0f64; scfg.block_elems];
        let mut c_block = vec![0f64; scfg.block_elems];
        for _ in 0..scfg.iters {
            let mut off = 0usize;
            while off < my {
                let len = scfg.block_elems.min(my - off);
                // Load inputs.
                if uses_b {
                    load(ctx, env, &arrays[1], base, off, &mut b_block[..len]);
                }
                load(ctx, env, &arrays[2], base, off, &mut c_block[..len]);
                // Compute.
                if flops_per_elem > 0.0 {
                    env.compute(ctx, flops_per_elem * len as f64);
                }
                for i in 0..len {
                    a_block[i] = kernel.expected(b_block[i], c_block[i]);
                }
                // Store output.
                match &mut arrays[0] {
                    StreamArray::Dram(v) => {
                        env.dram_io(ctx, 8 * len as u64);
                        v[off..off + len].copy_from_slice(&a_block[..len]);
                    }
                    StreamArray::Nvm(v) => {
                        v.write_slice(ctx, base + off, &a_block[..len])
                            .expect("stream write");
                    }
                }
                off += len;
            }
        }

        env.comm.barrier(ctx, env.rank);
        let elapsed = ctx.now() - t0;

        // Verify a sample of A.
        let mut ok = true;
        for probe in [0usize, my / 2, my - 1] {
            let got = match &arrays[0] {
                StreamArray::Dram(v) => v[probe],
                StreamArray::Nvm(v) => v.get(ctx, base + probe).expect("verify read"),
            };
            let want = kernel.expected(init_value(1, base + probe), init_value(2, base + probe));
            ok &= got == want;
        }

        // Tear down NVM arrays (shared: rank 0 unlinks after the barrier).
        env.comm.barrier(ctx, env.rank);
        for (which, arr) in arrays.into_iter().enumerate() {
            match arr {
                StreamArray::Dram(v) => env.release_dram(8 * v.len() as u64),
                StreamArray::Nvm(v) => {
                    env.client.ssdfree(ctx, v).expect("free");
                    if env.rank == 0 {
                        let name = ["A", "B", "C"][which];
                        env.client
                            .unlink_shared(ctx, &format!("stream.{name}"))
                            .expect("unlink");
                    }
                }
            }
        }
        (elapsed, ok)
    });

    let time = result.outputs.iter().map(|(t, _)| *t).max().expect("ranks");
    let verified = result.outputs.iter().all(|(_, ok)| *ok);
    let total_bytes = kernel.bytes_per_elem() * scfg.elems as u64 * scfg.iters as u64;
    StreamReport {
        kernel,
        time,
        bandwidth_mb_s: total_bytes as f64 / time.as_secs_f64() / 1e6,
        verified,
    }
}

fn load(
    ctx: &mut ProcCtx,
    env: &cluster::JobEnv,
    arr: &StreamArray,
    base: usize,
    off: usize,
    out: &mut [f64],
) {
    match arr {
        StreamArray::Dram(v) => {
            env.dram_io(ctx, 8 * out.len() as u64);
            out.copy_from_slice(&v[off..off + out.len()]);
        }
        StreamArray::Nvm(v) => {
            v.read_slice(ctx, base + off, out).expect("stream read");
        }
    }
}

/// Raw-mmap baseline for Table III: array C lives on the node-local SSD
/// accessed through plain `mmap` with the kernel's 128 KiB readahead but
/// *without* NVMalloc's chunk cache.
#[derive(Clone, Copy, Debug)]
pub struct RawMmapConfig {
    /// Kernel readahead window (Linux-era default: 128 KiB).
    pub readahead_bytes: u64,
}

impl Default for RawMmapConfig {
    fn default() -> Self {
        RawMmapConfig {
            readahead_bytes: 128 * 1024,
        }
    }
}

/// STREAM with array C on a raw local SSD (no NVMalloc): every
/// `readahead_bytes` window of sequential faults costs one device access.
pub fn run_stream_raw_ssd(
    cluster: &Cluster,
    cfg: &JobConfig,
    calib: Calibration,
    scfg: &StreamConfig,
    kernel: StreamKernel,
    raw: RawMmapConfig,
) -> StreamReport {
    let threads = cfg.ranks();
    assert_eq!(scfg.elems % threads, 0);
    // One raw device per compute node, shared by its threads.
    let raw_ssds: Vec<Ssd> = (0..cfg.compute_nodes)
        .map(|n| {
            Ssd::new(
                &format!("raw.n{n}.ssd"),
                cluster.spec.ssd_profile,
                &cluster.stats,
            )
        })
        .collect();
    let raw_ssds = &raw_ssds;

    let result = run_job(cluster, cfg, calib, move |ctx, env| {
        let my = scfg.elems / threads;
        let base = env.rank * my;
        let (uses_b, flops_per_elem) = kernel.shape();
        let ssd = &raw_ssds[env.node];

        let b: Vec<f64> = (0..my).map(|i| init_value(1, base + i)).collect();
        let c: Vec<f64> = (0..my).map(|i| init_value(2, base + i)).collect();
        let mut a = vec![0f64; my];

        env.comm.barrier(ctx, env.rank);
        let t0 = ctx.now();
        for _ in 0..scfg.iters {
            let mut off = 0usize;
            while off < my {
                let len = scfg.block_elems.min(my - off);
                let bytes = 8 * len as u64;
                if uses_b {
                    env.dram_io(ctx, bytes); // B stays in DRAM
                }
                // C: sequential mmap faults against the raw SSD, one
                // device access per readahead window.
                let windows = bytes.div_ceil(raw.readahead_bytes);
                ctx.yield_until_min();
                let mut t = ctx.now();
                for _ in 0..windows {
                    let g = ssd.read_at(t, raw.readahead_bytes.min(bytes));
                    t = g.end;
                }
                ctx.advance_to(t);
                if flops_per_elem > 0.0 {
                    env.compute(ctx, flops_per_elem * len as f64);
                }
                for i in 0..len {
                    a[off + i] = kernel.expected(b[off + i], c[off + i]);
                }
                env.dram_io(ctx, bytes); // store A in DRAM
                off += len;
            }
        }
        env.comm.barrier(ctx, env.rank);
        let elapsed = ctx.now() - t0;
        let ok = (0..my)
            .step_by((my / 3).max(1))
            .all(|i| a[i] == kernel.expected(init_value(1, base + i), init_value(2, base + i)));
        (elapsed, ok)
    });

    let time = result.outputs.iter().map(|(t, _)| *t).max().expect("ranks");
    let verified = result.outputs.iter().all(|(_, ok)| *ok);
    let total_bytes = kernel.bytes_per_elem() * scfg.elems as u64 * scfg.iters as u64;
    StreamReport {
        kernel,
        time,
        bandwidth_mb_s: total_bytes as f64 / time.as_secs_f64() / 1e6,
        verified,
    }
}

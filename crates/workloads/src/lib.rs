//! # workloads — the paper's evaluation kernels
//!
//! Faithful implementations of every application §IV measures:
//!
//! * [`stream`] — the STREAM bandwidth kernels with per-array placement
//!   (Fig. 2, Table III) plus the raw-mmap baseline;
//! * [`matmul`] — MPI dense matrix multiply with loop tiling, shared vs
//!   individual mmap files, row vs column-major access, and the five
//!   timed stages (Figs. 3–6, Tables IV–V);
//! * [`qsort`] — parallel sample sort: hybrid DRAM+NVM single-pass vs the
//!   DRAM-only two-pass baseline through the PFS (Table VI);
//! * [`randwrite`] — the random byte-write synthetic behind the
//!   dirty-page write optimization numbers (Table VII).
//!
//! All kernels operate on real data (results are verified) while charging
//! virtual time for the full-scale problem via the calibration rules in
//! DESIGN.md.

pub mod matmul;
pub mod qsort;
pub mod randwrite;
pub mod stream;

pub use matmul::{
    run_mm, AccessOrder, BPlacement, ComputeTraffic, MmConfig, MmInfeasible, MmReport, MmStages,
};
pub use qsort::{run_sort_dram_two_pass, run_sort_hybrid, SortConfig, SortReport};
pub use randwrite::{run_randwrite, RandWriteConfig, RandWriteReport};
pub use stream::{
    run_stream, run_stream_raw_ssd, ArrayPlace, RawMmapConfig, StreamConfig, StreamKernel,
    StreamReport,
};

#[cfg(test)]
mod tests;

//! The random-write synthetic (§IV-B-4, Table VII): byte-sized writes to
//! uniformly random addresses inside an NVM-resident region — the worst
//! case for the write path. With NVMalloc's dirty-page optimization,
//! evicting a dirty chunk ships only its 4 KiB dirty pages; without it,
//! every eviction ships the whole 256 KiB chunk.

use cluster::{run_job, Calibration, Cluster, JobConfig};
use rand::Rng;
use simcore::VTime;

/// Configuration of the synthetic.
#[derive(Clone, Copy, Debug)]
pub struct RandWriteConfig {
    /// Region size in bytes (the paper uses 2 GB).
    pub region_bytes: u64,
    /// Number of single-byte writes (the paper uses 128 K).
    pub writes: usize,
    pub seed: u64,
}

/// Measured volumes (the two columns of Table VII).
#[derive(Clone, Copy, Debug)]
pub struct RandWriteReport {
    pub optimized: bool,
    /// Page-granular bytes the OS page cache pushed to FUSE.
    pub data_to_fuse: u64,
    /// Bytes shipped from the FUSE layer to the SSD store.
    pub data_to_ssd: u64,
    pub time: VTime,
    pub verified: bool,
}

/// Run the synthetic on a single process. The cluster's FUSE layer must
/// already be configured with the desired `dirty_page_writeback` setting;
/// `optimized` only labels the report.
pub fn run_randwrite(
    cluster: &Cluster,
    cfg: &JobConfig,
    rw: &RandWriteConfig,
    optimized: bool,
) -> RandWriteReport {
    assert_eq!(cfg.ranks(), 1, "the synthetic is single-process");
    let before = cluster.stats.snapshot();
    let result = run_job(cluster, cfg, Calibration::default(), |ctx, env| {
        let v = env
            .client
            .ssdmalloc::<u8>(ctx, rw.region_bytes as usize)
            .expect("ssdmalloc");
        let mut rng = simcore::rng::stream_rng(rw.seed, 0);
        let t0 = ctx.now();
        let mut probes: Vec<(usize, u8)> = Vec::with_capacity(16);
        for i in 0..rw.writes {
            let addr = rng.gen_range(0..rw.region_bytes) as usize;
            let value = (i % 251) as u8;
            v.set(ctx, addr, value).expect("write");
            if i >= rw.writes - 16 {
                probes.push((addr, value));
            }
        }
        v.flush(ctx).expect("final flush");
        let elapsed = ctx.now() - t0;
        // The last writes to each probed address must be readable back.
        let mut seen = std::collections::HashMap::new();
        for (addr, value) in probes {
            seen.insert(addr, value); // later writes win
        }
        let ok = seen
            .iter()
            .all(|(&addr, &val)| v.get(ctx, addr).expect("read") == val);
        env.client.ssdfree(ctx, v).expect("free");
        (elapsed, ok)
    });

    let after = cluster.stats.snapshot();
    let d = after.delta_since(&before);
    let (time, verified) = result.outputs[0];
    RandWriteReport {
        optimized,
        data_to_fuse: d.get("fuse.write_req_bytes"),
        data_to_ssd: d.get("store.bytes_from_clients"),
        time,
        verified,
    }
}

//! With `pipelined_io` on, the data path reorders work across
//! benefactors but must stay a deterministic simulation: the same seed
//! reproduces identical virtual times and identical counter snapshots,
//! and the pipelined run is never slower than its serial twin.

use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, MmConfig};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

fn cluster_for(cfg: &JobConfig, pipelined: bool) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(1024),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 2 * 1024 * 1024,
            pipelined_io: pipelined,
            ..FuseConfig::default()
        },
    )
}

fn stream_run(pipelined: bool) -> (simcore::VTime, Vec<(String, u64)>) {
    let cfg = JobConfig::remote(1, 1, 4);
    let cluster = cluster_for(&cfg, pipelined);
    // 4 MiB per array: larger than the 2 MiB cache, so iteration 2 streams.
    let scfg =
        StreamConfig::new(512 * 1024).place(ArrayPlace::Dram, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let r = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(r.verified);
    let counters: Vec<(String, u64)> = cluster.stats.snapshot().values.into_iter().collect();
    (r.time, counters)
}

#[test]
fn pipelined_stream_is_deterministic() {
    let (t1, c1) = stream_run(true);
    let (t2, c2) = stream_run(false);
    let (t3, c3) = stream_run(true);
    assert_eq!(t1, t3, "same seed, same virtual makespan");
    assert_eq!(c1, c3, "same seed, same counter snapshot");
    assert!(
        t1 <= t2,
        "pipelining must not slow the stream down: {t1} vs serial {t2}"
    );
    assert!(
        c1.iter()
            .any(|(k, v)| k == "store.batched_fetches" && *v > 0),
        "pipelined run exercised the batched path"
    );
    assert!(
        c2.iter()
            .all(|(k, v)| k != "store.batched_fetches" || *v == 0),
        "serial run stays off the batched path"
    );
}

#[test]
fn pipelined_mm_is_deterministic() {
    let run = || {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = cluster_for(&cfg, true);
        let r = run_mm(&cluster, &cfg, &MmConfig::paper_2gb(128)).unwrap();
        assert_ne!(r.verified, Some(false));
        (
            r.stages.total(),
            r.traffic.ssd_req_bytes,
            cluster.stats.get("store.batched_fetches"),
            cluster.stats.get("store.loc_cache_hits"),
            cluster.stats.get("fuse.async_writebacks"),
        )
    };
    assert_eq!(run(), run());
}

//! Additional workload-level tests: determinism, edge configurations, and
//! paper-shape invariants at test-friendly sizes.

use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, AccessOrder, BPlacement, MmConfig};
use workloads::qsort::{run_sort_dram_two_pass, run_sort_hybrid, SortConfig};
use workloads::randwrite::{run_randwrite, RandWriteConfig};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

fn cluster_for(cfg: &JobConfig, scale: u64, cache: u64) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: cache,
            ..FuseConfig::default()
        },
    )
}

#[test]
fn mm_is_deterministic() {
    let run = || {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
        let r = run_mm(&cluster, &cfg, &MmConfig::paper_2gb(128)).unwrap();
        (
            r.stages.total(),
            r.traffic.ssd_req_bytes,
            r.traffic.fuse_req_bytes,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn mm_seed_changes_data_not_timing_shape() {
    let run = |seed| {
        let cfg = JobConfig::local(2, 2, 2);
        let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
        let mm = MmConfig {
            seed,
            verify: true,
            ..MmConfig::paper_2gb(64)
        };
        run_mm(&cluster, &cfg, &mm).unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.verified, Some(true));
    assert_eq!(b.verified, Some(true));
    // Same volumes regardless of data contents.
    assert_eq!(a.traffic.fuse_req_bytes, b.traffic.fuse_req_bytes);
}

#[test]
fn mm_single_rank_degenerate_case() {
    let cfg = JobConfig::local(1, 1, 1);
    let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let mm = MmConfig {
        verify: true,
        ..MmConfig::paper_2gb(64)
    };
    let r = run_mm(&cluster, &cfg, &mm).unwrap();
    assert_eq!(r.verified, Some(true));
}

#[test]
fn mm_col_major_tile_sweep_improves() {
    let run = |tile| {
        let cfg = JobConfig::local(2, 1, 1);
        let cluster = cluster_for(&cfg, 1024, 512 * 1024);
        let mm = MmConfig {
            order: AccessOrder::ColMajor,
            tile,
            verify: true,
            ..MmConfig::paper_2gb(256)
        };
        run_mm(&cluster, &cfg, &mm).unwrap()
    };
    let small = run(4);
    let large = run(64);
    assert_eq!(small.verified, Some(true));
    assert_eq!(large.verified, Some(true));
    assert!(
        large.stages.computing < small.stages.computing,
        "bigger tiles must help col-major: {} vs {}",
        large.stages.computing,
        small.stages.computing
    );
}

#[test]
fn mm_individual_b_uses_more_store_space() {
    let cfg = JobConfig::local(2, 2, 2);
    let shared_cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let _ = run_mm(&shared_cluster, &cfg, &MmConfig::paper_2gb(64)).unwrap();

    let indiv_cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let mm = MmConfig {
        b_place: BPlacement::NvmIndividual,
        ..MmConfig::paper_2gb(64)
    };
    let _ = run_mm(&indiv_cluster, &cfg, &mm).unwrap();
    // Everything is freed afterwards in both modes.
    assert_eq!(shared_cluster.store.manager().physical_bytes(), 0);
    assert_eq!(indiv_cluster.store.manager().physical_bytes(), 0);
    // Shared mode stores one B file per *node* (2), individual one per
    // *rank* (4): twice the flash writes here.
    assert!(
        indiv_cluster.total_ssd_bytes_written() >= 2 * shared_cluster.total_ssd_bytes_written()
    );
}

#[test]
fn stream_copy_moves_fewer_bytes_than_triad() {
    assert_eq!(StreamKernel::Copy.bytes_per_elem(), 16);
    assert_eq!(StreamKernel::Triad.bytes_per_elem(), 24);
    assert_eq!(StreamKernel::Add.bytes_per_elem(), 24);
    assert_eq!(StreamKernel::Scale.bytes_per_elem(), 16);
}

#[test]
fn stream_placement_labels() {
    let c = StreamConfig::new(8);
    assert_eq!(c.placement_label(), "None");
    assert_eq!(
        c.place(ArrayPlace::Nvm, ArrayPlace::Dram, ArrayPlace::Nvm)
            .placement_label(),
        "A&C"
    );
    assert_eq!(
        c.place(ArrayPlace::Nvm, ArrayPlace::Nvm, ArrayPlace::Nvm)
            .placement_label(),
        "A&B&C"
    );
}

#[test]
fn stream_single_iteration_still_verifies() {
    let cfg = JobConfig::local(2, 1, 1);
    let cluster = cluster_for(&cfg, 1024, 2 * 1024 * 1024);
    let scfg = StreamConfig {
        iters: 1,
        ..StreamConfig::new(8192).place(ArrayPlace::Nvm, ArrayPlace::Dram, ArrayPlace::Dram)
    };
    let r = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(r.verified);
}

#[test]
fn sort_single_rank() {
    let cfg = JobConfig::local(1, 1, 1);
    let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let r = run_sort_hybrid(&cluster, &cfg, &SortConfig::new(16 * 1024));
    assert!(r.verified);
}

#[test]
fn sort_all_dram_fraction() {
    // dram_part (1,1): the "hybrid" degenerates to an in-memory sort.
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let r = run_sort_hybrid(
        &cluster,
        &cfg,
        &SortConfig {
            dram_part: (1, 1),
            ..SortConfig::new(32 * 1024)
        },
    );
    assert!(r.verified);
}

#[test]
fn sort_mostly_nvm_fraction() {
    let cfg = JobConfig::local(2, 2, 2);
    let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
    let r = run_sort_hybrid(
        &cluster,
        &cfg,
        &SortConfig {
            dram_part: (1, 8),
            ..SortConfig::new(64 * 1024)
        },
    );
    assert!(r.verified);
}

#[test]
fn sort_is_deterministic() {
    let run = || {
        let cfg = JobConfig::dram_only(2, 2);
        let cluster = Cluster::new(ClusterSpec::hal().scaled(1024), &[]);
        run_sort_dram_two_pass(&cluster, &cfg, &SortConfig::new(32 * 1024)).time
    };
    assert_eq!(run(), run());
}

#[test]
fn randwrite_volume_scales_with_writes() {
    let run = |writes| {
        let cfg = JobConfig::local(1, 1, 1);
        let cluster = cluster_for(&cfg, 1024, 1024 * 1024);
        run_randwrite(
            &cluster,
            &cfg,
            &RandWriteConfig {
                region_bytes: 8 << 20,
                writes,
                seed: 5,
            },
            true,
        )
    };
    let few = run(128);
    let many = run(1024);
    assert!(few.verified && many.verified);
    assert!(many.data_to_fuse > few.data_to_fuse);
    assert_eq!(many.data_to_fuse, 1024 * 4096, "one page per byte write");
}

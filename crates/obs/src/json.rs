//! Dependency-free JSON: string escaping for the exporter and a small
//! recursive-descent parser for the trace validator.
//!
//! The workspace deliberately carries no serde (offline build, vendored
//! shims only); `bench::Json` hand-renders reports the same way. This
//! module adds the *reading* side so `scripts/check.sh` can validate an
//! exported trace against the Chrome trace-event schema.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers; the trace format only needs magnitude ordering.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Escape `s` into a JSON string literal body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parse a complete JSON document. Errors carry the byte offset.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// A parse failure: what and where.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub msg: String,
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our traces;
                            // replace unpaired surrogates rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_num(), Some(2.5));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        let parsed = parse(&format!("\"{s}\"")).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}

//! The per-bench "obs footer": where the virtual time went.
//!
//! Summarizes a recorded trace into the attribution tables the paper's
//! evaluation style calls for — per-layer virtual-time breakdown (inclusive
//! and self time), the top-N slowest spans, latency-histogram percentiles,
//! and counter deltas over the traced window. `bench::JsonReport` renders
//! this into `BENCH_<name>.json`.

use crate::trace::{Layer, TraceRecorder};
use simcore::Snapshot;

/// Virtual time attributed to one layer.
#[derive(Clone, Debug)]
pub struct LayerBreakdown {
    pub layer: Layer,
    /// Number of spans recorded for this layer.
    pub spans: u64,
    /// Sum of span durations (children included — overlaps double-count).
    pub inclusive_ns: u64,
    /// Sum of span durations minus direct children (no double counting;
    /// layer percentages are computed over this).
    pub self_ns: u64,
}

/// One of the slowest spans in the trace.
#[derive(Clone, Debug)]
pub struct TopSpan {
    pub name: &'static str,
    pub layer: Layer,
    pub lane: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Percentile line for one latency histogram.
#[derive(Clone, Debug)]
pub struct HistLine {
    pub name: String,
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// Everything a bench appends to its JSON report when tracing is on.
#[derive(Clone, Debug, Default)]
pub struct ObsFooter {
    /// `[min span start, max span end]` of the traced window, ns.
    pub window_ns: (u64, u64),
    /// Per-layer attribution, [`Layer::ALL`] order, empty layers skipped.
    pub layers: Vec<LayerBreakdown>,
    /// Slowest spans, longest first.
    pub top_spans: Vec<TopSpan>,
    /// Latency histograms in name order.
    pub hists: Vec<HistLine>,
    /// Counter deltas since the recorder was created.
    pub counters: Snapshot,
    pub spans_recorded: u64,
    pub spans_dropped: u64,
    pub instants: u64,
}

impl ObsFooter {
    /// Total self time across layers (the 100% of the breakdown).
    pub fn total_self_ns(&self) -> u64 {
        self.layers.iter().map(|l| l.self_ns).sum()
    }

    /// Share of total self time spent in `layer`, in percent.
    pub fn layer_pct(&self, layer: Layer) -> f64 {
        let total = self.total_self_ns();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .find(|l| l.layer == layer)
            .map(|l| 100.0 * l.self_ns as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Percentile line for one histogram name, if recorded.
    pub fn hist(&self, name: &str) -> Option<&HistLine> {
        self.hists.iter().find(|h| h.name == name)
    }
}

impl TraceRecorder {
    /// Summarize the trace recorded so far. Returns an empty footer when
    /// the recorder is disabled.
    pub fn footer(&self, top_n: usize) -> ObsFooter {
        if !self.is_enabled() {
            return ObsFooter::default();
        }
        let spans = self.spans();
        let instants = self.instants();

        let mut child_ns = vec![0u64; spans.len()];
        for s in &spans {
            if let Some(p) = s.parent {
                child_ns[p as usize] += s.dur().as_nanos();
            }
        }

        let mut window = (u64::MAX, 0u64);
        let mut per_layer: Vec<(u64, u64, u64)> = vec![(0, 0, 0); Layer::ALL.len()];
        for s in &spans {
            window.0 = window.0.min(s.start.as_nanos());
            window.1 = window.1.max(s.end.as_nanos());
            let li = Layer::ALL.iter().position(|&l| l == s.layer).unwrap();
            let dur = s.dur().as_nanos();
            per_layer[li].0 += 1;
            per_layer[li].1 += dur;
            per_layer[li].2 += dur.saturating_sub(child_ns[s.id as usize]);
        }
        if spans.is_empty() {
            window = (0, 0);
        }
        let layers = Layer::ALL
            .iter()
            .zip(&per_layer)
            .filter(|(_, &(n, _, _))| n > 0)
            .map(|(&layer, &(n, incl, slf))| LayerBreakdown {
                layer,
                spans: n,
                inclusive_ns: incl,
                self_ns: slf,
            })
            .collect();

        let mut by_dur: Vec<&crate::trace::SpanRecord> = spans.iter().collect();
        by_dur.sort_by_key(|s| (std::cmp::Reverse(s.dur()), s.id));
        let top_spans = by_dur
            .iter()
            .take(top_n)
            .map(|s| TopSpan {
                name: s.name,
                layer: s.layer,
                lane: s.lane,
                start_ns: s.start.as_nanos(),
                dur_ns: s.dur().as_nanos(),
            })
            .collect();

        let hists = self
            .stats()
            .histograms()
            .into_iter()
            .filter(|h| !h.is_empty())
            .map(|h| {
                let p = h.percentiles();
                HistLine {
                    name: h.name().to_string(),
                    count: h.count(),
                    p50_ns: p.p50,
                    p95_ns: p.p95,
                    p99_ns: p.p99,
                    max_ns: h.max(),
                }
            })
            .collect();

        ObsFooter {
            window_ns: window,
            layers,
            top_spans,
            hists,
            counters: self.stats().snapshot().delta_since(&self.baseline()),
            spans_recorded: spans.len() as u64,
            spans_dropped: self.dropped(),
            instants: instants.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Layer;
    use simcore::{StatsRegistry, VTime};

    #[test]
    fn footer_attributes_self_time_to_layers() {
        let stats = StatsRegistry::new();
        stats.counter("store.chunk_fetches").add(1); // pre-recorder: baseline
        let rec = TraceRecorder::enabled(&stats);
        stats.counter("store.chunk_fetches").add(4);
        let outer = rec.span(Layer::Fuse, "fuse.read", VTime::from_nanos(0));
        let inner = rec.span(Layer::Store, "store.chunk_fetch", VTime::from_nanos(20));
        inner.finish(VTime::from_nanos(80));
        outer.finish(VTime::from_nanos(100));
        let f = rec.footer(10);
        assert_eq!(f.window_ns, (0, 100));
        assert_eq!(f.spans_recorded, 2);
        // fuse self = 100 - 60 = 40; store self = 60.
        assert_eq!(f.total_self_ns(), 100);
        assert!((f.layer_pct(Layer::Fuse) - 40.0).abs() < 1e-9);
        assert!((f.layer_pct(Layer::Store) - 60.0).abs() < 1e-9);
        assert_eq!(f.top_spans[0].name, "fuse.read");
        assert_eq!(f.top_spans[1].dur_ns, 60);
        // Counter delta excludes the pre-recorder increment.
        assert_eq!(f.counters.get("store.chunk_fetches"), 4);
        // Both spans fed latency histograms.
        assert_eq!(f.hist("lat.fuse.read").unwrap().count, 1);
        assert_eq!(f.hist("lat.store.chunk_fetch").unwrap().max_ns, 60);
    }

    #[test]
    fn disabled_footer_is_empty() {
        let f = TraceRecorder::disabled().footer(5);
        assert_eq!(f.spans_recorded, 0);
        assert!(f.layers.is_empty());
        assert_eq!(f.layer_pct(Layer::Fuse), 0.0);
    }
}

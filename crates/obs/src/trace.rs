//! Virtual-time span recording.
//!
//! A [`TraceRecorder`] lives next to the `StatsRegistry` in a cluster. Each
//! instrumented operation opens a [`SpanGuard`] with its virtual start time
//! and closes it with the virtual completion time the layer computed —
//! tracing never participates in the time arithmetic, so enabling it cannot
//! perturb results. Parent/child links come from a per-host-thread open-span
//! stack: layer calls are synchronous (mount → store → net → device), and
//! the engine's baton (one simulated process executes at a time, in
//! `(virtual clock, id)` order) makes the shared append order — and thus the
//! whole trace — deterministic.

use parking_lot::Mutex;
use simcore::{EngineObserver, Histogram, ProcId, Snapshot, StatsRegistry, VTime};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

/// Which layer of the stack a span or instant belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Application-visible nvmalloc API (`NvmClient`, `NvmVec`).
    Nvm,
    /// FUSE memory-mapped cache layer.
    Fuse,
    /// Aggregate chunk store (manager RPCs, chunk fetches, repair).
    Store,
    /// Interconnect transfers.
    Net,
    /// SSD / PFS device service.
    Dev,
    /// Injected fault events (instants).
    Fault,
}

impl Layer {
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Nvm => "nvm",
            Layer::Fuse => "fuse",
            Layer::Store => "store",
            Layer::Net => "net",
            Layer::Dev => "dev",
            Layer::Fault => "fault",
        }
    }

    pub const ALL: [Layer; 6] = [
        Layer::Nvm,
        Layer::Fuse,
        Layer::Store,
        Layer::Net,
        Layer::Dev,
        Layer::Fault,
    ];
}

/// One closed span. `id` is the span's index in creation order; `parent`
/// points at the span that was open on the same host thread when this one
/// started (lexical call nesting, which for async work — write-back,
/// read-ahead — may *end* after the parent does).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u32,
    pub parent: Option<u32>,
    /// Trace lane: the engine `ProcId` for spans recorded inside a
    /// simulated process, or a high-numbered driver lane otherwise.
    pub lane: u32,
    pub layer: Layer,
    pub name: &'static str,
    pub start: VTime,
    pub end: VTime,
    pub args: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    pub fn dur(&self) -> VTime {
        self.end.saturating_sub(self.start)
    }
}

/// A point event (fault injections, failovers).
#[derive(Clone, Debug)]
pub struct InstantRecord {
    pub lane: u32,
    pub layer: Layer,
    pub name: String,
    pub t: VTime,
}

/// Lane number handed to host threads that are not bound to an engine
/// process (the bench driver doing setup I/O). Engine lanes are `ProcId`s
/// counting from zero, so the two ranges cannot collide in practice.
const DRIVER_LANE_BASE: u32 = 1_000_000;

/// Spans kept before the recorder starts dropping (footer reports drops).
const MAX_SPANS: usize = 1 << 21;

struct Inner {
    stats: StatsRegistry,
    baseline: Snapshot,
    spans: Mutex<Vec<SpanRecord>>,
    instants: Mutex<Vec<InstantRecord>>,
    /// Per-host-thread stack of open span ids (lexical nesting).
    open: Mutex<HashMap<ThreadId, Vec<u32>>>,
    /// Host thread → lane binding (set by the engine observer).
    lanes: Mutex<HashMap<ThreadId, u32>>,
    lane_labels: Mutex<BTreeMap<u32, String>>,
    next_driver_lane: AtomicU64,
    dropped: AtomicU64,
    /// Latency histograms per span name, interned once per name.
    hists: Mutex<HashMap<&'static str, Histogram>>,
}

/// Records spans/instants when enabled; every method is a cheap no-op when
/// disabled (one branch, no allocation, no locking). Cheap to clone —
/// clones share the underlying trace.
#[derive(Clone, Default)]
pub struct TraceRecorder {
    inner: Option<Arc<Inner>>,
}

impl TraceRecorder {
    /// A recorder that drops everything (the default for every cluster).
    pub fn disabled() -> Self {
        TraceRecorder { inner: None }
    }

    /// A live recorder. `stats` is snapshotted now so the footer can report
    /// counter deltas over the traced window, and receives the latency
    /// histograms (`lat.<span name>`).
    pub fn enabled(stats: &StatsRegistry) -> Self {
        TraceRecorder {
            inner: Some(Arc::new(Inner {
                stats: stats.clone(),
                baseline: stats.snapshot(),
                spans: Mutex::new(Vec::new()),
                instants: Mutex::new(Vec::new()),
                open: Mutex::new(HashMap::new()),
                lanes: Mutex::new(HashMap::new()),
                lane_labels: Mutex::new(BTreeMap::new()),
                next_driver_lane: AtomicU64::new(DRIVER_LANE_BASE as u64),
                dropped: AtomicU64::new(0),
                hists: Mutex::new(HashMap::new()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lane_of_current_thread(inner: &Inner) -> u32 {
        let tid = std::thread::current().id();
        if let Some(&lane) = inner.lanes.lock().get(&tid) {
            return lane;
        }
        let lane = inner.next_driver_lane.fetch_add(1, Ordering::Relaxed) as u32;
        inner.lanes.lock().insert(tid, lane);
        inner
            .lane_labels
            .lock()
            .insert(lane, format!("driver {}", lane - DRIVER_LANE_BASE));
        lane
    }

    /// Open a span at virtual time `start`. Close it with
    /// [`SpanGuard::finish`] at the operation's computed completion time;
    /// a guard dropped without `finish` (early `?` return) closes
    /// zero-length at `start`.
    pub fn span(&self, layer: Layer, name: &'static str, start: VTime) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                rec: None,
                id: None,
            };
        };
        let mut spans = inner.spans.lock();
        if spans.len() >= MAX_SPANS {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return SpanGuard {
                rec: None,
                id: None,
            };
        }
        let id = spans.len() as u32;
        let tid = std::thread::current().id();
        let lane = Self::lane_of_current_thread(inner);
        let mut open = inner.open.lock();
        let stack = open.entry(tid).or_default();
        let parent = stack.last().copied();
        stack.push(id);
        drop(open);
        spans.push(SpanRecord {
            id,
            parent,
            lane,
            layer,
            name,
            start,
            end: start,
            args: Vec::new(),
        });
        SpanGuard {
            rec: Some(self.clone()),
            id: Some(id),
        }
    }

    /// Record a point event (fault injection, failover decision).
    pub fn instant(&self, layer: Layer, name: impl Into<String>, t: VTime) {
        let Some(inner) = &self.inner else { return };
        let lane = Self::lane_of_current_thread(inner);
        inner.instants.lock().push(InstantRecord {
            lane,
            layer,
            name: name.into(),
            t,
        });
    }

    fn close(&self, id: u32, end: VTime) {
        let Some(inner) = &self.inner else { return };
        let tid = std::thread::current().id();
        {
            let mut open = inner.open.lock();
            let stack = open.entry(tid).or_default();
            debug_assert_eq!(
                stack.last().copied(),
                Some(id),
                "spans must close in LIFO order on a thread"
            );
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.truncate(pos);
            }
        }
        let mut spans = inner.spans.lock();
        let rec = &mut spans[id as usize];
        rec.end = rec.start.max(end);
        let dur = rec.end.saturating_sub(rec.start).as_nanos();
        let name = rec.name;
        drop(spans);
        let hist = {
            let mut hists = inner.hists.lock();
            hists
                .entry(name)
                .or_insert_with(|| inner.stats.histogram(&format!("lat.{name}")))
                .clone()
        };
        hist.record(dur);
    }

    fn add_arg(&self, id: u32, k: &'static str, v: u64) {
        let Some(inner) = &self.inner else { return };
        inner.spans.lock()[id as usize].args.push((k, v));
    }

    /// Bind the calling host thread to an engine lane and label it. Used by
    /// the engine observer; also callable directly from tests.
    pub fn bind_lane(&self, lane: u32, label: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let tid = std::thread::current().id();
        inner.lanes.lock().insert(tid, lane);
        inner.lane_labels.lock().entry(lane).or_insert(label.into());
    }

    /// An [`EngineObserver`] that binds each engine process's host thread
    /// to trace lane `ProcId` (`None` when disabled, so `Engine::run` pays
    /// nothing).
    pub fn observer(&self) -> Option<Arc<dyn EngineObserver>> {
        self.inner.as_ref()?;
        Some(Arc::new(LaneBinder { rec: self.clone() }))
    }

    /// Closed-so-far spans, in creation order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().clone(),
            None => Vec::new(),
        }
    }

    pub fn instants(&self) -> Vec<InstantRecord> {
        match &self.inner {
            Some(inner) => inner.instants.lock().clone(),
            None => Vec::new(),
        }
    }

    pub fn lane_labels(&self) -> BTreeMap<u32, String> {
        match &self.inner {
            Some(inner) => inner.lane_labels.lock().clone(),
            None => BTreeMap::new(),
        }
    }

    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// The registry this recorder feeds (panics when disabled).
    pub fn stats(&self) -> &StatsRegistry {
        &self.inner.as_ref().expect("recorder disabled").stats
    }

    /// Counter values captured when the recorder was created.
    pub fn baseline(&self) -> Snapshot {
        match &self.inner {
            Some(inner) => inner.baseline.clone(),
            None => Snapshot::default(),
        }
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.spans().len())
            .finish()
    }
}

struct LaneBinder {
    rec: TraceRecorder,
}

impl EngineObserver for LaneBinder {
    fn proc_started(&self, id: ProcId, _t: VTime) {
        self.rec.bind_lane(id as u32, format!("rank {id}"));
    }

    fn proc_finished(&self, _id: ProcId, _t: VTime) {}
}

/// Handle to an open span. `finish(end)` closes it at the operation's
/// computed virtual completion time; `arg` attaches small key/value pairs
/// (bytes, node ids, chunk indices) for the exported trace.
#[must_use = "call finish(end) with the op's virtual completion time"]
pub struct SpanGuard {
    rec: Option<TraceRecorder>,
    id: Option<u32>,
}

impl SpanGuard {
    pub fn arg(&self, k: &'static str, v: u64) -> &Self {
        if let (Some(rec), Some(id)) = (&self.rec, self.id) {
            rec.add_arg(id, k, v);
        }
        self
    }

    /// Close the span at virtual time `end`.
    pub fn finish(mut self, end: VTime) {
        if let (Some(rec), Some(id)) = (self.rec.take(), self.id.take()) {
            rec.close(id, end);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Early-error path: close zero-length so the thread stack stays
        // balanced and the export stays well-formed.
        if let (Some(rec), Some(id)) = (self.rec.take(), self.id.take()) {
            let start = rec
                .inner
                .as_ref()
                .map(|i| i.spans.lock()[id as usize].start)
                .unwrap_or(VTime::ZERO);
            rec.close(id, start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = TraceRecorder::disabled();
        let sp = rec.span(Layer::Fuse, "fuse.read", VTime::from_nanos(5));
        sp.arg("bytes", 100);
        sp.finish(VTime::from_nanos(9));
        rec.instant(Layer::Fault, "crash", VTime::ZERO);
        assert!(rec.spans().is_empty());
        assert!(rec.instants().is_empty());
        assert!(rec.observer().is_none());
    }

    #[test]
    fn spans_nest_lexically() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        let outer = rec.span(Layer::Fuse, "fuse.read", VTime::from_nanos(10));
        let inner = rec.span(Layer::Store, "store.chunk_fetch", VTime::from_nanos(12));
        inner.arg("chunk", 3);
        inner.finish(VTime::from_nanos(20));
        outer.finish(VTime::from_nanos(25));
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].args, vec![("chunk", 3)]);
        assert_eq!(spans[0].dur(), VTime::from_nanos(15));
        // Latency histogram was fed with the duration.
        assert_eq!(stats.histogram("lat.store.chunk_fetch").count(), 1);
        assert_eq!(stats.histogram("lat.store.chunk_fetch").max(), 8);
    }

    #[test]
    fn dropped_guard_closes_zero_length() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        {
            let _sp = rec.span(Layer::Store, "store.write_pages", VTime::from_nanos(7));
            // early `?` return: guard dropped without finish
        }
        let after = rec.span(Layer::Store, "store.other", VTime::from_nanos(8));
        after.finish(VTime::from_nanos(9));
        let spans = rec.spans();
        assert_eq!(spans[0].dur(), VTime::ZERO);
        assert_eq!(spans[1].parent, None, "dropped guard must pop the stack");
    }

    #[test]
    fn end_clamps_to_start() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        let sp = rec.span(Layer::Net, "net.xfer", VTime::from_nanos(10));
        sp.finish(VTime::from_nanos(3));
        assert_eq!(rec.spans()[0].end, VTime::from_nanos(10));
    }

    #[test]
    fn lanes_bind_per_thread() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        rec.bind_lane(2, "rank 2");
        rec.span(Layer::Nvm, "nvm.read", VTime::ZERO)
            .finish(VTime::ZERO);
        let spans = rec.spans();
        assert_eq!(spans[0].lane, 2);
        assert_eq!(
            rec.lane_labels().get(&2).map(String::as_str),
            Some("rank 2")
        );
    }
}

//! # obs — deterministic observability for the NVMalloc stack
//!
//! The paper's evaluation is an accounting exercise: Table IV/VII compare
//! byte volumes seen at the application vs. FUSE vs. SSD-store layers.
//! Flat counters (`simcore::stats`) answer *how much*; this crate answers
//! *where the virtual time went*:
//!
//! * [`TraceRecorder`] — parent/child spans in engine virtual time across
//!   the full request path (nvmalloc → fusemm → chunkstore → netsim →
//!   devices), attached next to the `StatsRegistry` and zero-cost when
//!   disabled;
//! * [`chrome`] — Chrome-trace-event JSON export, loadable in Perfetto,
//!   with balanced B/E pairs even for async spans (write-back, read-ahead)
//!   that outlive their parents;
//! * [`footer`] — the per-bench "obs footer": per-layer virtual-time
//!   breakdown, top-N slowest spans, histogram percentiles, counter
//!   deltas;
//! * [`json`] — a dependency-free JSON value/parser used by the trace
//!   validator (the workspace deliberately carries no serde).
//!
//! Everything here is deterministic: spans are recorded under the engine
//! baton (one process runs at a time, in `(virtual clock, id)` order), so
//! identical seed + config produce byte-identical exports.

pub mod chrome;
pub mod footer;
pub mod json;
pub mod trace;

pub use chrome::{validate_chrome_trace, ValidationError};
pub use footer::{HistLine, LayerBreakdown, ObsFooter, TopSpan};
pub use trace::{InstantRecord, Layer, SpanGuard, SpanRecord, TraceRecorder};

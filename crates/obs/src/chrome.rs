//! Chrome-trace-event export (Perfetto-loadable) and schema validation.
//!
//! The recorder's spans nest *lexically* (call nesting), but in virtual
//! time they may overlap arbitrarily: the pipelined data path issues
//! per-benefactor chunk chains whose completion times interleave, and async
//! write-backs outlive the request that triggered them. Chrome's duration
//! events (`ph: "B"/"E"`) require properly nested, time-ordered pairs per
//! `tid`, so the exporter greedily splits each lane into as many sub-tracks
//! as the overlap needs — every track holds a properly nested set of
//! intervals, so balanced B/E emission is guaranteed by construction.

use crate::json::{self, escape_into, Value};
use crate::trace::{SpanRecord, TraceRecorder};
use simcore::VTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const PID: u32 = 1;

/// Microsecond timestamp with exact nanosecond fraction (deterministic:
/// integer math only, no float formatting).
fn ts_us(t: VTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_event_prefix(out: &mut String, name: &str, cat: &str, ph: char, t: VTime, tid: u32) {
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    let _ = write!(
        out,
        "\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        cat,
        ph,
        ts_us(t),
        PID,
        tid
    );
}

fn push_span_begin(out: &mut String, s: &SpanRecord, tid: u32) {
    push_event_prefix(out, s.name, s.layer.as_str(), 'B', s.start, tid);
    out.push_str(",\"args\":{");
    for (i, (k, v)) in s.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":{v}");
    }
    out.push_str("}}");
}

fn push_span_end(out: &mut String, s: &SpanRecord, tid: u32) {
    push_event_prefix(out, s.name, s.layer.as_str(), 'E', s.end, tid);
    out.push('}');
}

fn push_meta(out: &mut String, what: &str, tid: u32, name: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{what}\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":\""
    );
    escape_into(out, name);
    out.push_str("\"}}");
}

/// Split one lane's spans (sorted by `(start, id)`) into sub-tracks whose
/// intervals are properly nested.
fn assign_tracks(spans: &[SpanRecord], ids: &[u32]) -> Vec<Vec<u32>> {
    // Per track: the ids placed on it, plus a stack of still-open end times
    // mirroring what B/E emission will see.
    let mut placed: Vec<Vec<u32>> = Vec::new();
    let mut stacks: Vec<Vec<VTime>> = Vec::new();
    for &sid in ids {
        let s = &spans[sid as usize];
        let mut done = false;
        for (track, stack) in stacks.iter_mut().enumerate() {
            while stack.last().is_some_and(|&end| end <= s.start) {
                stack.pop();
            }
            let fits = stack.last().is_none_or(|&end| end >= s.end);
            if fits {
                stack.push(s.end);
                placed[track].push(sid);
                done = true;
                break;
            }
        }
        if !done {
            stacks.push(vec![s.end]);
            placed.push(vec![sid]);
        }
    }
    placed
}

impl TraceRecorder {
    /// Render the whole trace as a Chrome trace-event JSON document.
    /// Deterministic: identical recorded spans produce identical bytes.
    pub fn chrome_trace(&self) -> String {
        let spans = self.spans();
        let instants = self.instants();
        let labels = self.lane_labels();

        let mut by_lane: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for s in &spans {
            by_lane.entry(s.lane).or_default().push(s.id);
        }
        for ids in by_lane.values_mut() {
            ids.sort_by_key(|&id| (spans[id as usize].start, id));
        }

        let mut out = String::with_capacity(256 + 160 * (spans.len() * 2 + instants.len()));
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |out: &mut String, piece: &mut dyn FnMut(&mut String)| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            piece(out);
        };

        emit(&mut out, &mut |o| {
            push_meta(o, "process_name", 0, "nvmalloc-sim")
        });

        let mut next_tid = 1u32;
        for (&lane, ids) in &by_lane {
            let tracks = assign_tracks(&spans, ids);
            let label = labels
                .get(&lane)
                .cloned()
                .unwrap_or_else(|| format!("lane {lane}"));
            for (ti, track) in tracks.iter().enumerate() {
                let tid = next_tid;
                next_tid += 1;
                let tname = if ti == 0 {
                    label.clone()
                } else {
                    format!("{label} (async {ti})")
                };
                emit(&mut out, &mut |o| push_meta(o, "thread_name", tid, &tname));
                // Balanced B/E emission: stack mirrors assign_tracks.
                let mut open: Vec<u32> = Vec::new();
                for &sid in track {
                    let s = &spans[sid as usize];
                    while open
                        .last()
                        .is_some_and(|&t| spans[t as usize].end <= s.start)
                    {
                        let top = &spans[*open.last().unwrap() as usize];
                        emit(&mut out, &mut |o| push_span_end(o, top, tid));
                        open.pop();
                    }
                    emit(&mut out, &mut |o| push_span_begin(o, s, tid));
                    open.push(sid);
                }
                while let Some(sid) = open.pop() {
                    let s = &spans[sid as usize];
                    emit(&mut out, &mut |o| push_span_end(o, s, tid));
                }
            }
        }

        if !instants.is_empty() {
            let tid = next_tid;
            emit(&mut out, &mut |o| {
                push_meta(o, "thread_name", tid, "events")
            });
            let mut sorted: Vec<_> = instants.iter().collect();
            sorted.sort_by_key(|i| i.t);
            for i in sorted {
                emit(&mut out, &mut |o| {
                    push_event_prefix(o, &i.name, i.layer.as_str(), 'i', i.t, tid);
                    o.push_str(",\"s\":\"g\"}");
                });
            }
        }

        out.push_str("\n]}\n");
        out
    }
}

/// Why a trace document failed validation.
#[derive(Clone, Debug)]
pub struct ValidationError {
    pub msg: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Chrome trace: {}", self.msg)
    }
}

impl std::error::Error for ValidationError {}

fn fail(msg: impl Into<String>) -> ValidationError {
    ValidationError { msg: msg.into() }
}

/// Counts reported by a successful validation.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceSummary {
    pub events: usize,
    pub spans: usize,
    pub instants: usize,
    pub tracks: usize,
}

/// Validate `text` against the Chrome trace-event schema subset this repo
/// emits: required `name`/`ph`/`pid`/`tid` fields, numeric non-decreasing
/// `ts` per `(pid, tid)`, balanced and name-matched `B`/`E` pairs per
/// track, scoped (`s`) instants.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, ValidationError> {
    let doc = json::parse(text).map_err(|e| fail(e.to_string()))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| fail("top level must be an object with a traceEvents array"))?;

    let mut summary = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    // (pid, tid) -> (last ts, stack of open B names)
    let mut tracks: BTreeMap<(u64, u64), (f64, Vec<String>)> = BTreeMap::new();

    for (idx, ev) in events.iter().enumerate() {
        let ctx = |msg: &str| fail(format!("event {idx}: {msg}"));
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("missing numeric pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("missing numeric tid"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing name"))?;
        if ph == "M" {
            continue; // metadata: no timing rules
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_num)
            .ok_or_else(|| ctx("missing numeric ts"))?;
        let key = (pid as u64, tid as u64);
        let (last_ts, stack) = tracks.entry(key).or_insert((f64::NEG_INFINITY, Vec::new()));
        if ts < *last_ts {
            return Err(ctx(&format!(
                "ts went backwards on tid {}: {ts} < {last_ts}",
                key.1
            )));
        }
        *last_ts = ts;
        match ph {
            "B" => {
                summary.spans += 1;
                stack.push(name.to_string());
            }
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| ctx(&format!("E \"{name}\" with no open B on tid {}", key.1)))?;
                if open != name {
                    return Err(ctx(&format!(
                        "E \"{name}\" does not match open B \"{open}\""
                    )));
                }
            }
            "i" => {
                summary.instants += 1;
                ev.get("s")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx("instant missing scope field s"))?;
            }
            other => return Err(ctx(&format!("unsupported phase \"{other}\""))),
        }
    }

    for ((pid, tid), (_, stack)) in &tracks {
        if !stack.is_empty() {
            return Err(fail(format!(
                "unbalanced trace: {} B event(s) never closed on pid {pid} tid {tid} (first: \"{}\")",
                stack.len(),
                stack[0]
            )));
        }
    }
    summary.tracks = tracks.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Layer;
    use simcore::StatsRegistry;

    fn nanos(n: u64) -> VTime {
        VTime::from_nanos(n)
    }

    #[test]
    fn nested_spans_export_balanced() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        rec.bind_lane(0, "rank 0");
        let a = rec.span(Layer::Fuse, "fuse.read", nanos(100));
        let b = rec.span(Layer::Store, "store.chunk_fetch", nanos(110));
        b.arg("chunk", 7).arg("benefactor", 3);
        b.finish(nanos(300));
        a.finish(nanos(350));
        rec.instant(Layer::Fault, "benefactor_crash node=3", nanos(200));
        let text = rec.chrome_trace();
        let summary = validate_chrome_trace(&text).expect("trace must validate");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.instants, 1);
        assert!(text.contains("\"ts\":0.100"));
        assert!(text.contains("\"chunk\":7"));
    }

    #[test]
    fn overlapping_spans_split_onto_subtracks() {
        // Two same-lane chains that overlap in virtual time (the pipelined
        // fetch shape) plus an async span outliving its parent.
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        rec.bind_lane(0, "rank 0");
        let parent = rec.span(Layer::Fuse, "fuse.read", nanos(0));
        let c1 = rec.span(Layer::Store, "store.chunk_fetch", nanos(10));
        c1.finish(nanos(100));
        let c2 = rec.span(Layer::Store, "store.chunk_fetch", nanos(20));
        c2.finish(nanos(90)); // overlaps c1: needs its own sub-track
        let wb = rec.span(Layer::Fuse, "fuse.async_writeback", nanos(50));
        wb.finish(nanos(500)); // outlives the parent
        parent.finish(nanos(120));
        let text = rec.chrome_trace();
        let summary = validate_chrome_trace(&text).expect("trace must validate");
        assert_eq!(summary.spans, 4);
        assert!(text.contains("(async 1)"), "expected a sub-track: {text}");
    }

    #[test]
    fn validator_rejects_unbalanced_and_unordered() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced).is_err());
        let mismatched = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(mismatched).is_err());
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":4,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(backwards).is_err());
        let missing_field = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(missing_field).is_err());
    }

    #[test]
    fn export_is_deterministic() {
        let mk = || {
            let stats = StatsRegistry::new();
            let rec = TraceRecorder::enabled(&stats);
            rec.bind_lane(1, "rank 1");
            for i in 0..50u64 {
                let sp = rec.span(Layer::Store, "store.chunk_fetch", nanos(i * 10));
                sp.arg("chunk", i);
                sp.finish(nanos(i * 10 + 25));
            }
            rec.chrome_trace()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn empty_trace_is_valid() {
        let stats = StatsRegistry::new();
        let rec = TraceRecorder::enabled(&stats);
        let text = rec.chrome_trace();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 0);
    }
}

//! Network-model behaviour tests: control-message policy, utilization
//! reporting, and direct NIC charging.

use netsim::{NetConfig, Network};
use simcore::{Bandwidth, StatsRegistry, VTime};

fn net(n: usize) -> Network {
    Network::new(n, NetConfig::default(), &StatsRegistry::new())
}

#[test]
fn control_messages_do_not_occupy_queues() {
    let net = net(2);
    // Saturate node 0's TX with a bulk transfer.
    let bulk = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000); // 1 s
    assert_eq!(bulk.sent, VTime::from_secs(1));
    // A 256-byte RPC issued during the bulk flow is not stuck behind it.
    let rpc = net.transfer_at(VTime::from_millis(1), 0, 1, 256);
    assert!(
        rpc.arrived < VTime::from_millis(2),
        "rpc at {:?}",
        rpc.arrived
    );
    // But a second bulk transfer is.
    let bulk2 = net.transfer_at(VTime::from_millis(1), 0, 1, 250_000_000);
    assert_eq!(bulk2.sent, VTime::from_secs(2));
}

#[test]
fn control_threshold_boundary() {
    let cfg = NetConfig::default();
    let net = Network::new(2, cfg, &StatsRegistry::new());
    net.transfer_at(VTime::ZERO, 0, 1, 250_000_000); // occupy tx
    let at = net.transfer_at(VTime::ZERO, 0, 1, cfg.ctrl_threshold);
    let over = net.transfer_at(VTime::ZERO, 0, 1, cfg.ctrl_threshold + 1);
    assert!(at.arrived < VTime::from_millis(1), "at-threshold bypasses");
    assert!(over.sent >= VTime::from_secs(1), "over-threshold queues");
}

#[test]
fn control_messages_still_pay_latency_and_serialization() {
    let cfg = NetConfig::default();
    let net = Network::new(2, cfg, &StatsRegistry::new());
    let d = net.transfer_at(VTime::ZERO, 0, 1, 256);
    let ser = cfg.link_bw.time_for(256);
    assert_eq!(d.sent, ser);
    assert_eq!(d.arrived, ser + cfg.latency);
}

#[test]
fn nic_busy_reports_utilization() {
    let net = net(3);
    net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
    net.transfer_at(VTime::ZERO, 2, 1, 250_000_000);
    let (tx0, rx0) = net.nic_busy(0);
    let (tx1, rx1) = net.nic_busy(1);
    assert_eq!(tx0, VTime::from_secs(1));
    assert_eq!(rx0, VTime::ZERO);
    assert_eq!(tx1, VTime::ZERO);
    assert_eq!(rx1, VTime::from_secs(2), "receiver drained both flows");
}

#[test]
fn direct_rx_tx_charging() {
    let net = net(1);
    let g = net.rx_at(VTime::ZERO, 0, 250_000_000);
    assert_eq!(g.end, VTime::from_secs(1) + VTime::from_micros(50));
    let g2 = net.tx_at(VTime::ZERO, 0, 125_000_000);
    assert_eq!(g2.end, VTime::from_millis(500) + VTime::from_micros(50));
    // Same-direction requests queue FIFO.
    let g3 = net.rx_at(VTime::ZERO, 0, 250_000_000);
    assert_eq!(g3.start, g.end);
}

#[test]
fn custom_bandwidth_config() {
    let cfg = NetConfig {
        link_bw: Bandwidth::gbit_per_sec(10.0),
        latency: VTime::from_micros(5),
        ctrl_threshold: 0, // everything queues
    };
    let net = Network::new(2, cfg, &StatsRegistry::new());
    let d = net.transfer_at(VTime::ZERO, 0, 1, 1_250_000_000);
    assert_eq!(d.sent, VTime::from_secs(1));
    assert_eq!(d.arrived, VTime::from_secs(1) + VTime::from_micros(5));
    // With threshold 0, even tiny messages queue.
    let d2 = net.transfer_at(VTime::ZERO, 0, 1, 1);
    assert!(d2.sent >= VTime::from_secs(1));
}

#[test]
fn message_and_byte_counters() {
    let stats = StatsRegistry::new();
    let net = Network::new(2, NetConfig::default(), &stats);
    net.transfer_at(VTime::ZERO, 0, 1, 100);
    net.transfer_at(VTime::ZERO, 1, 0, 1_000_000);
    net.transfer_at(VTime::ZERO, 0, 0, 55); // loopback: not counted
    assert_eq!(net.bytes_moved(), 1_000_100);
    assert_eq!(net.messages_sent(), 2);
    assert_eq!(stats.get("net.bytes"), 1_000_100);
}

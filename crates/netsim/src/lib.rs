//! # netsim — the cluster interconnect model
//!
//! HAL (the paper's testbed, Table II) connects 16 nodes with **bonded
//! dual Gigabit Ethernet**: 2 Gbit/s per direction per node, full duplex,
//! through a non-blocking switch. The model therefore places contention at
//! the end hosts: every node owns a transmit resource and a receive
//! resource, and a message charges
//!
//! 1. the sender's TX queue for `bytes / tx_bandwidth`,
//! 2. a propagation + protocol latency,
//! 3. the receiver's RX queue for `bytes / rx_bandwidth`.
//!
//! Intra-node "messages" (rank to rank on one host) bypass the NIC and
//! cost one memcpy at DRAM speed, which the caller charges separately.

use obs::{Layer, TraceRecorder};
use parking_lot::Mutex;
use simcore::{Bandwidth, Counter, Resource, StatsRegistry, VTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Interconnect parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Per-direction bandwidth of one node's NIC bond.
    pub link_bw: Bandwidth,
    /// One-way message latency (propagation + stack).
    pub latency: VTime,
    /// Messages at or below this size are *control traffic*: they are
    /// charged serialization + latency but do not occupy the NIC queues.
    /// A 256-byte RPC cannot meaningfully contend with bulk flows on a
    /// GigE link, and modelling it as a queue occupant would let tiny
    /// out-of-order metadata messages inflate the FIFO's `next_free`
    /// unboundedly (the single-register resource cannot backfill gaps).
    pub ctrl_threshold: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Bonded dual GigE: 2 Gbit/s = 250 MB/s each way; ~50 µs one-way
        // latency is typical for the era's TCP-over-GigE stacks.
        NetConfig {
            link_bw: Bandwidth::gbit_per_sec(2.0),
            latency: VTime::from_micros(50),
            ctrl_threshold: 4096,
        }
    }
}

/// The ends of one node's network attachment.
#[derive(Clone, Debug)]
struct Nic {
    tx: Resource,
    rx: Resource,
}

/// Fault-injection state of one node's network attachment. Degradation
/// applies to every message the node sends or receives; a partitioned
/// node is unreachable (callers check [`Network::reachable`] before
/// attempting delivery — the fabric itself cannot refuse a message).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Divide the node's link bandwidth by this factor (≥ 1.0).
    pub bw_divisor: f64,
    /// Extra one-way latency added to the node's messages.
    pub extra_latency: VTime,
    /// The node is cut off from the fabric entirely.
    pub partitioned: bool,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault {
            bw_divisor: 1.0,
            extra_latency: VTime::ZERO,
            partitioned: false,
        }
    }
}

impl LinkFault {
    fn is_neutral(&self) -> bool {
        self.bw_divisor == 1.0 && self.extra_latency == VTime::ZERO && !self.partitioned
    }
}

/// Result of a simulated message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the sender's NIC finished serializing the message (the sender
    /// can proceed at this time for asynchronous sends).
    pub sent: VTime,
    /// When the last byte reached the receiver.
    pub arrived: VTime,
}

/// The whole fabric: one NIC pair per node.
#[derive(Clone, Debug)]
pub struct Network {
    cfg: NetConfig,
    nics: Vec<Nic>,
    /// Per-node fault-injection state, shared across clones of the fabric.
    faults: Arc<Mutex<Vec<LinkFault>>>,
    /// Named RPC endpoints (service name → hosting node), shared across
    /// clones. Services that can live on *any* node — the placement
    /// shards, for one — register here so clients address them by name
    /// instead of baking node numbers into their configuration.
    endpoints: Arc<Mutex<HashMap<String, usize>>>,
    bytes: Counter,
    messages: Counter,
    trace: TraceRecorder,
}

impl Network {
    pub fn new(nodes: usize, cfg: NetConfig, stats: &StatsRegistry) -> Self {
        Network {
            cfg,
            nics: (0..nodes)
                .map(|i| Nic {
                    tx: Resource::new(format!("net.n{i}.tx")),
                    rx: Resource::new(format!("net.n{i}.rx")),
                })
                .collect(),
            faults: Arc::new(Mutex::new(vec![LinkFault::default(); nodes])),
            endpoints: Arc::new(Mutex::new(HashMap::new())),
            bytes: stats.counter("net.bytes"),
            messages: stats.counter("net.messages"),
            trace: TraceRecorder::disabled(),
        }
    }

    /// Attach a trace recorder (builder style; clones share it). Every
    /// inter-node transfer becomes a `net.transfer` span.
    pub fn with_tracer(mut self, trace: TraceRecorder) -> Self {
        self.trace = trace;
        self
    }

    /// Register (or re-home) a named RPC endpoint on `node`.
    pub fn register_endpoint(&self, name: &str, node: usize) {
        assert!(node < self.nics.len(), "endpoint on unknown node {node}");
        self.endpoints.lock().insert(name.to_string(), node);
    }

    /// The node hosting a named endpoint, if registered.
    pub fn endpoint_node(&self, name: &str) -> Option<usize> {
        self.endpoints.lock().get(name).copied()
    }

    /// Install a fault on `node`'s attachment (replaces any prior fault).
    pub fn set_link_fault(&self, node: usize, fault: LinkFault) {
        self.faults.lock()[node] = fault;
    }

    /// Restore `node`'s attachment to nominal behavior.
    pub fn clear_link_fault(&self, node: usize) {
        self.faults.lock()[node] = LinkFault::default();
    }

    /// Current fault state of `node`'s attachment.
    pub fn link_fault(&self, node: usize) -> LinkFault {
        self.faults.lock()[node]
    }

    /// Whether a message from `from` can reach `to` at all. Loopback is
    /// always reachable; otherwise both endpoints must be un-partitioned.
    pub fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let faults = self.faults.lock();
        !faults[from].partitioned && !faults[to].partitioned
    }

    /// Effective (bandwidth, one-way latency) between two endpoints under
    /// the current faults. Exact nominal values when both are healthy, so
    /// fault-free runs keep bit-identical timing.
    fn effective(&self, from: usize, to: usize) -> (Bandwidth, VTime) {
        let faults = self.faults.lock();
        let (a, b) = (faults[from], faults[to]);
        if a.is_neutral() && b.is_neutral() {
            return (self.cfg.link_bw, self.cfg.latency);
        }
        let div = a.bw_divisor.max(b.bw_divisor).max(1.0);
        (
            self.cfg.link_bw.scaled(1.0 / div),
            self.cfg.latency + a.extra_latency + b.extra_latency,
        )
    }

    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// Deliver `bytes` from node `from` to node `to`, requested at `t`.
    ///
    /// Intra-node delivery is free here (the caller charges a DRAM copy).
    pub fn transfer_at(&self, t: VTime, from: usize, to: usize, bytes: u64) -> Delivery {
        if from == to {
            return Delivery {
                sent: t,
                arrived: t,
            };
        }
        self.bytes.add(bytes);
        self.messages.inc();
        let sp = self.trace.span(Layer::Net, "net.transfer", t);
        sp.arg("from", from as u64)
            .arg("to", to as u64)
            .arg("bytes", bytes);
        let (bw, latency) = self.effective(from, to);
        let d = if bytes <= self.cfg.ctrl_threshold {
            let ser = bw.time_for(bytes);
            Delivery {
                sent: t + ser,
                arrived: t + ser + latency,
            }
        } else {
            let tx = self.nics[from].tx.transfer_at(t, bytes, bw, VTime::ZERO);
            // Cut-through delivery: the receive side starts draining as soon
            // as the first bytes arrive; at equal rates the RX busy period
            // equals the TX one shifted by the latency, and queues if the RX
            // NIC is still busy with an earlier message.
            let rx = self.nics[to].rx.acquire_at(
                tx.start + latency,
                tx.end - tx.start, // same serialization time at equal link rates
            );
            Delivery {
                sent: tx.end,
                arrived: rx.end,
            }
        };
        sp.finish(d.arrived);
        d
    }

    /// Charge `node`'s receive direction directly (traffic from outside
    /// the modelled fabric, e.g. the PFS service network).
    pub fn rx_at(&self, t: VTime, node: usize, bytes: u64) -> simcore::Grant {
        self.nics[node]
            .rx
            .transfer_at(t, bytes, self.cfg.link_bw, self.cfg.latency)
    }

    /// Charge `node`'s transmit direction directly.
    pub fn tx_at(&self, t: VTime, node: usize, bytes: u64) -> simcore::Grant {
        self.nics[node]
            .tx
            .transfer_at(t, bytes, self.cfg.link_bw, self.cfg.latency)
    }

    /// Busy time accumulated on a node's (tx, rx) NIC directions — for
    /// utilization reports and bottleneck hunting.
    pub fn nic_busy(&self, node: usize) -> (VTime, VTime) {
        (
            self.nics[node].tx.busy_total(),
            self.nics[node].rx.busy_total(),
        )
    }

    /// Total payload bytes moved over the fabric.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes.get()
    }

    /// Total messages delivered.
    pub fn messages_sent(&self) -> u64 {
        self.messages.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: usize) -> Network {
        Network::new(n, NetConfig::default(), &StatsRegistry::new())
    }

    #[test]
    fn point_to_point_cost() {
        let net = net(2);
        // 250 MB over a 250 MB/s link: 1 s serialize + 50 us latency.
        let d = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
        assert_eq!(d.sent, VTime::from_secs(1));
        assert_eq!(d.arrived, VTime::from_secs(1) + VTime::from_micros(50));
    }

    #[test]
    fn endpoints_register_and_rehome_across_clones() {
        let net = net(3);
        assert_eq!(net.endpoint_node("shardmgr/0"), None);
        net.register_endpoint("shardmgr/0", 1);
        let clone = net.clone();
        assert_eq!(clone.endpoint_node("shardmgr/0"), Some(1));
        clone.register_endpoint("shardmgr/0", 2);
        assert_eq!(net.endpoint_node("shardmgr/0"), Some(2));
    }

    #[test]
    fn loopback_is_free() {
        let net = net(2);
        let d = net.transfer_at(VTime::from_secs(3), 1, 1, 1 << 30);
        assert_eq!(d.sent, VTime::from_secs(3));
        assert_eq!(d.arrived, VTime::from_secs(3));
        assert_eq!(net.bytes_moved(), 0);
    }

    #[test]
    fn sender_tx_serializes_two_messages() {
        let net = net(3);
        let d1 = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
        let d2 = net.transfer_at(VTime::ZERO, 0, 2, 250_000_000);
        // Same TX NIC: second message waits for the first to serialize.
        assert_eq!(d2.sent, d1.sent + VTime::from_secs(1));
    }

    #[test]
    fn receiver_rx_contends() {
        let net = net(3);
        let d1 = net.transfer_at(VTime::ZERO, 0, 2, 250_000_000);
        let d2 = net.transfer_at(VTime::ZERO, 1, 2, 250_000_000);
        // Different senders, same receiver: RX drains them one at a time.
        assert_eq!(d1.arrived, VTime::from_secs(1) + VTime::from_micros(50));
        assert_eq!(d2.arrived, VTime::from_secs(2) + VTime::from_micros(50));
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let net = net(4);
        let d1 = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
        let d2 = net.transfer_at(VTime::ZERO, 2, 3, 250_000_000);
        assert_eq!(d1.arrived, d2.arrived, "non-blocking switch");
    }

    #[test]
    fn full_duplex_tx_rx_independent() {
        let net = net(2);
        let d1 = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
        let d2 = net.transfer_at(VTime::ZERO, 1, 0, 250_000_000);
        // Opposite directions do not contend.
        assert_eq!(d1.arrived, d2.arrived);
    }

    #[test]
    fn degraded_link_slows_and_restores_exactly() {
        let net = net(2);
        let d0 = net.transfer_at(VTime::ZERO, 0, 1, 250_000_000);
        let span0 = d0.arrived - VTime::ZERO;
        net.set_link_fault(
            1,
            LinkFault {
                bw_divisor: 2.0,
                extra_latency: VTime::from_micros(100),
                partitioned: false,
            },
        );
        let d1 = net.transfer_at(d0.arrived, 0, 1, 250_000_000);
        // Half bandwidth: 2 s serialize; +100 µs extra latency.
        assert_eq!(
            d1.arrived - d0.arrived,
            VTime::from_secs(2) + VTime::from_micros(150)
        );
        net.clear_link_fault(1);
        let d2 = net.transfer_at(d1.arrived, 0, 1, 250_000_000);
        assert_eq!(d2.arrived - d1.arrived, span0, "nominal timing restored");
    }

    #[test]
    fn partition_observed_via_reachable() {
        let net = net(3);
        assert!(net.reachable(0, 1));
        net.set_link_fault(
            1,
            LinkFault {
                partitioned: true,
                ..LinkFault::default()
            },
        );
        assert!(!net.reachable(0, 1));
        assert!(!net.reachable(1, 2));
        assert!(net.reachable(0, 2));
        assert!(net.reachable(1, 1), "loopback survives partition");
        net.clear_link_fault(1);
        assert!(net.reachable(0, 1));
    }

    #[test]
    fn traffic_counters() {
        let net = net(2);
        net.transfer_at(VTime::ZERO, 0, 1, 100);
        net.transfer_at(VTime::ZERO, 0, 1, 200);
        assert_eq!(net.bytes_moved(), 300);
        assert_eq!(net.messages_sent(), 2);
    }
}

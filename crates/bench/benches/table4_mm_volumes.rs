//! Table IV — data exchanged between the application, the FUSE layer and
//! the SSD store during MM's computing phase, for row- vs column-major
//! access to B at L-SSD(8:16:16).
//!
//! The paper's reading: with good locality (row-major), NVMalloc's chunk
//! cache absorbs almost all application accesses — SSD traffic stays near
//! the matrix size per pass. Column-major defeats the cache: FUSE sees
//! page-granular requests for tiny strides and the store re-fetches
//! chunks over and over.

use bench::{gib, header, JsonReport, Table, SCALE};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, AccessOrder, MmConfig};

const N: usize = 2048;

fn cluster_for(cfg: &JobConfig) -> Cluster {
    // Same sizing as Fig. 5: B (32 MiB) must dwarf the node cache (4 MiB)
    // for the re-fetch traffic to show, as 2 GiB dwarfed 64 MiB on HAL.
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 4 * 1024 * 1024,
            ..FuseConfig::default()
        },
    )
}

fn main() {
    header(
        "Table IV: bytes exchanged app/FUSE/SSD during computing, L-SSD(8:16:16)",
        "Table IV",
    );
    let t = Table::new(&[
        ("Access to B", 12),
        ("App reads GiB", 14),
        ("To FUSE GiB", 12),
        ("To SSD GiB", 11),
    ]);
    let cfg = JobConfig::local(8, 16, 16);
    let mut report = JsonReport::new("table4_mm_volumes");
    report
        .config("scale", SCALE)
        .config("n", N)
        .config("config", cfg.label());
    let mut ssd = [0u64; 2];
    let mut fuse = [0u64; 2];
    let mut last_cluster = None;
    for (slot, (order, label)) in [
        (AccessOrder::RowMajor, "Row-major"),
        (AccessOrder::ColMajor, "Column-major"),
    ]
    .into_iter()
    .enumerate()
    {
        let cluster = cluster_for(&cfg);
        let r = run_mm(
            &cluster,
            &cfg,
            &MmConfig {
                order,
                ..MmConfig::paper_2gb(N)
            },
        )
        .unwrap();
        bench::store_health(label, &cluster);
        t.row(&[
            label.to_string(),
            gib(r.traffic.app_b_bytes),
            gib(r.traffic.fuse_req_bytes),
            gib(r.traffic.ssd_req_bytes),
        ]);
        ssd[slot] = r.traffic.ssd_req_bytes;
        fuse[slot] = r.traffic.fuse_req_bytes;
        report
            .counter(&format!("app_b_bytes_{label}"), r.traffic.app_b_bytes)
            .counter(&format!("fuse_req_bytes_{label}"), r.traffic.fuse_req_bytes)
            .counter(&format!("ssd_req_bytes_{label}"), r.traffic.ssd_req_bytes);
        last_cluster = Some(cluster);
    }
    println!();
    report.check(
        "column-major sends far more chunk traffic to the SSD store",
        ssd[1] > 4 * ssd[0],
    );
    report.check(
        "column-major inflates page-granular FUSE requests",
        fuse[1] > fuse[0],
    );
    let cluster = last_cluster.expect("orders ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

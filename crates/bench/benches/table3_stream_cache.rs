//! Table III — STREAM bandwidth with array C on the local SSD, with and
//! without NVMalloc.
//!
//! "Without NVMalloc" is raw `mmap` of a file on the node-local SSD:
//! sequential page faults served with the kernel's 128 KiB readahead but
//! no chunk cache. The paper's point: NVMalloc's FUSE-level 256 KiB
//! read-ahead caching makes it *faster* than the raw path for sequential
//! access, despite the extra layer.

use bench::{header, stream_fuse, JsonReport, Table, SCALE};
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use workloads::stream::{
    run_stream, run_stream_raw_ssd, ArrayPlace, RawMmapConfig, StreamConfig, StreamKernel,
};

fn main() {
    header(
        "Table III: STREAM with array C on local SSD, w/ and w/o NVMalloc",
        "Table III",
    );
    let elems = ((2u64 << 30) / SCALE / 8) as usize;
    let scfg = StreamConfig::new(elems).place(ArrayPlace::Dram, ArrayPlace::Dram, ArrayPlace::Nvm);
    let calib = Calibration::default();

    let t = Table::new(&[
        ("Kernel", 8),
        ("w/ NVMalloc MB/s", 17),
        ("w/o NVMalloc MB/s", 18),
        ("gain", 7),
        ("verified", 9),
    ]);
    let mut report = JsonReport::new("table3_stream_cache");
    report.config("scale", SCALE).config("elems", elems);
    let mut all_gain = true;
    let mut last_cluster = None;
    for kernel in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        let cfg = JobConfig::local(8, 1, 1);
        let cluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
        );
        let with = run_stream(&cluster, &cfg, calib, &scfg, kernel);

        let raw_cfg = JobConfig::dram_only(8, 1);
        let raw_cluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &raw_cfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
        );
        let raw = run_stream_raw_ssd(
            &raw_cluster,
            &raw_cfg,
            calib,
            &scfg,
            kernel,
            RawMmapConfig::default(),
        );

        let gain = with.bandwidth_mb_s / raw.bandwidth_mb_s;
        all_gain &= gain > 1.0;
        t.row(&[
            kernel.name().to_string(),
            format!("{:.1}", with.bandwidth_mb_s),
            format!("{:.1}", raw.bandwidth_mb_s),
            format!("{gain:.2}x"),
            format!("{}", with.verified && raw.verified),
        ]);
        bench::store_health(kernel.name(), &cluster);
        report
            .value(&format!("with_mb_s_{}", kernel.name()), with.bandwidth_mb_s)
            .value(&format!("raw_mb_s_{}", kernel.name()), raw.bandwidth_mb_s);
        last_cluster = Some(cluster);
    }
    println!();
    report.check(
        "NVMalloc's read-ahead caching beats raw mmap on every kernel (paper Table III)",
        all_gain,
    );
    let cluster = last_cluster.expect("kernels ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

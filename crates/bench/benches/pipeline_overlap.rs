//! Pipelined data path ablation (DESIGN.md §8) — serial vs. overlapped.
//!
//! Not a paper experiment: this measures what the PR 2 optimization buys.
//! Each workload runs twice per benefactor count — once with the default
//! serial §III-D data path, once with `pipelined_io` (batched multi-
//! benefactor fetches through the chunk-location cache, asynchronous
//! dirty write-back, adaptive read-ahead) — at 1, 2, 4 and 8 remote
//! benefactors.
//!
//! Expected shape: the gain comes from overlapping per-benefactor chunk
//! chains, so it GROWS with stripe width and VANISHES at width 1, where
//! one benefactor's chain is serial either way and only the elided
//! per-chunk manager RPCs remain (a few percent).
//!
//! Run with `-- --smoke` for the CI-sized variant (scripts/check.sh diffs
//! its serial-path JSON against a committed expectation).

use bench::{arg_value, header, JsonReport, Table, SCALE};
use chunkstore::StoreConfig;
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use obs::{validate_chrome_trace, Layer};
use std::collections::{BTreeSet, HashMap};
use workloads::matmul::{run_mm, AccessOrder, MmConfig};
use workloads::qsort::{run_sort_hybrid, SortConfig};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// A fixed 16 MiB cache (64 chunks): big enough to hold the 8-chunk
/// request spans that expose overlap, small enough that the streamed
/// arrays still miss.
fn fuse(pipelined: bool) -> FuseConfig {
    FuseConfig {
        cache_bytes: 16 * 1024 * 1024,
        pipelined_io: pipelined,
        ..FuseConfig::default()
    }
}

fn cluster_for(cfg: &JobConfig, pipelined: bool) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        fuse(pipelined),
    )
}

/// One rank streaming TRIAD with B and C on the store, 2 MiB (8-chunk)
/// requests — the sequential multi-chunk span shape.
fn stream_time(z: usize, pipelined: bool, elems: usize, iters: usize) -> f64 {
    let jcfg = JobConfig::remote(1, 1, z);
    let cluster = cluster_for(&jcfg, pipelined);
    let scfg = StreamConfig {
        iters,
        block_elems: 256 * 1024, // 2 MiB requests = 8 chunks
        ..StreamConfig::new(elems)
    }
    .place(ArrayPlace::Dram, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let rep = run_stream(
        &cluster,
        &jcfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(rep.verified, "STREAM data corrupted");
    rep.time.as_secs_f64()
}

/// One rank multiplying with B on the store, row- or column-major.
fn mm_time(z: usize, pipelined: bool, n: usize, order: AccessOrder) -> f64 {
    let jcfg = JobConfig::remote(1, 1, z);
    let cluster = cluster_for(&jcfg, pipelined);
    let mm = MmConfig {
        order,
        ..MmConfig::paper_2gb(n)
    };
    let rep = run_mm(&cluster, &jcfg, &mm).expect("MM configuration must fit in DRAM");
    rep.stages.total().as_secs_f64()
}

/// Hybrid sort with 3/4 of the list on the store.
fn sort_time(z: usize, pipelined: bool, total: usize) -> f64 {
    let jcfg = JobConfig::remote(2, 1, z);
    let cluster = cluster_for(&jcfg, pipelined);
    let rep = run_sort_hybrid(
        &cluster,
        &jcfg,
        &SortConfig {
            dram_part: (1, 4),
            ..SortConfig::new(total)
        },
    );
    assert!(rep.verified, "sort output not a sorted permutation");
    rep.time.as_secs_f64()
}

struct Row {
    workload: &'static str,
    width: usize,
    serial: f64,
    pipelined: f64,
}

impl Row {
    fn gain(&self) -> f64 {
        (self.serial - self.pipelined) / self.serial
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "Pipelined data path: serial vs overlapped multi-benefactor fetch",
        "PR 2 ablation (no paper counterpart)",
    );
    if smoke {
        println!("  [smoke] CI-sized problem; STREAM widths only\n");
    }

    // Smoke halves the problem and skips MM/sort (the STREAM sweep alone
    // pins the serial cost model for the CI diff).
    // B + C must overflow the 16 MiB cache or the stream never misses.
    let stream_elems = if smoke { 2 << 20 } else { 4 << 20 };
    let stream_iters = if smoke { 2 } else { 3 };
    let mm_n = 2048;
    let sort_total = 2 * (1 << 18);

    let mut rows: Vec<Row> = Vec::new();
    for &z in &WIDTHS {
        rows.push(Row {
            workload: "stream_triad",
            width: z,
            serial: stream_time(z, false, stream_elems, stream_iters),
            pipelined: stream_time(z, true, stream_elems, stream_iters),
        });
    }
    if !smoke {
        for &z in &WIDTHS {
            rows.push(Row {
                workload: "mm_row_major",
                width: z,
                serial: mm_time(z, false, mm_n, AccessOrder::RowMajor),
                pipelined: mm_time(z, true, mm_n, AccessOrder::RowMajor),
            });
        }
        for &z in &WIDTHS {
            rows.push(Row {
                workload: "mm_col_major",
                width: z,
                serial: mm_time(z, false, mm_n, AccessOrder::ColMajor),
                pipelined: mm_time(z, true, mm_n, AccessOrder::ColMajor),
            });
        }
        for &z in &WIDTHS {
            rows.push(Row {
                workload: "qsort_hybrid",
                width: z,
                serial: sort_time(z, false, sort_total),
                pipelined: sort_time(z, true, sort_total),
            });
        }
    }

    let t = Table::new(&[
        ("Workload", 14),
        ("Benefactors", 12),
        ("Serial (s)", 11),
        ("Pipelined (s)", 14),
        ("Gain", 7),
    ]);
    for r in &rows {
        t.row(&[
            r.workload.to_string(),
            r.width.to_string(),
            format!("{:.3}", r.serial),
            format!("{:.3}", r.pipelined),
            format!("{:+.1}%", 100.0 * r.gain()),
        ]);
    }
    println!();

    let mut report = JsonReport::new("pipeline_overlap");
    report
        .config("smoke", smoke)
        .config("scale", SCALE)
        .config("widths", "1,2,4,8")
        .config("stream_elems", stream_elems)
        .config("stream_iters", stream_iters as u64)
        .config("mm_n", if smoke { 0 } else { mm_n })
        .config("sort_total", if smoke { 0 } else { sort_total })
        .config("cache_bytes", 16u64 * 1024 * 1024);
    // The serial-only sub-report: scripts/check.sh diffs this against a
    // committed expectation, pinning the default-path cost model.
    let mut serial = JsonReport::new("pipeline_overlap_serial");
    serial.config("smoke", smoke).config("scale", SCALE);
    for r in &rows {
        let key = format!("{}_z{}", r.workload, r.width);
        report.value(&format!("{key}_serial_s"), r.serial);
        report.value(&format!("{key}_pipelined_s"), r.pipelined);
        report.value(&format!("{key}_gain"), r.gain());
        serial.value(&format!("{key}_serial_s"), r.serial);
    }

    let find = |workload: &str, width: usize| {
        rows.iter()
            .find(|r| r.workload == workload && r.width == width)
    };
    if let Some(r) = find("stream_triad", 8) {
        report.check(
            "8-benefactor sequential STREAM gains >= 25% from pipelining",
            r.gain() >= 0.25,
        );
    }
    if let Some(r) = find("stream_triad", 1) {
        report.check(
            "width-1 STREAM unchanged by pipelining (RPC elision only, |delta| < 8%)",
            r.gain().abs() < 0.08,
        );
    }
    for w in ["stream_triad", "mm_col_major"] {
        if let (Some(r1), Some(r8)) = (find(w, 1), find(w, 8)) {
            report.check(
                &format!("{w}: gain grows with stripe width (z=8 > z=1)"),
                r8.gain() > r1.gain(),
            );
        }
    }
    if let Some(r) = find("mm_col_major", 8) {
        report.check(
            "8-benefactor col-major MM gains >= 25% from pipelining",
            r.gain() >= 0.25,
        );
    }
    if let Some(r) = find("mm_col_major", 1) {
        report.check(
            "width-1 col-major MM unchanged by pipelining (|delta| < 8%)",
            r.gain().abs() < 0.08,
        );
    }
    if let Some(r) = find("qsort_hybrid", 8) {
        report.check(
            "8-benefactor hybrid sort does not regress under pipelining",
            r.gain() > -0.02,
        );
    }

    // ----- traced demo run (separate cluster; the sweep above stays
    // untraced so the serial JSON diff pins tracing-off timing) ----------
    traced_demo(&mut report);

    report.emit();
    serial.emit();
}

/// Re-run the 4-benefactor pipelined STREAM with span tracing enabled,
/// export the Chrome trace (to `--trace <path>` when given), and append
/// the obs footer + trace shape checks to the report.
fn traced_demo(report: &mut JsonReport) {
    let z = 4;
    let jcfg = JobConfig::remote(1, 1, z);
    let cluster = Cluster::with_obs(
        ClusterSpec::hal().scaled(SCALE),
        &jcfg.benefactor_nodes(),
        fuse(true),
        StoreConfig::default(),
    );
    // B + C = 2x the 16 MiB cache, so the triad reads actually miss and
    // the trace shows the batched multi-benefactor fetch under each read.
    let scfg = StreamConfig {
        iters: 1,
        block_elems: 256 * 1024,
        ..StreamConfig::new(2 << 20)
    }
    .place(ArrayPlace::Dram, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let rep = run_stream(
        &cluster,
        &jcfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(rep.verified, "traced STREAM data corrupted");
    report.config("traced_demo", format!("pipelined stream_triad z={z}"));

    // Walk parent links: some single client read must decompose into
    // store fetches served by >= 2 distinct benefactors.
    let spans = cluster.trace.spans();
    let mut benefs_per_read: HashMap<u32, BTreeSet<u64>> = HashMap::new();
    for s in &spans {
        if s.name != "store.chunk_fetch" {
            continue;
        }
        let Some(&(_, b)) = s.args.iter().find(|(k, _)| *k == "benefactor") else {
            continue;
        };
        let mut cur = s.parent;
        while let Some(p) = cur {
            let ps = &spans[p as usize];
            if ps.name == "fuse.read" {
                benefs_per_read.entry(p).or_default().insert(b);
                break;
            }
            cur = ps.parent;
        }
    }
    report.check(
        "traced: one client read fans out to >= 2 benefactors",
        benefs_per_read.values().any(|b| b.len() >= 2),
    );

    let footer = cluster.trace.footer(10);
    let have = |l: Layer| footer.layers.iter().any(|b| b.layer == l);
    report.check(
        "traced: fuse, store, net and dev layers all recorded spans",
        have(Layer::Fuse) && have(Layer::Store) && have(Layer::Net) && have(Layer::Dev),
    );
    report.check(
        "traced: read latency percentiles recorded",
        footer.hist("lat.fuse.read").is_some() && footer.hist("lat.nvm.read").is_some(),
    );

    let text = cluster.trace.chrome_trace();
    let valid = validate_chrome_trace(&text);
    report.check(
        "traced: chrome trace export validates",
        match &valid {
            Ok(summary) => summary.spans > 0,
            Err(e) => {
                eprintln!("  [trace] invalid export: {e}");
                false
            }
        },
    );
    if let Some(path) = arg_value("--trace") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &text) {
            Ok(()) => println!("  [trace] wrote {path} (load in Perfetto / chrome://tracing)"),
            Err(e) => eprintln!("  [trace] cannot write {path}: {e}"),
        }
    }
    report.obs_from(&footer);
}

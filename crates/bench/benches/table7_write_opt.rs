//! Table VII — the dirty-page write optimization under random byte writes.
//!
//! 128 K single-byte writes (scaled to keep 16 writes per chunk) at
//! random addresses in a 2 GB (scaled) NVM region. With the optimization
//! an evicted chunk ships only its dirty 4 KiB pages; without it the
//! whole 256 KiB chunk travels. Paper: 504 MB vs 19.3 GB to the SSD for
//! the same ~470 MB of page-granular traffic into FUSE.

use bench::{header, mib, scaled_fuse, JsonReport, Table, SCALE};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::randwrite::{run_randwrite, RandWriteConfig, RandWriteReport};

fn main() {
    header(
        "Table VII: random-write synthetic, write optimization",
        "Table VII",
    );
    let region = (2u64 << 30) / SCALE; // 2 GB scaled = 128 chunks
    let writes = (131_072 / SCALE as usize).max(1); // keep 16 writes/chunk
    println!(
        "region {} MiB, {} single-byte writes\n",
        region >> 20,
        writes
    );

    let cfg = JobConfig::local(1, 1, 1);
    let rw = RandWriteConfig {
        region_bytes: region,
        writes,
        seed: 11,
    };

    let run = |optimized: bool| -> (RandWriteReport, Cluster) {
        let cluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            FuseConfig {
                dirty_page_writeback: optimized,
                ..scaled_fuse(SCALE)
            },
        );
        let r = run_randwrite(&cluster, &cfg, &rw, optimized);
        bench::store_health(if optimized { "w/ opt" } else { "w/o opt" }, &cluster);
        (r, cluster)
    };

    let (opt, _opt_cluster) = run(true);
    let (unopt, unopt_cluster) = run(false);

    let t = Table::new(&[
        ("NVMalloc write opt.", 20),
        ("To FUSE (MiB)", 14),
        ("To SSD (MiB)", 13),
        ("Time (s)", 9),
        ("verified", 9),
    ]);
    for r in [&opt, &unopt] {
        t.row(&[
            if r.optimized {
                "w/ Optimization"
            } else {
                "w/o Optimization"
            }
            .to_string(),
            mib(r.data_to_fuse),
            mib(r.data_to_ssd),
            format!("{:.3}", r.time.as_secs_f64()),
            r.verified.to_string(),
        ]);
    }
    println!();
    let reduction = unopt.data_to_ssd as f64 / opt.data_to_ssd as f64;
    println!("SSD-volume reduction: {reduction:.1}x (paper: 19.3 GB / 504 MB = 38x)");
    let mut report = JsonReport::new("table7_write_opt");
    report
        .config("scale", SCALE)
        .config("region_bytes", region)
        .config("writes", writes);
    report
        .counter("opt_data_to_fuse", opt.data_to_fuse)
        .counter("opt_data_to_ssd", opt.data_to_ssd)
        .counter("unopt_data_to_ssd", unopt.data_to_ssd)
        .value("opt_time_s", opt.time)
        .value("unopt_time_s", unopt.time)
        .value("ssd_volume_reduction", reduction);
    report.check(
        "to-FUSE volume identical in both modes (paper: 467 vs 471 MB)",
        opt.data_to_fuse == unopt.data_to_fuse,
    );
    report.check(
        "optimization cuts SSD volume by an order of magnitude (paper: 38x)",
        reduction > 10.0,
    );
    report.check("optimization also cuts runtime", opt.time < unopt.time);
    report.check("both runs verified", opt.verified && unopt.verified);
    report
        .counters_from(&unopt_cluster)
        .health_from(&unopt_cluster)
        .emit();
}

//! Ablation — store chunk size (the paper fixes 256 KiB).
//!
//! Two opposing forces: bigger chunks amortize SSD/network latency for
//! sequential streams (STREAM read bandwidth rises), but amplify the
//! read-modify-write traffic of small random writes (Table VII's world).

use bench::{header, JsonReport, Table, SCALE};
use chunkstore::StoreConfig;
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::randwrite::{run_randwrite, RandWriteConfig};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

fn main() {
    header(
        "Ablation: chunk size",
        "§III-D design choice (256 KiB default)",
    );
    let t = Table::new(&[("Chunk", 8), ("TRIAD MB/s", 11), ("randwrite SSD MiB", 18)]);
    let mut report = JsonReport::new("ablate_chunk_size");
    report.config("scale", SCALE);
    let mut seq_bw = Vec::new();
    let mut rw_vol = Vec::new();
    let mut last_cluster = None;
    for chunk_kib in [64u64, 128, 256, 512, 1024] {
        let store_cfg = StoreConfig {
            chunk_size: chunk_kib * 1024,
            ..StoreConfig::default()
        };

        // Caches hold a fixed number of chunks (4 per stream) so the
        // sweep isolates the chunk-size effect from cache-entry pressure.
        let fuse = |streams: u64| FuseConfig {
            cache_bytes: streams * 4 * chunk_kib * 1024,
            ..FuseConfig::default()
        };

        // Sequential: STREAM TRIAD with C on the local store.
        let cfg = JobConfig::local(8, 1, 1);
        let cluster = Cluster::with_configs(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            fuse(8),
            store_cfg,
        );
        // 4 GB (scaled) array: larger than any swept cache, so no chunk
        // size can make the whole array resident across iterations.
        let elems = ((4u64 << 30) / SCALE / 8) as usize;
        let scfg =
            StreamConfig::new(elems).place(ArrayPlace::Dram, ArrayPlace::Dram, ArrayPlace::Nvm);
        let s = run_stream(
            &cluster,
            &cfg,
            Calibration::default(),
            &scfg,
            StreamKernel::Triad,
        );

        // Random writes, optimization ON (page write-back), same region.
        let rw_cfg = JobConfig::local(1, 1, 1);
        let rw_cluster = Cluster::with_configs(
            ClusterSpec::hal().scaled(SCALE),
            &rw_cfg.benefactor_nodes(),
            fuse(4),
            store_cfg,
        );
        let r = run_randwrite(
            &rw_cluster,
            &rw_cfg,
            &RandWriteConfig {
                region_bytes: (2u64 << 30) / SCALE,
                writes: 2048,
                seed: 3,
            },
            true,
        );
        t.row(&[
            format!("{}K", chunk_kib),
            format!("{:.1}", s.bandwidth_mb_s),
            format!("{:.1}", r.data_to_ssd as f64 / (1 << 20) as f64),
        ]);
        seq_bw.push(s.bandwidth_mb_s);
        rw_vol.push(r.data_to_ssd);
        report.value(&format!("triad_mb_s_chunk_{chunk_kib}k"), s.bandwidth_mb_s);
        report.counter(
            &format!("randwrite_ssd_bytes_chunk_{chunk_kib}k"),
            r.data_to_ssd,
        );
        bench::store_health(&format!("chunk {}K seq", chunk_kib), &cluster);
        bench::store_health(&format!("chunk {}K rw", chunk_kib), &rw_cluster);
        assert!(s.verified && r.verified);
        last_cluster = Some(cluster);
    }
    println!();
    report.check(
        "sequential bandwidth rises with chunk size (latency amortization)",
        seq_bw.windows(2).all(|w| w[1] >= w[0] * 0.95) && seq_bw[4] > seq_bw[0],
    );
    report.check(
        "random-write SSD volume is flat with page write-back (the optimization decouples it)",
        rw_vol.iter().max().unwrap() - rw_vol.iter().min().unwrap() < rw_vol[0] / 2,
    );
    let cluster = last_cluster.expect("sweep ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! Criterion micro-benchmarks of the reproduction stack itself: host-side
//! performance of the simulation substrate (not virtual-time results).

use criterion::{criterion_group, BatchSize, Criterion};
use simcore::{Engine, ProcCtx, Rendezvous, Resource, VTime};
use std::hint::black_box;

fn bench_resource(c: &mut Criterion) {
    c.bench_function("resource_acquire", |b| {
        let r = Resource::new("dev");
        let mut t = VTime::ZERO;
        b.iter(|| {
            t += VTime::from_nanos(10);
            black_box(r.acquire_at(t, VTime::from_nanos(5)));
        });
    });
}

fn bench_dirty_bitmap(c: &mut Criterion) {
    use fusemm::DirtyPages;
    c.bench_function("dirty_runs_64pages", |b| {
        let mut d = DirtyPages::new(64);
        for p in (0..64).step_by(3) {
            d.mark(p);
        }
        b.iter(|| black_box(d.runs(4096)));
    });
}

fn bench_cache(c: &mut Criterion) {
    use chunkstore::FileId;
    use fusemm::ChunkCache;
    c.bench_function("chunk_cache_get_insert_evict", |b| {
        b.iter_batched(
            || ChunkCache::new(256, 64),
            |mut cache| {
                for i in 0..512usize {
                    if cache.is_full() {
                        let victim = cache.lru_key().unwrap();
                        cache.remove(&victim);
                    }
                    cache.insert(
                        (FileId(0), i),
                        vec![0u8; 64].into_boxed_slice(),
                        VTime::ZERO,
                    );
                    black_box(cache.get_mut(&(FileId(0), i.saturating_sub(7))));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_engine_baton(c: &mut Criterion) {
    c.bench_function("engine_2proc_1000_yields", |b| {
        b.iter(|| {
            Engine::run(
                (0..2usize)
                    .map(|i| {
                        move |ctx: &mut ProcCtx| {
                            for k in 0..1000u64 {
                                ctx.advance(VTime::from_nanos(10 + (i as u64 + k) % 3));
                                ctx.yield_until_min();
                            }
                        }
                    })
                    .collect(),
            )
        });
    });
}

fn bench_rendezvous(c: &mut Criterion) {
    c.bench_function("rendezvous_4proc_100_barriers", |b| {
        b.iter(|| {
            let rv = Rendezvous::new(4);
            Engine::run(
                (0..4usize)
                    .map(|i| {
                        let rv = rv.clone();
                        move |ctx: &mut ProcCtx| {
                            for _ in 0..100 {
                                ctx.advance(VTime::from_nanos(7 * (i as u64 + 1)));
                                rv.barrier(ctx, i, VTime::ZERO);
                            }
                        }
                    })
                    .collect(),
            )
        });
    });
}

fn bench_store_write(c: &mut Criterion) {
    use chunkstore::{AggregateStore, Benefactor, PlacementPolicy, StoreConfig, StripeSpec};
    use devices::{Ssd, INTEL_X25E};
    use netsim::{NetConfig, Network};
    use simcore::StatsRegistry;

    c.bench_function("store_write_pages_4k", |b| {
        let stats = StatsRegistry::new();
        let net = Network::new(2, NetConfig::default(), &stats);
        let store = AggregateStore::new(StoreConfig::default(), net, &stats);
        let ssd = Ssd::new("b.ssd", INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(0, ssd, 1 << 30, 256 * 1024));
        let (t, f) = store.create_file(VTime::ZERO, 1, "/bench").unwrap();
        store
            .fallocate(
                t,
                1,
                f,
                16 << 20,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![1u8; 4096];
        let mut t = VTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            t += VTime::from_micros(1);
            let off = (i * 4096) % (256 * 1024 - 4096);
            i += 1;
            black_box(
                store
                    .write_pages(t, 1, f, (i % 64) as usize, &[(off, &page)])
                    .unwrap(),
            );
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_resource, bench_dirty_bitmap, bench_cache, bench_engine_baton, bench_rendezvous, bench_store_write
}

// Expanded `criterion_main!` plus the repo-wide JSON footprint: criterion
// owns the timing data (host-side, non-deterministic), so the emitted file
// records only what ran.
fn main() {
    benches();
    let mut json = bench::Json::obj();
    json.set("name", "micro");
    json.set("harness", "criterion");
    json.set(
        "targets",
        bench::Json::Arr(
            [
                "resource_acquire",
                "dirty_runs_64pages",
                "chunk_cache_get_insert_evict",
                "engine_2proc_1000_yields",
                "rendezvous_4proc_100_barriers",
                "store_write_pages_4k",
            ]
            .into_iter()
            .map(bench::Json::from)
            .collect(),
        ),
    );
    json.set("note", "host-side timings live in criterion's own output");
    bench::emit_json("micro", &json);
}

//! Criterion micro-benchmarks of the reproduction stack itself: host-side
//! performance of the simulation substrate (not virtual-time results).

use criterion::{criterion_group, BatchSize, Criterion};
use simcore::{Engine, ProcCtx, Rendezvous, Resource, VTime};
use std::hint::black_box;

fn bench_resource(c: &mut Criterion) {
    c.bench_function("resource_acquire", |b| {
        let r = Resource::new("dev");
        let mut t = VTime::ZERO;
        b.iter(|| {
            t += VTime::from_nanos(10);
            black_box(r.acquire_at(t, VTime::from_nanos(5)));
        });
    });
}

fn bench_dirty_bitmap(c: &mut Criterion) {
    use fusemm::DirtyPages;
    c.bench_function("dirty_runs_64pages", |b| {
        let mut d = DirtyPages::new(64);
        for p in (0..64).step_by(3) {
            d.mark(p);
        }
        b.iter(|| black_box(d.runs(4096)));
    });
}

fn bench_cache(c: &mut Criterion) {
    use chunkstore::FileId;
    use fusemm::ChunkCache;
    c.bench_function("chunk_cache_get_insert_evict", |b| {
        b.iter_batched(
            || ChunkCache::new(256, 64),
            |mut cache| {
                for i in 0..512usize {
                    if cache.is_full() {
                        let victim = cache.lru_key().unwrap();
                        cache.remove(&victim);
                    }
                    cache.insert(
                        (FileId(0), i),
                        vec![0u8; 64].into_boxed_slice(),
                        VTime::ZERO,
                    );
                    black_box(cache.get_mut(&(FileId(0), i.saturating_sub(7))));
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_engine_baton(c: &mut Criterion) {
    c.bench_function("engine_2proc_1000_yields", |b| {
        b.iter(|| {
            Engine::run(
                (0..2usize)
                    .map(|i| {
                        move |ctx: &mut ProcCtx| {
                            for k in 0..1000u64 {
                                ctx.advance(VTime::from_nanos(10 + (i as u64 + k) % 3));
                                ctx.yield_until_min();
                            }
                        }
                    })
                    .collect(),
            )
        });
    });
}

fn bench_rendezvous(c: &mut Criterion) {
    c.bench_function("rendezvous_4proc_100_barriers", |b| {
        b.iter(|| {
            let rv = Rendezvous::new(4);
            Engine::run(
                (0..4usize)
                    .map(|i| {
                        let rv = rv.clone();
                        move |ctx: &mut ProcCtx| {
                            for _ in 0..100 {
                                ctx.advance(VTime::from_nanos(7 * (i as u64 + 1)));
                                rv.barrier(ctx, i, VTime::ZERO);
                            }
                        }
                    })
                    .collect(),
            )
        });
    });
}

fn bench_store_write(c: &mut Criterion) {
    use chunkstore::{AggregateStore, Benefactor, PlacementPolicy, StoreConfig, StripeSpec};
    use devices::{Ssd, INTEL_X25E};
    use netsim::{NetConfig, Network};
    use simcore::StatsRegistry;

    c.bench_function("store_write_pages_4k", |b| {
        let stats = StatsRegistry::new();
        let net = Network::new(2, NetConfig::default(), &stats);
        let store = AggregateStore::new(StoreConfig::default(), net, &stats);
        let ssd = Ssd::new("b.ssd", INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(0, ssd, 1 << 30, 256 * 1024));
        let (t, f) = store.create_file(VTime::ZERO, 1, "/bench").unwrap();
        store
            .fallocate(
                t,
                1,
                f,
                16 << 20,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![1u8; 4096];
        let mut t = VTime::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            t += VTime::from_micros(1);
            let off = (i * 4096) % (256 * 1024 - 4096);
            i += 1;
            black_box(
                store
                    .write_pages(t, 1, f, (i % 64) as usize, &[(off, &page)])
                    .unwrap(),
            );
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_resource, bench_dirty_bitmap, bench_cache, bench_engine_baton, bench_rendezvous, bench_store_write
}

/// The committed host-speed workload (ISSUE 7): a fixed, deterministic
/// amount of simulated work — stream writes, per-page in-place updates
/// (the digest-heavy path), chunk reads, and a scheduler yield storm —
/// with the simulated byte volume read back from the store's own
/// counters, timed in host wall-clock. check.sh gates the resulting
/// bytes/host-second against a committed floor.
fn run_host_speed() -> bench::Json {
    use chunkstore::{AggregateStore, Benefactor, PlacementPolicy, StoreConfig, StripeSpec};
    use devices::{Ssd, INTEL_X25E};
    use netsim::{NetConfig, Network};
    use simcore::StatsRegistry;
    use std::time::Instant;

    const CHUNK: u64 = 256 * 1024;
    const CHUNKS: usize = 64;
    const PAGE: usize = 4096;
    const STREAM_PASSES: usize = 4;
    const PAGE_PASSES: usize = 6;
    const READ_PASSES: usize = 12;
    const PROCS: usize = 16;
    const YIELDS: u64 = 500;

    let stats = StatsRegistry::new();
    let net = Network::new(5, NetConfig::default(), &stats);
    let store = AggregateStore::new(StoreConfig::default(), net, &stats);
    for node in 1..=4usize {
        let ssd = Ssd::new(&format!("b{node}.ssd"), INTEL_X25E, &stats);
        store.add_benefactor(Benefactor::new(node, ssd, 1 << 30, CHUNK));
    }
    let (t0, f) = store.create_file(VTime::ZERO, 0, "/host-speed").unwrap();
    store
        .fallocate(
            t0,
            0,
            f,
            CHUNKS as u64 * CHUNK,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();

    let host = bench::HostSpeed::start();
    let mut t = t0;

    // 1. stream writes: full-chunk spans (compose + digest + store)
    let chunk_buf = vec![0x5Au8; CHUNK as usize];
    let started = Instant::now();
    for _ in 0..STREAM_PASSES {
        for idx in 0..CHUNKS {
            t += VTime::from_micros(1);
            t = store.write_pages(t, 0, f, idx, &[(0, &chunk_buf)]).unwrap();
        }
    }
    let stream_s = started.elapsed().as_secs_f64();

    // 2. page updates: 4 KiB in-place writes, one page per call — the
    //    per-chunk digest/copy path this PR takes from O(chunk) to
    //    O(dirty bytes)
    let page_buf = vec![0xA5u8; PAGE];
    let started = Instant::now();
    for _ in 0..PAGE_PASSES {
        for idx in 0..CHUNKS {
            for page in 0..(CHUNK as usize / PAGE) {
                t += VTime::from_micros(1);
                let off = (page * PAGE) as u64;
                t = store
                    .write_pages(t, 0, f, idx, &[(off, &page_buf)])
                    .unwrap();
            }
        }
    }
    let page_s = started.elapsed().as_secs_f64();

    // 3. reads: whole-chunk fetches
    let started = Instant::now();
    for _ in 0..READ_PASSES {
        for idx in 0..CHUNKS {
            t += VTime::from_micros(1);
            let (tt, payload) = store.fetch_chunk(t, 0, f, idx).unwrap();
            t = tt;
            std::hint::black_box(payload);
        }
    }
    let read_s = started.elapsed().as_secs_f64();

    // 4. scheduler storm: events/host-second of the engine itself
    let started = Instant::now();
    let report = Engine::run(
        (0..PROCS)
            .map(|i| {
                move |ctx: &mut ProcCtx| {
                    for k in 0..YIELDS {
                        ctx.advance(VTime::from_nanos(10 + (i as u64 + k) % 7));
                        ctx.yield_until_min();
                    }
                }
            })
            .collect(),
    );
    let engine_s = started.elapsed().as_secs_f64();

    // simulated volume is exact: the store's own counters
    let sim_bytes = stats.get("store.bytes_from_clients") + stats.get("store.bytes_to_clients");
    let mut host = host;
    host.add_bytes(sim_bytes);
    host.add_events(report.context_switches);
    let total_s = host.elapsed_seconds();

    let mut footer = host.footer();
    let mut detail = bench::Json::obj();
    detail.set("stream_write_s", stream_s);
    detail.set("page_update_s", page_s);
    detail.set("read_s", read_s);
    detail.set("engine_storm_s", engine_s);
    footer.set("detail", detail);
    println!(
        "  [host-speed] {sim_bytes} sim bytes in {total_s:.3}s host \
         ({:.0} MiB/host-s); {} engine events in {engine_s:.3}s ({:.0} kev/host-s)",
        sim_bytes as f64 / total_s.max(1e-9) / (1 << 20) as f64,
        report.context_switches,
        report.context_switches as f64 / engine_s.max(1e-9) / 1e3
    );
    footer
}

// Expanded `criterion_main!` plus the repo-wide JSON footprint: criterion
// owns the timing data (host-side, non-deterministic), so the emitted file
// records only what ran. `--host-speed` skips the criterion targets and
// runs only the gated wall-clock workload (scripts/check.sh).
fn main() {
    let host_only = std::env::args().any(|a| a == "--host-speed");
    if !host_only {
        benches();
    }
    let host = run_host_speed();
    let mut json = bench::Json::obj();
    json.set("name", "micro");
    json.set("host", host);
    json.set("harness", "criterion");
    json.set(
        "targets",
        bench::Json::Arr(
            [
                "resource_acquire",
                "dirty_runs_64pages",
                "chunk_cache_get_insert_evict",
                "engine_2proc_1000_yields",
                "rendezvous_4proc_100_barriers",
                "store_write_pages_4k",
            ]
            .into_iter()
            .map(bench::Json::from)
            .collect(),
        ),
    );
    json.set("note", "host-side timings live in criterion's own output");
    bench::emit_json("micro", &json);
}

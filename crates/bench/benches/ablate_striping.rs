//! Ablation — chunk placement policy: the manager's rotated round-robin
//! striping vs a seeded random permutation per file.
//!
//! Round-robin keeps concurrent writers of equally-striped files
//! de-phased deterministically; random placement achieves the same in
//! expectation with occasional hot spots. The paper uses round-robin.

use bench::{header, scaled_fuse, JsonReport, Table, SCALE};
use chunkstore::{PlacementPolicy, StripeSpec};
use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use nvmalloc::AllocOptions;

fn main() {
    header(
        "Ablation: striping policy (round-robin vs random)",
        "§II manager design",
    );
    let cfg = JobConfig::local(8, 16, 16);
    let t = Table::new(&[
        ("Policy", 14),
        ("Write+flush s", 14),
        ("Max SSD busy s", 15),
        ("Mean SSD busy s", 16),
    ]);
    let mut report = JsonReport::new("ablate_striping");
    report.config("scale", SCALE).config("config", cfg.label());
    let mut times = Vec::new();
    let mut skews = Vec::new();
    let mut last_cluster = None;
    for (policy, name) in [
        (PlacementPolicy::RoundRobin, "round-robin"),
        (PlacementPolicy::RandomPermutation { seed: 9 }, "random"),
    ] {
        let cluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            scaled_fuse(SCALE),
        );
        // Every rank writes a 4 MiB variable striped with `policy`.
        let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
            let opts = AllocOptions {
                stripe: StripeSpec::all(),
                placement: policy,
            };
            let v = env
                .client
                .ssdmalloc_opts::<u8>(ctx, 4 << 20, &opts)
                .unwrap();
            env.comm.barrier(ctx, env.rank);
            let t0 = ctx.now();
            v.write_slice(ctx, 0, &vec![7u8; 4 << 20]).unwrap();
            v.flush(ctx).unwrap();
            env.comm.barrier(ctx, env.rank);
            (ctx.now() - t0).as_secs_f64()
        });
        let time = result.outputs.iter().cloned().fold(0.0f64, f64::max);
        let (max_busy, mean_busy) = {
            let mgr = cluster.store.manager();
            let busy: Vec<f64> = (0..mgr.benefactor_count())
                .map(|i| {
                    mgr.benefactor(chunkstore::BenefactorId(i))
                        .ssd()
                        .resource()
                        .busy_total()
                        .as_secs_f64()
                })
                .collect();
            (
                busy.iter().cloned().fold(0.0f64, f64::max),
                busy.iter().sum::<f64>() / busy.len() as f64,
            )
        };
        t.row(&[
            name.to_string(),
            format!("{time:.3}"),
            format!("{max_busy:.3}"),
            format!("{mean_busy:.3}"),
        ]);
        times.push(time);
        skews.push(max_busy / mean_busy);
        report
            .value(&format!("write_flush_s_{name}"), time)
            .value(&format!("ssd_busy_skew_{name}"), max_busy / mean_busy);
        bench::store_health(name, &cluster);
        last_cluster = Some(cluster);
    }
    println!();
    report.check(
        "both policies land within 25% of each other (balanced in expectation)",
        (times[0] / times[1] - 1.0).abs() < 0.25 || (times[1] / times[0] - 1.0).abs() < 0.25,
    );
    report.check(
        "round-robin keeps the SSD fleet balanced (max/mean < 1.2)",
        skews[0] < 1.2,
    );
    report.check(
        "random placement is no better balanced than round-robin",
        skews[1] >= skews[0] * 0.95,
    );
    let cluster = last_cluster.expect("sweep ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! Table V — MM computing time vs. loop-tile size, row- and column-major.
//!
//! Paper (L-SSD(8:16:16), 2 GB matrices, tiles 16..128): larger tiles cut
//! the column-major time roughly in half (2058s → 916s) while row-major
//! stays flat (~470 s).
//!
//! Adaptation: we run 8 ranks on one node so each rank owns 128 rows —
//! exactly the paper's per-process share — and sweep the paper's tile
//! values unscaled. (At 128 ranks the scaled-down per-rank share would be
//! smaller than the smallest tile.)

use bench::{hal_cluster, header, JsonReport, Table};
use cluster::JobConfig;
use workloads::matmul::{run_mm, AccessOrder, MmConfig};

const N: usize = 1024;

fn main() {
    header(
        "Table V: MM computing time vs tile size (adapted: 8 ranks, 128 rows each)",
        "Table V",
    );
    let t = Table::new(&[("Tile", 6), ("Row-major s", 12), ("Col-major s", 12)]);
    let cfg = JobConfig::local(8, 1, 1);
    let tiles = [16usize, 32, 64, 128];
    let mut report = JsonReport::new("table5_mm_tiles");
    report.config("n", N).config("config", cfg.label());
    let mut row_times = Vec::new();
    let mut col_times = Vec::new();
    let mut last_cluster = None;
    for tile in tiles {
        let mut comp = [0.0f64; 2];
        for (slot, order) in [AccessOrder::RowMajor, AccessOrder::ColMajor]
            .into_iter()
            .enumerate()
        {
            let cluster = hal_cluster(&cfg);
            let r = run_mm(
                &cluster,
                &cfg,
                &MmConfig {
                    tile,
                    order,
                    ..MmConfig::paper_2gb(N)
                },
            )
            .unwrap();
            comp[slot] = r.stages.computing.as_secs_f64();
            bench::store_health(&format!("tile {tile} {order:?}"), &cluster);
            report.value(&format!("computing_s_tile{tile}_{order:?}"), comp[slot]);
            last_cluster = Some(cluster);
        }
        t.row(&[
            tile.to_string(),
            format!("{:.3}", comp[0]),
            format!("{:.3}", comp[1]),
        ]);
        row_times.push(comp[0]);
        col_times.push(comp[1]);
    }
    println!();
    report.check(
        "column-major improves monotonically with larger tiles (paper: 2058s→916s)",
        col_times.windows(2).all(|w| w[1] < w[0]),
    );
    let row_spread = row_times.iter().cloned().fold(f64::MIN, f64::max)
        / row_times.iter().cloned().fold(f64::MAX, f64::min);
    report.check(
        "row-major is insensitive to tile size (paper: ~flat)",
        row_spread < 1.30,
    );
    report.check(
        "column-major stays slower than row-major at every tile",
        col_times.iter().zip(&row_times).all(|(c, r)| c > r),
    );
    let cluster = last_cluster.expect("tiles ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! Table I — device characteristics.
//!
//! Prints the calibrated device profiles and exercises each model with a
//! 256 KiB transfer so the effective latencies/bandwidths driving every
//! other experiment are visible.

use bench::{header, JsonReport, Table};
use devices::{Ssd, TABLE1};
use simcore::{StatsRegistry, VTime};

fn main() {
    header("Table I: device characteristics", "the paper's Table I");
    let t = Table::new(&[
        ("Device", 22),
        ("Type", 6),
        ("Iface", 6),
        ("Read", 10),
        ("Write", 10),
        ("Latency", 9),
        ("Cap(GB)", 8),
        ("Cost($)", 9),
        ("256KiB rd", 10),
    ]);
    let stats = StatsRegistry::new();
    for p in TABLE1 {
        let dev = Ssd::new(p.name, *p, &stats);
        let grant = dev.read_at(VTime::ZERO, 256 * 1024);
        t.row(&[
            p.name.to_string(),
            format!("{:?}", p.kind),
            format!("{:?}", p.interface),
            format!("{:.0}MB/s", p.read_bw.as_bytes_per_sec() / 1e6),
            format!("{:.0}MB/s", p.write_bw.as_bytes_per_sec() / 1e6),
            format!("{}", p.latency),
            format!("{}", p.capacity >> 30),
            format!("{:.0}", p.cost_usd),
            format!("{}", grant.end),
        ]);
    }
    println!();
    // §I: DRAM is "at least 8.53 times" faster than the ioDrive Duo.
    let dram = devices::DDR3_1600.read_bw.as_bytes_per_sec();
    let iodrive = devices::FUSION_IODRIVE_DUO.read_bw.as_bytes_per_sec();
    let mut report = JsonReport::new("table1_devices");
    for p in TABLE1 {
        report.config(
            &format!("{}_read_mb_s", p.name.replace([' ', '-'], "_")),
            p.read_bw.as_bytes_per_sec() / 1e6,
        );
    }
    report.value("dram_over_iodrive", dram / iodrive);
    report.value(
        "dram_over_x25e",
        dram / devices::INTEL_X25E.read_bw.as_bytes_per_sec(),
    );
    report.check(
        "DRAM/ioDrive read-bandwidth ratio ≈ 8.53 (paper §I)",
        (dram / iodrive - 8.53).abs() < 0.01,
    );
    report.check(
        "X25-E is >40x slower than DRAM (paper §IV-B-1 rationale)",
        dram / devices::INTEL_X25E.read_bw.as_bytes_per_sec() > 40.0,
    );
    report.emit();
}

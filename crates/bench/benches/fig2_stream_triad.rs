//! Fig. 2 — STREAM TRIAD bandwidth vs. array placement.
//!
//! 3 × 2 GB arrays (scaled), 8 threads on one node, 10 iterations; the
//! six non-trivial placements of {A,B,C} on the NVM store, against local
//! and remote SSDs. Y-axis normalized to DRAM-only = 100, as in the
//! paper (which reports local ≈ 62× and remote ≈ 115× slower overall).

use bench::{hal_cluster, header, stream_fuse, JsonReport, Table, SCALE};
use cluster::{Calibration, JobConfig};
use cluster::{Cluster, ClusterSpec};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

const D: ArrayPlace = ArrayPlace::Dram;
const N: ArrayPlace = ArrayPlace::Nvm;

fn main() {
    header(
        "Fig. 2: STREAM TRIAD, A[i] = B[i] + 3*C[i]",
        "Fig. 2 (normalized bandwidth, log scale in the paper)",
    );
    let elems = (2u64 << 30) / SCALE / 8; // 2 GB per array, scaled, f64
    let base_cfg = StreamConfig::new(elems as usize);
    let calib = Calibration::default();

    // DRAM-only reference.
    let dram_cfg = JobConfig::dram_only(8, 1);
    let dram_cluster = hal_cluster(&dram_cfg);
    let dram = run_stream(
        &dram_cluster,
        &dram_cfg,
        calib,
        &base_cfg,
        StreamKernel::Triad,
    );
    println!(
        "DRAM-only reference: {:.1} MB/s (normalized 100)\n",
        dram.bandwidth_mb_s
    );

    let placements: [(ArrayPlace, ArrayPlace, ArrayPlace); 6] = [
        (N, D, D), // A
        (D, N, D), // B
        (D, D, N), // C
        (N, N, D), // A&B
        (D, N, N), // B&C
        (N, D, N), // A&C
    ];

    let t = Table::new(&[
        ("Arrays on SSD", 14),
        ("Local norm", 11),
        ("Remote norm", 12),
        ("L MB/s", 9),
        ("R MB/s", 9),
        ("verified", 9),
    ]);
    let mut report = JsonReport::new("fig2_stream_triad");
    report
        .config("scale", SCALE)
        .config("elems_per_array", elems)
        .value("dram_mb_s", dram.bandwidth_mb_s);
    let mut worst_local = f64::MAX;
    let mut worst_remote = f64::MAX;
    let mut last_cluster = None;
    for (a, b, c) in placements {
        let scfg = base_cfg.place(a, b, c);

        let lcfg = JobConfig::local(8, 1, 1);
        let lcluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &lcfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
        );
        let local = run_stream(&lcluster, &lcfg, calib, &scfg, StreamKernel::Triad);

        let rcfg = JobConfig::remote(8, 1, 1);
        let rcluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &rcfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
        );
        let remote = run_stream(&rcluster, &rcfg, calib, &scfg, StreamKernel::Triad);

        let ln = 100.0 * local.bandwidth_mb_s / dram.bandwidth_mb_s;
        let rn = 100.0 * remote.bandwidth_mb_s / dram.bandwidth_mb_s;
        worst_local = worst_local.min(ln);
        worst_remote = worst_remote.min(rn);
        t.row(&[
            scfg.placement_label(),
            format!("{ln:.2}"),
            format!("{rn:.2}"),
            format!("{:.1}", local.bandwidth_mb_s),
            format!("{:.1}", remote.bandwidth_mb_s),
            format!("{}", local.verified && remote.verified),
        ]);
        let label = scfg.placement_label();
        report
            .value(&format!("local_mb_s_{label}"), local.bandwidth_mb_s)
            .value(&format!("remote_mb_s_{label}"), remote.bandwidth_mb_s);
        bench::store_health(&format!("L {label}"), &lcluster);
        bench::store_health(&format!("R {label}"), &rcluster);
        last_cluster = Some(rcluster);
    }

    println!();
    // Paper: local falls behind DRAM "by a factor of 62", remote "115".
    let lf = 100.0 / worst_local;
    let rf = 100.0 / worst_remote;
    println!("worst-case slowdown: local {lf:.0}x (paper 62x), remote {rf:.0}x (paper 115x)");
    report
        .value("worst_local_slowdown", lf)
        .value("worst_remote_slowdown", rf);
    report.check(
        "local SSD slowdown within 2x of the paper's 62x",
        lf > 31.0 && lf < 124.0,
    );
    report.check(
        "remote SSD slowdown within 2x of the paper's 115x",
        rf > 57.0 && rf < 230.0,
    );
    report.check(
        "remote always slower than local",
        worst_remote < worst_local + 1e-9,
    );
    let cluster = last_cluster.expect("placements ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! Table VI — parallel sorting of a 200 GB list (scaled 1/1024).
//!
//! * DRAM(8:16:0): the whole machine's DRAM cannot hold the list, so the
//!   program is rewritten into two passes with the interim sorted halves
//!   staged on the PFS.
//! * L-SSD(8:16:16): 100 GB in DRAM + 100 GB on 16 local SSDs, one pass.
//! * R-SSD(8:8:8): 50 GB in DRAM + 150 GB on 8 remote SSDs, one pass
//!   (half the nodes, double the per-node work).
//!
//! Paper: L-SSD is ~10× faster than the two-pass DRAM baseline; R-SSD is
//! slower than L-SSD but still sorts in one pass.

use bench::{hal_cluster_scaled, header, JsonReport, Table, SORT_SCALE};
use cluster::JobConfig;
use workloads::qsort::{run_sort_dram_two_pass, run_sort_hybrid, SortConfig};

fn main() {
    header(
        "Table VI: 200 GB parallel quicksort (scale 1/1024)",
        "Table VI",
    );
    // 200 GB of u64 → scaled to 128 ranks × 196,608 elements.
    let total = 128 * 196_608;

    let t = Table::new(&[
        ("Config", 15),
        ("Time (s)", 9),
        ("Pass (#)", 9),
        ("verified", 9),
    ]);

    let dram_cfg = JobConfig::dram_only(8, 16);
    let dram = run_sort_dram_two_pass(
        &hal_cluster_scaled(&dram_cfg, SORT_SCALE),
        &dram_cfg,
        &SortConfig::new(total),
    );
    t.row(&[
        dram.label.clone(),
        format!("{:.3}", dram.time.as_secs_f64()),
        dram.passes.to_string(),
        dram.verified.to_string(),
    ]);

    let l_cfg = JobConfig::local(8, 16, 16);
    let l_cluster = hal_cluster_scaled(&l_cfg, SORT_SCALE);
    let l = run_sort_hybrid(
        &l_cluster,
        &l_cfg,
        &SortConfig {
            dram_part: (1, 2),
            ..SortConfig::new(total)
        },
    );
    t.row(&[
        l.label.clone(),
        format!("{:.3}", l.time.as_secs_f64()),
        l.passes.to_string(),
        l.verified.to_string(),
    ]);

    let r_cfg = JobConfig::remote(8, 8, 8);
    let r_cluster = hal_cluster_scaled(&r_cfg, SORT_SCALE);
    let r = run_sort_hybrid(
        &r_cluster,
        &r_cfg,
        &SortConfig {
            dram_part: (1, 4),
            ..SortConfig::new(total)
        },
    );
    t.row(&[
        r.label.clone(),
        format!("{:.3}", r.time.as_secs_f64()),
        r.passes.to_string(),
        r.verified.to_string(),
    ]);
    bench::store_health(&l.label, &l_cluster);
    bench::store_health(&r.label, &r_cluster);

    println!();
    let speedup = dram.time.as_secs_f64() / l.time.as_secs_f64();
    println!("L-SSD(8:16:16) speedup over two-pass DRAM: {speedup:.1}x (paper: ~10x)");
    let mut report = JsonReport::new("table6_qsort");
    report
        .config("sort_scale", SORT_SCALE)
        .config("total_elems", total as u64);
    report
        .value("dram_two_pass_s", dram.time)
        .value("l_ssd_s", l.time)
        .value("r_ssd_s", r.time)
        .value("speedup_l_vs_dram", speedup);
    report.check(
        "every configuration produces a verified sorted permutation",
        dram.verified && l.verified && r.verified,
    );
    report.check(
        "hybrid sorts in one pass, DRAM-only needs two",
        l.passes == 1 && dram.passes == 2,
    );
    report.check(
        "L-SSD hybrid is several times faster than two-pass DRAM (paper: 10x)",
        speedup > 3.0,
    );
    report.check(
        "R-SSD (half the nodes, more NVM) is slower than L-SSD but beats two-pass",
        r.time > l.time && r.time < dram.time,
    );
    report
        .counters_from(&r_cluster)
        .health_from(&r_cluster)
        .emit();
}

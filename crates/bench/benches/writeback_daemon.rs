//! Write-back daemon ablation (DESIGN.md §10) — demand eviction vs
//! background flushing.
//!
//! Not a paper experiment: this measures what the write-back subsystem
//! buys. The centerpiece is a *full-cache dirty workload* — STREAM TRIAD
//! with all three arrays on the store, so every iteration dirties A's
//! chunks while B/C misses churn the cache — where demand eviction pays a
//! synchronous dirty write-back inside the read path. With the daemon on
//! (plus the segmented clean-first cache) the flusher cleans chunks off
//! the foreground clock and p95 `lat.fuse.read` must improve >= 20%.
//!
//! Also swept: the Table VII random-write synthetic across dirty-ratio
//! knobs x cache segmentation, and read-dominated guardrails (STREAM B&C,
//! hybrid qsort) that the daemon must not regress.
//!
//! Run with `-- --smoke` for the CI-sized variant (scripts/check.sh diffs
//! its defaults-off JSON against a committed expectation and gates on the
//! daemon counters in the obs footer).

use bench::{arg_value, header, JsonReport, Table, SCALE};
use chunkstore::StoreConfig;
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use obs::validate_chrome_trace;
use simcore::VTime;
use workloads::qsort::{run_sort_hybrid, SortConfig};
use workloads::randwrite::{run_randwrite, RandWriteConfig};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

/// 16 MiB (64 chunks): small enough that the dirty STREAM working set
/// (3 arrays) and the randwrite region overflow it.
const CACHE: u64 = 16 * 1024 * 1024;

/// `daemon = Some((background, hard))` enables the write-back daemon;
/// `seg` enables the segmented scan-resistant cache. `None/false` is
/// today's demand-eviction default (the committed serial expectation).
fn fuse_cfg(daemon: Option<(f64, f64)>, seg: bool) -> FuseConfig {
    let mut cfg = FuseConfig {
        cache_bytes: CACHE,
        ..FuseConfig::default()
    };
    if let Some((background, hard)) = daemon {
        cfg = cfg.with_writeback(background, hard);
    }
    if seg {
        cfg = cfg.with_seg_cache();
    }
    cfg
}

/// The daemon configuration under test everywhere below.
const DAEMON: (f64, f64) = (0.25, 0.75);

struct StreamRun {
    time: VTime,
    p95_read_ns: u64,
    bg_flushes: u64,
    clean_evictions: u64,
}

/// STREAM TRIAD with A, B and C all on the store: every iteration writes
/// all of A (dirtying its chunks) while B/C reads miss, so demand
/// eviction keeps paying synchronous write-backs inside reads. Runs
/// traced when `traced` so p95 `lat.fuse.read` lands in the obs footer.
fn dirty_stream(
    fuse: FuseConfig,
    elems: usize,
    iters: usize,
    traced: bool,
) -> (StreamRun, Cluster) {
    let jcfg = JobConfig::remote(1, 1, 4);
    let cluster = if traced {
        Cluster::with_obs(
            ClusterSpec::hal().scaled(SCALE),
            &jcfg.benefactor_nodes(),
            fuse,
            StoreConfig::default(),
        )
    } else {
        Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &jcfg.benefactor_nodes(),
            fuse,
        )
    };
    let scfg = StreamConfig {
        iters,
        block_elems: 64 * 1024, // 512 KiB requests
        ..StreamConfig::new(elems)
    }
    .place(ArrayPlace::Nvm, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let rep = run_stream(
        &cluster,
        &jcfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(rep.verified, "dirty STREAM data corrupted");
    let (p95, bg, clean) = if traced {
        let footer = cluster.trace.footer(10);
        (
            footer.hist("lat.fuse.read").map(|h| h.p95_ns).unwrap_or(0),
            footer.counters.get("fuse.bg_flushes"),
            footer.counters.get("fuse.clean_evictions"),
        )
    } else {
        (
            0,
            cluster.stats.get("fuse.bg_flushes"),
            cluster.stats.get("fuse.clean_evictions"),
        )
    };
    (
        StreamRun {
            time: rep.time,
            p95_read_ns: p95,
            bg_flushes: bg,
            clean_evictions: clean,
        },
        cluster,
    )
}

/// Read-dominated STREAM (A in DRAM, B&C on the store) — the daemon has
/// almost nothing to flush here and must not slow the reads down.
fn read_stream_time(fuse: FuseConfig, elems: usize, iters: usize) -> f64 {
    let jcfg = JobConfig::remote(1, 1, 4);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &jcfg.benefactor_nodes(),
        fuse,
    );
    let scfg = StreamConfig {
        iters,
        block_elems: 64 * 1024,
        ..StreamConfig::new(elems)
    }
    .place(ArrayPlace::Dram, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let rep = run_stream(
        &cluster,
        &jcfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    assert!(rep.verified, "read STREAM data corrupted");
    rep.time.as_secs_f64()
}

fn sort_time(fuse: FuseConfig, total: usize) -> f64 {
    let jcfg = JobConfig::remote(2, 1, 4);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &jcfg.benefactor_nodes(),
        fuse,
    );
    let rep = run_sort_hybrid(
        &cluster,
        &jcfg,
        &SortConfig {
            dram_part: (1, 4),
            ..SortConfig::new(total)
        },
    );
    assert!(rep.verified, "sort output not a sorted permutation");
    rep.time.as_secs_f64()
}

/// One Table VII randwrite run under a given write-back configuration.
fn randwrite_run(
    daemon: Option<(f64, f64)>,
    seg: bool,
    rw: &RandWriteConfig,
) -> (f64, u64, u64, u64) {
    let jcfg = JobConfig::remote(1, 1, 4);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &jcfg.benefactor_nodes(),
        fuse_cfg(daemon, seg),
    );
    let rep = run_randwrite(&cluster, &jcfg, rw, true);
    assert!(rep.verified, "randwrite probes corrupted");
    (
        rep.time.as_secs_f64(),
        rep.data_to_ssd,
        cluster.stats.get("fuse.bg_flushes"),
        cluster.stats.get("fuse.throttled_writes"),
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "Write-back daemon: demand eviction vs background flushing",
        "DESIGN.md \u{a7}10 ablation (no paper counterpart)",
    );
    if smoke {
        println!("  [smoke] CI-sized problem; qsort guardrail skipped\n");
    }

    // 3 arrays x 8 MiB (full: x 16 MiB) overflow the 16 MiB cache.
    let stream_elems = if smoke { 1 << 20 } else { 2 << 20 };
    let stream_iters = if smoke { 2 } else { 3 };
    let rw = RandWriteConfig {
        region_bytes: if smoke { 64 << 20 } else { 128 << 20 },
        writes: if smoke { 16 * 1024 } else { 64 * 1024 },
        seed: 42,
    };
    let sort_total = 2 * (1 << 18);

    let mut report = JsonReport::new("writeback_daemon");
    report
        .config("smoke", smoke)
        .config("scale", SCALE)
        .config("cache_bytes", CACHE)
        .config("daemon_ratios", format!("{}/{}", DAEMON.0, DAEMON.1))
        .config("stream_elems", stream_elems)
        .config("stream_iters", stream_iters as u64)
        .config("rw_region_bytes", rw.region_bytes)
        .config("rw_writes", rw.writes as u64)
        .config("sort_total", if smoke { 0 } else { sort_total });
    // Defaults-off sub-report: scripts/check.sh diffs this against a
    // committed expectation, pinning the demand-eviction cost model.
    let mut serial = JsonReport::new("writeback_daemon_serial");
    serial.config("smoke", smoke).config("scale", SCALE);

    // ----- centerpiece: full-cache dirty STREAM, demand vs daemon -------
    let (demand_raw, _) = dirty_stream(fuse_cfg(None, false), stream_elems, stream_iters, false);
    let (daemon_raw, _) = dirty_stream(
        fuse_cfg(Some(DAEMON), true),
        stream_elems,
        stream_iters,
        false,
    );
    let (demand, _) = dirty_stream(fuse_cfg(None, false), stream_elems, stream_iters, true);
    let (daemon, traced_cluster) = dirty_stream(
        fuse_cfg(Some(DAEMON), true),
        stream_elems,
        stream_iters,
        true,
    );

    let t = Table::new(&[
        ("Dirty STREAM", 16),
        ("Time (s)", 10),
        ("p95 read (ms)", 14),
        ("Bg flushes", 11),
        ("Clean evict", 12),
    ]);
    for (label, run) in [("demand", &demand), ("daemon+seg", &daemon)] {
        t.row(&[
            label.to_string(),
            format!("{:.3}", run.time.as_secs_f64()),
            format!("{:.3}", run.p95_read_ns as f64 / 1e6),
            run.bg_flushes.to_string(),
            run.clean_evictions.to_string(),
        ]);
    }
    println!();

    report.value("dirty_stream_demand_s", demand.time.as_secs_f64());
    report.value("dirty_stream_daemon_s", daemon.time.as_secs_f64());
    report.value("dirty_stream_demand_p95_read_ns", demand.p95_read_ns as f64);
    report.value("dirty_stream_daemon_p95_read_ns", daemon.p95_read_ns as f64);
    serial.value("dirty_stream_demand_s", demand_raw.time.as_secs_f64());

    let p95_gain = 1.0 - daemon.p95_read_ns as f64 / demand.p95_read_ns as f64;
    report.value("dirty_stream_p95_read_gain", p95_gain);
    report.check(
        "daemon: p95 fuse.read improves >= 20% on the full-cache dirty workload",
        p95_gain >= 0.20,
    );
    report.check(
        "daemon: whole dirty workload completes faster than demand eviction",
        daemon.time < demand.time,
    );
    report.check(
        "traced and untraced runs are bit-identical (demand and daemon)",
        demand.time == demand_raw.time && daemon.time == daemon_raw.time,
    );
    report.check(
        "daemon: background flusher and clean-first eviction were exercised",
        daemon.bg_flushes > 0 && daemon.clean_evictions > 0 && demand.bg_flushes == 0,
    );

    // ----- Table VII randwrite: dirty ratios x cache segmentation -------
    type SweepRow = (&'static str, Option<(f64, f64)>, bool);
    let sweep: [SweepRow; 5] = [
        ("off", None, false),
        ("bg50", Some((0.5, 0.9)), false),
        ("bg25", Some(DAEMON), false),
        ("bg50+seg", Some((0.5, 0.9)), true),
        ("bg25+seg", Some(DAEMON), true),
    ];
    let t = Table::new(&[
        ("Randwrite cfg", 14),
        ("Time (s)", 10),
        ("To SSD (MiB)", 13),
        ("Bg flushes", 11),
        ("Throttled", 10),
    ]);
    let mut rw_times = Vec::new();
    for (label, daemon_cfg, seg) in sweep {
        let (time, to_ssd, bg, throttled) = randwrite_run(daemon_cfg, seg, &rw);
        t.row(&[
            label.to_string(),
            format!("{time:.3}"),
            format!("{:.1}", to_ssd as f64 / (1 << 20) as f64),
            bg.to_string(),
            throttled.to_string(),
        ]);
        report.value(&format!("randwrite_{label}_s"), time);
        report.value(&format!("randwrite_{label}_to_ssd"), to_ssd as f64);
        if daemon_cfg.is_none() && !seg {
            serial.value("randwrite_off_s", time);
            serial.value("randwrite_off_to_ssd", to_ssd as f64);
        }
        rw_times.push((label, time, bg));
    }
    println!();
    let off_time = rw_times[0].1;
    let best_daemon = rw_times[1..]
        .iter()
        .map(|&(_, t, _)| t)
        .fold(f64::INFINITY, f64::min);
    report.check(
        "randwrite: best daemon configuration does not regress (> -5%)",
        best_daemon <= off_time * 1.05,
    );
    report.check(
        "randwrite: every daemon configuration flushed in the background",
        rw_times[1..].iter().all(|&(_, _, bg)| bg > 0),
    );

    // ----- guardrails: read-dominated workloads must not regress --------
    let guard_serial = read_stream_time(fuse_cfg(None, false), stream_elems, stream_iters);
    let guard_daemon = read_stream_time(fuse_cfg(Some(DAEMON), true), stream_elems, stream_iters);
    report.value("read_stream_demand_s", guard_serial);
    report.value("read_stream_daemon_s", guard_daemon);
    serial.value("read_stream_demand_s", guard_serial);
    report.check(
        "guardrail: read-dominated STREAM does not regress under the daemon",
        guard_daemon <= guard_serial * 1.02,
    );
    if !smoke {
        let q_serial = sort_time(fuse_cfg(None, false), sort_total);
        let q_daemon = sort_time(fuse_cfg(Some(DAEMON), true), sort_total);
        report.value("qsort_demand_s", q_serial);
        report.value("qsort_daemon_s", q_daemon);
        serial.value("qsort_demand_s", q_serial);
        report.check(
            "guardrail: hybrid qsort does not regress under the daemon",
            q_daemon <= q_serial * 1.02,
        );
    }

    // ----- traced artifacts from the daemon run -------------------------
    let footer = traced_cluster.trace.footer(10);
    report.check(
        "traced: fuse.bg_flush spans recorded",
        footer.top_spans.iter().any(|s| s.name == "fuse.bg_flush")
            || traced_cluster
                .trace
                .spans()
                .iter()
                .any(|s| s.name == "fuse.bg_flush"),
    );
    let text = traced_cluster.trace.chrome_trace();
    let valid = validate_chrome_trace(&text);
    report.check(
        "traced: chrome trace export validates",
        match &valid {
            Ok(summary) => summary.spans > 0,
            Err(e) => {
                eprintln!("  [trace] invalid export: {e}");
                false
            }
        },
    );
    if let Some(path) = arg_value("--trace") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &text) {
            Ok(()) => println!("  [trace] wrote {path} (load in Perfetto / chrome://tracing)"),
            Err(e) => eprintln!("  [trace] cannot write {path}: {e}"),
        }
    }
    report.obs_from(&footer);

    report.emit();
    serial.emit();
}

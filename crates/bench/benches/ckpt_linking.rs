//! §III-E / §IV-B-5 — seamless checkpointing of DRAM + NVM variables.
//!
//! The paper's checkpointing subsection is truncated in the available
//! text; the *mechanism* (§III-E) is fully specified, so this bench
//! reports our own measurements of it, flagged as reconstructed:
//!
//! * chunk **linking** makes the NVM-variable part of a checkpoint free
//!   (no data copied, no extra NVM wear) vs a naive full copy;
//! * **copy-on-write** preserves the frozen image across later writes;
//! * **incremental** checkpoints pay only for chunks dirtied since the
//!   previous one.

use bench::{header, mib, scaled_fuse, JsonReport, Table, SCALE};
use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig};
use simcore::VTime;

fn main() {
    header(
        "Checkpoint linking vs copy (reconstructed; §III-E mechanism)",
        "§IV-B-5 (text truncated)",
    );
    let cfg = JobConfig::local(1, 4, 4);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        scaled_fuse(SCALE),
    );
    let var_bytes = (32u64) << 20; // a 2 GiB variable at scale 1/64
    let dram_bytes = (4u64) << 20; // plus a 256 MiB DRAM image

    let result = run_job(&cluster, &cfg, Calibration::default(), |ctx, env| {
        if env.rank != 0 {
            env.comm.barrier(ctx, env.rank);
            return Vec::new();
        }
        let mut out: Vec<(String, f64, u64, u64)> = Vec::new();
        let store = env.client.mount().store().clone();
        let wear = |c: &cluster::Cluster| -> u64 { c.total_ssd_bytes_written() };
        let _ = wear;

        let v = env.client.ssdmalloc::<u8>(ctx, var_bytes as usize).unwrap();
        let data = vec![0x5Au8; var_bytes as usize];
        v.write_slice(ctx, 0, &data).unwrap();
        v.flush(ctx).unwrap();
        let dram_state = vec![1u8; dram_bytes as usize];

        // (a) Linked checkpoint.
        let physical_before = store.manager().physical_bytes();
        let t0 = ctx.now();
        let ck1 = env
            .client
            .ssdcheckpoint(ctx, "bench", &dram_state, &[&v])
            .unwrap();
        let linked_time = (ctx.now() - t0).as_secs_f64();
        let linked_extra = store.manager().physical_bytes() - physical_before;
        out.push((
            "linked ckpt #1".into(),
            linked_time,
            linked_extra,
            dram_bytes,
        ));

        // (b) Naive full copy (what linking avoids): stream the variable
        // into a fresh file.
        let t0 = ctx.now();
        let copy = env.client.ssdmalloc::<u8>(ctx, var_bytes as usize).unwrap();
        let mut buf = vec![0u8; var_bytes as usize];
        v.read_slice(ctx, 0, &mut buf).unwrap();
        copy.write_slice(ctx, 0, &buf).unwrap();
        copy.flush(ctx).unwrap();
        let copy_time = (ctx.now() - t0).as_secs_f64();
        out.push(("naive full copy".into(), copy_time, var_bytes, dram_bytes));
        env.client.ssdfree(ctx, copy).unwrap();

        // (c) Dirty 10% of the variable, take an incremental checkpoint.
        let tenth = (var_bytes / 10) as usize;
        v.write_slice(ctx, 0, &vec![0xA5u8; tenth]).unwrap();
        v.flush(ctx).unwrap(); // COW clones ~10% of the chunks
        let physical_mid = store.manager().physical_bytes();
        let t0 = ctx.now();
        let _ck2 = env
            .client
            .ssdcheckpoint(ctx, "bench", &dram_state, &[&v])
            .unwrap();
        let incr_time = (ctx.now() - t0).as_secs_f64();
        let incr_extra = store.manager().physical_bytes() - physical_mid;
        out.push((
            "incremental ckpt #2".into(),
            incr_time,
            incr_extra,
            dram_bytes,
        ));

        // Restores still see the frozen images.
        let r1 = env.client.restore_var::<u8>(ctx, &ck1, 0).unwrap();
        let ok = r1.get(ctx, 0).unwrap() == 0x5A && v.get(ctx, 0).unwrap() == 0xA5;
        out.push(("cow isolation ok".into(), ok as u64 as f64, 0, 0));

        env.comm.barrier(ctx, env.rank);
        out
    });

    let rows = &result.outputs[0];
    let t = Table::new(&[
        ("Operation", 20),
        ("Time (s)", 9),
        ("Extra NVM (MiB)", 16),
        ("DRAM img (MiB)", 15),
    ]);
    for (name, time, extra, dram) in rows.iter().take(3) {
        t.row(&[name.clone(), format!("{time:.3}"), mib(*extra), mib(*dram)]);
    }
    println!();
    bench::store_health("ckpt", &cluster);
    let linked = &rows[0];
    let copy = &rows[1];
    let incr = &rows[2];
    let mut report = JsonReport::new("ckpt_linking");
    report
        .config("scale", SCALE)
        .config("config", cfg.label())
        .config("var_bytes", var_bytes)
        .config("dram_bytes", dram_bytes);
    report
        .value("linked_ckpt_s", linked.1)
        .value("naive_copy_s", copy.1)
        .value("incremental_ckpt_s", incr.1)
        .counter("linked_extra_nvm_bytes", linked.2)
        .counter("incremental_extra_nvm_bytes", incr.2);
    // Extra physical bytes must be the DRAM image alone, chunk-rounded.
    let chunk = 256 * 1024u64;
    report.check(
        "linking adds zero NVM bytes for the variable (only the DRAM image)",
        linked.2 == linked.3.div_ceil(chunk) * chunk,
    );
    report.check(
        "linked checkpoint is much faster than a full copy",
        linked.1 * 3.0 < copy.1,
    );
    report.check(
        "incremental checkpoint adds no new chunks beyond the DRAM image",
        incr.2 <= linked.2,
    );
    report.check(
        "copy-on-write keeps the frozen image intact",
        rows[3].1 == 1.0,
    );
    report.counters_from(&cluster).health_from(&cluster).emit();
    let vt = VTime::ZERO;
    let _ = vt;
}

//! High-fan-in placement traffic: serial manager vs. sharded manager
//! (DESIGN.md §12) — the ISSUE 6 tentpole experiment.
//!
//! Hundreds of client ranks slam the placement manager at once: a
//! barrier-synchronized per-rank write burst (one manager write RPC per
//! flushed chunk) followed by a hot read phase whose first pass resolves
//! every chunk through the manager and whose second pass rides the
//! lease-backed `LocationCache`. The serial manager (`shards=0`) charges
//! no CPU queueing — the pre-sharding cost model — while `shards>=1` puts
//! a FIFO CPU in front of every shard rank.
//!
//! Expected shape: makespan stays roughly flat going serial → 1 shard
//! (same node, same transfers; the only new cost is honest queueing),
//! and the RPC p99 collapses near-linearly at 4 and 8 shards (~2.4x and
//! ~4.3x at this seed — the haircut vs. ideal is instantaneous hash
//! imbalance idling underloaded shards mid-burst). Client-visible bytes
//! are identical at every shard count.
//!
//! Run with `-- --smoke` for the CI-sized variant: a strictly serial
//! single-rank workload run against both managers, whose virtual times,
//! outputs and counters must be *bit-identical* (scripts/check.sh diffs
//! the emitted serial JSON against a committed expectation).

use bench::{check, header, secs, store_for, store_health, JsonReport, Table, SCALE};
use cluster::{run_job, Calibration, Cluster, ClusterSpec, JobConfig, JobEnv};
use fusemm::FuseConfig;
use simcore::{ProcCtx, VTime};

/// u64 elements per 256 KiB chunk.
const CHUNK_ELEMS: usize = 32 * 1024;
/// Chunks each rank writes and re-reads.
const CHUNKS_PER_RANK: usize = 8;

/// A small mount cache (2 chunks, no read-ahead): per-rank working sets
/// thrash it, so the read phase actually reaches the store and exercises
/// placement resolution instead of the node-local page cache. The
/// pipelined data path is on — that is the path that resolves placement
/// through the (lease-backed) `LocationCache`.
fn fuse() -> FuseConfig {
    FuseConfig {
        cache_bytes: 2 * 256 * 1024,
        read_ahead_chunks: 0,
        pipelined_io: true,
        ..FuseConfig::default()
    }
}

/// The job's store configuration: the shard count from the job, plus a
/// heavier per-op manager CPU (50 us vs the default 10 us) so the
/// placement manager — not the SSDs — is the saturated resource during
/// the bursts. That is the regime the sharded manager exists for.
fn store(cfg: &JobConfig) -> chunkstore::StoreConfig {
    chunkstore::StoreConfig {
        mgr_cpu: VTime::from_micros(50),
        ..store_for(cfg)
    }
}

/// The per-rank workload, shared by the sweep and the smoke run.
fn fan_in_body(ctx: &mut ProcCtx, env: &JobEnv) -> u64 {
    // Stagger the namespace ops (create/fallocate/open are root-shard
    // traffic by design): the fan-in under test is slot-addressed
    // placement traffic, not an allocation storm.
    ctx.advance(VTime::from_micros(200 * env.rank as u64));
    let v = env
        .client
        .ssdmalloc_shared::<u64>(
            ctx,
            &format!("r{}", env.rank),
            CHUNKS_PER_RANK * CHUNK_ELEMS,
        )
        .unwrap();
    env.comm.barrier(ctx, env.rank);
    // Synchronized write burst: every rank dirties one chunk at a time
    // and flushes, so each flush is one manager write RPC — all ranks at
    // once, straight into the owning shard's FIFO.
    for c in 0..CHUNKS_PER_RANK {
        v.set(ctx, c * CHUNK_ELEMS, (env.rank + c) as u64).unwrap();
        v.flush(ctx).unwrap();
    }
    env.comm.barrier(ctx, env.rank);
    // Hot read phase, two passes over the same chunks: pass 1 resolves
    // placement through the manager, pass 2 re-fetches evicted chunks
    // through the leased LocationCache without a manager round-trip.
    let mut sum = 0u64;
    for pass in 0..2 {
        for c in 0..CHUNKS_PER_RANK {
            sum += v.get(ctx, c * CHUNK_ELEMS + pass * 512).unwrap();
        }
    }
    // A compute tail (~0.5 virtual s) so the metadata bursts sit inside a
    // realistically compute-heavy job: manager queueing then shows up as
    // RPC-latency spikes, not as a wholesale makespan blowup.
    env.compute(ctx, 1.2e9);
    sum
}

struct SweepRow {
    label: String,
    shards: usize,
    outputs: Vec<u64>,
    makespan: VTime,
    p50_us: f64,
    p99_us: f64,
    mgr_rpcs: u64,
    loc_hits: u64,
    lease_grants: u64,
    lease_renewals: u64,
    net_bytes: u64,
}

/// One traced run of the 256-rank fan-in job at a given shard count
/// (0 = the serial manager).
fn sweep_run(shards: usize) -> SweepRow {
    // The fan-in testbed: HAL's interconnect and SSDs, but denser client
    // nodes (16 ranks per node × 16 nodes = 256 ranks) — the regime the
    // paper's extreme-scale argument is about.
    let mut spec = ClusterSpec::hal().scaled(SCALE);
    spec.cores_per_node = 16;
    let cfg = JobConfig::local(16, 16, 16).with_manager_shards(shards);
    let cluster = Cluster::with_obs(spec, &cfg.benefactor_nodes(), fuse(), store(&cfg));
    let result = run_job(&cluster, &cfg, Calibration::default(), fan_in_body);
    let footer = cluster.trace.footer(10);
    let (p50_us, p99_us) = footer
        .hist("lat.store.mgr_rpc")
        .map(|h| (h.p50_ns as f64 / 1e3, h.p99_ns as f64 / 1e3))
        .unwrap_or((0.0, 0.0));
    store_health(&cfg.label(), &cluster);
    let s = &cluster.stats;
    let makespan = result.makespan();
    SweepRow {
        label: cfg.label(),
        shards,
        outputs: result.outputs,
        makespan,
        p50_us,
        p99_us,
        mgr_rpcs: s.get("store.mgr_rpcs"),
        loc_hits: s.get("store.loc_cache_hits"),
        lease_grants: s.get("store.lease_grants"),
        lease_renewals: s.get("store.lease_renewals"),
        net_bytes: s.get("net.bytes"),
    }
}

/// Counters that must agree exactly between the serial manager and a
/// single co-located shard on a strictly serial workload.
const SMOKE_COUNTERS: [&str; 9] = [
    "store.mgr_rpcs",
    "store.mgr_rpc_fetch",
    "store.mgr_rpc_write",
    "store.mgr_rpc_place",
    "store.loc_cache_hits",
    "store.loc_cache_misses",
    "store.chunk_fetches",
    "net.messages",
    "net.bytes",
];

/// The CI-sized serial workload: one rank, one benefactor, one (or zero)
/// shards — no concurrent RPCs, so `shards=1` must be bit-identical.
fn smoke_run(shards: usize) -> (Vec<u64>, VTime, Vec<u64>, u64) {
    let cfg = JobConfig::local(1, 1, 1).with_manager_shards(shards);
    let cluster = Cluster::with_configs(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        fuse(),
        store(&cfg),
    );
    let result = run_job(&cluster, &cfg, Calibration::default(), fan_in_body);
    let counters = SMOKE_COUNTERS
        .iter()
        .map(|k| cluster.stats.get(k))
        .collect();
    // host-speed volume: the co-located smoke moves no *network* bytes,
    // so count the store's client-facing payload instead
    let vol =
        cluster.stats.get("store.bytes_to_clients") + cluster.stats.get("store.bytes_from_clients");
    let makespan = result.makespan();
    (result.outputs, makespan, counters, vol)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "Fan-in placement traffic: serial vs sharded manager with leases",
        "ISSUE 6 tentpole (no paper counterpart)",
    );

    // ----- serial bit-identity (always runs; this is the CI gate) -------
    let (out0, span0, counters0, vol0) = smoke_run(0);
    let (out1, span1, counters1, vol1) = smoke_run(1);
    let identical = out0 == out1 && span0 == span1 && counters0 == counters1;

    let mut serial = JsonReport::new("fan_in_serial");
    serial.host_bytes(vol0 + vol1); // client-facing payload, both runs
    serial
        .config("scale", SCALE)
        .config("ranks", 1usize)
        .config("chunks_per_rank", CHUNKS_PER_RANK);
    serial.time("serial_makespan_s", span0);
    serial.value("serial_sum", out0.iter().sum::<u64>());
    for (k, v) in SMOKE_COUNTERS.iter().zip(&counters0) {
        serial.counter(k, *v);
    }
    serial.check("shards=1 bit-identical to the serial manager", identical);
    serial.check(
        "leased hot path hit the location cache",
        counters0[4] >= 1, // store.loc_cache_hits
    );

    if smoke {
        println!("  [smoke] serial bit-identity gate only (1 rank, 1 benefactor)\n");
        let mut report = JsonReport::new("fan_in");
        report.host_bytes(vol0 + vol1);
        report
            .config("smoke", true)
            .config("scale", SCALE)
            .config("chunks_per_rank", CHUNKS_PER_RANK);
        report.time("serial_makespan_s", span0);
        report.check("shards=1 bit-identical to the serial manager", identical);
        report.emit();
        serial.emit();
        return;
    }

    // ----- the 256-rank sweep -------------------------------------------
    println!("  256 ranks, {CHUNKS_PER_RANK} chunks/rank, barrier-synchronized bursts\n");
    let rows: Vec<SweepRow> = [0usize, 1, 2, 4, 8].iter().map(|&s| sweep_run(s)).collect();
    println!();

    let t = Table::new(&[
        ("Config", 20),
        ("Makespan (s)", 13),
        ("RPC p50 (us)", 13),
        ("RPC p99 (us)", 13),
        ("Mgr RPCs", 9),
        ("LocHits", 8),
        ("Leases", 7),
        ("Renewals", 9),
    ]);
    for r in &rows {
        t.row(&[
            r.label.clone(),
            secs(r.makespan),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            r.mgr_rpcs.to_string(),
            r.loc_hits.to_string(),
            r.lease_grants.to_string(),
            r.lease_renewals.to_string(),
        ]);
    }
    println!();

    let mut report = JsonReport::new("fan_in");
    report.host_bytes(rows.iter().map(|r| r.net_bytes).sum::<u64>());
    report
        .config("smoke", false)
        .config("scale", SCALE)
        .config("ranks", 256usize)
        .config("chunks_per_rank", CHUNKS_PER_RANK)
        .config("shard_counts", "0,1,2,4,8");
    for r in &rows {
        let key = if r.shards == 0 {
            "serial".to_string()
        } else {
            format!("s{}", r.shards)
        };
        report.time(&format!("{key}_makespan_s"), r.makespan);
        report.value(&format!("{key}_rpc_p50_us"), r.p50_us);
        report.value(&format!("{key}_rpc_p99_us"), r.p99_us);
        report.counter(&format!("{key}_mgr_rpcs"), r.mgr_rpcs);
        report.counter(&format!("{key}_loc_cache_hits"), r.loc_hits);
        report.counter(&format!("{key}_lease_grants"), r.lease_grants);
    }

    let by = |s: usize| rows.iter().find(|r| r.shards == s).unwrap();
    let (legacy, s1, s2, s4, s8) = (by(0), by(1), by(2), by(4), by(8));
    report.check(
        "client-visible bytes identical at every shard count",
        rows.iter().all(|r| r.outputs == legacy.outputs),
    );
    report.check(
        "serial -> 1 shard stays ~flat: makespan within 15% (queueing only)",
        s1.makespan.as_secs_f64() <= legacy.makespan.as_secs_f64() * 1.15,
    );
    report.check(
        "makespan monotone non-increasing with shard count",
        s2.makespan <= s1.makespan && s4.makespan <= s2.makespan && s8.makespan <= s4.makespan,
    );
    // Tail-latency scaling. The burst is closed-loop (each rank keeps at
    // most a fetch and an overlapped write-back in flight), so the p99 is
    // the peak shard backlog. Hashing spreads the keys but cannot balance
    // *instantaneous* load: a shard that falls behind keeps its queue
    // while underloaded shards idle, so the measured tail improvement is
    // near-linear with a predictable haircut (deterministic at this seed:
    // ~1.5x at 2 shards, ~2.4x at 4, ~4.3x at 8). Thresholds sit just
    // under measured so a real routing or lease regression trips them.
    report.check(
        "RPC p99 improves near-linearly at 4 shards (>= 2.2x vs 1 shard)",
        s4.p99_us > 0.0 && s1.p99_us / s4.p99_us >= 2.2,
    );
    report.check(
        "RPC p99 improves near-linearly at 8 shards (>= 4.0x vs 1 shard)",
        s8.p99_us > 0.0 && s1.p99_us / s8.p99_us >= 4.0,
    );
    report.check(
        "lease delegation eliminated manager round-trips (loc hits > 0)",
        rows.iter()
            .filter(|r| r.shards >= 1)
            .all(|r| r.loc_hits > 0),
    );
    report.check(
        "every sharded run granted leases",
        rows.iter()
            .filter(|r| r.shards >= 1)
            .all(|r| r.lease_grants > 0),
    );
    check(
        "smoke serial gate also passed inside the full run",
        identical,
    );

    report.emit();
    serial.emit();
}

//! Fig. 6 — matrix multiply with 8 GB matrices: a problem larger than any
//! node's physical memory (3 × 8 GB working set vs 8 GB/node).
//!
//! Everything here runs at capacity scale 1/256 so both the 2 GB
//! reference problem and the 8 GB problem fit the host: node DRAM scales
//! to 32 MiB and the matrices to 8 MiB (2 GB) and 32 MiB (8 GB). The
//! DRAM-only placement is *infeasible* for the 8 GB problem — the very
//! point of the figure — while every NVMalloc configuration completes.
//!
//! Paper: the computation should grow 8–16× from 2 GB to 8 GB and grows
//! ~9× in their measurement; NVMalloc "scales well for larger sizes".

use bench::{header, secs, JsonReport, Table};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, BPlacement, MmConfig};

const SCALE: u64 = 256;
const N_2GB: usize = 1024;
const N_8GB: usize = 2048;

fn cluster_for(cfg: &JobConfig) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: (64 * 1024 * 1024 / SCALE).max(512 * 1024),
            ..FuseConfig::default()
        },
    )
}

fn main() {
    header("Fig. 6: MM with 8 GB matrices (scale 1/256)", "Fig. 6");

    // The 8 GB problem cannot run DRAM-only at all.
    let dram_cfg = JobConfig::dram_only(1, 16);
    let infeasible = run_mm(
        &cluster_for(&dram_cfg),
        &dram_cfg,
        &MmConfig {
            b_place: BPlacement::Dram,
            verify: false,
            ..MmConfig::paper_8gb(N_8GB)
        },
    );
    match &infeasible {
        Err(e) => println!("DRAM-only 8 GB: INFEASIBLE ({e})\n"),
        Ok(_) => println!("DRAM-only 8 GB: unexpectedly feasible!\n"),
    }

    // 2 GB reference at the same configuration, for the growth factor.
    let ref_cfg = JobConfig::local(8, 16, 16);
    let r2 = run_mm(
        &cluster_for(&ref_cfg),
        &ref_cfg,
        &MmConfig::paper_2gb(N_2GB),
    )
    .unwrap();
    println!(
        "2 GB reference {}: computing {}\n",
        r2.label,
        secs(r2.stages.computing)
    );

    let t = Table::new(&[
        ("Config (8 GB)", 15),
        ("Input&Split-A", 14),
        ("Input-B", 9),
        ("Broadcast-B", 12),
        ("Computing", 10),
        ("Collect&Out-C", 14),
        ("Total", 9),
    ]);
    let mut report = JsonReport::new("fig6_mm_8gb");
    report
        .config("scale", SCALE)
        .config("n_2gb", N_2GB)
        .config("n_8gb", N_8GB)
        .value("ref_2gb_computing_s", r2.stages.computing);
    let mut computing = Vec::new();
    let mut last_cluster = None;
    for cfg in [
        JobConfig::local(8, 16, 16),
        JobConfig::local(8, 8, 8),
        JobConfig::remote(8, 8, 8),
        JobConfig::remote(8, 8, 4),
    ] {
        let cluster = cluster_for(&cfg);
        let r = run_mm(&cluster, &cfg, &MmConfig::paper_8gb(N_8GB)).unwrap();
        bench::store_health(&r.label, &cluster);
        t.row(&[
            r.label.clone(),
            secs(r.stages.input_split_a),
            secs(r.stages.input_b),
            secs(r.stages.broadcast_b),
            secs(r.stages.computing),
            secs(r.stages.collect_output_c),
            secs(r.stages.total()),
        ]);
        computing.push(r.stages.computing.as_secs_f64());
        report.value(&format!("computing_s_{}", r.label), r.stages.computing);
        last_cluster = Some(cluster);
    }
    println!();
    let factor = computing[0] / r2.stages.computing.as_secs_f64();
    println!(
        "computing growth 2 GB → 8 GB at L-SSD(8:16:16): {factor:.1}x (paper: ~9x, naive 16x)"
    );
    report.value("growth_factor", factor);
    report.check(
        "DRAM-only placement is infeasible for the 8 GB problem",
        infeasible.is_err(),
    );
    report.check(
        "computing grows by 8-16x (paper measured ~9x)",
        factor > 6.0 && factor < 18.0,
    );
    report.check(
        "all NVMalloc configurations complete a problem larger than physical memory",
        computing.iter().all(|c| *c > 0.0),
    );
    let cluster = last_cluster.expect("configs ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! Fig. 5 — computing time, row-major vs column-major access to B.
//!
//! Column-major traversal of the row-major B defeats both the chunk
//! cache and DRAM caching; the paper shows it far slower everywhere,
//! degrading further as SSD resources shrink (L→R, fewer benefactors),
//! while row-major stays stable.

use bench::{header, secs, JsonReport, Table, SCALE};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, AccessOrder, BPlacement, MmConfig};

const N: usize = 2048;

fn main() {
    header(
        "Fig. 5: MM computing time, row- vs column-major access to B",
        "Fig. 5",
    );
    let t = Table::new(&[
        ("Config", 15),
        ("Row-major", 10),
        ("Col-major", 10),
        ("Col/Row", 8),
    ]);
    let configs: Vec<(JobConfig, BPlacement)> = vec![
        (JobConfig::dram_only(2, 16), BPlacement::Dram),
        (JobConfig::local(2, 16, 16), BPlacement::NvmShared),
        (JobConfig::local(8, 16, 16), BPlacement::NvmShared),
        (JobConfig::local(8, 8, 8), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 8), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 4), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 2), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 1), BPlacement::NvmShared),
    ];
    let mut report = JsonReport::new("fig5_mm_access_pattern");
    report.config("scale", SCALE).config("n", N);
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    let mut last_cluster = None;
    for (cfg, place) in configs {
        let mut comp = [0.0f64; 2];
        for (slot, order) in [AccessOrder::RowMajor, AccessOrder::ColMajor]
            .into_iter()
            .enumerate()
        {
            let cluster = Cluster::with_fuse(
                ClusterSpec::hal().scaled(SCALE),
                &cfg.benefactor_nodes(),
                FuseConfig {
                    cache_bytes: 4 * 1024 * 1024,
                    ..FuseConfig::default()
                },
            );
            let r = run_mm(
                &cluster,
                &cfg,
                &MmConfig {
                    order,
                    b_place: place,
                    ..MmConfig::paper_2gb(N)
                },
            )
            .unwrap();
            comp[slot] = r.stages.computing.as_secs_f64();
            bench::store_health(&format!("{} {order:?}", cfg.label()), &cluster);
            report.value(
                &format!("computing_s_{}_{order:?}", cfg.label()),
                comp[slot],
            );
            last_cluster = Some(cluster);
        }
        t.row(&[
            cfg.label(),
            format!("{:.3}", comp[0]),
            format!("{:.3}", comp[1]),
            format!("{:.2}x", comp[1] / comp[0]),
        ]);
        ratios.push(comp[1] / comp[0]);
        rows.push(comp[0]);
        cols.push(comp[1]);
    }
    println!();
    let _ = secs; // table uses explicit formatting
    report.check(
        "column-major is slower everywhere",
        ratios.iter().all(|r| *r > 1.0),
    );
    report.check(
        "the row/col gap is larger on NVM than on DRAM (paper: 'much more pronounced')",
        ratios[2..].iter().all(|r| *r > ratios[0]),
    );
    report.check(
        "column-major degrades as benefactors shrink (8→1), row-major stays stable",
        cols[7] > cols[4] * 1.02 && (rows[7] / rows[4] - 1.0).abs() < 0.10,
    );
    let cluster = last_cluster.expect("configs ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

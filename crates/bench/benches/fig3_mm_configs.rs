//! Fig. 3 — matrix-multiply runtime breakdown, 2 GB/matrix (scaled),
//! row-major access, shared mmap file for B, across the paper's
//! DRAM/L-SSD/R-SSD `(x:y:z)` configurations.

use bench::{hal_cluster, header, secs, JsonReport, Table, SCALE};
use cluster::JobConfig;
use workloads::matmul::{run_mm, BPlacement, MmConfig, MmReport};

pub const N: usize = 2048;

fn configs() -> Vec<(JobConfig, BPlacement)> {
    vec![
        (JobConfig::dram_only(2, 16), BPlacement::Dram),
        (JobConfig::local(2, 16, 16), BPlacement::NvmShared),
        (JobConfig::local(8, 16, 16), BPlacement::NvmShared),
        (JobConfig::local(8, 8, 8), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 8), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 4), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 2), BPlacement::NvmShared),
        (JobConfig::remote(8, 8, 1), BPlacement::NvmShared),
    ]
}

fn run_one(cfg: &JobConfig, place: BPlacement) -> (MmReport, cluster::Cluster) {
    let cluster = hal_cluster(cfg);
    let mm = MmConfig {
        b_place: place,
        ..MmConfig::paper_2gb(N)
    };
    let r = run_mm(&cluster, cfg, &mm).expect("feasible configuration");
    bench::store_health(&r.label, &cluster);
    (r, cluster)
}

fn main() {
    header(
        "Fig. 3: MM runtime (row-major, 2 GB/matrix, shared mmap file for B)",
        "Fig. 3",
    );
    let t = Table::new(&[
        ("Config", 15),
        ("Input&Split-A", 14),
        ("Input-B", 9),
        ("Broadcast-B", 12),
        ("Computing", 10),
        ("Collect&Out-C", 14),
        ("Total", 9),
    ]);
    let mut report = JsonReport::new("fig3_mm_configs");
    report.config("scale", SCALE).config("n", N);
    let mut reports = Vec::new();
    let mut last_cluster = None;
    for (cfg, place) in configs() {
        let (r, cluster) = run_one(&cfg, place);
        report.value(&format!("total_s_{}", r.label), r.stages.total());
        last_cluster = Some(cluster);
        t.row(&[
            r.label.clone(),
            secs(r.stages.input_split_a),
            secs(r.stages.input_b),
            secs(r.stages.broadcast_b),
            secs(r.stages.computing),
            secs(r.stages.collect_output_c),
            secs(r.stages.total()),
        ]);
        reports.push(r);
    }
    println!();

    let total = |i: usize| reports[i].stages.total().as_secs_f64();
    let dram = total(0);
    println!(
        "L-SSD(2:16:16) vs DRAM(2:16:0): {:+.2}% (paper: -2.19%)",
        (1.0 - total(1) / dram) * 100.0
    );
    println!(
        "L-SSD(8:16:16) vs DRAM(2:16:0): {:+.2}% (paper: +53.75%)",
        (1.0 - total(2) / dram) * 100.0
    );
    println!(
        "R-SSD(8:8:8)  vs L-SSD(8:8:8):  {:+.2}% (paper: -1.42%)",
        (1.0 - total(4) / total(3)) * 100.0
    );
    println!(
        "R-SSD(8:8:8)  vs DRAM(2:16:0):  {:+.2}% (paper: +34.73%)",
        (1.0 - total(4) / dram) * 100.0
    );
    println!(
        "R-SSD(8:8:1)  vs DRAM(2:16:0):  {:+.2}% (paper: +32.47%)",
        (1.0 - total(7) / dram) * 100.0
    );
    println!();

    report.check(
        "L-SSD(2:16:16) within a few % of DRAM-only (paper: 2.19% worse)",
        (total(1) / dram - 1.0).abs() < 0.10,
    );
    report.check(
        "L-SSD(8:16:16) a large improvement over DRAM(2:16:0) (paper: 53.75%)",
        1.0 - total(2) / dram > 0.35,
    );
    report.check(
        "remote SSDs add little overhead vs local (paper: 1.42%)",
        (total(4) / total(3) - 1.0).abs() < 0.05,
    );
    report.check(
        "fewer benefactors grow mainly the broadcast stage",
        reports[7].stages.broadcast_b > reports[4].stages.broadcast_b
            && (reports[7].stages.computing.as_secs_f64()
                / reports[4].stages.computing.as_secs_f64()
                - 1.0)
                .abs()
                < 0.25,
    );
    report.check(
        "R-SSD(8:8:1): one $589 SSD per 8 nodes still beats DRAM-only on half the nodes",
        total(7) < dram,
    );
    let cluster = last_cluster.expect("configs ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

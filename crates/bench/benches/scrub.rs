//! End-to-end chunk integrity under bit rot (DESIGN.md §11) — verified
//! reads, replica repair and the background scrub daemon.
//!
//! Not a paper figure: the paper's SSDs are assumed faithful. This bench
//! answers what that assumption costs to drop. Four measurements:
//!
//! * zero-wrong-reads — STREAM TRIAD at paper scale with one benefactor's
//!   chunks bit-rotted mid-run: at k=2 every read fails over to the
//!   intact replica and the run's self-verification passes; at k=1 the
//!   store returns a deterministic `ChunkCorrupt` error, never bad bytes;
//! * time-to-repair — a rotted persistent dataset scrubbed clean in the
//!   background, measured in virtual time and scrub passes;
//! * quarantine — a benefactor whose media corrupts every write crosses
//!   the scrub threshold and stops receiving new placements;
//! * overhead ablation — checksums and the scrub daemon on a healthy
//!   store cost the foreground clock nothing (exact equality), and
//!   traced runs stay bit-identical to untraced ones.
//!
//! Run with `-- --smoke` for the CI-sized variant; scripts/check.sh diffs
//! its knobs-off JSON against a committed expectation, pinning that the
//! integrity machinery changes nothing while switched off.

use bench::{header, scaled_fuse, secs, store_health, stream_fuse, JsonReport, Table, SCALE};
use chunkstore::{
    BenefactorId, PlacementPolicy, ScrubConfig, Slot, StoreConfig, StoreError, StripeSpec,
};
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use faults::FaultPlanBuilder;
use simcore::VTime;
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

/// The benefactor whose SSD rots (all of its chunks, so failover is
/// exercised on every read that lands there).
const ROT: usize = 0;
const ROT_RATE_BP: u32 = 10_000;

/// The daemon pacing used for the STREAM runs: an 8-chunk pass every
/// 250 ms of idle time — a few percent of one SSD's bandwidth.
fn stream_scrub() -> ScrubConfig {
    ScrubConfig {
        interval: VTime::from_millis(250),
        chunks_per_pass: 8,
        ..ScrubConfig::default()
    }
}

struct StreamOutcome {
    bw: f64,
    verified: bool,
    time: VTime,
    cluster: Cluster,
}

/// One STREAM TRIAD run, all arrays on the store. `rot_at` injects the
/// bit-rot plan; `scrub` attaches the daemon from t=0.
fn stream_once(
    replicas: usize,
    verify: bool,
    rot_at: Option<VTime>,
    scrub: bool,
    traced: bool,
    elems: usize,
) -> StreamOutcome {
    let cfg = JobConfig::remote(8, 1, 2).with_replicas(replicas);
    let store_cfg = StoreConfig {
        verify_reads: verify,
        ..StoreConfig::default()
    };
    let spec = ClusterSpec::hal().scaled(SCALE);
    let cluster = if traced {
        Cluster::with_obs(
            spec,
            &cfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
            store_cfg,
        )
    } else {
        Cluster::with_configs(
            spec,
            &cfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
            store_cfg,
        )
    };
    if let Some(at) = rot_at {
        cluster.attach_faults(
            FaultPlanBuilder::new(4242)
                .bit_rot(at, ROT, ROT_RATE_BP)
                .build(),
        );
    }
    if scrub {
        cluster.store.attach_scrub(stream_scrub(), VTime::ZERO);
    }
    let scfg = StreamConfig::new(elems).place(ArrayPlace::Nvm, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let r = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    StreamOutcome {
        bw: r.bandwidth_mb_s,
        verified: r.verified,
        time: r.time,
        cluster,
    }
}

/// k=1 has no intact replica to fail over to: show the documented
/// deterministic refusal instead of a wrong-data read.
fn demonstrate_k1_corruption(report: &mut JsonReport) {
    let run = || {
        let cfg = JobConfig::remote(8, 1, 2);
        let cluster = Cluster::with_configs(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            stream_fuse(SCALE, 8),
            StoreConfig {
                verify_reads: true,
                ..StoreConfig::default()
            },
        );
        let store = &cluster.store;
        let (t, f) = store.create_file(VTime::ZERO, 0, "/unreplicated").unwrap();
        let mut t = store
            .fallocate(
                t,
                0,
                f,
                8 * 256 * 1024,
                StripeSpec::all(),
                PlacementPolicy::RoundRobin,
            )
            .unwrap();
        let page = vec![1u8; 4096];
        for idx in 0..8 {
            t = store.write_pages(t, 0, f, idx, &[(0, &page)]).unwrap();
        }
        cluster.attach_faults(
            FaultPlanBuilder::new(4242)
                .bit_rot(t, ROT, ROT_RATE_BP)
                .build(),
        );
        // The slot whose sole copy lives on the rotted benefactor.
        let idx = {
            let mgr = store.manager();
            let meta = mgr.file(f).unwrap();
            meta.slots
                .iter()
                .position(|s| match s {
                    Slot::Chunk(c) => mgr.chunk_homes(*c).unwrap()[0] == BenefactorId(ROT),
                    _ => false,
                })
                .expect("round-robin places a chunk on every benefactor")
        };
        let err = store
            .fetch_chunk(t + VTime::from_micros(1), 0, f, idx)
            .unwrap_err();
        (err, cluster.stats.get("store.crc_mismatches"))
    };
    let (err, mismatches) = run();
    let (err2, mismatches2) = run();
    println!("  k=1 after bit rot: read fails with `{err}` (no silent corruption)");
    report.check(
        "k=1 rot surfaces as ChunkCorrupt naming the bad copy",
        matches!(err, StoreError::ChunkCorrupt { benefactor, .. } if benefactor == BenefactorId(ROT)),
    );
    report.check(
        "k=1 rot outcome is seed-deterministic",
        err == err2 && mismatches == mismatches2 && mismatches > 0,
    );
}

/// Rot a persistent k=2 dataset, then let the scrub daemon clean it up:
/// virtual time from injection to the last repaired copy.
fn measure_scrub_repair(report: &mut JsonReport) {
    let cfg = JobConfig::remote(8, 1, 2);
    let cluster = Cluster::with_configs(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        stream_fuse(SCALE, 8),
        StoreConfig {
            verify_reads: true,
            ..StoreConfig::default()
        },
    );
    let store = &cluster.store;
    let size = 16u64 * 1024 * 1024;
    let chunk = 256 * 1024usize;
    let (t, f) = store.create_file(VTime::ZERO, 0, "/dataset").unwrap();
    let mut t = store
        .fallocate(
            t,
            0,
            f,
            size,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let page = vec![7u8; 4096];
    let pages_per_chunk = chunk / 4096;
    for c in 0..(size as usize / chunk) {
        let writes: Vec<(u64, &[u8])> = (0..pages_per_chunk)
            .map(|p| (p as u64 * 4096, page.as_slice()))
            .collect();
        t = store.write_pages(t, 0, f, c, &writes).unwrap();
    }
    let scrub = ScrubConfig {
        interval: VTime::from_millis(1),
        chunks_per_pass: 64,
        ..ScrubConfig::default()
    };
    cluster.attach_faults(
        FaultPlanBuilder::new(7)
            .bit_rot(t, ROT, ROT_RATE_BP)
            .build(),
    );
    // Apply the rot and take the "before" census, *then* start the
    // daemon — attaching first would let the kick inside this poll repair
    // everything before the census.
    store.poll_faults(t + VTime::from_micros(1));
    let corrupt0 = store.count_corrupt_copies();
    store.attach_scrub(scrub, t);
    let mut now = t;
    let mut polls = 0u64;
    while store.count_corrupt_copies() > 0 && polls < 100_000 {
        now += scrub.interval;
        store.poll_faults(now);
        polls += 1;
    }
    let passes = cluster.stats.get("store.scrub_passes");
    let repairs = cluster.stats.get("store.scrub_repairs");
    println!(
        "  scrub over {} ({corrupt0} rotted copies): clean after {}s of background \
         scrubbing ({passes} passes, {repairs} repairs) — foreground clock untouched",
        simcore::bytes::human(size),
        secs(now - t),
    );
    store_health("after scrub", &cluster);
    report
        .value("scrub_dataset_bytes", size as f64)
        .value("scrub_rotted_copies", corrupt0 as f64)
        .value("scrub_time_to_repair_s", now - t)
        .counter("scrub_passes", passes)
        .counter("scrub_repairs", repairs);
    report.check(
        "scrub daemon repairs every rotted copy from replicas",
        corrupt0 > 0
            && store.count_corrupt_copies() == 0
            && repairs >= corrupt0 as u64
            && store.manager().under_replicated().is_empty(),
    );
}

/// A benefactor whose media corrupts every write it takes: the scrub
/// daemon quarantines it and placement stops choosing it.
fn demonstrate_quarantine(report: &mut JsonReport) {
    // 8 benefactors so placement has somewhere else to go once the
    // corrupter is fenced off.
    let cfg = JobConfig::local(8, 8, 8);
    let cluster = Cluster::with_configs(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        scaled_fuse(SCALE),
        StoreConfig {
            verify_reads: true,
            ..StoreConfig::default()
        },
    );
    let store = &cluster.store;
    cluster.attach_faults(
        FaultPlanBuilder::new(13)
            .corruption_rate(VTime::ZERO, ROT, 10_000)
            .build(),
    );
    let (t, f) = store.create_file(VTime::from_micros(1), 0, "/hot").unwrap();
    let mut t = store
        .fallocate(
            t,
            0,
            f,
            64 * 256 * 1024,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let page = vec![2u8; 4096];
    for idx in 0..64 {
        t = store.write_pages(t, 0, f, idx, &[(0, &page)]).unwrap();
    }
    store.attach_scrub(
        ScrubConfig {
            interval: VTime::from_millis(1),
            chunks_per_pass: 128,
            ..ScrubConfig::default()
        },
        t,
    );
    store.poll_faults(t + VTime::from_millis(1));
    let quarantined = store
        .manager()
        .benefactor(BenefactorId(ROT))
        .is_quarantined();
    println!(
        "  benefactor {ROT} (corrupts every write): quarantined={quarantined} after one \
         scrub pass; new stripes avoid it"
    );
    let (t2, g) = store
        .create_file(t + VTime::from_millis(2), 0, "/new")
        .unwrap();
    store
        .fallocate(
            t2,
            0,
            g,
            4 * 256 * 1024,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let excluded = !store
        .manager()
        .file(g)
        .unwrap()
        .stripe
        .contains(&BenefactorId(ROT));
    report
        .counter("quarantined", cluster.stats.get("store.quarantined"))
        .check(
            "scrub quarantines a persistently corrupting benefactor",
            quarantined && cluster.stats.get("store.quarantined") == 1,
        )
        .check("placement avoids the quarantined benefactor", excluded);
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    header(
        "Chunk integrity: bit rot vs checksums, replicas and the scrub daemon",
        "robustness extension (no paper figure; cf. \u{a7}III-D health tracking)",
    );
    if smoke {
        println!("  [smoke] CI-sized problem\n");
    }
    let elems = if smoke {
        1 << 20
    } else {
        ((2u64 << 30) / SCALE / 8) as usize
    };

    let mut report = JsonReport::new("scrub");
    report
        .config("smoke", smoke)
        .config("scale", SCALE)
        .config("elems", elems as u64)
        .config("rot_benefactor", ROT as u64)
        .config("rot_rate_bp", ROT_RATE_BP as u64);
    // Knobs-off sub-report: scripts/check.sh diffs this against a
    // committed expectation — checksum bookkeeping must not move a single
    // virtual nanosecond while verification and scrubbing are off.
    let mut serial = JsonReport::new("scrub_serial");
    serial.config("smoke", smoke).config("scale", SCALE);

    // ----- baselines: knobs off vs verification on (healthy store) -----
    let base_k1 = stream_once(1, false, None, false, false, elems);
    let base_k2 = stream_once(2, false, None, false, false, elems);
    serial.value("stream_k1_s", base_k1.time.as_secs_f64());
    serial.value("stream_k2_s", base_k2.time.as_secs_f64());
    let verif_k2 = stream_once(2, true, None, false, false, elems);
    let scrubbed_k2 = stream_once(2, true, None, true, false, elems);
    report
        .value("stream_k1_s", base_k1.time.as_secs_f64())
        .value("stream_k2_s", base_k2.time.as_secs_f64())
        .value("stream_k2_verify_s", verif_k2.time.as_secs_f64())
        .value("stream_k2_verify_scrub_s", scrubbed_k2.time.as_secs_f64());
    let scrub_overhead =
        100.0 * (scrubbed_k2.time.as_secs_f64() / verif_k2.time.as_secs_f64() - 1.0);
    report.value("scrub_overhead_pct", scrub_overhead);
    report.check(
        "healthy-store runs verify",
        base_k1.verified && base_k2.verified && verif_k2.verified && scrubbed_k2.verified,
    );
    report.check(
        "ablation: checksum verification is free on a clean store",
        verif_k2.time == base_k2.time,
    );
    report.check(
        "ablation: background scrubbing costs the foreground < 10%",
        scrub_overhead < 10.0,
    );

    // ----- zero wrong reads under bit rot at k=2 ------------------------
    // First without the daemon, so every rotted chunk is discovered by a
    // *foreground* verified read and must fail over; then with the
    // daemon, which races ahead of the reader and repairs in background.
    println!();
    let rot_at = base_k2.time / 3;
    let rotted = stream_once(2, true, Some(rot_at), false, false, elems);
    let s = &rotted.cluster.stats;
    let mismatches = s.get("store.crc_mismatches");
    let degraded = s.get("store.degraded_reads");
    store_health("STREAM k=2 rotted", &rotted.cluster);
    println!(
        "  bit rot on benefactor {ROT} at {}: run completes at {} \
         (fault-free {}), every read verified",
        secs(rot_at),
        secs(rotted.time),
        secs(base_k2.time),
    );
    report
        .value("stream_k2_rotted_s", rotted.time.as_secs_f64())
        .value("triad_mb_s_rotted", rotted.bw)
        .counter("rotted_crc_mismatches", mismatches)
        .counter("rotted_degraded_reads", degraded);
    report.check(
        "zero wrong reads: rotted k=2 STREAM completes and verifies",
        rotted.verified,
    );
    report.check("rot was actually hit (mismatches observed)", mismatches > 0);
    report.check(
        "rotted reads are counted as degraded",
        degraded >= mismatches,
    );
    report.check(
        "degraded run is no faster than fault-free",
        rotted.time >= base_k2.time,
    );

    let rotted_scrubbed = stream_once(2, true, Some(rot_at), true, false, elems);
    let bg_repairs = rotted_scrubbed.cluster.stats.get("store.scrub_repairs");
    store_health("STREAM k=2 rotted+scrub", &rotted_scrubbed.cluster);
    report
        .value(
            "stream_k2_rotted_scrub_s",
            rotted_scrubbed.time.as_secs_f64(),
        )
        .counter("rotted_scrub_repairs", bg_repairs);
    report.check(
        "rotted k=2 STREAM with the daemon verifies and repairs in background",
        rotted_scrubbed.verified && bg_repairs > 0,
    );

    // Determinism: the same seeded plan reproduces identical numbers, and
    // tracing must not move the clock.
    let rotted2 = stream_once(2, true, Some(rot_at), true, false, elems);
    let traced = stream_once(2, true, Some(rot_at), true, true, elems);
    report.check(
        "same seed reproduces identical virtual-time totals",
        rotted_scrubbed.time == rotted2.time
            && rotted_scrubbed.cluster.stats.get("store.crc_mismatches")
                == rotted2.cluster.stats.get("store.crc_mismatches"),
    );
    report.check(
        "traced and untraced rotted runs are bit-identical",
        traced.time == rotted_scrubbed.time,
    );
    report.check(
        "traced: store.scrub spans recorded",
        traced
            .cluster
            .trace
            .spans()
            .iter()
            .any(|sp| sp.name == "store.scrub"),
    );

    let t = Table::new(&[("Config", 22), ("Time (s)", 10), ("Outcome", 30)]);
    t.row(&["k=2 clean".into(), secs(base_k2.time), "baseline".into()]);
    t.row(&[
        "k=2 verify".into(),
        secs(verif_k2.time),
        "identical (checksums are free)".into(),
    ]);
    t.row(&[
        "k=2 verify+scrub".into(),
        secs(scrubbed_k2.time),
        format!("+{scrub_overhead:.1}% (daemon duty cycle)"),
    ]);
    t.row(&[
        "k=2 verify+rot".into(),
        secs(rotted.time),
        format!("verified, {mismatches} mismatches"),
    ]);
    t.row(&[
        "k=2 verify+scrub+rot".into(),
        secs(rotted_scrubbed.time),
        format!("verified, {bg_repairs} bg repairs"),
    ]);
    t.row(&[
        "k=1 rot".into(),
        "-".into(),
        "deterministic ChunkCorrupt".into(),
    ]);
    println!();

    // ----- time-to-repair, quarantine, k=1 ------------------------------
    measure_scrub_repair(&mut report);
    demonstrate_quarantine(&mut report);
    demonstrate_k1_corruption(&mut report);

    report.obs_from(&traced.cluster.trace.footer(10));
    report
        .counters_from(&rotted_scrubbed.cluster)
        .health_from(&rotted_scrubbed.cluster)
        .emit();
    serial.emit();
}

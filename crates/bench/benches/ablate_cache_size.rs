//! Ablation — FUSE chunk-cache size.
//!
//! The paper fixes the client cache at 64 MiB ("needs to be sufficient
//! enough to aid with bridging the granularity gap, while also not
//! consuming too much DRAM", §III-D). This sweep shows the trade-off on
//! the matrix-multiply computing stage.

use bench::{header, JsonReport, Table, SCALE};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, AccessOrder, MmConfig};

fn main() {
    header(
        "Ablation: FUSE cache size vs MM computing time",
        "§III-D design choice",
    );
    // Column-major access on the adapted 8-rank configuration (Table V's
    // setup): the pattern whose chunk re-fetches the cache exists to
    // absorb. Row-major streams are nearly cache-size-insensitive because
    // the node's processes share one sequential sweep.
    let cfg = JobConfig::local(8, 1, 1);
    let t = Table::new(&[("Cache", 8), ("Computing s", 12), ("SSD GiB", 9)]);
    let mut report = JsonReport::new("ablate_cache_size");
    report.config("scale", SCALE).config("config", cfg.label());
    let mut times = Vec::new();
    let mut last_cluster = None;
    for cache_kib in [512u64, 1024, 2048, 4096, 8192, 16384] {
        let cluster = Cluster::with_fuse(
            ClusterSpec::hal().scaled(SCALE),
            &cfg.benefactor_nodes(),
            FuseConfig {
                cache_bytes: cache_kib * 1024,
                ..FuseConfig::default()
            },
        );
        let mm = MmConfig {
            order: AccessOrder::ColMajor,
            tile: 32,
            ..MmConfig::paper_2gb(1024)
        };
        let r = run_mm(&cluster, &cfg, &mm).unwrap();
        t.row(&[
            format!("{}K", cache_kib),
            format!("{:.3}", r.stages.computing.as_secs_f64()),
            format!(
                "{:.2}",
                r.traffic.ssd_req_bytes as f64 / (1u64 << 30) as f64
            ),
        ]);
        times.push(r.stages.computing.as_secs_f64());
        report.value(
            &format!("computing_s_cache_{cache_kib}k"),
            r.stages.computing,
        );
        bench::store_health(&format!("cache {}K", cache_kib), &cluster);
        last_cluster = Some(cluster);
    }
    println!();
    report.check(
        "larger caches never hurt the computing stage",
        times.windows(2).all(|w| w[1] <= w[0] * 1.05),
    );
    report.check(
        "diminishing returns: the last doubling changes less than the first",
        (times[0] - times[1]) >= (times[4] - times[5]),
    );
    let cluster = last_cluster.expect("sweep ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

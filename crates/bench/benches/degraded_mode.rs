//! Degraded-mode evaluation: the paper's workloads run to completion
//! through a benefactor failure when chunks are replicated.
//!
//! Not a figure from the paper — the paper's §V assumes a healthy store —
//! but the natural follow-up question: what does surviving a benefactor
//! failure cost? Three measurements:
//!
//! * replication overhead — Fig-3-style MM and STREAM TRIAD at k=1 vs
//!   k=2 on a healthy store (every write ships twice);
//! * degraded operation — the same k=2 runs with a seeded fault plan
//!   killing one benefactor mid-run: the run completes, results verify,
//!   failovers are counted (k=1 fails with a clear error instead);
//! * time-to-repair — one re-replication sweep after the faulted run,
//!   restoring every chunk to target degree.

use bench::{header, secs, store_health, stream_fuse, JsonReport, Table, SCALE};
use chunkstore::{PlacementPolicy, Slot, StoreError, StripeSpec};
use cluster::{Calibration, Cluster, ClusterSpec, JobConfig};
use faults::FaultPlanBuilder;
use simcore::VTime;
use workloads::matmul::{run_mm, BPlacement, MmConfig, MmReport};
use workloads::stream::{run_stream, ArrayPlace, StreamConfig, StreamKernel};

const N: usize = 2048;
const VICTIM: usize = 3;

fn mm_cluster(cfg: &JobConfig) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        bench::scaled_fuse(SCALE),
    )
}

fn run_mm_once(replicas: usize, crash_at: Option<VTime>) -> (MmReport, Cluster) {
    let cfg = JobConfig::local(8, 8, 8).with_replicas(replicas);
    let cluster = mm_cluster(&cfg);
    if let Some(at) = crash_at {
        cluster.attach_faults(FaultPlanBuilder::new(2012).crash(at, VICTIM).build());
    }
    let mm = MmConfig {
        b_place: BPlacement::NvmShared,
        ..MmConfig::paper_2gb(N)
    };
    let r = run_mm(&cluster, &cfg, &mm).expect("feasible configuration");
    (r, cluster)
}

fn run_stream_once(replicas: usize, crash_at: Option<VTime>) -> (f64, bool, VTime, Cluster) {
    let cfg = JobConfig::remote(8, 1, 2).with_replicas(replicas);
    let cluster = Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        stream_fuse(SCALE, 8),
    );
    if let Some(at) = crash_at {
        cluster.attach_faults(FaultPlanBuilder::new(2012).crash(at, 0).build());
    }
    let elems = (2u64 << 30) / SCALE / 8;
    let scfg =
        StreamConfig::new(elems as usize).place(ArrayPlace::Nvm, ArrayPlace::Nvm, ArrayPlace::Nvm);
    let r = run_stream(
        &cluster,
        &cfg,
        Calibration::default(),
        &scfg,
        StreamKernel::Triad,
    );
    (r.bandwidth_mb_s, r.verified, r.time, cluster)
}

/// k=1 has no degraded mode: show the documented failure instead.
fn demonstrate_k1_failure(report: &mut JsonReport) {
    let cluster = mm_cluster(&JobConfig::local(8, 8, 8));
    let store = &cluster.store;
    let (t, f) = store.create_file(VTime::ZERO, 0, "/unreplicated").unwrap();
    let t = store
        .fallocate(
            t,
            0,
            f,
            256 * 1024,
            StripeSpec::all(),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let page = vec![1u8; 4096];
    let t = store.write_pages(t, 0, f, 0, &[(0, &page)]).unwrap();
    let home = {
        let mgr = store.manager();
        let meta = mgr.file(f).unwrap();
        match meta.slots[0] {
            Slot::Chunk(c) => mgr.chunk_homes(c).unwrap()[0],
            _ => unreachable!(),
        }
    };
    store.set_benefactor_alive(home, false);
    let err = store.fetch_chunk(t, 0, f, 0).unwrap_err();
    println!("  k=1 after crash of {home:?}: read fails with `{err:?}` (no silent data loss)");
    report.check(
        "k=1 reports BenefactorDown for the lost copy",
        matches!(err, StoreError::BenefactorDown(b) if b == home),
    );
}

fn main() {
    header(
        "Degraded mode: MM + STREAM through a benefactor failure",
        "fault-tolerance extension (no paper figure; cf. §III-D health tracking)",
    );
    let mut report = JsonReport::new("degraded_mode");
    report.config("scale", SCALE).config("victim", VICTIM);

    // ---- replication overhead on a healthy store --------------------------
    let (mm_k1, c1) = run_mm_once(1, None);
    store_health("MM k=1", &c1);
    let (mm_k2, c2) = run_mm_once(2, None);
    store_health("MM k=2", &c2);
    let mm_overhead =
        100.0 * (mm_k2.stages.total().as_secs_f64() / mm_k1.stages.total().as_secs_f64() - 1.0);

    let (bw_k1, ok_s1, _, cs1) = run_stream_once(1, None);
    store_health("STREAM k=1", &cs1);
    let (bw_k2, ok_s2, stream_time_k2, cs2) = run_stream_once(2, None);
    store_health("STREAM k=2", &cs2);
    let stream_overhead = 100.0 * (bw_k1 / bw_k2 - 1.0);

    let t = Table::new(&[
        ("Workload", 14),
        ("k=1", 10),
        ("k=2", 10),
        ("overhead%", 10),
    ]);
    t.row(&[
        "MM total s".into(),
        secs(mm_k1.stages.total()),
        secs(mm_k2.stages.total()),
        format!("{mm_overhead:.1}"),
    ]);
    t.row(&[
        "TRIAD MB/s".into(),
        format!("{bw_k1:.1}"),
        format!("{bw_k2:.1}"),
        format!("{stream_overhead:.1}"),
    ]);
    report
        .value("mm_total_s_k1", mm_k1.stages.total())
        .value("mm_total_s_k2", mm_k2.stages.total())
        .value("mm_overhead_pct", mm_overhead)
        .value("triad_mb_s_k1", bw_k1)
        .value("triad_mb_s_k2", bw_k2)
        .value("stream_overhead_pct", stream_overhead);
    report.check(
        "healthy-store runs verify",
        mm_k1.verified != Some(false) && ok_s1 && ok_s2,
    );
    report.check("k=2 write path costs extra (MM)", mm_overhead > 0.0);

    // ---- degraded operation: kill 1 of 8 benefactors mid-run --------------
    println!();
    let crash_at = mm_k2.stages.total() / 3;
    let (mm_f, cf) = run_mm_once(2, Some(crash_at));
    let failovers = cf.stats.get("store.failovers");
    store_health("MM k=2 faulted", &cf);
    println!(
        "  crash of benefactor {VICTIM} at {crash_at}: total {} (fault-free {}), failovers={failovers}",
        secs(mm_f.stages.total()),
        secs(mm_k2.stages.total()),
    );
    report
        .value("mm_total_s_k2_faulted", mm_f.stages.total())
        .counter("mm_faulted_failovers", failovers);
    report.check(
        "faulted k=2 MM completes and verifies",
        mm_f.verified != Some(false),
    );
    report.check("faulted k=2 MM failed over", failovers > 0);
    report.check(
        "degraded run is no faster than fault-free",
        mm_f.stages.total() >= mm_k2.stages.total(),
    );

    // Determinism: the same seeded plan reproduces identical numbers.
    let (mm_f2, cf2) = run_mm_once(2, Some(crash_at));
    report.check(
        "same seed reproduces identical virtual-time totals",
        mm_f.stages.total() == mm_f2.stages.total()
            && failovers == cf2.stats.get("store.failovers"),
    );

    let stream_crash = stream_time_k2 / 2;
    let (bw_f, ok_f, _, csf) = run_stream_once(2, Some(stream_crash));
    store_health("STREAM k=2 faulted", &csf);
    println!("  STREAM k=2 with crash at {stream_crash}: {bw_f:.1} MB/s (fault-free {bw_k2:.1})",);
    report.value("triad_mb_s_k2_faulted", bw_f);
    report.check("faulted k=2 STREAM completes and verifies", ok_f);

    // ---- time-to-repair ---------------------------------------------------
    // The MM job unlinks its files at teardown, so repair is measured on a
    // persistent dataset: a 64 MiB k=2 file, one benefactor lost.
    println!();
    measure_repair(&mut report);

    demonstrate_k1_failure(&mut report);
    report.counters_from(&cf).health_from(&cf).emit();
}

fn measure_repair(report: &mut JsonReport) {
    let cluster = mm_cluster(&JobConfig::local(8, 8, 8));
    let store = &cluster.store;
    let size = 64u64 * 1024 * 1024 / SCALE;
    let (t, f) = store.create_file(VTime::ZERO, 0, "/dataset").unwrap();
    let mut t = store
        .fallocate(
            t,
            0,
            f,
            size,
            StripeSpec::all().with_replicas(2),
            PlacementPolicy::RoundRobin,
        )
        .unwrap();
    let chunk = 256 * 1024usize;
    let page = vec![7u8; 4096];
    let pages_per_chunk = chunk / 4096;
    for c in 0..(size as usize / chunk) {
        let writes: Vec<(u64, &[u8])> = (0..pages_per_chunk)
            .map(|p| (p as u64, page.as_slice()))
            .collect();
        t = store.write_pages(t, 0, f, c, &writes).unwrap();
    }
    store.set_benefactor_alive(chunkstore::BenefactorId(3), false);
    let degraded = store.manager().under_replicated().len();
    let (t_done, repair) = store.repair_under_replicated(t);
    println!(
        "  repair sweep over {} ({degraded} degraded chunks): {} chunks ({}) \
         re-replicated in {}s — degraded window closed",
        simcore::bytes::human(size),
        repair.chunks_repaired,
        simcore::bytes::human(repair.bytes_copied),
        secs(t_done - t),
    );
    store_health("after repair", &cluster);
    report
        .value("repair_sweep_s", t_done - t)
        .counter("repair_chunks", repair.chunks_repaired);
    report.check(
        "repair restores full replica degree",
        degraded > 0
            && repair.chunks_repaired == degraded as u64
            && repair.chunks_unrepairable == 0
            && store.manager().under_replicated().is_empty(),
    );
}

//! Fig. 4 — shared vs. individual mmap files for matrix B.
//!
//! `-SSD-S` maps one per-node shared file; `-SSD-I` gives every process
//! its own copy of B on the store. The paper reports the individual mode
//! up to ~18 % slower (broadcast + computation overhead), worst with all
//! 8 cores in use, yet still far better than the DRAM-only baseline.
//!
//! Scaled to n=1024 so the individual mode's 128 B-copies fit host RAM.
//! The FUSE cache uses the per-stream floor (2 chunks per process, 4 MiB
//! per node): naive capacity scaling would leave the 8 per-process
//! streams of the individual mode less than one chunk each, a thrashing
//! regime the paper's unscaled 64 MiB cache (256 chunks) never enters.

use bench::{header, secs, JsonReport, Table, SCALE};
use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use workloads::matmul::{run_mm, BPlacement, MmConfig};

const N: usize = 2048;

fn cluster_for(cfg: &JobConfig) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(SCALE),
        &cfg.benefactor_nodes(),
        FuseConfig {
            cache_bytes: 8 * 1024 * 1024,
            ..FuseConfig::default()
        },
    )
}

fn main() {
    header(
        "Fig. 4: MM, shared vs individual mmap files for B",
        "Fig. 4",
    );
    let t = Table::new(&[
        ("Config", 17),
        ("Broadcast-B", 12),
        ("Computing", 10),
        ("Total", 9),
    ]);

    let dram_cfg = JobConfig::dram_only(2, 16);
    let dram = run_mm(
        &cluster_for(&dram_cfg),
        &dram_cfg,
        &MmConfig {
            b_place: BPlacement::Dram,
            ..MmConfig::paper_2gb(N)
        },
    )
    .unwrap();
    t.row(&[
        dram.label.clone(),
        secs(dram.stages.broadcast_b),
        secs(dram.stages.computing),
        secs(dram.stages.total()),
    ]);

    let mut report = JsonReport::new("fig4_mm_shared_vs_individual");
    report
        .config("scale", SCALE)
        .config("n", N)
        .value("dram_total_s", dram.stages.total());
    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (shared total, individual total)
    let mut worst_penalty: f64 = 0.0;
    let mut last_cluster = None;
    for cfg in [
        JobConfig::local(2, 16, 16),
        JobConfig::local(8, 16, 16),
        JobConfig::local(8, 8, 8),
        JobConfig::remote(8, 8, 8),
    ] {
        let mut totals = [0.0f64; 2];
        for (slot, (place, tag)) in [
            (BPlacement::NvmIndividual, "I"),
            (BPlacement::NvmShared, "S"),
        ]
        .into_iter()
        .enumerate()
        {
            let cluster = cluster_for(&cfg);
            let r = run_mm(
                &cluster,
                &cfg,
                &MmConfig {
                    b_place: place,
                    ..MmConfig::paper_2gb(N)
                },
            )
            .unwrap();
            totals[slot] = r.stages.total().as_secs_f64();
            t.row(&[
                format!("{}-{tag}", r.label),
                secs(r.stages.broadcast_b),
                secs(r.stages.computing),
                secs(r.stages.total()),
            ]);
            bench::store_health(&format!("{}-{tag}", r.label), &cluster);
            report.value(&format!("total_s_{}-{tag}", r.label), r.stages.total());
            last_cluster = Some(cluster);
        }
        let penalty = totals[0] / totals[1] - 1.0;
        worst_penalty = worst_penalty.max(penalty);
        println!("    -> individual is {:+.1}% vs shared", penalty * 100.0);
        pairs.push((totals[1], totals[0]));
    }

    println!();
    println!(
        "worst individual-vs-shared penalty: {:.1}% (paper: up to 18%)",
        worst_penalty * 100.0
    );
    report.value("worst_penalty_pct", worst_penalty * 100.0);
    report.check(
        "individual mode is never faster than shared",
        pairs.iter().all(|(s, i)| i >= s),
    );
    report.check(
        "penalty within 2x of the paper's 18% worst case",
        worst_penalty > 0.0 && worst_penalty < 0.36,
    );
    report.check(
        "individual mode still beats the DRAM-only baseline (8-core cases)",
        pairs[1].1 < dram.stages.total().as_secs_f64(),
    );
    let cluster = last_cluster.expect("configs ran");
    report.counters_from(&cluster).health_from(&cluster).emit();
}

//! # bench — the paper-reproduction harness
//!
//! One `harness = false` bench target per table and figure of the paper's
//! evaluation (run them all with `cargo bench`), plus Criterion
//! micro-benchmarks of the stack itself (`--bench micro`).
//!
//! Common policy: every experiment runs on the HAL cluster preset scaled
//! by [`SCALE`] (capacities ÷ 64, bandwidths/latencies unchanged) with the
//! FUSE cache scaled identically, and charges full-scale compute time via
//! the per-experiment multiplier — see DESIGN.md §2 for why this
//! preserves the paper's shapes. Numbers are printed next to the paper's
//! reported values (where the text gives them) and recorded in
//! EXPERIMENTS.md.

use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use obs::ObsFooter;
use simcore::VTime;

/// Capacity divisor for all experiments (except the sort, which needs a
/// deeper scale to fit 200 GB of list data in host memory).
pub const SCALE: u64 = 64;

/// Sort-experiment divisor.
pub const SORT_SCALE: u64 = 1024;

/// The FUSE cache, scaled like every other capacity (64 MiB at scale 1).
pub fn scaled_fuse(scale: u64) -> FuseConfig {
    FuseConfig {
        cache_bytes: (64 * 1024 * 1024 / scale).max(512 * 1024),
        ..FuseConfig::default()
    }
}

/// FUSE cache for multi-stream experiments: the scaled capacity, floored
/// at 4 chunks per concurrent stream. The paper's unscaled 64 MiB cache
/// holds 32 chunks per STREAM thread; naive capacity scaling would leave
/// less than one chunk per thread and thrash in a way the real system
/// cannot.
pub fn stream_fuse(scale: u64, streams: usize) -> FuseConfig {
    let chunk = 256 * 1024u64;
    FuseConfig {
        cache_bytes: (64 * 1024 * 1024 / scale).max(streams as u64 * 4 * chunk),
        ..FuseConfig::default()
    }
}

/// Build the HAL cluster for a job configuration at the default scale.
pub fn hal_cluster(cfg: &JobConfig) -> Cluster {
    hal_cluster_scaled(cfg, SCALE)
}

pub fn hal_cluster_scaled(cfg: &JobConfig, scale: u64) -> Cluster {
    Cluster::with_configs(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        scaled_fuse(scale),
        store_for(cfg),
    )
}

/// The store configuration a job configuration implies: default knobs,
/// plus the sharded placement manager when the job asks for it
/// (`run_job` asserts the cluster's shard count matches the job's).
pub fn store_for(cfg: &JobConfig) -> chunkstore::StoreConfig {
    chunkstore::StoreConfig {
        manager_shards: cfg.manager_shards,
        ..chunkstore::StoreConfig::default()
    }
}

/// Print the standard experiment header (testbed + experiment id).
pub fn header(experiment: &str, paper_ref: &str) {
    let _ = process_epoch(); // pin the host-speed epoch before any work
    println!("{}", "=".repeat(74));
    println!("{experiment}  —  reproduces {paper_ref}");
    println!("{}", "-".repeat(74));
    println!("{}", ClusterSpec::hal().scaled(SCALE).table2());
    println!("{}", "-".repeat(74));
}

/// Format a virtual time in seconds with 3 decimals.
pub fn secs(t: VTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Print the store-health line for a finished run: SSD wear per
/// benefactor (total + worst) plus the fault-injection / replication
/// counters. Every bench target that touches the NVM store prints this so
/// failovers, repairs and wear imbalance are visible next to the numbers
/// they influenced.
pub fn store_health(label: &str, cluster: &Cluster) {
    let wear = cluster.store.wear_reports();
    if wear.is_empty() {
        return; // DRAM-only configuration: no store to report on
    }
    let total: u64 = wear.iter().map(|(_, w)| w.bytes_written).sum();
    let (worst_node, worst) = wear
        .iter()
        .map(|(n, w)| (*n, w.bytes_written))
        .max_by_key(|&(_, b)| b)
        .unwrap();
    let s = &cluster.stats;
    println!(
        "  [health {label}] wear {} total, worst n{worst_node} {} | crashes={} recoveries={} \
         failovers={} degraded_reads={} repairs={} ({})",
        simcore::bytes::human(total),
        simcore::bytes::human(worst),
        s.get("store.benefactor_crashes"),
        s.get("store.benefactor_recoveries"),
        s.get("store.failovers"),
        s.get("store.degraded_reads"),
        s.get("store.repairs_chunks"),
        simcore::bytes::human(s.get("store.repairs_bytes")),
    );
    // Manager RPC mix: the aggregate plus the per-op split (ISSUE 6).
    println!(
        "  [health {label}] manager: rpcs={} (fetch={} write={} place={})",
        s.get("store.mgr_rpcs"),
        s.get("store.mgr_rpc_fetch"),
        s.get("store.mgr_rpc_write"),
        s.get("store.mgr_rpc_place"),
    );
    // Shardmgr line, only when the sharded placement manager is installed
    // (its counters are registered lazily, like the integrity ones).
    if s.snapshot().values.contains_key("store.lease_grants") {
        println!(
            "  [health {label}] shardmgr: shards={} lease_grants={} renewals={} revokes={} \
             expiries={}",
            cluster.store.shards_installed(),
            s.get("store.lease_grants"),
            s.get("store.lease_renewals"),
            s.get("store.lease_revokes"),
            s.get("store.lease_expiries"),
        );
    }
    // Integrity line, only for runs that had verification or scrubbing
    // switched on (the counters are registered lazily so knobs-off bench
    // output is unchanged).
    if s.snapshot().values.contains_key("store.crc_mismatches") {
        println!(
            "  [health {label}] integrity: crc_mismatches={} scrub_passes={} scrub_repairs={} \
             quarantined={}",
            s.get("store.crc_mismatches"),
            s.get("store.scrub_passes"),
            s.get("store.scrub_repairs"),
            cluster.store.manager().quarantined_count(),
        );
    }
}

/// Simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    pub fn new(columns: &[(&str, usize)]) -> Self {
        let mut head = String::new();
        for (name, w) in columns {
            head.push_str(&format!("{name:>w$}  ", w = *w));
        }
        println!("{head}");
        println!("{}", "-".repeat(head.len().min(74)));
        Table {
            widths: columns.iter().map(|(_, w)| *w).collect(),
        }
    }

    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len());
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:>w$}  ", w = *w));
        }
        println!("{line}");
    }
}

/// GiB with 3 decimals for the volume tables.
pub fn gib(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1u64 << 30) as f64)
}

pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1u64 << 20) as f64)
}

/// A shape assertion: prints PASS/FAIL without aborting the harness, so a
/// full `cargo bench` always produces every table.
pub fn check(name: &str, ok: bool) {
    println!(
        "  [{}] {}",
        if ok { "SHAPE-OK " } else { "SHAPE-FAIL" },
        name
    );
}

// ----- machine-readable reports (BENCH_<name>.json) --------------------------

/// A JSON value with insertion-ordered objects, so emitted reports are
/// byte-stable across runs (the CI smoke diff in scripts/check.sh relies
/// on that). Hand-rolled: the workspace deliberately has no serde.
#[derive(Clone, Debug)]
pub enum Json {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/replace a key of an object (panics on non-objects).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => fields.push((key.to_string(), value)),
        }
        self
    }

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            // Fixed decimals: shortest-roundtrip float printing is stable
            // per build but uglier to diff; 6 decimals is plenty for
            // virtual times (micro precision at second scale).
            Json::Num(x) => out.push_str(&format!("{x:.6}")),
            Json::Str(s) => Json::escape(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad1);
                    Json::escape(k, out);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<VTime> for Json {
    fn from(v: VTime) -> Json {
        Json::Num(v.as_secs_f64())
    }
}

/// Wall-clock throughput instrumentation (ISSUE 7): how many simulated
/// bytes and events the simulator itself pushes per *host* second. Every
/// [`JsonReport`] carries one from construction to `emit()`, so each
/// `BENCH_<name>.json` gets a `host` footer; `bench micro --host-speed`
/// runs a dedicated workload over a known simulated volume and check.sh
/// gates its rate against a committed floor.
///
/// Host wall-clock is inherently nondeterministic, so the footer is
/// emitted as a self-contained flat block that the expectation diffs in
/// check.sh strip before comparing.
pub struct HostSpeed {
    started: std::time::Instant,
    sim_bytes: u64,
    sim_events: u64,
}

/// The process-wide wall-clock epoch, pinned the first time anything asks
/// (the [`header`] call at the top of every bench target). Reports built
/// after their workload ran still get a truthful host_seconds this way.
fn process_epoch() -> std::time::Instant {
    static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

impl HostSpeed {
    /// Measure from this call (scoped workloads, e.g. `micro --host-speed`).
    pub fn start() -> Self {
        HostSpeed {
            started: std::time::Instant::now(),
            sim_bytes: 0,
            sim_events: 0,
        }
    }

    /// Measure from the process epoch (whole-bench wall clock).
    pub fn since_process_start() -> Self {
        HostSpeed {
            started: process_epoch(),
            sim_bytes: 0,
            sim_events: 0,
        }
    }

    /// Account simulated payload bytes moved (network-level).
    pub fn add_bytes(&mut self, bytes: u64) {
        self.sim_bytes += bytes;
    }

    /// Account simulated scheduler events (context switches etc.).
    pub fn add_events(&mut self, n: u64) {
        self.sim_events += n;
    }

    /// Host seconds elapsed since construction.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The flat `host` footer block. Rates are integers so shell gates
    /// can compare them without floating-point parsing.
    pub fn footer(&self) -> Json {
        let secs = self.elapsed_seconds().max(1e-9);
        let mut h = Json::obj();
        h.set("host_seconds", secs);
        h.set("sim_bytes", self.sim_bytes);
        h.set("sim_events", self.sim_events);
        h.set(
            "bytes_per_host_second",
            (self.sim_bytes as f64 / secs) as u64,
        );
        h.set(
            "events_per_host_second",
            (self.sim_events as f64 / secs) as u64,
        );
        h
    }
}

/// The standard machine-readable report every bench target emits next to
/// its printed tables: experiment name, configuration, virtual times,
/// counters of interest, shape-check verdicts, and the store-health
/// footer.
pub struct JsonReport {
    name: String,
    host: HostSpeed,
    config: Json,
    times: Json,
    counters: Json,
    checks: Json,
    health: Json,
    obs: Json,
}

impl JsonReport {
    pub fn new(name: &str) -> Self {
        JsonReport {
            name: name.to_string(),
            host: HostSpeed::since_process_start(),
            config: Json::obj(),
            times: Json::obj(),
            counters: Json::obj(),
            checks: Json::obj(),
            health: Json::Null,
            obs: Json::Null,
        }
    }

    /// Account simulated bytes toward the host-speed footer (for targets
    /// that never call [`Self::health_from`]).
    pub fn host_bytes(&mut self, bytes: u64) -> &mut Self {
        self.host.add_bytes(bytes);
        self
    }

    /// Account simulated events toward the host-speed footer.
    pub fn host_events(&mut self, n: u64) -> &mut Self {
        self.host.add_events(n);
        self
    }

    /// Record a configuration fact (scale, sizes, flags, …).
    pub fn config(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.config.set(key, value);
        self
    }

    /// Record a virtual time (seconds, 6 decimals).
    pub fn time(&mut self, key: &str, t: VTime) -> &mut Self {
        self.times.set(key, t);
        self
    }

    /// Record an arbitrary numeric result under `times` (rates, speedups).
    pub fn value(&mut self, key: &str, v: impl Into<Json>) -> &mut Self {
        self.times.set(key, v);
        self
    }

    /// Record one counter value.
    pub fn counter(&mut self, key: &str, v: u64) -> &mut Self {
        self.counters.set(key, v);
        self
    }

    /// Record every counter currently in the cluster's registry.
    pub fn counters_from(&mut self, cluster: &Cluster) -> &mut Self {
        for (k, v) in cluster.stats.snapshot().values {
            self.counters.set(&k, v);
        }
        self
    }

    /// A shape assertion: printed like [`check`] AND recorded in the
    /// report.
    pub fn check(&mut self, name: &str, ok: bool) -> &mut Self {
        check(name, ok);
        self.checks.set(name, ok);
        self
    }

    /// The health footer: SSD wear plus fault/replication counters
    /// (mirrors [`store_health`]).
    pub fn health_from(&mut self, cluster: &Cluster) -> &mut Self {
        let wear = cluster.store.wear_reports();
        let mut h = Json::obj();
        let total: u64 = wear.iter().map(|(_, w)| w.bytes_written).sum();
        let worst: u64 = wear.iter().map(|(_, w)| w.bytes_written).max().unwrap_or(0);
        h.set("wear_total_bytes", total);
        h.set("wear_worst_bytes", worst);
        let s = &cluster.stats;
        for key in [
            "store.benefactor_crashes",
            "store.benefactor_recoveries",
            "store.failovers",
            "store.degraded_reads",
            "store.repairs_chunks",
            "store.repairs_bytes",
            "store.mgr_rpcs",
            "store.mgr_rpc_fetch",
            "store.mgr_rpc_write",
            "store.mgr_rpc_place",
        ] {
            h.set(key, s.get(key));
        }
        // Integrity counters exist only when verification/scrubbing was
        // on; keep knobs-off reports byte-identical by skipping them.
        let snap = s.snapshot().values;
        for key in [
            "store.crc_mismatches",
            "store.scrub_passes",
            "store.scrub_repairs",
            "store.quarantined",
        ] {
            if snap.contains_key(key) {
                h.set(key, s.get(key));
            }
        }
        if snap.contains_key("store.crc_mismatches") {
            h.set(
                "quarantined_benefactors",
                cluster.store.manager().quarantined_count() as u64,
            );
        }
        // Lease counters exist only when the sharded placement manager is
        // installed; same lazy-registration policy.
        for key in [
            "store.lease_grants",
            "store.lease_renewals",
            "store.lease_revokes",
            "store.lease_expiries",
        ] {
            if snap.contains_key(key) {
                h.set(key, s.get(key));
            }
        }
        if snap.contains_key("store.lease_grants") {
            h.set("manager_shards", cluster.store.shards_installed() as u64);
        }
        // Approximate simulated volume for the host footer: total network
        // payload this cluster moved (accumulates across clusters for
        // multi-run ablations).
        self.host.add_bytes(s.get("net.bytes"));
        self.health = h;
        self
    }

    /// The observability footer: per-layer virtual-time breakdown, top-N
    /// slowest spans, latency-histogram percentiles and counter deltas
    /// from a traced run (see `obs::ObsFooter`). Also prints the per-layer
    /// percentages. No-op on a footer from a disabled recorder.
    pub fn obs_from(&mut self, footer: &ObsFooter) -> &mut Self {
        if footer.spans_recorded == 0 {
            return self;
        }
        println!(
            "  [obs] {} spans over {:.3} ms of virtual time",
            footer.spans_recorded,
            (footer.window_ns.1 - footer.window_ns.0) as f64 / 1e6
        );
        let mut o = Json::obj();
        o.set(
            "window_ns",
            Json::Arr(vec![
                Json::UInt(footer.window_ns.0),
                Json::UInt(footer.window_ns.1),
            ]),
        );
        o.set("spans_recorded", footer.spans_recorded);
        o.set("spans_dropped", footer.spans_dropped);
        o.set("instants", footer.instants);
        let mut layers = Vec::new();
        for l in &footer.layers {
            let pct = footer.layer_pct(l.layer);
            println!(
                "  [obs]   {:<5} {:>8} spans  self {:>7.3} ms  ({:>5.1}% of self time)",
                l.layer.as_str(),
                l.spans,
                l.self_ns as f64 / 1e6,
                pct
            );
            let mut lj = Json::obj();
            lj.set("layer", l.layer.as_str());
            lj.set("spans", l.spans);
            lj.set("inclusive_ns", l.inclusive_ns);
            lj.set("self_ns", l.self_ns);
            lj.set("self_pct", pct);
            layers.push(lj);
        }
        o.set("layers", Json::Arr(layers));
        let mut tops = Vec::new();
        for s in &footer.top_spans {
            let mut sj = Json::obj();
            sj.set("name", s.name);
            sj.set("layer", s.layer.as_str());
            sj.set("lane", s.lane);
            sj.set("start_ns", s.start_ns);
            sj.set("dur_ns", s.dur_ns);
            tops.push(sj);
        }
        o.set("top_spans", Json::Arr(tops));
        let mut hists = Vec::new();
        for h in &footer.hists {
            let mut hj = Json::obj();
            hj.set("name", h.name.as_str());
            hj.set("count", h.count);
            hj.set("p50_ns", h.p50_ns);
            hj.set("p95_ns", h.p95_ns);
            hj.set("p99_ns", h.p99_ns);
            hj.set("max_ns", h.max_ns);
            hists.push(hj);
        }
        o.set("histograms", Json::Arr(hists));
        let mut counters = Json::obj();
        for (k, v) in &footer.counters.values {
            counters.set(k, *v);
        }
        o.set("counter_deltas", counters);
        self.obs = o;
        self
    }

    /// Write `BENCH_<name>.json` and print where it went.
    pub fn emit(&self) {
        let mut root = Json::obj();
        root.set("experiment", self.name.as_str());
        // Host wall-clock footer right after the experiment key, as a
        // flat block, so expectation diffs can strip exactly these lines
        // (scripts/check.sh `strip_host`).
        root.set("host", self.host.footer());
        root.set("config", self.config.clone());
        root.set("times", self.times.clone());
        root.set("counters", self.counters.clone());
        root.set("checks", self.checks.clone());
        root.set("health", self.health.clone());
        if !matches!(self.obs, Json::Null) {
            root.set("obs", self.obs.clone());
        }
        emit_json(&self.name, &root);
    }
}

/// Value of a `--flag value` pair on the bench binary's command line
/// (e.g. `--trace out.json` on a trace-capable target), if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Write `BENCH_<name>.json` into `$BENCH_JSON_DIR` (default
/// `target/bench-json`, relative to the invocation directory — for
/// `cargo bench` that is the workspace root).
pub fn emit_json(name: &str, report: &Json) {
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "target/bench-json".to_string());
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("  [json] cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("BENCH_{name}.json"));
    match std::fs::write(&path, report.render()) {
        Ok(()) => println!("  [json] wrote {}", path.display()),
        Err(e) => eprintln!("  [json] cannot write {}: {e}", path.display()),
    }
}

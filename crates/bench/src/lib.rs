//! # bench — the paper-reproduction harness
//!
//! One `harness = false` bench target per table and figure of the paper's
//! evaluation (run them all with `cargo bench`), plus Criterion
//! micro-benchmarks of the stack itself (`--bench micro`).
//!
//! Common policy: every experiment runs on the HAL cluster preset scaled
//! by [`SCALE`] (capacities ÷ 64, bandwidths/latencies unchanged) with the
//! FUSE cache scaled identically, and charges full-scale compute time via
//! the per-experiment multiplier — see DESIGN.md §2 for why this
//! preserves the paper's shapes. Numbers are printed next to the paper's
//! reported values (where the text gives them) and recorded in
//! EXPERIMENTS.md.

use cluster::{Cluster, ClusterSpec, JobConfig};
use fusemm::FuseConfig;
use simcore::VTime;

/// Capacity divisor for all experiments (except the sort, which needs a
/// deeper scale to fit 200 GB of list data in host memory).
pub const SCALE: u64 = 64;

/// Sort-experiment divisor.
pub const SORT_SCALE: u64 = 1024;

/// The FUSE cache, scaled like every other capacity (64 MiB at scale 1).
pub fn scaled_fuse(scale: u64) -> FuseConfig {
    FuseConfig {
        cache_bytes: (64 * 1024 * 1024 / scale).max(512 * 1024),
        ..FuseConfig::default()
    }
}

/// FUSE cache for multi-stream experiments: the scaled capacity, floored
/// at 4 chunks per concurrent stream. The paper's unscaled 64 MiB cache
/// holds 32 chunks per STREAM thread; naive capacity scaling would leave
/// less than one chunk per thread and thrash in a way the real system
/// cannot.
pub fn stream_fuse(scale: u64, streams: usize) -> FuseConfig {
    let chunk = 256 * 1024u64;
    FuseConfig {
        cache_bytes: (64 * 1024 * 1024 / scale).max(streams as u64 * 4 * chunk),
        ..FuseConfig::default()
    }
}

/// Build the HAL cluster for a job configuration at the default scale.
pub fn hal_cluster(cfg: &JobConfig) -> Cluster {
    hal_cluster_scaled(cfg, SCALE)
}

pub fn hal_cluster_scaled(cfg: &JobConfig, scale: u64) -> Cluster {
    Cluster::with_fuse(
        ClusterSpec::hal().scaled(scale),
        &cfg.benefactor_nodes(),
        scaled_fuse(scale),
    )
}

/// Print the standard experiment header (testbed + experiment id).
pub fn header(experiment: &str, paper_ref: &str) {
    println!("{}", "=".repeat(74));
    println!("{experiment}  —  reproduces {paper_ref}");
    println!("{}", "-".repeat(74));
    println!("{}", ClusterSpec::hal().scaled(SCALE).table2());
    println!("{}", "-".repeat(74));
}

/// Format a virtual time in seconds with 3 decimals.
pub fn secs(t: VTime) -> String {
    format!("{:.3}", t.as_secs_f64())
}

/// Print the store-health line for a finished run: SSD wear per
/// benefactor (total + worst) plus the fault-injection / replication
/// counters. Every bench target that touches the NVM store prints this so
/// failovers, repairs and wear imbalance are visible next to the numbers
/// they influenced.
pub fn store_health(label: &str, cluster: &Cluster) {
    let wear = cluster.store.wear_reports();
    if wear.is_empty() {
        return; // DRAM-only configuration: no store to report on
    }
    let total: u64 = wear.iter().map(|(_, w)| w.bytes_written).sum();
    let (worst_node, worst) = wear
        .iter()
        .map(|(n, w)| (*n, w.bytes_written))
        .max_by_key(|&(_, b)| b)
        .unwrap();
    let s = &cluster.stats;
    println!(
        "  [health {label}] wear {} total, worst n{worst_node} {} | crashes={} recoveries={} \
         failovers={} degraded_reads={} repairs={} ({})",
        simcore::bytes::human(total),
        simcore::bytes::human(worst),
        s.get("store.benefactor_crashes"),
        s.get("store.benefactor_recoveries"),
        s.get("store.failovers"),
        s.get("store.degraded_reads"),
        s.get("store.repairs_chunks"),
        simcore::bytes::human(s.get("store.repairs_bytes")),
    );
}

/// Simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    pub fn new(columns: &[(&str, usize)]) -> Self {
        let mut head = String::new();
        for (name, w) in columns {
            head.push_str(&format!("{name:>w$}  ", w = *w));
        }
        println!("{head}");
        println!("{}", "-".repeat(head.len().min(74)));
        Table {
            widths: columns.iter().map(|(_, w)| *w).collect(),
        }
    }

    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.widths.len());
        let mut line = String::new();
        for (cell, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{cell:>w$}  ", w = *w));
        }
        println!("{line}");
    }
}

/// GiB with 3 decimals for the volume tables.
pub fn gib(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1u64 << 30) as f64)
}

pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1u64 << 20) as f64)
}

/// A shape assertion: prints PASS/FAIL without aborting the harness, so a
/// full `cargo bench` always produces every table.
pub fn check(name: &str, ok: bool) {
    println!(
        "  [{}] {}",
        if ok { "SHAPE-OK " } else { "SHAPE-FAIL" },
        name
    );
}

//! Conservative virtual-time process scheduler.
//!
//! Each simulated process (an MPI rank, a benefactor, a STREAM thread) runs
//! on its own host thread but holds a *baton*: exactly one process executes
//! at a time, and the engine always hands the baton to the runnable process
//! with the smallest `(virtual clock, process id)` pair. Any process that is
//! about to touch shared simulation state first waits until it holds the
//! global minimum clock ([`ProcCtx::yield_until_min`]), which guarantees
//! that shared resources and caches observe operations in virtual-time
//! order. The result is a deterministic, reproducible parallel-discrete-
//! event simulation without the complexity of full event inversion.
//!
//! Blocking coordination (collectives, rendezvous) uses
//! [`ProcCtx::suspend_self`] / [`ProcCtx::resume_other`]: a suspended
//! process is excluded from the minimum-clock computation and re-enters the
//! ready set at the virtual time chosen by its resumer, which is never in
//! the causal past because the resumer itself only acts while holding the
//! minimum clock.

use crate::time::VTime;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Identifies a process within one [`Engine`] run.
pub type ProcId = usize;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Eligible to run at this clock.
    Ready(VTime),
    /// Currently holds the baton; the clock is the one it was granted at
    /// (a resumer may have advanced it while the process was parked).
    Running(VTime),
    /// Blocked waiting for a `resume_other` (e.g. inside a collective).
    Suspended(VTime),
    /// Returned from its body.
    Done(VTime),
}

struct Sched {
    states: Vec<State>,
    /// Mirror of every `Ready` entry in `states`, ordered by
    /// `(clock, id)`: min-ready and min-active queries are O(log n)
    /// `first()` reads instead of O(n) state sweeps, which is the
    /// per-yield hot path (ISSUE 7 host-speed pass). `states` stays the
    /// source of truth; every Ready transition updates both.
    ready: BTreeSet<(VTime, ProcId)>,
    /// The process currently holding the baton, if any.
    running: Option<ProcId>,
    switches: u64,
    poisoned: bool,
}

impl Sched {
    /// Flip `id` (not currently Ready) to Ready at `t`.
    fn make_ready(&mut self, id: ProcId, t: VTime) {
        self.states[id] = State::Ready(t);
        let inserted = self.ready.insert((t, id));
        debug_assert!(inserted, "process {id} was already in the ready set");
    }

    /// Flip a Ready process to Running (caller got it from `min_ready`
    /// or the ready set's head).
    fn claim(&mut self, id: ProcId, t: VTime) {
        let removed = self.ready.remove(&(t, id));
        debug_assert!(removed, "claimed process {id} was not in the ready set");
        self.states[id] = State::Running(t);
        self.running = Some(id);
        self.switches += 1;
    }

    /// The runnable process with the minimum `(clock, id)`, if any.
    fn min_ready(&self) -> Option<(ProcId, VTime)> {
        self.ready.first().map(|&(t, id)| (id, t))
    }

    /// Minimum clock over every *other* runnable process, when it is
    /// strictly behind `(my_clock, me)`. The caller holds the baton, so
    /// it is Running, never in the ready set.
    fn min_active_clock_excluding(&self, me: ProcId, my_clock: VTime) -> Option<(VTime, ProcId)> {
        debug_assert!(matches!(self.states[me], State::Running(_)));
        self.ready
            .first()
            .copied()
            .filter(|&(t, id)| (t, id) < (my_clock, me))
    }

    fn all_parked(&self) -> bool {
        self.states
            .iter()
            .all(|s| matches!(s, State::Suspended(_) | State::Done(_)))
    }
}

struct Shared {
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl Shared {
    /// Hand the baton to the best ready process (caller must NOT be Running).
    /// Returns false when nothing is ready (everyone parked or done).
    fn dispatch(sched: &mut Sched) -> bool {
        sched.running = None;
        if let Some((next, t)) = sched.min_ready() {
            sched.claim(next, t);
            true
        } else {
            false
        }
    }
}

/// Per-process handle passed to a process body; all virtual-time operations
/// go through it.
pub struct ProcCtx {
    id: ProcId,
    clock: VTime,
    shared: Arc<Shared>,
}

impl ProcCtx {
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// This process's virtual clock.
    pub fn now(&self) -> VTime {
        self.clock
    }

    /// Advance the local clock by `dt` (local computation: no shared state
    /// involved, so no yield is necessary for correctness; we still yield
    /// when we are far ahead so other processes interleave).
    pub fn advance(&mut self, dt: VTime) {
        self.clock += dt;
    }

    /// Set the local clock directly; must not move backwards.
    pub fn advance_to(&mut self, t: VTime) {
        assert!(t >= self.clock, "clock may not move backwards");
        self.clock = t;
    }

    /// Block until this process holds the minimum `(clock, id)` among all
    /// non-suspended processes. Call before touching shared simulation
    /// state (resources, caches, stores) so mutations occur in virtual-time
    /// order.
    pub fn yield_until_min(&mut self) {
        loop {
            let shared = Arc::clone(&self.shared);
            {
                let mut sched = shared.sched.lock();
                assert!(!sched.poisoned, "engine poisoned by a panicking process");
                if sched
                    .min_active_clock_excluding(self.id, self.clock)
                    .is_none()
                {
                    return; // we are the minimum; keep the baton
                }
                // Someone is strictly behind us: hand over and wait.
                sched.make_ready(self.id, self.clock);
                let ok = Shared::dispatch(&mut sched);
                debug_assert!(ok, "a ready process must exist: ourselves");
                shared.cv.notify_all();
            }
            self.wait_until_running();
        }
    }

    /// Park this process; returns once another process calls
    /// [`ProcCtx::resume_other`] for it, with the clock set by the resumer.
    pub fn suspend_self(&mut self) {
        let shared = Arc::clone(&self.shared);
        {
            let mut sched = shared.sched.lock();
            sched.states[self.id] = State::Suspended(self.clock);
            if !Shared::dispatch(&mut sched) {
                assert!(
                    !sched.all_parked(),
                    "virtual-time deadlock: every process is suspended \
                     (unmatched collective or rendezvous?)"
                );
            }
            shared.cv.notify_all();
        }
        self.wait_until_running();
        // Our resumer stored the release clock in our state before flipping
        // us to Ready; wait_until_running picked it up.
    }

    /// Make a suspended process ready again at virtual time `at`.
    ///
    /// `at` must be at or after the resumee's suspension time, and the
    /// caller should itself hold the minimum clock (it just resolved a
    /// shared rendezvous), which keeps virtual time causal.
    pub fn resume_other(&self, other: ProcId, at: VTime) {
        assert_ne!(other, self.id, "use advance_to for the current process");
        let mut sched = self.shared.sched.lock();
        match sched.states[other] {
            State::Suspended(t) => {
                assert!(
                    at >= t,
                    "resume at {at} would move process {other} back from {t}"
                );
                sched.make_ready(other, at);
            }
            ref s => panic!("resume_other({other}): process is {s:?}, not Suspended"),
        }
        self.shared.cv.notify_all();
    }

    fn wait_until_running(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut sched = shared.sched.lock();
        loop {
            assert!(!sched.poisoned, "engine poisoned by a panicking process");
            match sched.states[self.id] {
                State::Running(t) => {
                    // A resumer may have advanced our clock while we waited.
                    if t > self.clock {
                        self.clock = t;
                    }
                    break;
                }
                State::Ready(_) | State::Suspended(_) => {
                    // Belt and braces: if nothing is running (a dispatch
                    // found no ready process before we became ready), claim
                    // the baton ourselves when we are the minimum.
                    if matches!(sched.states[self.id], State::Ready(_)) && sched.running.is_none() {
                        if let Some((next, t)) = sched.min_ready() {
                            if next == self.id {
                                sched.claim(self.id, t);
                                continue;
                            }
                        }
                    }
                    shared.cv.wait(&mut sched);
                }
                State::Done(_) => unreachable!("done process rescheduled"),
            }
        }
    }

    fn finish(&mut self) {
        let mut sched = self.shared.sched.lock();
        sched.states[self.id] = State::Done(self.clock);
        Shared::dispatch(&mut sched);
        self.shared.cv.notify_all();
    }
}

/// Observer hooks invoked while a process holds the baton, so callbacks
/// fire in deterministic `(virtual clock, ProcId)` order. The observability
/// layer (`crates/obs`) implements this to bind trace lanes to engine
/// processes; the engine itself has no tracing dependency.
pub trait EngineObserver: Send + Sync {
    /// The process is about to execute its body on the current host thread.
    fn proc_started(&self, id: ProcId, t: VTime);
    /// The process body returned; `t` is its finish clock.
    fn proc_finished(&self, id: ProcId, t: VTime);
}

/// Outcome of an [`Engine::run`].
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Virtual finish time of each process, indexed by `ProcId`.
    pub finish_times: Vec<VTime>,
    /// max(finish_times): the simulated wall-clock of the whole job.
    pub makespan: VTime,
    /// Number of baton hand-offs (scheduling overhead metric).
    pub context_switches: u64,
}

/// The simulation engine. Construct process bodies, run them to completion
/// in deterministic virtual-time order, and collect per-process times.
pub struct Engine;

impl Engine {
    /// Run `bodies` as simulated processes starting at virtual time zero.
    ///
    /// Bodies may borrow from the caller's stack (scoped threads). The call
    /// returns when every process body has returned. Panics in any body are
    /// propagated after poisoning the engine so no thread hangs.
    pub fn run<'env, F>(bodies: Vec<F>) -> EngineReport
    where
        F: FnOnce(&mut ProcCtx) + Send + 'env,
    {
        Self::run_with_observer(bodies, None)
    }

    /// Like [`Engine::run`], with observer callbacks at each process's
    /// start and finish. The callbacks run while the process holds the
    /// baton, so they occur in deterministic virtual-time order and on the
    /// process's own host thread (which lets an observer key thread-local
    /// state, e.g. trace lanes, by `ProcId`).
    pub fn run_with_observer<'env, F>(
        bodies: Vec<F>,
        observer: Option<Arc<dyn EngineObserver>>,
    ) -> EngineReport
    where
        F: FnOnce(&mut ProcCtx) + Send + 'env,
    {
        let n = bodies.len();
        assert!(n > 0, "engine needs at least one process");
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                states: vec![State::Ready(VTime::ZERO); n],
                ready: (0..n).map(|id| (VTime::ZERO, id)).collect(),
                running: None,
                switches: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        });
        // Kick off: lowest id starts running.
        {
            let mut sched = shared.sched.lock();
            let ok = Shared::dispatch(&mut sched);
            assert!(ok);
        }

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (id, body) in bodies.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let observer = observer.clone();
                handles.push(scope.spawn(move || {
                    let mut ctx = ProcCtx {
                        id,
                        clock: VTime::ZERO,
                        shared,
                    };
                    // Wait for the baton before the first action.
                    ctx.wait_until_running();
                    let guard = PoisonGuard {
                        shared: Arc::clone(&ctx.shared),
                    };
                    if let Some(obs) = &observer {
                        obs.proc_started(id, ctx.now());
                    }
                    body(&mut ctx);
                    if let Some(obs) = &observer {
                        obs.proc_finished(id, ctx.now());
                    }
                    std::mem::forget(guard);
                    ctx.finish();
                }));
            }
            // Join manually so an original panic payload (not the generic
            // "a scoped thread panicked") reaches the caller. Secondary
            // "engine poisoned" panics from bystander processes are the
            // least interesting payloads, so prefer any other.
            let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
            for h in handles {
                if let Err(payload) = h.join() {
                    panics.push(payload);
                }
            }
            if !panics.is_empty() {
                let is_secondary = |p: &Box<dyn std::any::Any + Send>| {
                    p.downcast_ref::<String>()
                        .map(|s| s.contains("engine poisoned"))
                        .or_else(|| {
                            p.downcast_ref::<&str>()
                                .map(|s| s.contains("engine poisoned"))
                        })
                        .unwrap_or(false)
                };
                let idx = panics.iter().position(|p| !is_secondary(p)).unwrap_or(0);
                std::panic::resume_unwind(panics.swap_remove(idx));
            }
        });

        let sched = shared.sched.lock();
        let finish_times: Vec<VTime> = sched
            .states
            .iter()
            .map(|s| match s {
                State::Done(t) => *t,
                other => panic!("process did not finish: {other:?}"),
            })
            .collect();
        let makespan = finish_times.iter().copied().max().unwrap_or(VTime::ZERO);
        EngineReport {
            makespan,
            context_switches: sched.switches,
            finish_times,
        }
    }
}

/// Panic guard: if a process body panics, poison the engine so every other
/// thread wakes up and unwinds instead of hanging. Forgotten on the normal
/// return path.
struct PoisonGuard {
    shared: Arc<Shared>,
}

impl Drop for PoisonGuard {
    fn drop(&mut self) {
        let mut sched = self.shared.sched.lock();
        sched.poisoned = true;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    #[test]
    fn single_process_runs() {
        let report = Engine::run(vec![|ctx: &mut ProcCtx| {
            ctx.advance(VTime::from_secs(3));
        }]);
        assert_eq!(report.makespan, VTime::from_secs(3));
        assert_eq!(report.finish_times, vec![VTime::from_secs(3)]);
    }

    #[test]
    fn processes_interleave_in_virtual_time_order() {
        // Two processes append (id, now) to a shared log at 10ns steps with
        // different phases; the log must come out sorted by (time, id).
        let log: Arc<PMutex<Vec<(usize, VTime)>>> = Arc::new(PMutex::new(Vec::new()));
        let mk = |id: usize, start: u64, log: Arc<PMutex<Vec<(usize, VTime)>>>| {
            move |ctx: &mut ProcCtx| {
                ctx.advance(VTime::from_nanos(start));
                for _ in 0..50 {
                    ctx.yield_until_min();
                    log.lock().push((id, ctx.now()));
                    ctx.advance(VTime::from_nanos(10));
                }
            }
        };
        Engine::run(vec![
            Box::new(mk(0, 0, Arc::clone(&log))) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(mk(1, 5, Arc::clone(&log))),
        ]);
        let log = log.lock();
        assert_eq!(log.len(), 100);
        let mut sorted = log.clone();
        sorted.sort_by_key(|&(id, t)| (t, id));
        assert_eq!(*log, sorted, "shared accesses must occur in vtime order");
    }

    #[test]
    fn deterministic_across_runs() {
        let run_once = || {
            let log: Arc<PMutex<Vec<usize>>> = Arc::new(PMutex::new(Vec::new()));
            let mk = |id: usize, step: u64, log: Arc<PMutex<Vec<usize>>>| {
                move |ctx: &mut ProcCtx| {
                    for _ in 0..20 {
                        ctx.yield_until_min();
                        log.lock().push(id);
                        ctx.advance(VTime::from_nanos(step));
                    }
                }
            };
            Engine::run(vec![
                Box::new(mk(0, 7, Arc::clone(&log))) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
                Box::new(mk(1, 11, Arc::clone(&log))),
                Box::new(mk(2, 13, Arc::clone(&log))),
            ]);
            Arc::try_unwrap(log).unwrap().into_inner()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
    }

    #[test]
    fn suspend_and_resume() {
        // Process 1 suspends; process 0 resumes it at t=100.
        let report = Engine::run(vec![
            Box::new(|ctx: &mut ProcCtx| {
                ctx.advance(VTime::from_nanos(50));
                ctx.yield_until_min();
                ctx.resume_other(1, VTime::from_nanos(100));
                ctx.advance(VTime::from_nanos(1));
            }) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(|ctx: &mut ProcCtx| {
                ctx.suspend_self();
                assert_eq!(ctx.now(), VTime::from_nanos(100));
            }),
        ]);
        assert_eq!(report.finish_times[1], VTime::from_nanos(100));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn all_suspended_is_deadlock() {
        Engine::run(vec![
            Box::new(|ctx: &mut ProcCtx| ctx.suspend_self())
                as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(|ctx: &mut ProcCtx| ctx.suspend_self()),
        ]);
    }

    #[test]
    #[should_panic]
    fn panic_in_body_propagates_without_hanging() {
        Engine::run(vec![
            Box::new(|ctx: &mut ProcCtx| {
                ctx.advance(VTime::from_secs(1));
                ctx.yield_until_min();
                panic!("worker exploded");
            }) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(|ctx: &mut ProcCtx| {
                for _ in 0..1000 {
                    ctx.advance(VTime::from_millis(1));
                    ctx.yield_until_min();
                }
            }),
        ]);
    }

    #[test]
    fn ties_broken_by_process_id() {
        let log: Arc<PMutex<Vec<usize>>> = Arc::new(PMutex::new(Vec::new()));
        let mk = |id: usize, log: Arc<PMutex<Vec<usize>>>| {
            move |ctx: &mut ProcCtx| {
                ctx.yield_until_min();
                log.lock().push(id);
            }
        };
        // All at clock 0: must run 0, 1, 2.
        Engine::run(vec![
            Box::new(mk(0, Arc::clone(&log))) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(mk(1, Arc::clone(&log))),
            Box::new(mk(2, Arc::clone(&log))),
        ]);
        assert_eq!(*log.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn makespan_is_max_finish() {
        let report = Engine::run(vec![
            Box::new(|ctx: &mut ProcCtx| ctx.advance(VTime::from_secs(1)))
                as Box<dyn FnOnce(&mut ProcCtx) + Send>,
            Box::new(|ctx: &mut ProcCtx| ctx.advance(VTime::from_secs(5))),
            Box::new(|ctx: &mut ProcCtx| ctx.advance(VTime::from_secs(2))),
        ]);
        assert_eq!(report.makespan, VTime::from_secs(5));
        assert_eq!(report.finish_times.len(), 3);
    }

    #[test]
    fn advance_to_moves_forward() {
        Engine::run(vec![|ctx: &mut ProcCtx| {
            ctx.advance_to(VTime::from_secs(2));
            assert_eq!(ctx.now(), VTime::from_secs(2));
        }]);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_rejects_past() {
        Engine::run(vec![|ctx: &mut ProcCtx| {
            ctx.advance(VTime::from_secs(2));
            ctx.advance_to(VTime::from_secs(1));
        }]);
    }
}

//! # simcore — deterministic virtual-time simulation kernel
//!
//! The NVMalloc reproduction replaces the paper's 128-core HAL cluster
//! with a deterministic software simulation. This crate is the kernel of
//! that simulation:
//!
//! * [`time`] — integer-nanosecond virtual time and bandwidth arithmetic;
//! * [`resource`] — FIFO-queued shared resources (an SSD, a NIC direction,
//!   a node's DRAM bus) with utilization accounting;
//! * [`engine`] — the conservative scheduler that runs simulated processes
//!   on host threads, one at a time, in `(virtual clock, id)` order;
//! * [`collective`] — N-party rendezvous used to build MPI-style
//!   collectives;
//! * [`stats`] — named counters for the paper's traffic-volume tables;
//! * [`rng`] — hierarchical deterministic seeding.
//!
//! Everything above this crate (device models, the chunk store, the FUSE
//! layer, NVMalloc itself, workloads) carries *real bytes* through *real
//! code paths* while charging virtual time here, so functional results are
//! exact and timing results are reproducible.
//!
//! ```
//! use simcore::{Engine, ProcCtx, Resource, VTime};
//!
//! // Two processes contend for one device; the engine serializes their
//! // grants in virtual-time order, deterministically.
//! let dev = Resource::new("ssd");
//! let dev2 = dev.clone();
//! let report = Engine::run(vec![
//!     Box::new(move |ctx: &mut ProcCtx| {
//!         ctx.yield_until_min();
//!         let g = dev.acquire_at(ctx.now(), VTime::from_millis(3));
//!         ctx.advance_to(g.end);
//!     }) as Box<dyn FnOnce(&mut ProcCtx) + Send>,
//!     Box::new(move |ctx: &mut ProcCtx| {
//!         ctx.yield_until_min();
//!         let g = dev2.acquire_at(ctx.now(), VTime::from_millis(3));
//!         ctx.advance_to(g.end);
//!     }),
//! ]);
//! assert_eq!(report.makespan, VTime::from_millis(6));
//! ```

pub mod collective;
pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use collective::{Rendezvous, Resolution};
pub use engine::{Engine, EngineObserver, EngineReport, ProcCtx, ProcId};
pub use resource::{Grant, MeteredResource, Resource};
pub use stats::{Counter, Histogram, Percentiles, Snapshot, StatsRegistry};
pub use time::{bytes, Bandwidth, VTime};

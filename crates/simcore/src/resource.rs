//! Shared, serially-reusable resources (a device, a link direction, a
//! bus) modelled as FIFO servers.
//!
//! A `Resource` owns a single piece of state: the virtual time at which it
//! next becomes free. A request arriving at `t_req` that keeps the resource
//! busy for `busy` is served over `[max(t_req, next_free), max(..)+busy)`.
//! Because the simulation engine runs processes in virtual-time order (see
//! [`crate::engine`]), requests reach a resource in non-decreasing request
//! time and this single register reproduces FIFO queueing exactly.

use crate::stats::Counter;
use crate::time::{Bandwidth, VTime};
use parking_lot::Mutex;
use std::sync::Arc;

/// Result of occupying a resource: when service began and ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    pub start: VTime,
    pub end: VTime,
}

impl Grant {
    /// How long the request waited in the queue before service.
    pub fn queued(&self, requested_at: VTime) -> VTime {
        self.start.saturating_sub(requested_at)
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    next_free: VTime,
    busy_total: VTime,
    grants: u64,
}

/// A FIFO-queued shared resource.
///
/// Cloning shares the underlying queue (it is an `Arc` internally), so a
/// device handed to several simulated processes contends correctly.
#[derive(Clone, Debug)]
pub struct Resource {
    name: Arc<str>,
    state: Arc<Mutex<ResourceState>>,
}

impl Resource {
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: Arc::from(name.into().into_boxed_str()),
            state: Arc::new(Mutex::new(ResourceState::default())),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Occupy the resource for `busy` starting no earlier than `t_req`.
    pub fn acquire_at(&self, t_req: VTime, busy: VTime) -> Grant {
        let mut s = self.state.lock();
        let start = t_req.max(s.next_free);
        let end = start + busy;
        s.next_free = end;
        s.busy_total += busy;
        s.grants += 1;
        Grant { start, end }
    }

    /// Occupy the resource to transfer `bytes` at `rate`, plus a fixed
    /// per-request `latency` that is part of the busy period (the device
    /// cannot serve others while seeking / during the access latency).
    pub fn transfer_at(&self, t_req: VTime, bytes: u64, rate: Bandwidth, latency: VTime) -> Grant {
        self.acquire_at(t_req, latency + rate.time_for(bytes))
    }

    /// Virtual time at which the resource next becomes idle.
    pub fn next_free(&self) -> VTime {
        self.state.lock().next_free
    }

    /// Total busy time accumulated (for utilization reports).
    pub fn busy_total(&self) -> VTime {
        self.state.lock().busy_total
    }

    /// Number of grants served.
    pub fn grants(&self) -> u64 {
        self.state.lock().grants
    }

    /// Forget all queueing history (used between benchmark repetitions).
    pub fn reset(&self) {
        *self.state.lock() = ResourceState::default();
    }
}

/// A resource pool with an attached byte counter, convenient for devices
/// that want utilization *and* traffic accounting in one place.
#[derive(Clone, Debug)]
pub struct MeteredResource {
    pub resource: Resource,
    pub bytes: Counter,
}

impl MeteredResource {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        MeteredResource {
            bytes: Counter::new(format!("{name}.bytes")),
            resource: Resource::new(name),
        }
    }

    pub fn transfer_at(&self, t_req: VTime, bytes: u64, rate: Bandwidth, latency: VTime) -> Grant {
        self.bytes.add(bytes);
        self.resource.transfer_at(t_req, bytes, rate, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_fifo_and_back_to_back() {
        let r = Resource::new("dev");
        let g1 = r.acquire_at(VTime::from_secs(1), VTime::from_secs(2));
        assert_eq!(g1.start, VTime::from_secs(1));
        assert_eq!(g1.end, VTime::from_secs(3));

        // Arrives while busy: queued until g1 ends.
        let g2 = r.acquire_at(VTime::from_secs(2), VTime::from_secs(1));
        assert_eq!(g2.start, VTime::from_secs(3));
        assert_eq!(g2.end, VTime::from_secs(4));
        assert_eq!(g2.queued(VTime::from_secs(2)), VTime::from_secs(1));

        // Arrives after idle: starts immediately.
        let g3 = r.acquire_at(VTime::from_secs(10), VTime::from_secs(1));
        assert_eq!(g3.start, VTime::from_secs(10));
        assert_eq!(g3.queued(VTime::from_secs(10)), VTime::ZERO);
    }

    #[test]
    fn transfer_includes_latency_and_bandwidth() {
        let r = Resource::new("ssd");
        let g = r.transfer_at(
            VTime::ZERO,
            250_000_000,
            Bandwidth::mb_per_sec(250.0),
            VTime::from_micros(75),
        );
        assert_eq!(g.end, VTime::from_secs(1) + VTime::from_micros(75));
    }

    #[test]
    fn utilization_accounting() {
        let r = Resource::new("dev");
        r.acquire_at(VTime::ZERO, VTime::from_secs(1));
        r.acquire_at(VTime::ZERO, VTime::from_secs(2));
        assert_eq!(r.busy_total(), VTime::from_secs(3));
        assert_eq!(r.grants(), 2);
        assert_eq!(r.next_free(), VTime::from_secs(3));
        r.reset();
        assert_eq!(r.busy_total(), VTime::ZERO);
        assert_eq!(r.next_free(), VTime::ZERO);
    }

    #[test]
    fn clones_share_the_queue() {
        let r = Resource::new("dev");
        let r2 = r.clone();
        r.acquire_at(VTime::ZERO, VTime::from_secs(5));
        let g = r2.acquire_at(VTime::ZERO, VTime::from_secs(1));
        assert_eq!(g.start, VTime::from_secs(5));
    }

    #[test]
    fn metered_resource_counts_bytes() {
        let m = MeteredResource::new("nic");
        m.transfer_at(VTime::ZERO, 100, Bandwidth::mb_per_sec(1.0), VTime::ZERO);
        m.transfer_at(VTime::ZERO, 150, Bandwidth::mb_per_sec(1.0), VTime::ZERO);
        assert_eq!(m.bytes.get(), 250);
    }
}

//! Lightweight named counters for traffic accounting.
//!
//! The paper's evaluation reports several *volume* tables (Table IV: bytes
//! seen by the application vs. the FUSE layer vs. the SSD store; Table VII:
//! write-optimization volumes). Every layer of the reproduction stack
//! increments `Counter`s, and experiments snapshot/diff them through a
//! [`StatsRegistry`].

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter. Cheap to clone (shared).
#[derive(Clone, Debug)]
pub struct Counter {
    name: Arc<str>,
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: Arc::from(name.into().into_boxed_str()),
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.get())
    }
}

/// A registry of counters so whole subsystems can be snapshotted at once.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    counters: Arc<Mutex<BTreeMap<String, Counter>>>,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Counter::new(name))
            .clone()
    }

    /// Current value of a counter (0 if it does not exist yet).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Point-in-time copy of every counter value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            values: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
        }
    }

    /// Set every counter back to zero.
    pub fn reset_all(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
    }
}

impl fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("counters", &self.snapshot().values)
            .finish()
    }
}

/// Frozen counter values; subtract two snapshots to get per-phase deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub values: BTreeMap<String, u64>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference `self - earlier` (counters are monotonic, so
    /// missing earlier entries count as zero).
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .map(|(k, v)| (k.clone(), v - earlier.get(k)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn clones_share_value() {
        let c = Counter::new("x");
        let c2 = c.clone();
        c.add(3);
        assert_eq!(c2.get(), 3);
    }

    #[test]
    fn registry_returns_same_counter() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(1);
        reg.counter("a").add(2);
        assert_eq!(reg.get("a"), 3);
        assert_eq!(reg.get("missing"), 0);
    }

    #[test]
    fn snapshot_delta() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(10);
        let s1 = reg.snapshot();
        reg.counter("a").add(5);
        reg.counter("b").add(7);
        let s2 = reg.snapshot();
        let d = s2.delta_since(&s1);
        assert_eq!(d.get("a"), 5);
        assert_eq!(d.get("b"), 7);
    }

    #[test]
    fn reset_all_zeroes() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(10);
        reg.reset_all();
        assert_eq!(reg.get("a"), 0);
    }
}

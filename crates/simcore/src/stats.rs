//! Lightweight named counters and latency histograms for accounting.
//!
//! The paper's evaluation reports several *volume* tables (Table IV: bytes
//! seen by the application vs. the FUSE layer vs. the SSD store; Table VII:
//! write-optimization volumes). Every layer of the reproduction stack
//! increments `Counter`s, and experiments snapshot/diff them through a
//! [`StatsRegistry`]. Latency *distributions* (virtual-time span durations
//! per layer per op kind) go into log-bucketed [`Histogram`]s with
//! deterministic percentiles, registered in the same registry.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter. Cheap to clone (shared).
#[derive(Clone, Debug)]
pub struct Counter {
    name: Arc<str>,
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: Arc::from(name.into().into_boxed_str()),
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.get())
    }
}

/// Sub-bucket resolution of [`Histogram`]: each power-of-two decade is
/// split into `2^SUB_BITS` linear sub-buckets (~3% relative error).
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const HIST_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Bucket index for a value (HdrHistogram-style log-linear layout).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let major = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) - SUB_BUCKETS;
    major * SUB_BUCKETS + sub
}

/// Largest value falling into bucket `idx` — the deterministic
/// representative reported by [`Histogram::quantile`].
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let major = idx / SUB_BUCKETS;
    let sub = (idx % SUB_BUCKETS) as u128;
    // u128 intermediate: the top bucket's bound exceeds u64 and clamps.
    let hi = ((SUB_BUCKETS as u128 + sub + 1) << (major - 1)) - 1;
    hi.min(u64::MAX as u128) as u64
}

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Deterministic percentile triple reported per histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

/// A log-bucketed `u64` histogram with deterministic quantiles.
///
/// Power-of-two major buckets are split into 32 linear sub-buckets, so a
/// reported quantile is within ~3% of the exact order statistic and — more
/// importantly for this repo — is a *pure function of the recorded
/// multiset*: identical runs report identical percentiles. Cheap to clone
/// (shared), like [`Counter`].
#[derive(Clone, Debug)]
pub struct Histogram {
    name: Arc<str>,
    inner: Arc<HistInner>,
}

impl Histogram {
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: Arc::from(name.into().into_boxed_str()),
            inner: Arc::new(HistInner {
                buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn record(&self, v: u64) {
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max.load(Ordering::Relaxed)
    }

    /// Exact minimum recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.inner.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest sample (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    pub fn reset(&self) {
        let i = &self.inner;
        for b in &i.buckets {
            b.store(0, Ordering::Relaxed);
        }
        i.count.store(0, Ordering::Relaxed);
        i.sum.store(0, Ordering::Relaxed);
        i.min.store(u64::MAX, Ordering::Relaxed);
        i.max.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.percentiles();
        write!(
            f,
            "{}: n={} p50={} p95={} p99={} max={}",
            self.name,
            self.count(),
            p.p50,
            p.p95,
            p.p99,
            self.max()
        )
    }
}

/// A registry of counters and histograms so whole subsystems can be
/// snapshotted at once.
#[derive(Clone, Default)]
pub struct StatsRegistry {
    counters: Arc<Mutex<BTreeMap<String, Counter>>>,
    hists: Arc<Mutex<BTreeMap<String, Histogram>>>,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter with this name.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Counter::new(name))
            .clone()
    }

    /// Current value of a counter (0 if it does not exist yet).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Point-in-time copy of every counter value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            values: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
        }
    }

    /// Get or create the histogram with this name.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.hists.lock();
        map.entry(name.to_string())
            .or_insert_with(|| Histogram::new(name))
            .clone()
    }

    /// Every registered histogram, in name order.
    pub fn histograms(&self) -> Vec<Histogram> {
        self.hists.lock().values().cloned().collect()
    }

    /// Set every counter and histogram back to zero.
    pub fn reset_all(&self) {
        for c in self.counters.lock().values() {
            c.reset();
        }
        for h in self.hists.lock().values() {
            h.reset();
        }
    }
}

impl fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("counters", &self.snapshot().values)
            .finish()
    }
}

/// Frozen counter values; subtract two snapshots to get per-phase deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub values: BTreeMap<String, u64>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Per-counter difference `self - earlier` (missing earlier entries
    /// count as zero). Saturates at zero: a `reset_all()` between the two
    /// snapshots makes the later value smaller, which must read as "no
    /// progress since", not a u64 underflow panic.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.get(k))))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new("x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn clones_share_value() {
        let c = Counter::new("x");
        let c2 = c.clone();
        c.add(3);
        assert_eq!(c2.get(), 3);
    }

    #[test]
    fn registry_returns_same_counter() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(1);
        reg.counter("a").add(2);
        assert_eq!(reg.get("a"), 3);
        assert_eq!(reg.get("missing"), 0);
    }

    #[test]
    fn snapshot_delta() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(10);
        let s1 = reg.snapshot();
        reg.counter("a").add(5);
        reg.counter("b").add(7);
        let s2 = reg.snapshot();
        let d = s2.delta_since(&s1);
        assert_eq!(d.get("a"), 5);
        assert_eq!(d.get("b"), 7);
    }

    #[test]
    fn reset_all_zeroes() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(10);
        reg.reset_all();
        assert_eq!(reg.get("a"), 0);
    }

    /// Regression: `reset_all()` between snapshots used to make
    /// `delta_since` underflow-panic (`later < earlier`). It must clamp.
    #[test]
    fn delta_since_survives_reset_between_snapshots() {
        let reg = StatsRegistry::new();
        reg.counter("a").add(100);
        reg.counter("b").add(3);
        let s1 = reg.snapshot();
        reg.reset_all();
        reg.counter("a").add(7);
        let s2 = reg.snapshot();
        let d = s2.delta_since(&s1);
        assert_eq!(d.get("a"), 0); // 7 - 100, clamped
        assert_eq!(d.get("b"), 0); // 0 - 3, clamped
    }

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Exact for small values; upper bounds strictly increase and every
        // value maps into a bucket whose upper bound is >= the value.
        for v in 0..((SUB_BUCKETS as u64) * 4) {
            assert!(bucket_upper(bucket_index(v)) >= v);
        }
        for idx in 1..HIST_BUCKETS {
            assert!(bucket_upper(idx) > bucket_upper(idx - 1));
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_exact_below_subbucket_resolution() {
        let h = Histogram::new("h");
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 55);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 10);
        assert_eq!(h.quantile(0.0), 1); // rank clamps to 1
    }

    #[test]
    fn histogram_quantiles_within_relative_error() {
        let h = Histogram::new("h");
        for v in 1..=10_000u64 {
            h.record(v * 1000); // 1µs .. 10ms in ns, log-spread
        }
        let p = h.percentiles();
        let within =
            |got: u64, exact: u64| got >= exact && (got - exact) as f64 <= exact as f64 * 0.04;
        assert!(within(p.p50, 5_000_000), "p50={}", p.p50);
        assert!(within(p.p95, 9_500_000), "p95={}", p.p95);
        assert!(within(p.p99, 9_900_000), "p99={}", p.p99);
        assert_eq!(h.quantile(1.0), 10_000_000); // clamped to exact max
    }

    #[test]
    fn histogram_empty_and_reset() {
        let h = Histogram::new("h");
        assert!(h.is_empty());
        assert_eq!(h.percentiles(), Percentiles::default());
        h.record(42);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn registry_returns_same_histogram() {
        let reg = StatsRegistry::new();
        reg.histogram("h").record(5);
        reg.histogram("h").record(9);
        assert_eq!(reg.histogram("h").count(), 2);
        let all = reg.histograms();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].name(), "h");
        reg.reset_all();
        assert!(reg.histogram("h").is_empty());
    }
}

//! Deterministic random-number utilities.
//!
//! Every stochastic choice in the reproduction (workload data, random write
//! addresses, striping jitter) derives from an explicit seed so that runs
//! are exactly repeatable. Seeds are split hierarchically: an experiment
//! seed spawns per-process streams that do not collide.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from a parent seed and a stream index.
///
/// Uses SplitMix64 steps, which are well distributed and cheap; the exact
/// function is part of the reproduction's determinism contract.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG for the given (experiment, stream) pair.
pub fn stream_rng(experiment_seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(child_seed(experiment_seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn child_seeds_differ_by_stream() {
        let a = child_seed(42, 0);
        let b = child_seed(42, 1);
        let c = child_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn stream_rng_is_deterministic() {
        let mut r1 = stream_rng(7, 3);
        let mut r2 = stream_rng(7, 3);
        let a: [u64; 4] = std::array::from_fn(|_| r1.gen());
        let b: [u64; 4] = std::array::from_fn(|_| r2.gen());
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_give_different_sequences() {
        let mut r1 = stream_rng(7, 0);
        let mut r2 = stream_rng(7, 1);
        let a: u64 = r1.gen();
        let b: u64 = r2.gen();
        assert_ne!(a, b);
    }
}
